//! The control-plane analysis program (§6 of the paper).
//!
//! Three responsibilities: (1) per-port configuration, (2) checkpointing the
//! time windows and queue monitor by periodically 'freezing' register sets,
//! and (3) executing queries against the stored snapshots.
//!
//! Register freezing follows Figure 8 / Mantis: a flip of the
//! second-highest index bit diverts per-packet updates to a spare register
//! copy *for the duration of the read*, giving the control plane an atomic,
//! serializable snapshot; a data-plane-triggered query flips the highest
//! bit instead, and the frozen 'special' set stays locked (further triggers
//! are ignored) until read. Crucially, the read lasts milliseconds while
//! `t_set` spans tens of milliseconds, so one primary copy receives
//! (essentially) every packet and its ring buffers roll continuously —
//! that continuity is what keeps the deep windows populated.
//!
//! In this simulation control-plane reads complete in zero simulated time,
//! so the flip diverts zero packets: reading reduces to an atomic bulk copy
//! of the live registers, and the spare copies exist only in the SRAM and
//! bandwidth accounting ([`crate::resources`]). The special-set lock is
//! still modeled (a data-plane query arriving while one is outstanding is
//! dropped, §6.2), as is the paper's constraint that polls happen at least
//! once per set period.
//!
//! The snapshot store also enforces the paper's feasibility constraint: a
//! configurable read-rate ceiling models PCIe/analysis-program throughput
//! (Figure 13's "data exchange limit"); reads that would exceed it are
//! reported so experiments can mark infeasible configurations.

use crate::coefficient::Coefficients;
use crate::params::TimeWindowConfig;
use crate::queue_monitor::{QueueMonitor, QueueMonitorSnapshot};
use crate::snapshot::{FlowEstimates, QueryInterval, TimeWindowSnapshot};
use crate::time_windows::TimeWindowSet;
use pq_packet::{FlowId, Nanos};
use serde::{Deserialize, Serialize};

/// Control-plane configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ControlConfig {
    /// Poll period. Must be ≤ the set period or coverage gaps appear
    /// (§6.2: "at least once per t_set"). Defaults to the set period.
    pub poll_period: Nanos,
    /// Maximum number of stored snapshots (a ring of recent history).
    pub max_snapshots: usize,
}

impl ControlConfig {
    /// Poll exactly once per set period, keeping `max_snapshots` snapshots.
    pub fn per_set_period(tw: &TimeWindowConfig, max_snapshots: usize) -> ControlConfig {
        ControlConfig {
            poll_period: tw.set_period(),
            max_snapshots,
        }
    }
}

/// A stored checkpoint of one port's data-plane state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Checkpoint {
    /// When the freeze happened.
    pub frozen_at: Nanos,
    /// Whether this came from a data-plane trigger (special registers) or a
    /// periodic poll.
    pub on_demand: bool,
    /// For on-demand reads: the triggering packet's query interval.
    pub trigger: Option<QueryInterval>,
    /// Frozen time windows (filtered lazily at query time).
    pub windows: TimeWindowSnapshot,
    /// Frozen queue monitors, one per egress queue (FIFO ports have one).
    pub queue_monitors: Vec<QueueMonitorSnapshot>,
}

impl Checkpoint {
    /// The first (or only) queue's monitor snapshot.
    pub fn queue_monitor(&self) -> &QueueMonitorSnapshot {
        &self.queue_monitors[0]
    }
}

/// One port's data-plane register state.
///
/// Physically there are three copies (primary, read spare, special — see
/// the module docs); since reads divert zero packets in simulated time,
/// only the primary holds data and the spares appear in the resource
/// accounting alone.
struct PortRegisters {
    time_windows: TimeWindowSet,
    /// One monitor per egress queue — "multiple queues are tracked
    /// individually" (§5). FIFO ports have exactly one.
    queue_monitors: Vec<QueueMonitor>,
    /// A data-plane-triggered special read is outstanding (in hardware the
    /// read takes real time; tests can exercise the lock by holding it).
    special_locked: bool,
}

impl PortRegisters {
    fn new(
        tw: &TimeWindowConfig,
        qm_entries: usize,
        qm_cells_per_entry: u32,
        queues: u8,
        passing: bool,
    ) -> PortRegisters {
        let mut time_windows = TimeWindowSet::new(*tw);
        if !passing {
            time_windows = time_windows.without_passing();
        }
        PortRegisters {
            time_windows,
            queue_monitors: (0..queues.max(1))
                .map(|_| QueueMonitor::new(qm_entries, qm_cells_per_entry))
                .collect(),
            special_locked: false,
        }
    }

    fn monitor_mut(&mut self, queue: u8) -> &mut QueueMonitor {
        let last = self.queue_monitors.len() - 1;
        &mut self.queue_monitors[usize::from(queue).min(last)]
    }
}

/// The per-switch analysis program plus the data-plane register files it
/// manages. (In hardware these live on opposite sides of PCIe; co-locating
/// them in one type keeps the simulation simple while the access paths stay
/// separate: packets touch only the active copy, the control plane only
/// frozen copies.)
pub struct AnalysisProgram {
    tw_config: TimeWindowConfig,
    control: ControlConfig,
    coeffs: Coefficients,
    ports: Vec<(u16, PortRegisters)>,
    /// Stored checkpoints, oldest first, per port (parallel to `ports`).
    checkpoints: Vec<Vec<Checkpoint>>,
    /// Cumulative register entries read by the control plane (for the
    /// bandwidth model).
    pub entries_read: u64,
    /// Cumulative bytes read.
    pub bytes_read: u64,
    /// Data-plane queries ignored because the special set was locked.
    pub dp_queries_ignored: u64,
    last_poll: Nanos,
}

impl AnalysisProgram {
    /// Configure PrintQueue on `ports` (§6.1), with queue monitors of
    /// `qm_entries` × `qm_cells_per_entry` granularity, and `d` =
    /// minimum-packet transmission delay for the coefficient boot value.
    pub fn new(
        tw_config: TimeWindowConfig,
        control: ControlConfig,
        ports: &[u16],
        qm_entries: usize,
        qm_cells_per_entry: u32,
        d: Nanos,
    ) -> AnalysisProgram {
        Self::with_options(tw_config, control, ports, qm_entries, qm_cells_per_entry, d, 1, true)
    }

    /// [`AnalysisProgram::new`] with per-port queue count (each queue gets
    /// its own monitor) and the Algorithm-1 passing rule made optional
    /// (`passing = false` is the ablation: every eviction drops).
    #[allow(clippy::too_many_arguments)]
    pub fn with_options(
        tw_config: TimeWindowConfig,
        control: ControlConfig,
        ports: &[u16],
        qm_entries: usize,
        qm_cells_per_entry: u32,
        d: Nanos,
        queues_per_port: u8,
        passing: bool,
    ) -> AnalysisProgram {
        assert!(!ports.is_empty(), "activate at least one port");
        assert!(
            control.poll_period <= tw_config.set_period(),
            "poll period {} exceeds set period {} — coverage gap",
            control.poll_period,
            tw_config.set_period()
        );
        AnalysisProgram {
            coeffs: Coefficients::compute(&tw_config, d),
            ports: ports
                .iter()
                .map(|p| {
                    (
                        *p,
                        PortRegisters::new(
                            &tw_config,
                            qm_entries,
                            qm_cells_per_entry,
                            queues_per_port,
                            passing,
                        ),
                    )
                })
                .collect(),
            checkpoints: vec![Vec::new(); ports.len()],
            tw_config,
            control,
            entries_read: 0,
            bytes_read: 0,
            dp_queries_ignored: 0,
            last_poll: 0,
        }
    }

    /// The time-window configuration.
    pub fn tw_config(&self) -> &TimeWindowConfig {
        &self.tw_config
    }

    /// The recovery coefficients in use.
    pub fn coefficients(&self) -> &Coefficients {
        &self.coeffs
    }

    fn port_index(&self, port: u16) -> Option<usize> {
        self.ports.iter().position(|(p, _)| *p == port)
    }

    /// Is PrintQueue active on `port` (the §6.1 ingress gate table)?
    pub fn is_active(&self, port: u16) -> bool {
        self.port_index(port).is_some()
    }

    /// Data-plane update: a packet of `flow` dequeued from `port` at
    /// `deq_ts`. Feeds the primary time-window copy.
    pub fn record_dequeue(&mut self, port: u16, flow: FlowId, deq_ts: Nanos) {
        if let Some(i) = self.port_index(port) {
            self.ports[i].1.time_windows.record(flow, deq_ts);
        }
    }

    /// Data-plane update for queue `queue`'s monitor on enqueue.
    pub fn qm_enqueue(&mut self, port: u16, queue: u8, flow: FlowId, depth_cells: u32, now: Nanos) {
        if let Some(i) = self.port_index(port) {
            self.ports[i].1.monitor_mut(queue).on_enqueue(flow, depth_cells, now);
        }
    }

    /// Data-plane update for queue `queue`'s monitor on dequeue.
    pub fn qm_dequeue(&mut self, port: u16, queue: u8, flow: FlowId, depth_cells: u32, now: Nanos) {
        if let Some(i) = self.port_index(port) {
            self.ports[i].1.monitor_mut(queue).on_dequeue(flow, depth_cells, now);
        }
    }

    /// Periodic control-plane tick. When a poll period has elapsed, freezes
    /// and reads every active port's registers (§6.2 "periodic reads").
    pub fn on_tick(&mut self, now: Nanos) {
        if now < self.last_poll + self.control.poll_period {
            return;
        }
        self.last_poll = now;
        for i in 0..self.ports.len() {
            self.freeze_and_read(i, now, false, None);
        }
    }

    /// A data-plane query trigger fired on `port` for a packet whose
    /// queueing spanned `interval` (§6.2 "on-demand reads"). Returns true
    /// when the trigger was honored, false when ignored because a special
    /// read was already in progress.
    pub fn dp_query(&mut self, port: u16, interval: QueryInterval, now: Nanos) -> bool {
        let Some(i) = self.port_index(port) else {
            return false;
        };
        if self.ports[i].1.special_locked {
            // "Concurrent reads will be temporarily ignored until
            // PrintQueue can finish reading the special register set."
            self.dp_queries_ignored += 1;
            return false;
        }
        self.freeze_and_read(i, now, true, Some(interval));
        true
    }

    /// Freeze-and-read port `i`'s registers into a checkpoint. The rings
    /// keep rolling (see the module docs on why nothing is flipped or
    /// cleared in zero-read-time simulation).
    fn freeze_and_read(&mut self, i: usize, now: Nanos, on_demand: bool, trigger: Option<QueryInterval>) {
        let regs = &mut self.ports[i].1;
        if on_demand {
            regs.special_locked = true;
        }
        let windows = TimeWindowSnapshot::capture(&regs.time_windows);
        let queue_monitors: Vec<QueueMonitorSnapshot> =
            regs.queue_monitors.iter().map(|m| m.snapshot()).collect();

        // Bandwidth accounting: every cell of every window (8 B) plus every
        // queue-monitor entry (16 B: two halves of flow+seq).
        let tw_entries = u64::from(self.tw_config.t) * self.tw_config.cells() as u64;
        let qm_entries: u64 = queue_monitors.iter().map(|m| m.entries.len() as u64).sum();
        self.entries_read += tw_entries + qm_entries;
        self.bytes_read += tw_entries * 8 + qm_entries * 16;

        // Reading completes synchronously: release the special lock.
        if on_demand {
            self.ports[i].1.special_locked = false;
        }

        let store = &mut self.checkpoints[i];
        store.push(Checkpoint {
            frozen_at: now,
            on_demand,
            trigger,
            windows,
            queue_monitors,
        });
        if store.len() > self.control.max_snapshots {
            let excess = store.len() - self.control.max_snapshots;
            store.drain(..excess);
        }
    }

    /// All stored checkpoints for `port`, oldest first.
    pub fn checkpoints(&self, port: u16) -> &[Checkpoint] {
        let i = self.port_index(port).expect("port not activated");
        &self.checkpoints[i]
    }

    /// §6.3 asynchronous time-window query: per-flow packet counts over
    /// `interval` on `port`, splitting the interval across every stored
    /// checkpoint that covers part of it.
    pub fn query_time_windows(&self, port: u16, interval: QueryInterval) -> FlowEstimates {
        self.query_time_windows_with(port, interval, &self.coeffs)
    }

    /// Like [`AnalysisProgram::query_time_windows`] but with caller-supplied
    /// coefficients (the coefficient-recovery ablation passes all-ones).
    pub fn query_time_windows_with(
        &self,
        port: u16,
        interval: QueryInterval,
        coeffs: &Coefficients,
    ) -> FlowEstimates {
        let i = self.port_index(port).expect("port not activated");
        let mut result = FlowEstimates::default();
        let mut prev_frozen_at: Option<Nanos> = None;
        for cp in &self.checkpoints[i] {
            // A periodic checkpoint covers at most (prev_freeze, freeze];
            // clamp the query to that slice to avoid double counting when
            // polls are more frequent than the set period.
            let slice_from = interval.from.max(prev_frozen_at.map_or(0, |t| t + 1));
            let slice_to = interval.to.min(cp.frozen_at);
            if !cp.on_demand {
                prev_frozen_at = Some(cp.frozen_at);
            }
            if slice_from > slice_to || cp.on_demand {
                continue;
            }
            let est = cp
                .windows
                .query(QueryInterval::new(slice_from, slice_to), coeffs);
            result.merge(&est);
        }
        result
    }

    /// Query an on-demand (special) checkpoint directly: the data-plane
    /// query path, which reads the freshest registers. `which` selects among
    /// on-demand checkpoints (`None` = most recent).
    pub fn query_special(&self, port: u16, which: Option<usize>) -> Option<FlowEstimates> {
        let i = self.port_index(port).expect("port not activated");
        let specials: Vec<usize> = self.checkpoints[i]
            .iter()
            .enumerate()
            .filter(|(_, c)| c.on_demand)
            .map(|(idx, _)| idx)
            .collect();
        let idx = match which {
            Some(w) => *specials.get(w)?,
            None => *specials.last()?,
        };
        let cp = &self.checkpoints[i][idx];
        let interval = cp.trigger?;
        Some(cp.windows.query(interval, &self.coeffs))
    }

    /// §6.3 queue-monitor query: the original culprits at the instant
    /// closest to `at`, for the port's first queue (FIFO ports).
    pub fn query_queue_monitor(&self, port: u16, at: Nanos) -> Option<&QueueMonitorSnapshot> {
        self.query_queue_monitor_for(port, 0, at)
    }

    /// Per-queue variant of [`AnalysisProgram::query_queue_monitor`]: the
    /// original culprits of one specific egress queue ("the queue monitor
    /// can track each priority or rank separately", §5).
    pub fn query_queue_monitor_for(
        &self,
        port: u16,
        queue: u8,
        at: Nanos,
    ) -> Option<&QueueMonitorSnapshot> {
        let i = self.port_index(port).expect("port not activated");
        self.checkpoints[i]
            .iter()
            .min_by_key(|cp| cp.frozen_at.abs_diff(at))
            .and_then(|cp| cp.queue_monitors.get(usize::from(queue)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn program(poll: Nanos) -> AnalysisProgram {
        // Tiny: 64 cells, 2 windows → set period 64 + 128 = 192 ns.
        let tw = TimeWindowConfig::new(0, 1, 6, 2);
        AnalysisProgram::new(
            tw,
            ControlConfig {
                poll_period: poll,
                max_snapshots: 8,
            },
            &[0],
            32,
            1,
            1,
        )
    }

    #[test]
    fn inactive_ports_are_ignored() {
        let mut ap = program(64);
        assert!(!ap.is_active(5));
        ap.record_dequeue(5, FlowId(1), 10);
        ap.on_tick(64);
        assert!(ap.checkpoints(0)[0].windows.occupancy(0) == 0);
    }

    #[test]
    fn periodic_polls_create_checkpoints() {
        let mut ap = program(64);
        for t in 0..10u64 {
            ap.record_dequeue(0, FlowId(1), t);
        }
        ap.on_tick(64);
        assert_eq!(ap.checkpoints(0).len(), 1);
        assert!(!ap.checkpoints(0)[0].on_demand);
        assert_eq!(ap.checkpoints(0)[0].frozen_at, 64);
        // Data went into the frozen copy; the snapshot holds it.
        assert_eq!(ap.checkpoints(0)[0].windows.occupancy(0), 10);
    }

    #[test]
    fn rings_persist_across_freezes() {
        let mut ap = program(64);
        ap.record_dequeue(0, FlowId(1), 1);
        ap.on_tick(64);
        // The rings keep rolling: the second snapshot still holds the old
        // packet (the query slicer, not the registers, prevents double
        // counting across checkpoints). 66 maps to cell 2, away from
        // flow 1's cell 1, so nothing is evicted.
        ap.record_dequeue(0, FlowId(2), 66);
        ap.on_tick(128);
        let cps = ap.checkpoints(0);
        assert_eq!(cps.len(), 2);
        assert_eq!(cps[1].windows.occupancy(0), 2);
        // Query across both checkpoints: exactly two packets, no double
        // count of flow 1.
        let est = ap.query_time_windows(0, QueryInterval::new(0, 100));
        assert_eq!(est.counts[&FlowId(1)], 1.0);
        assert_eq!(est.counts[&FlowId(2)], 1.0);
    }

    #[test]
    fn query_spans_checkpoints() {
        let mut ap = program(16);
        // Packets at t = 0..16 land in the first checkpoint, 16..48 in the
        // second; a query over [0, 47] must stitch both without double
        // counting.
        for t in 0..16u64 {
            ap.record_dequeue(0, FlowId((t % 2) as u32), t);
        }
        ap.on_tick(16);
        for t in 16..48u64 {
            ap.record_dequeue(0, FlowId((t % 2) as u32), t);
        }
        ap.on_tick(48);
        let est = ap.query_time_windows(0, QueryInterval::new(0, 47));
        let total = est.total();
        assert!(
            (44.0..=48.0).contains(&total),
            "expected ≈48 packets across checkpoints, got {total}"
        );
    }

    #[test]
    fn dp_query_locks_special_set() {
        let mut ap = program(64);
        ap.record_dequeue(0, FlowId(7), 5);
        assert!(ap.dp_query(0, QueryInterval::new(0, 10), 6));
        // Our freeze-and-read completes synchronously, so the lock releases
        // immediately; a second trigger succeeds and the counter stays 0.
        assert!(ap.dp_query(0, QueryInterval::new(0, 10), 7));
        assert_eq!(ap.dp_queries_ignored, 0);
        let est = ap.query_special(0, Some(0)).expect("special checkpoint");
        assert_eq!(est.counts[&FlowId(7)], 1.0);
    }

    #[test]
    fn snapshot_ring_is_bounded() {
        let mut ap = program(4);
        for poll in 1..=20u64 {
            ap.on_tick(poll * 4);
        }
        assert_eq!(ap.checkpoints(0).len(), 8);
    }

    #[test]
    fn bandwidth_accounting_grows_per_poll() {
        let mut ap = program(64);
        ap.on_tick(64);
        let after_one = ap.bytes_read;
        ap.on_tick(128);
        assert_eq!(ap.bytes_read, after_one * 2);
        // 2 windows × 64 cells × 8 B + 32 QM entries × 16 B.
        assert_eq!(after_one, 2 * 64 * 8 + 32 * 16);
    }

    #[test]
    fn queue_monitor_query_picks_nearest() {
        let mut ap = program(64);
        ap.qm_enqueue(0, 0, FlowId(1), 1, 10);
        ap.on_tick(64);
        ap.qm_enqueue(0, 0, FlowId(2), 1, 70);
        ap.on_tick(128);
        let near_first = ap.query_queue_monitor(0, 70).unwrap();
        let culprits = near_first.original_culprits();
        assert_eq!(culprits.len(), 1);
        assert_eq!(culprits[0].flow, FlowId(1));
        let near_second = ap.query_queue_monitor(0, 127).unwrap();
        assert_eq!(near_second.original_culprits()[0].flow, FlowId(2));
    }

    #[test]
    #[should_panic(expected = "coverage gap")]
    fn poll_slower_than_set_period_rejected() {
        let tw = TimeWindowConfig::new(0, 1, 4, 2);
        let _ = AnalysisProgram::new(
            tw,
            ControlConfig {
                poll_period: tw.set_period() + 1,
                max_snapshots: 1,
            },
            &[0],
            8,
            1,
            1,
        );
    }
}
