//! The queue monitor — §5 of the paper.
//!
//! A sparse stack tracking the *original causes* of the current congestion
//! regime: conceptually a register array indexed by queue depth, plus a
//! 'stack top' pointer holding the latest depth. Whenever a packet changes
//! the depth `l1 → l2`, its flow ID and a monotonically increasing sequence
//! number are written to entry `l2` — into the entry's *upper half* for
//! increases (enqueues) and *lower half* for decreases (dequeues).
//!
//! Entries under the top pointer may be stale (left over from an earlier,
//! higher peak — Figure 7). The filter walks the array bottom-up tracking
//! the largest sequence number seen so far and keeps only increase entries
//! newer than everything below them: exactly the monotone chain of packets
//! that raised the queue to its current level.
//!
//! On the Tofino both halves are written from the egress pipeline (each
//! packet carries its `enq_qdepth` and observes the post-dequeue depth);
//! the simulator delivers the same information at the actual enqueue and
//! dequeue instants, which is where the transitions semantically happen.

use pq_packet::{FlowId, Nanos};
use pq_switch::RegisterArray;
use serde::{Deserialize, Serialize};

/// One half of a depth entry: who moved the depth here, and when (sequence).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Half {
    /// Flow of the packet that caused the transition.
    pub flow: FlowId,
    /// Monotonic sequence number; 0 = never written.
    pub seq: u64,
}

impl Half {
    const EMPTY: Half = Half {
        flow: FlowId::NONE,
        seq: 0,
    };

    /// True when this half has never been written.
    pub fn is_empty(&self) -> bool {
        self.seq == 0
    }
}

impl Default for Half {
    fn default() -> Self {
        Half::EMPTY
    }
}

/// A depth entry: increase (upper) and decrease (lower) halves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Entry {
    /// Written when an enqueue raises the depth to this level.
    pub inc: Half,
    /// Written when a dequeue lowers the depth to this level.
    pub dec: Half,
}

/// An original-culprit record recovered by the filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OriginalCulprit {
    /// Depth level (in entry granularity) the packet raised the queue to.
    pub level: u32,
    /// The culprit's flow.
    pub flow: FlowId,
    /// Sequence number of the recording.
    pub seq: u64,
}

/// The queue monitor for one egress queue.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueueMonitor {
    entries: RegisterArray<Entry>,
    /// Buffer cells per entry ("buffer allocation granularity", §5).
    cells_per_entry: u32,
    /// Stack-top pointer: entry index of the latest observed depth.
    top: u32,
    /// Next sequence number (1-based; 0 means empty).
    next_seq: u64,
}

impl QueueMonitor {
    /// Create a monitor able to track depths up to
    /// `entries * cells_per_entry` buffer cells.
    pub fn new(entries: usize, cells_per_entry: u32) -> QueueMonitor {
        assert!(entries > 0 && cells_per_entry > 0);
        QueueMonitor {
            entries: RegisterArray::new(entries),
            cells_per_entry,
            top: 0,
            next_seq: 1,
        }
    }

    /// Number of depth entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the monitor has no entries (never: `new` asserts).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Current stack-top entry index.
    pub fn top(&self) -> u32 {
        self.top
    }

    fn level_for(&self, depth_cells: u32) -> u32 {
        (depth_cells / self.cells_per_entry).min(self.entries.len() as u32 - 1)
    }

    /// A packet of `flow` enqueued, raising the depth to `depth_cells`
    /// (inclusive of the packet).
    pub fn on_enqueue(&mut self, flow: FlowId, depth_cells: u32, _now: Nanos) {
        let level = self.level_for(depth_cells);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.begin_packet();
        self.entries.rmw(level as usize, |e| {
            e.inc = Half { flow, seq };
        });
        self.top = level;
    }

    /// A packet of `flow` dequeued, lowering the depth to `depth_cells`.
    pub fn on_dequeue(&mut self, flow: FlowId, depth_cells: u32, _now: Nanos) {
        let level = self.level_for(depth_cells);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.begin_packet();
        self.entries.rmw(level as usize, |e| {
            e.dec = Half { flow, seq };
        });
        self.top = level;
    }

    /// Control-plane snapshot of the register state.
    pub fn snapshot(&self) -> QueueMonitorSnapshot {
        QueueMonitorSnapshot {
            entries: self.entries.snapshot(),
            top: self.top,
        }
    }

    /// Control-plane reset.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.top = 0;
        // The sequence counter is *not* reset: monotonicity across reads is
        // what lets the filter discard pre-clear stragglers.
    }
}

/// A frozen copy of queue-monitor register state, as read by the analysis
/// program.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueMonitorSnapshot {
    /// The depth entries.
    pub entries: Vec<Entry>,
    /// Stack-top pointer at freeze time.
    pub top: u32,
}

impl QueueMonitorSnapshot {
    /// Filter stale entries and return the original culprits, bottom-up.
    ///
    /// Walks entries `0..=top`, tracking the largest sequence number seen in
    /// *either* half so far; an increase entry is kept only if it is newer
    /// than everything below it. The surviving entries are precisely the
    /// packets whose arrival raised the queue, level by level, to its
    /// current height (§5's correction procedure for Figure 7).
    pub fn original_culprits(&self) -> Vec<OriginalCulprit> {
        let mut culprits = Vec::new();
        let mut max_seq = 0u64;
        for (level, entry) in self.entries.iter().enumerate().take(self.top as usize + 1) {
            if !entry.inc.is_empty() && entry.inc.seq > max_seq {
                culprits.push(OriginalCulprit {
                    level: level as u32,
                    flow: entry.inc.flow,
                    seq: entry.inc.seq,
                });
            }
            max_seq = max_seq.max(entry.inc.seq).max(entry.dec.seq);
        }
        culprits
    }

    /// Per-flow counts of original culprits.
    pub fn culprit_counts(&self) -> std::collections::HashMap<FlowId, u64> {
        let mut counts = std::collections::HashMap::new();
        for c in self.original_culprits() {
            *counts.entry(c.flow).or_insert(0) += 1;
        }
        counts
    }

    /// The buildup timeline: the surviving chain ordered by *arrival*
    /// (sequence number) rather than by level — who raised the queue first,
    /// who piled on later. For Figure 16's narrative this distinguishes a
    /// burst that founded the congestion from traffic that merely kept the
    /// top churning.
    pub fn buildup_timeline(&self) -> Vec<OriginalCulprit> {
        let mut chain = self.original_culprits();
        chain.sort_by_key(|c| c.seq);
        chain
    }

    /// Per-flow summary of the buildup: for each flow in the chain, the
    /// lowest and highest level it contributed — "this flow built the queue
    /// from X to Y".
    pub fn buildup_ranges(&self) -> std::collections::HashMap<FlowId, (u32, u32)> {
        let mut ranges: std::collections::HashMap<FlowId, (u32, u32)> =
            std::collections::HashMap::new();
        for c in self.original_culprits() {
            ranges
                .entry(c.flow)
                .and_modify(|(lo, hi)| {
                    *lo = (*lo).min(c.level);
                    *hi = (*hi).max(c.level);
                })
                .or_insert((c.level, c.level));
        }
        ranges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: FlowId = FlowId(1);
    const B: FlowId = FlowId(2);
    const C: FlowId = FlowId(3);
    const D: FlowId = FlowId(4);

    /// Figure 7's storyline: B raises the queue 2→5, it drains to 2, then D
    /// raises it to 7. The stale B entry at 5 must be filtered out.
    #[test]
    fn figure7_stale_peak_filtered() {
        let mut qm = QueueMonitor::new(16, 1);
        // Build up to 2 with A (levels 1, 2).
        qm.on_enqueue(A, 1, 0);
        qm.on_enqueue(A, 2, 0);
        // t=1: B brings 2 → 5.
        qm.on_enqueue(B, 5, 1);
        // t=2: drains back to 2 (dequeues land at 4, 3, 2).
        qm.on_dequeue(A, 4, 2);
        qm.on_dequeue(A, 3, 2);
        qm.on_dequeue(B, 2, 2);
        // t=3: D brings 2 → 7.
        qm.on_enqueue(D, 7, 3);

        let snap = qm.snapshot();
        assert_eq!(snap.top, 7);
        let culprits = snap.original_culprits();
        let flows: Vec<(u32, FlowId)> = culprits.iter().map(|c| (c.level, c.flow)).collect();
        // A's buildup to 1 and 2 is still the base; B's entry at 5 is stale
        // (the drain to 2 wrote newer sequence numbers below it); D at 7 is
        // fresh.
        assert!(flows.contains(&(1, A)));
        assert!(flows.contains(&(7, D)));
        assert!(
            !flows.iter().any(|(l, f)| *l == 5 && *f == B),
            "stale B entry survived: {flows:?}"
        );
    }

    #[test]
    fn monotone_buildup_keeps_everything() {
        let mut qm = QueueMonitor::new(16, 1);
        for (i, flow) in [A, B, C, D].iter().enumerate() {
            qm.on_enqueue(*flow, i as u32 + 1, 0);
        }
        let culprits = qm.snapshot().original_culprits();
        assert_eq!(culprits.len(), 4);
        assert_eq!(culprits[0].flow, A);
        assert_eq!(culprits[3].flow, D);
    }

    #[test]
    fn oscillation_band_keeps_latest_writer() {
        let mut qm = QueueMonitor::new(16, 1);
        // Build to 5 with A.
        for d in 1..=5 {
            qm.on_enqueue(A, d, 0);
        }
        // Oscillate 5→4→5 with B replacing the top.
        qm.on_dequeue(A, 4, 1);
        qm.on_enqueue(B, 5, 2);
        let culprits = qm.snapshot().original_culprits();
        // Levels 1..4 belong to A; level 5's latest increase is B.
        let at5: Vec<FlowId> = culprits
            .iter()
            .filter(|c| c.level == 5)
            .map(|c| c.flow)
            .collect();
        assert_eq!(at5, vec![B]);
        assert_eq!(culprits.iter().filter(|c| c.flow == A).count(), 4);
    }

    #[test]
    fn granularity_buckets_depths() {
        let mut qm = QueueMonitor::new(8, 100); // entries cover 100 cells each
        qm.on_enqueue(A, 250, 0); // level 2
        assert_eq!(qm.top(), 2);
        qm.on_enqueue(B, 799, 0); // level 7
        assert_eq!(qm.top(), 7);
    }

    #[test]
    fn depth_beyond_range_clamps_to_last_entry() {
        let mut qm = QueueMonitor::new(4, 1);
        qm.on_enqueue(A, 100, 0);
        assert_eq!(qm.top(), 3);
        let culprits = qm.snapshot().original_culprits();
        assert_eq!(culprits.len(), 1);
        assert_eq!(culprits[0].level, 3);
    }

    #[test]
    fn empty_monitor_reports_nothing() {
        let qm = QueueMonitor::new(8, 1);
        assert!(qm.snapshot().original_culprits().is_empty());
    }

    #[test]
    fn counts_aggregate_by_flow() {
        let mut qm = QueueMonitor::new(16, 1);
        qm.on_enqueue(A, 1, 0);
        qm.on_enqueue(A, 2, 0);
        qm.on_enqueue(B, 3, 0);
        let counts = qm.snapshot().culprit_counts();
        assert_eq!(counts[&A], 2);
        assert_eq!(counts[&B], 1);
    }

    #[test]
    fn clear_keeps_sequence_monotonic() {
        let mut qm = QueueMonitor::new(8, 1);
        qm.on_enqueue(A, 1, 0);
        qm.clear();
        assert!(qm.snapshot().original_culprits().is_empty());
        qm.on_enqueue(B, 1, 0);
        let culprits = qm.snapshot().original_culprits();
        assert_eq!(culprits.len(), 1);
        assert_eq!(culprits[0].flow, B);
        assert!(culprits[0].seq > 1, "sequence numbers must keep rising");
    }
}

#[cfg(test)]
mod buildup_tests {
    use super::*;

    #[test]
    fn timeline_orders_by_arrival_not_level() {
        let mut qm = QueueMonitor::new(16, 1);
        // B arrives first raising to 3 (a multi-cell packet), then A fills
        // in levels 4 and 5 later.
        qm.on_enqueue(FlowId(2), 3, 0);
        qm.on_enqueue(FlowId(1), 4, 1);
        qm.on_enqueue(FlowId(1), 5, 2);
        let timeline = qm.snapshot().buildup_timeline();
        assert_eq!(timeline.len(), 3);
        assert_eq!(timeline[0].flow, FlowId(2), "founder first");
        assert!(timeline.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn ranges_give_per_flow_level_bands() {
        let mut qm = QueueMonitor::new(32, 1);
        for d in 1..=10 {
            qm.on_enqueue(FlowId(7), d, 0);
        }
        for d in 11..=12 {
            qm.on_enqueue(FlowId(8), d, 0);
        }
        let ranges = qm.snapshot().buildup_ranges();
        assert_eq!(ranges[&FlowId(7)], (1, 10));
        assert_eq!(ranges[&FlowId(8)], (11, 12));
    }
}
