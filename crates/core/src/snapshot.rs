//! Frozen time-window state, the stale-cell filter (Algorithm 3), and query
//! execution over arbitrary intervals (§6.3).
//!
//! The analysis program reads raw register contents; because the windows are
//! ring buffers, cells from older laps linger until overwritten. The filter
//! keeps, per window, only the cells belonging to the most recent window
//! period (same cycle as the latest cell, or the previous cycle at a higher
//! index). After filtering, window `i`'s surviving cells cover exactly one
//! window-`i` period, and consecutive windows tile disjoint, contiguous
//! spans going back in time — which is what lets a query split its interval
//! across windows without double counting.

use crate::coefficient::Coefficients;
use crate::params::TimeWindowConfig;
use crate::time_windows::{Cell, TimeWindowSet};
use crate::tts::Tts;
use pq_packet::{FlowId, Nanos};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A closed time interval `[from, to]` in nanoseconds — usually a victim
/// packet's `[enq_timestamp, deq_timestamp]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryInterval {
    pub from: Nanos,
    pub to: Nanos,
}

impl QueryInterval {
    /// Construct, normalizing a reversed pair.
    pub fn new(from: Nanos, to: Nanos) -> QueryInterval {
        if from <= to {
            QueryInterval { from, to }
        } else {
            QueryInterval { from: to, to: from }
        }
    }

    /// Length of the interval.
    pub fn len(&self) -> Nanos {
        self.to - self.from
    }

    /// True for a degenerate (single-instant) interval.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Does `[start, end)` overlap this closed interval?
    fn overlaps_span(&self, start: Nanos, end: Nanos) -> bool {
        start <= self.to && end > self.from
    }
}

/// A frozen, filterable copy of one port's time windows.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeWindowSnapshot {
    config: TimeWindowConfig,
    /// Raw (or filtered) cells, one `Vec` per window.
    windows: Vec<Vec<Cell>>,
    /// Whether [`TimeWindowSnapshot::filter`] has run.
    filtered: bool,
}

impl TimeWindowSnapshot {
    /// Capture the registers of a live set (the control plane's bulk read).
    pub fn capture(set: &TimeWindowSet) -> TimeWindowSnapshot {
        TimeWindowSnapshot {
            config: *set.config(),
            windows: (0..set.config().t)
                .map(|i| set.window(i).to_vec())
                .collect(),
            filtered: false,
        }
    }

    /// Reassemble a snapshot from decoded parts (the deserialization path
    /// of binary checkpoint stores). `windows` must hold exactly `config.t`
    /// vectors of `config.cells()` cells each.
    pub fn from_parts(
        config: TimeWindowConfig,
        windows: Vec<Vec<Cell>>,
        filtered: bool,
    ) -> TimeWindowSnapshot {
        assert_eq!(windows.len(), usize::from(config.t), "window count");
        for w in &windows {
            assert_eq!(w.len(), config.cells(), "cell count");
        }
        TimeWindowSnapshot {
            config,
            windows,
            filtered,
        }
    }

    /// Whether [`TimeWindowSnapshot::filter`] has already run.
    pub fn is_filtered(&self) -> bool {
        self.filtered
    }

    /// The configuration this snapshot was captured under.
    pub fn config(&self) -> &TimeWindowConfig {
        &self.config
    }

    /// Cells of window `i` (possibly filtered).
    pub fn window(&self, i: u8) -> &[Cell] {
        &self.windows[usize::from(i)]
    }

    /// Algorithm 3: blank every cell not belonging to its window's most
    /// recent window period. Idempotent.
    ///
    /// The paper's pseudocode derives each deeper window's anchor from
    /// window 0's latest cell via `TTS = (TTS − 2^k) >> α` — a steady-state
    /// lag of exactly one window period per hop. Measured pass timing
    /// varies with the freeze's phase against each window's cycle grid
    /// (§4.2's passing happens *throughout* the following period), so a
    /// chain-derived anchor can sit a full cycle behind the data actually
    /// present, silently discarding a whole window period. We therefore
    /// anchor every window on its **own** latest occupied cell, which
    /// implements the invariant the paper states for the filter — retain
    /// cells "within one window period of the most recent cell" — robustly
    /// at any freeze phase. (The control plane reads all cells anyway, so
    /// per-window maxima cost nothing extra.)
    pub fn filter(&mut self) {
        for w in 0..usize::from(self.config.t) {
            let latest = self.windows[w]
                .iter()
                .enumerate()
                .filter(|(_, c)| !c.is_empty())
                .map(|(index, c)| Tts {
                    cycle: c.cycle,
                    index,
                })
                .max();
            let Some(latest) = latest else { continue };
            for (j, cell) in self.windows[w].iter_mut().enumerate() {
                if cell.is_empty() {
                    continue;
                }
                let keep = if j <= latest.index {
                    cell.cycle == latest.cycle
                } else {
                    cell.cycle + 1 == latest.cycle
                };
                if !keep {
                    *cell = Cell::EMPTY;
                }
            }
        }
        self.filtered = true;
    }

    /// Time span `[start, end)` covered by window `w`'s surviving cells:
    /// the window period ending at the latest retained instant.
    ///
    /// Returns `None` when the snapshot is empty.
    pub fn window_span(&self, w: u8) -> Option<(Nanos, Nanos)> {
        let wi = usize::from(w);
        let latest = self.windows[wi]
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.is_empty())
            .map(|(index, c)| Tts {
                cycle: c.cycle,
                index,
            })
            .max()?;
        let end = latest.span_end(&self.config, w);
        Some((end.saturating_sub(self.config.window_period(w)), end))
    }

    /// §6.3 time-window query: estimate per-flow packet counts over
    /// `interval`, recovering true counts with the coefficients.
    ///
    /// Conceptually this follows the paper — split the interval into
    /// disjoint pieces, answer each piece from the window holding it, and
    /// divide per-window counts by `coefficient[w]` (Theorem 2's
    /// proportional property). The disjointness is enforced at *cell*
    /// granularity rather than by the Algorithm-3 anchor chain: every
    /// occupied cell's time span (unique, thanks to full-width cycle IDs)
    /// is counted only for the part not already covered by a shallower
    /// window's cells, weighted by the uncovered fraction.
    ///
    /// Why: passing spreads a span's surviving packets across adjacent
    /// windows (laggards stay shallow while early migrants sit deep), and
    /// in traffic lulls shallow rings retain many periods of history. The
    /// steady-state one-period tiling assumed by the anchor chain breaks in
    /// both regimes, whereas coverage-deduplication stays unbiased: if a
    /// fraction q of a span's cells still sits in window w, the deeper
    /// window's contribution is clipped by exactly q, and
    /// `q·N + (1−q)·N = N`.
    pub fn query(&self, interval: QueryInterval, coeffs: &Coefficients) -> FlowEstimates {
        let mut counts: HashMap<FlowId, f64> = HashMap::new();
        // Merged spans (within the query) already covered by shallower
        // windows.
        let mut covered = Coverage::new();
        let q_start = interval.from;
        let q_end = interval.to.saturating_add(1); // half-open
        for w in 0..self.config.t {
            let weight = 1.0 / coeffs.coefficient[usize::from(w)];
            let shift = self.config.shift(w);
            let k = self.config.k;
            let cell_period = self.config.cell_period(w) as f64;
            let mut new_spans = Vec::new();
            for (index, cell) in self.windows[usize::from(w)].iter().enumerate() {
                if cell.is_empty() {
                    continue;
                }
                let raw = (cell.cycle << k) | index as u64;
                let start = (raw << shift).max(q_start);
                let end = ((raw + 1) << shift).min(q_end);
                if end <= start {
                    continue;
                }
                let uncovered = covered.uncovered_len(start, end);
                if uncovered > 0 {
                    *counts.entry(cell.flow).or_insert(0.0) +=
                        weight * uncovered as f64 / cell_period;
                }
                new_spans.push((start, end));
            }
            covered.add_all(new_spans);
        }
        FlowEstimates { counts }
    }

    /// Query a *single* window `w` over `interval` (Figure 12's per-window
    /// accuracy analysis). Filters first if needed.
    pub fn query_window(
        &mut self,
        w: u8,
        interval: QueryInterval,
        coeffs: &Coefficients,
    ) -> FlowEstimates {
        if !self.filtered {
            self.filter();
        }
        let mut counts: HashMap<FlowId, f64> = HashMap::new();
        let weight = 1.0 / coeffs.coefficient[usize::from(w)];
        let shift = self.config.shift(w);
        let k = self.config.k;
        for (index, cell) in self.windows[usize::from(w)].iter().enumerate() {
            if cell.is_empty() {
                continue;
            }
            let raw = (cell.cycle << k) | index as u64;
            let start = raw << shift;
            let end = (raw + 1) << shift;
            if interval.overlaps_span(start, end) {
                *counts.entry(cell.flow).or_insert(0.0) += weight;
            }
        }
        FlowEstimates { counts }
    }

    /// Count of non-empty cells (diagnostics / tests).
    pub fn occupancy(&self, w: u8) -> usize {
        self.windows[usize::from(w)]
            .iter()
            .filter(|c| !c.is_empty())
            .count()
    }

    /// Per-window occupancy summary (diagnostics and the error-bound
    /// tooling): how full each window is and what span its content covers.
    pub fn occupancy_profile(&self) -> Vec<WindowOccupancy> {
        (0..self.config.t)
            .map(|w| {
                let total = self.windows[usize::from(w)].len();
                let occupied = self.occupancy(w);
                WindowOccupancy {
                    window: w,
                    occupied,
                    cells: total,
                    fill: occupied as f64 / total.max(1) as f64,
                    span: self.window_span(w),
                }
            })
            .collect()
    }
}

/// Summary of one window within a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WindowOccupancy {
    /// Window index.
    pub window: u8,
    /// Occupied cells.
    pub occupied: usize,
    /// Total cells.
    pub cells: usize,
    /// Fraction occupied.
    pub fill: f64,
    /// `[start, end)` of the latest retained window period, if any data.
    pub span: Option<(Nanos, Nanos)>,
}

/// A merged set of half-open `[start, end)` spans, used by the query path
/// to deduplicate coverage across windows.
#[derive(Debug, Default)]
struct Coverage {
    /// Sorted, pairwise-disjoint spans.
    spans: Vec<(Nanos, Nanos)>,
}

impl Coverage {
    fn new() -> Coverage {
        Coverage::default()
    }

    /// Total length of `[start, end)` not covered by any stored span.
    fn uncovered_len(&self, start: Nanos, end: Nanos) -> Nanos {
        if end <= start {
            return 0;
        }
        // First span that could overlap: the one before the first span
        // starting at or after `start`.
        let mut idx = self.spans.partition_point(|s| s.0 < start);
        idx = idx.saturating_sub(1);
        let mut covered = 0;
        for &(s, e) in &self.spans[idx..] {
            if s >= end {
                break;
            }
            let lo = s.max(start);
            let hi = e.min(end);
            if hi > lo {
                covered += hi - lo;
            }
        }
        (end - start) - covered
    }

    /// Insert a batch of spans, re-merging.
    fn add_all(&mut self, mut new_spans: Vec<(Nanos, Nanos)>) {
        if new_spans.is_empty() {
            return;
        }
        new_spans.append(&mut self.spans);
        new_spans.sort_unstable();
        let mut merged: Vec<(Nanos, Nanos)> = Vec::with_capacity(new_spans.len());
        for (s, e) in new_spans {
            match merged.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => merged.push((s, e)),
            }
        }
        self.spans = merged;
    }
}

/// Per-flow estimated packet counts returned by a query.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FlowEstimates {
    /// Estimated packets per flow over the query interval.
    pub counts: HashMap<FlowId, f64>,
}

impl FlowEstimates {
    /// Merge another estimate into this one (for interval splits across
    /// snapshots).
    pub fn merge(&mut self, other: &FlowEstimates) {
        for (flow, n) in &other.counts {
            *self.counts.entry(*flow).or_insert(0.0) += n;
        }
    }

    /// Total estimated packets.
    pub fn total(&self) -> f64 {
        self.counts.values().sum()
    }

    /// Flows ranked by estimated count, descending.
    pub fn ranked(&self) -> Vec<(FlowId, f64)> {
        let mut v: Vec<(FlowId, f64)> = self.counts.iter().map(|(f, n)| (*f, *n)).collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time_windows::TimeWindowSet;

    fn tiny() -> TimeWindowConfig {
        // m0=0 so timestamps are TTS directly; k=2 (4 cells), T=3, alpha=1.
        TimeWindowConfig::new(0, 1, 2, 3)
    }

    fn unit_coeffs(t: u8) -> Coefficients {
        Coefficients {
            coefficient: vec![1.0; usize::from(t)],
            z: vec![1.0; usize::from(t)],
        }
    }

    #[test]
    fn interval_normalizes() {
        let q = QueryInterval::new(10, 5);
        assert_eq!((q.from, q.to), (5, 10));
        assert_eq!(q.len(), 5);
    }

    #[test]
    fn filter_keeps_current_cycle_only() {
        let mut set = TimeWindowSet::new(tiny());
        set.record(FlowId(1), 0b0001); // cycle 0, idx 1 — stale after later laps
        set.record(FlowId(2), 0b0100); // cycle 1, idx 0
        set.record(FlowId(3), 0b0110); // cycle 1, idx 2 (latest)
        let mut snap = TimeWindowSnapshot::capture(&set);
        snap.filter();
        // Latest = cycle 1, idx 2. For j ≤ 2 keep cycle 1; j = 3 keeps cycle 0.
        assert_eq!(snap.occupancy(0), 2, "flow1 at idx1/cycle0 must be dropped");
        let kept: Vec<u32> = snap
            .window(0)
            .iter()
            .filter(|c| !c.is_empty())
            .map(|c| c.flow.0)
            .collect();
        assert_eq!(kept, vec![2, 3]);
    }

    #[test]
    fn filter_keeps_previous_cycle_above_latest_index() {
        let mut set = TimeWindowSet::new(tiny());
        set.record(FlowId(1), 0b0011); // cycle 0, idx 3
        set.record(FlowId(2), 0b0101); // cycle 1, idx 1 (latest)
        let mut snap = TimeWindowSnapshot::capture(&set);
        snap.filter();
        // idx 3 > latest idx 1 and cycle 0 + 1 == 1: kept.
        assert_eq!(snap.occupancy(0), 2);
    }

    #[test]
    fn empty_snapshot_filters_to_empty() {
        let set = TimeWindowSet::new(tiny());
        let mut snap = TimeWindowSnapshot::capture(&set);
        snap.filter();
        for w in 0..3 {
            assert_eq!(snap.occupancy(w), 0);
            assert_eq!(snap.window_span(w), None);
        }
    }

    #[test]
    fn query_counts_overlapping_cells() {
        let config = TimeWindowConfig::new(0, 1, 4, 1); // 16 cells, 1 window
        let mut set = TimeWindowSet::new(config);
        for i in 0..8u64 {
            set.record(FlowId((i % 2) as u32), i);
        }
        let snap = TimeWindowSnapshot::capture(&set);
        let est = snap.query(QueryInterval::new(2, 5), &unit_coeffs(1));
        // Cells 2..=5: flows 0,1,0,1.
        assert_eq!(est.counts[&FlowId(0)], 2.0);
        assert_eq!(est.counts[&FlowId(1)], 2.0);
        assert_eq!(est.total(), 4.0);
    }

    #[test]
    fn query_applies_coefficients() {
        let config = TimeWindowConfig::new(0, 1, 2, 2);
        let mut set = TimeWindowSet::new(config);
        // Two packets: one lands in w0 cycle1, the older passes to w1.
        set.record(FlowId(9), 0b0000);
        set.record(FlowId(8), 0b0100);
        let coeffs = Coefficients {
            coefficient: vec![1.0, 0.25],
            z: vec![1.0, 1.0],
        };
        let snap = TimeWindowSnapshot::capture(&set);
        // Flow 9's packet covered t=0 (cell period 1 ns in w0, merged into
        // 2 ns cells in w1). Query the whole past.
        let est = snap.query(QueryInterval::new(0, 10), &coeffs);
        assert_eq!(est.counts[&FlowId(8)], 1.0); // window 0, weight 1
        assert_eq!(est.counts[&FlowId(9)], 4.0); // window 1, weight 1/0.25
    }

    #[test]
    fn windows_tile_disjoint_spans() {
        // Fill enough traffic that all three windows hold data, then check
        // the spans are contiguous and non-overlapping.
        let config = TimeWindowConfig::new(0, 1, 3, 3); // 8 cells
        let mut set = TimeWindowSet::new(config);
        for t in 0..64u64 {
            set.record(FlowId((t % 5) as u32), t);
        }
        let mut snap = TimeWindowSnapshot::capture(&set);
        snap.filter();
        let s0 = snap.window_span(0).expect("w0 has data");
        let s1 = snap.window_span(1).expect("w1 has data");
        assert!(
            s1.1 <= s0.0 + config.cell_period(1), // allow cell-granularity seam
            "w1 {s1:?} must precede w0 {s0:?}"
        );
        assert!(s1.0 < s0.0);
    }

    #[test]
    fn query_outside_coverage_returns_nothing() {
        let config = TimeWindowConfig::new(0, 1, 4, 1);
        let mut set = TimeWindowSet::new(config);
        set.record(FlowId(1), 5);
        let snap = TimeWindowSnapshot::capture(&set);
        let est = snap.query(QueryInterval::new(100, 200), &unit_coeffs(1));
        assert!(est.counts.is_empty());
    }

    #[test]
    fn estimates_merge_and_rank() {
        let mut a = FlowEstimates::default();
        a.counts.insert(FlowId(1), 3.0);
        a.counts.insert(FlowId(2), 1.0);
        let mut b = FlowEstimates::default();
        b.counts.insert(FlowId(2), 4.0);
        a.merge(&b);
        let ranked = a.ranked();
        assert_eq!(ranked[0], (FlowId(2), 5.0));
        assert_eq!(ranked[1], (FlowId(1), 3.0));
    }
}

#[cfg(test)]
mod occupancy_tests {
    use super::*;
    use crate::time_windows::TimeWindowSet;

    #[test]
    fn profile_reports_fill_and_span() {
        let config = TimeWindowConfig::new(0, 1, 4, 2);
        let mut set = TimeWindowSet::new(config);
        for i in 0..8u64 {
            set.record(FlowId(i as u32), i);
        }
        let snap = TimeWindowSnapshot::capture(&set);
        let profile = snap.occupancy_profile();
        assert_eq!(profile.len(), 2);
        assert_eq!(profile[0].occupied, 8);
        assert_eq!(profile[0].cells, 16);
        assert!((profile[0].fill - 0.5).abs() < 1e-12);
        assert!(profile[0].span.is_some());
        assert_eq!(profile[1].occupied, 0);
        assert_eq!(profile[1].span, None);
    }
}
