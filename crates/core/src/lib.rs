//! PrintQueue core: the paper's primary contribution.
//!
//! PrintQueue (SIGCOMM 2022) diagnoses per-packet queueing delay by tracking
//! the *entire congestion regime*: which packets directly delayed a victim,
//! which indirectly delayed it, and which originally built the queue to its
//! current level. This crate implements the complete system:
//!
//! * [`params`] — the time-window configuration (m0, α, k, T) and the
//!   derived cell/window/set periods of §4.1;
//! * [`tts`] — trimmed-timestamp bit manipulation (Figure 5);
//! * [`time_windows`] — the hierarchical ring-buffer structure and the
//!   per-packet mapping/passing rules of Algorithm 1;
//! * [`coefficient`] — the count-recovery coefficients of Algorithm 2,
//!   grounded in Theorems 1–3;
//! * [`queue_monitor`] — the sparse stack tracking the original causes of
//!   congestion (§5);
//! * [`snapshot`] — frozen register state, the stale-cell filter
//!   (Algorithm 3), and query execution over arbitrary intervals (§6.3);
//! * [`control`] — the analysis program: periodic register freezing and
//!   polling, on-demand data-plane queries, snapshot storage (§6.1–6.2);
//! * [`faults`] — deterministic fault injection for the control plane
//!   (read failures, latency, stalls, dropped checkpoints) plus the
//!   retry/backoff policy governing recovery;
//! * [`printqueue`] — the per-switch facade wiring everything to the
//!   `pq-switch` hook points, with per-port activation;
//! * [`culprits`] — the §2 culprit taxonomy computed exactly from ground
//!   truth telemetry, used as the evaluation reference;
//! * [`metrics`] — precision/recall and Top-K metrics (§7.1 methodology);
//! * [`resources`] — SRAM and control-plane bandwidth models behind
//!   Figures 13–15.

pub mod coefficient;
pub mod control;
pub mod culprits;
pub mod diagnosis;
pub mod error_bounds;
pub mod export;
pub mod faults;
pub mod fleet;
pub mod metrics;
pub mod params;
pub mod printqueue;
pub mod queue_monitor;
pub mod register_layout;
pub mod resources;
pub mod snapshot;
pub mod time_windows;
pub mod tts;
pub mod validation;

pub use control::{
    AnalysisProgram, Checkpoint, CheckpointSink, ControlConfig, CoverageGap, QueryResult,
    QueueMonitorAnswer,
};
pub use culprits::{CulpritReport, GroundTruth};
pub use diagnosis::{diagnose, CongestionPattern, Diagnosis};
pub use faults::{FaultConfig, FaultInjector, FaultProfile, LatencyModel, RetryPolicy};
pub use metrics::{precision_recall, ControlHealth, FlowCounts, PrecisionRecall};
pub use params::TimeWindowConfig;
pub use printqueue::{PrintQueue, PrintQueueConfig};
pub use queue_monitor::QueueMonitor;
pub use snapshot::{QueryInterval, TimeWindowSnapshot};
pub use time_windows::TimeWindowSet;
