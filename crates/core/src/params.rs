//! Time-window configuration and derived periods (§4.1 of the paper).
//!
//! A set of `T` time windows, each with `2^k` cells. Window 0's cell period
//! is `2^m0` nanoseconds; each deeper window's cell (and window) period is
//! `2^alpha` times larger. The whole set covers the *set period*
//! `Σ_{i<T} 2^{m0 + αi + k} = (2^{αT} − 1)/(2^α − 1) · 2^{m0+k}` ns.

use pq_packet::Nanos;
use serde::{Deserialize, Serialize};

/// Configuration of a set of time windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimeWindowConfig {
    /// `m0`: log2 of window 0's cell period in nanoseconds. Chosen as
    /// `⌊log2(min packet transmission delay)⌋` so window 0 never sees two
    /// packets in one cell period (§4.1; m0 = 6 for 64 B at ~10 Gbps,
    /// m0 = 10 for MTU packets).
    pub m0: u8,
    /// `α`: compression factor between consecutive windows.
    pub alpha: u8,
    /// `k`: log2 of the number of cells per window (typically 12 → 4096).
    pub k: u8,
    /// `T`: number of windows.
    pub t: u8,
}

impl TimeWindowConfig {
    /// The paper's UW-trace configuration (§7.1).
    pub const UW: TimeWindowConfig = TimeWindowConfig {
        m0: 6,
        alpha: 2,
        k: 12,
        t: 4,
    };

    /// The paper's WS/DM-trace configuration (§7.1).
    pub const WS_DM: TimeWindowConfig = TimeWindowConfig {
        m0: 10,
        alpha: 1,
        k: 12,
        t: 4,
    };

    /// Construct, validating the shift arithmetic stays in 64 bits.
    pub fn new(m0: u8, alpha: u8, k: u8, t: u8) -> TimeWindowConfig {
        let config = TimeWindowConfig { m0, alpha, k, t };
        config.validate();
        config
    }

    /// Panics when the parameters are structurally invalid.
    pub fn validate(&self) {
        assert!(self.t >= 1, "need at least one window");
        assert!(self.alpha >= 1, "alpha must be at least 1");
        assert!(self.k >= 1 && self.k <= 24, "k out of range");
        let max_shift = u32::from(self.m0)
            + u32::from(self.alpha) * (u32::from(self.t) - 1)
            + u32::from(self.k);
        assert!(max_shift < 63, "periods overflow u64 nanoseconds");
    }

    /// Cells per window (`2^k`).
    pub fn cells(&self) -> usize {
        1usize << self.k
    }

    /// Cell period of window `i` in nanoseconds (`2^{m0 + αi}`).
    pub fn cell_period(&self, i: u8) -> Nanos {
        debug_assert!(i < self.t);
        1u64 << (self.m0 + self.alpha * i)
    }

    /// Window period of window `i` in nanoseconds (`2^{m0 + αi + k}`).
    pub fn window_period(&self, i: u8) -> Nanos {
        self.cell_period(i) << self.k
    }

    /// The set period: total contiguous span covered by all `T` windows.
    pub fn set_period(&self) -> Nanos {
        (0..self.t).map(|i| self.window_period(i)).sum()
    }

    /// Total right-shift applied to the raw timestamp for window `i`
    /// (`m0 + αi`).
    pub fn shift(&self, i: u8) -> u32 {
        u32::from(self.m0) + u32::from(self.alpha) * u32::from(i)
    }

    /// Short label used in experiment output, e.g. `1_12_4` for
    /// α=1, k=12, T=4 (the naming of Figure 13).
    pub fn label(&self) -> String {
        format!("{}_{}_{}", self.alpha, self.k, self.t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_uw_periods() {
        let c = TimeWindowConfig::UW; // m0=6, alpha=2, k=12, T=4
        assert_eq!(c.cells(), 4096);
        assert_eq!(c.cell_period(0), 64);
        assert_eq!(c.cell_period(1), 256);
        assert_eq!(c.cell_period(2), 1024);
        assert_eq!(c.cell_period(3), 4096);
        // Window period 0 = 64 ns * 4096 = 262.144 µs — "more than 100 µs"
        // as §4.1 promises for microburst coverage.
        assert_eq!(c.window_period(0), 262_144);
        // Set period = (2^8 - 1) / (2^2 - 1) * 2^18 = 85 * 262144.
        assert_eq!(c.set_period(), 85 * 262_144);
    }

    #[test]
    fn alpha3_cell_periods_match_paper_example() {
        // §7.1: "With α = 3, T = 4, the cell periods of the four windows are
        // 64 ns, 512 ns, 4 µs, and 32 µs."
        let c = TimeWindowConfig::new(6, 3, 12, 4);
        assert_eq!(c.cell_period(0), 64);
        assert_eq!(c.cell_period(1), 512);
        assert_eq!(c.cell_period(2), 4_096);
        assert_eq!(c.cell_period(3), 32_768);
    }

    #[test]
    fn set_period_closed_form() {
        for (m0, alpha, k, t) in [(6, 2, 12, 4), (10, 1, 12, 5), (6, 3, 10, 3)] {
            let c = TimeWindowConfig::new(m0, alpha, k, t);
            let closed = ((1u64 << (alpha * t)) - 1) / ((1u64 << alpha) - 1) * (1u64 << (m0 + k));
            assert_eq!(c.set_period(), closed, "config {c:?}");
        }
    }

    #[test]
    fn label_format() {
        assert_eq!(TimeWindowConfig::UW.label(), "2_12_4");
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn rejects_overflowing_shifts() {
        TimeWindowConfig::new(40, 4, 20, 4);
    }
}
