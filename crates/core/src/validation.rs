//! Deployment validation: the §7.1 operator guidance, codified.
//!
//! "In practice, network operators should choose the lowest values of α and
//! T that are feasible for their networks" — feasibility being set by the
//! control plane's read rate, the SRAM budget, the minimum packet delay
//! (which fixes `m0`), and the buffer depth the queue monitor must cover.
//! [`validate`] checks a configuration against a workload description and
//! returns machine-readable findings, so tools (and `pqsim`) can warn
//! before a run rather than let a silently misconfigured deployment produce
//! garbage estimates.

use crate::printqueue::PrintQueueConfig;
use crate::resources::{ResourceModel, READ_LIMIT_MBPS};
use pq_packet::Nanos;
use serde::{Deserialize, Serialize};

/// What the deployment will monitor — the few numbers feasibility depends
/// on.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DeploymentProfile {
    /// Bottleneck port rate in Gbps.
    pub port_rate_gbps: f64,
    /// Smallest packet the network carries, bytes.
    pub min_pkt_bytes: u32,
    /// Tail-drop threshold of the deepest monitored queue, in buffer cells.
    pub max_depth_cells: u32,
    /// Longest victim queueing delay the operator wants diagnosable, ns.
    pub max_query_interval: Nanos,
}

impl DeploymentProfile {
    /// The paper's 10 Gbps testbed carrying ≥64 B packets with deep buffers.
    pub fn paper_testbed() -> DeploymentProfile {
        DeploymentProfile {
            port_rate_gbps: 10.0,
            min_pkt_bytes: 64,
            max_depth_cells: 32_768,
            max_query_interval: 2_000_000,
        }
    }
}

/// Severity of a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Severity {
    /// The deployment will lose data or answer wrongly.
    Error,
    /// Accuracy or coverage will degrade.
    Warning,
}

/// One validation finding.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Finding {
    pub severity: Severity,
    /// Stable identifier, e.g. `m0-too-large`.
    pub code: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

fn finding(severity: Severity, code: &'static str, message: String) -> Finding {
    Finding {
        severity,
        code,
        message,
    }
}

/// Validate a configuration against a deployment profile.
pub fn validate(config: &PrintQueueConfig, profile: &DeploymentProfile) -> Vec<Finding> {
    let mut findings = Vec::new();
    let tw = &config.time_windows;

    // §4.1: window 0's cell period must not exceed the minimum packet
    // transmission delay, or window 0 gets same-cycle collisions and loses
    // packets without even the chance to pass them.
    let min_tx = pq_packet::time::tx_delay_ns(profile.min_pkt_bytes, profile.port_rate_gbps);
    if (1u64 << tw.m0) > min_tx {
        findings.push(finding(
            Severity::Warning,
            "m0-too-large",
            format!(
                "window 0 cell period 2^{} = {} ns exceeds the minimum packet \
                 transmission delay {} ns; same-cycle collisions will drop \
                 packets in window 0 (choose m0 ≤ {})",
                tw.m0,
                1u64 << tw.m0,
                min_tx,
                min_tx.ilog2()
            ),
        ));
    }

    // §6.2: polls must happen at least once per set period. (The
    // constructor asserts this; validation reports it gracefully.)
    if config.control.poll_period > tw.set_period() {
        findings.push(finding(
            Severity::Error,
            "poll-coverage-gap",
            format!(
                "poll period {} ns exceeds the set period {} ns — history \
                 will be lost between polls",
                config.control.poll_period,
                tw.set_period()
            ),
        ));
    }

    // The longest query interval should fit inside the set period, or
    // victims' intervals will extend past everything any snapshot holds.
    if profile.max_query_interval > tw.set_period() {
        findings.push(finding(
            Severity::Warning,
            "interval-exceeds-set-period",
            format!(
                "diagnosable interval target {} ns exceeds the set period {} \
                 ns; add windows (T) or raise α",
                profile.max_query_interval,
                tw.set_period()
            ),
        ));
    }

    // Queue monitor must cover the buffer, or the deepest levels clamp.
    let qm_coverage = config.qm_entries as u64 * u64::from(config.qm_cells_per_entry);
    if qm_coverage < u64::from(profile.max_depth_cells) {
        findings.push(finding(
            Severity::Warning,
            "queue-monitor-clamps",
            format!(
                "queue monitor covers {} cells but the buffer allows {}; \
                 original-cause entries above the range will clamp",
                qm_coverage, profile.max_depth_cells
            ),
        ));
    }

    // Control-plane read rate (Figure 13's feasibility line).
    let model = ResourceModel::new(tw, config.ports.len() as u32, config.qm_entries as u64);
    let scale = tw.set_period() as f64 / config.control.poll_period.max(1) as f64;
    let required = model.control_mbps * scale;
    if required > READ_LIMIT_MBPS {
        findings.push(finding(
            Severity::Error,
            "read-rate-infeasible",
            format!(
                "polling requires {required:.1} MB/s, above the analysis \
                 program's {READ_LIMIT_MBPS} MB/s ceiling; raise α/T or poll \
                 less often"
            ),
        ));
    }

    // SRAM budget.
    if model.sram_utilization_pct() > 100.0 {
        findings.push(finding(
            Severity::Error,
            "sram-exceeded",
            format!(
                "register allocation needs {:.0}% of the SRAM budget",
                model.sram_utilization_pct()
            ),
        ));
    }

    findings
}

/// Helper for tools: true when no [`Severity::Error`] findings exist.
pub fn is_deployable(findings: &[Finding]) -> bool {
    findings.iter().all(|f| f.severity != Severity::Error)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::TimeWindowConfig;

    fn base_config(tw: TimeWindowConfig) -> PrintQueueConfig {
        PrintQueueConfig::single_port(tw, 64)
    }

    #[test]
    fn paper_configs_validate_cleanly() {
        let profile = DeploymentProfile::paper_testbed();
        for tw in [TimeWindowConfig::UW, TimeWindowConfig::WS_DM] {
            let config = base_config(tw);
            let findings = validate(&config, &profile);
            // WS_DM's m0=10 (1024 ns cells) exceeds the 64 B min-packet
            // delay on a mixed network — the paper sets it per workload
            // (MTU packets). With MTU-only traffic it is clean:
            let mtu_profile = DeploymentProfile {
                min_pkt_bytes: 1500,
                ..profile
            };
            let relevant = if tw.m0 == 10 {
                validate(&config, &mtu_profile)
            } else {
                findings
            };
            assert!(is_deployable(&relevant), "{}: {relevant:?}", tw.label());
        }
    }

    #[test]
    fn oversized_m0_is_flagged() {
        let profile = DeploymentProfile::paper_testbed(); // 64 B → 52 ns
        let tw = TimeWindowConfig::new(10, 1, 12, 4); // 1024 ns cells
        let findings = validate(&base_config(tw), &profile);
        assert!(findings.iter().any(|f| f.code == "m0-too-large"));
        // A warning, not an error: still deployable.
        assert!(is_deployable(&findings));
    }

    #[test]
    fn small_queue_monitor_is_flagged() {
        let profile = DeploymentProfile::paper_testbed();
        let mut config = base_config(TimeWindowConfig::UW);
        config.qm_entries = 1_000; // buffer allows 32768 cells
        let findings = validate(&config, &profile);
        assert!(findings.iter().any(|f| f.code == "queue-monitor-clamps"));
    }

    #[test]
    fn interval_beyond_set_period_is_flagged() {
        let mut profile = DeploymentProfile::paper_testbed();
        let tw = TimeWindowConfig::new(6, 1, 10, 2); // set period ≈ 196 µs
        profile.max_query_interval = 10_000_000; // 10 ms
        let findings = validate(&base_config(tw), &profile);
        assert!(findings
            .iter()
            .any(|f| f.code == "interval-exceeds-set-period"));
    }

    #[test]
    fn aggressive_polling_breaks_the_read_budget() {
        let profile = DeploymentProfile::paper_testbed();
        let tw = TimeWindowConfig::new(6, 1, 12, 4);
        let mut config = base_config(tw);
        // Poll 100x per set period.
        config.control.poll_period = tw.set_period() / 100;
        let findings = validate(&config, &profile);
        assert!(
            findings.iter().any(|f| f.code == "read-rate-infeasible"),
            "{findings:?}"
        );
        assert!(!is_deployable(&findings));
    }
}
