//! The per-switch PrintQueue facade (Figure 3's architecture).
//!
//! [`PrintQueue`] wires the data-plane structures and the control-plane
//! analysis program to the `pq-switch` hook points:
//!
//! * `on_enqueue` / `on_dequeue` feed the queue monitor,
//! * `on_dequeue` feeds the time windows (the egress pipeline runs after
//!   the traffic manager, seeing the Table-1 metadata),
//! * `on_dequeue` also evaluates the data-plane query trigger ("the egress
//!   pipeline can automatically trigger a local query when it detects high
//!   queuing", §3),
//! * `on_tick` runs the analysis program's periodic polling.

use crate::control::{AnalysisProgram, ControlConfig};
use crate::faults::{FaultConfig, RetryPolicy};
use crate::params::TimeWindowConfig;
use crate::snapshot::QueryInterval;
use pq_packet::{Nanos, SimPacket};
use pq_switch::QueueHooks;
use pq_telemetry::Telemetry;
use serde::{Deserialize, Serialize};

/// When should the data plane trigger an on-demand query?
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataPlaneTrigger {
    /// Trigger when a dequeued packet's queueing delay is at least this.
    pub min_deq_timedelta: u32,
    /// Trigger when a dequeued packet's enqueue-time depth was at least
    /// this many cells.
    pub min_enq_qdepth: u32,
    /// Minimum time between triggers. Each on-demand freeze costs a special
    /// register read ("operators should be judicious about initiating
    /// data-plane queries", §7.1); the cooldown models that judiciousness
    /// and lets the windows refill between freezes.
    pub cooldown: Nanos,
}

impl DataPlaneTrigger {
    fn fires(&self, pkt: &SimPacket) -> bool {
        pkt.meta.deq_timedelta >= self.min_deq_timedelta
            || pkt.meta.enq_qdepth >= self.min_enq_qdepth
    }
}

/// Whole-system configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PrintQueueConfig {
    /// Time-window parameters.
    pub time_windows: TimeWindowConfig,
    /// Control-plane polling parameters.
    pub control: ControlConfig,
    /// Ports to activate (§6.1).
    pub ports: Vec<u16>,
    /// Queue-monitor entries per port.
    pub qm_entries: usize,
    /// Buffer cells per queue-monitor entry.
    pub qm_cells_per_entry: u32,
    /// Transmission delay of a minimum-sized packet (`d` of Theorem 3).
    pub min_pkt_tx_delay: Nanos,
    /// Optional data-plane query trigger.
    pub trigger: Option<DataPlaneTrigger>,
    /// Ablation switch: disable the Algorithm-1 passing rule (every
    /// eviction drops). For the design-choice benchmarks only.
    pub ablate_passing: bool,
    /// Egress queues per activated port; each gets its own queue monitor
    /// ("multiple queues are tracked individually", §5). 1 for FIFO ports.
    pub queues_per_port: u8,
    /// Optional control-plane fault injection (see [`crate::faults`]).
    /// `None` (the default) keeps the perfect substrate.
    #[serde(default)]
    pub faults: Option<FaultConfig>,
    /// Retry/backoff policy for failed control-plane reads. Only exercised
    /// under fault injection.
    #[serde(default)]
    pub retry: RetryPolicy,
}

impl PrintQueueConfig {
    /// A reasonable single-port setup for `tw` with polling once per set
    /// period and a 32 Ki-entry queue monitor.
    pub fn single_port(tw: TimeWindowConfig, min_pkt_tx_delay: Nanos) -> PrintQueueConfig {
        PrintQueueConfig {
            control: ControlConfig::per_set_period(&tw, 4096),
            time_windows: tw,
            ports: vec![0],
            qm_entries: 32 * 1024,
            qm_cells_per_entry: 1,
            min_pkt_tx_delay,
            trigger: None,
            ablate_passing: false,
            queues_per_port: 1,
            faults: None,
            retry: RetryPolicy::default(),
        }
    }

    /// Builder-style trigger installation.
    pub fn with_trigger(mut self, trigger: DataPlaneTrigger) -> PrintQueueConfig {
        self.trigger = Some(trigger);
        self
    }

    /// Builder-style fault-injection installation.
    pub fn with_faults(mut self, faults: FaultConfig) -> PrintQueueConfig {
        self.faults = Some(faults);
        self
    }
}

/// The per-switch PrintQueue instance. Attach to a [`pq_switch::Switch`]
/// run as a hook; query through [`PrintQueue::analysis`] /
/// [`PrintQueue::analysis_mut`] afterwards (or during, for staged
/// experiments).
pub struct PrintQueue {
    config: PrintQueueConfig,
    analysis: AnalysisProgram,
    /// Data-plane triggers that fired: (port, interval, time, trigger
    /// packet's enqueue-time depth in cells).
    pub triggers_fired: Vec<(u16, QueryInterval, Nanos, u32)>,
    /// Time of the most recent trigger (cooldown gate).
    last_trigger: Option<Nanos>,
}

impl PrintQueue {
    /// Build from configuration.
    pub fn new(config: PrintQueueConfig) -> PrintQueue {
        let mut analysis = AnalysisProgram::with_options(
            config.time_windows,
            config.control,
            &config.ports,
            config.qm_entries,
            config.qm_cells_per_entry,
            config.min_pkt_tx_delay,
            config.queues_per_port,
            !config.ablate_passing,
        );
        analysis.set_retry_policy(config.retry);
        if let Some(faults) = config.faults.clone() {
            analysis.set_faults(faults);
        }
        PrintQueue {
            config,
            analysis,
            triggers_fired: Vec::new(),
            last_trigger: None,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &PrintQueueConfig {
        &self.config
    }

    /// The analysis program (queries, checkpoints).
    pub fn analysis(&self) -> &AnalysisProgram {
        &self.analysis
    }

    /// Mutable analysis program (query execution filters lazily).
    pub fn analysis_mut(&mut self) -> &mut AnalysisProgram {
        &mut self.analysis
    }

    /// Consume the data-plane wrapper and keep only the analysis program —
    /// the read-only query state a serving layer shares across workers
    /// once a run is finished.
    pub fn into_analysis(self) -> AnalysisProgram {
        self.analysis
    }

    /// Attach a shared telemetry plane (forwarded to the analysis
    /// program). Pair with [`pq_switch::Switch::set_telemetry`] on the
    /// same plane so switch and control-plane series share one namespace.
    pub fn set_telemetry(&mut self, plane: &Telemetry) {
        self.analysis.set_telemetry(plane);
    }

    /// The telemetry plane in use.
    pub fn telemetry(&self) -> &Telemetry {
        self.analysis.telemetry()
    }
}

impl QueueHooks for PrintQueue {
    fn on_enqueue(&mut self, pkt: &SimPacket, port: u16, depth_after: u32, now: Nanos) {
        self.analysis
            .qm_enqueue(port, pkt.meta.queue, pkt.flow, depth_after, now);
    }

    fn on_dequeue(&mut self, pkt: &SimPacket, port: u16, depth_after: u32, now: Nanos) {
        self.analysis
            .qm_dequeue(port, pkt.meta.queue, pkt.flow, depth_after, now);
        // Time windows index on the dequeue timestamp (§4.2).
        let deq_ts = pkt.meta.deq_timestamp();
        debug_assert_eq!(deq_ts, now);
        self.analysis.record_dequeue(port, pkt.flow, deq_ts);
        if let Some(trigger) = self.config.trigger {
            let cooled = self
                .last_trigger
                .is_none_or(|t| now >= t + trigger.cooldown);
            if cooled && trigger.fires(pkt) && self.analysis.is_active(port) {
                let interval = QueryInterval::new(pkt.meta.enq_timestamp, deq_ts);
                if self.analysis.dp_query(port, interval, now) {
                    self.triggers_fired
                        .push((port, interval, now, pkt.meta.enq_qdepth));
                    self.last_trigger = Some(now);
                }
            }
        }
    }

    fn on_tick(&mut self, now: Nanos) {
        self.analysis.on_tick(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pq_packet::{FlowId, NanosExt};
    use pq_switch::{Arrival, Switch, SwitchConfig, TelemetrySink};

    fn arrivals(n: u64, len: u32, gap: Nanos) -> Vec<Arrival> {
        (0..n)
            .map(|i| Arrival::new(SimPacket::new(FlowId((i % 3) as u32), len, i * gap), 0))
            .collect()
    }

    fn pq(tw: TimeWindowConfig) -> PrintQueue {
        PrintQueue::new(PrintQueueConfig::single_port(tw, 64))
    }

    #[test]
    fn end_to_end_records_and_polls_exactly_at_line_rate() {
        let tw = TimeWindowConfig::new(6, 1, 8, 3);
        // 80 B packets at 10 Gbps: one per 64 ns = one per window-0 cell
        // period — §4.1's no-collision regime, so window 0 holds every
        // packet and the query is exact.
        let mut printqueue = pq(tw);
        let mut sink = TelemetrySink::new();
        let mut sw = Switch::new(SwitchConfig::single_port(10.0, 10_000));
        {
            let mut hooks: Vec<&mut dyn QueueHooks> = vec![&mut printqueue, &mut sink];
            sw.run(arrivals(200, 80, 64), &mut hooks, tw.set_period());
        }
        assert_eq!(sink.records.len(), 200);
        let cps = printqueue.analysis().checkpoints(0);
        assert!(!cps.is_empty(), "periodic polling produced no checkpoints");
        let last_deq = sink
            .records
            .iter()
            .map(|r| r.deq_timestamp())
            .max()
            .unwrap();
        let est = printqueue
            .analysis_mut()
            .query_time_windows(0, QueryInterval::new(0, last_deq));
        assert_eq!(est.counts.len(), 3, "three flows must be seen");
        // The final packet's cell extends past its dequeue instant and is
        // prorated by overlap, so the total can fall short by less than one
        // packet; everything else is exact.
        let total = est.total();
        assert!(
            (199.0..=200.0).contains(&total),
            "uncompressed window 0 must be near-exact, got {total}"
        );
    }

    #[test]
    fn trigger_fires_on_high_delay() {
        let tw = TimeWindowConfig::new(6, 1, 8, 3);
        let mut printqueue = PrintQueue::new(PrintQueueConfig::single_port(tw, 64).with_trigger(
            DataPlaneTrigger {
                min_deq_timedelta: 50_000,
                min_enq_qdepth: u32::MAX,
                cooldown: 0,
            },
        ));
        let mut sw = Switch::new(SwitchConfig::single_port(10.0, 100_000));
        {
            let mut hooks: Vec<&mut dyn QueueHooks> = vec![&mut printqueue];
            sw.run(arrivals(400, 1500, 600), &mut hooks, tw.set_period());
        }
        // Delay grows by 600 ns per packet; packets past ~#84 exceed 50 µs.
        assert!(
            !printqueue.triggers_fired.is_empty(),
            "no data-plane trigger fired"
        );
        let est = printqueue.analysis_mut().query_special(0, None);
        assert!(est.is_some(), "special checkpoint not queryable");
    }

    #[test]
    fn queue_monitor_sees_buildup() {
        let tw = TimeWindowConfig::new(6, 1, 8, 3);
        // Poll every 50 µs so a checkpoint lands mid-drain (the burst is
        // fully drained by ~120 µs; the default per-set-period poll of
        // ~115 µs would only see an empty queue).
        let mut config = PrintQueueConfig::single_port(tw, 64);
        config.control.poll_period = 50u64.micros();
        let mut printqueue = PrintQueue::new(config);
        let mut sw = Switch::new(SwitchConfig::single_port(10.0, 100_000));
        {
            let mut hooks: Vec<&mut dyn QueueHooks> = vec![&mut printqueue];
            // A burst that builds a deep queue quickly (100 MTU packets in
            // 1 µs; drain takes 1.2 ns/B × 150 KB ≈ 120 µs).
            sw.run(arrivals(100, 1500, 10), &mut hooks, 50u64.micros());
        }
        let qm = printqueue
            .analysis()
            .query_queue_monitor(0, 50u64.micros())
            .expect("checkpoint exists");
        let culprits = qm.original_culprits();
        // At 50 µs roughly 58 packets (× 19 cells) are still queued; the
        // buildup chain below that level must survive.
        assert!(
            culprits.len() > 30,
            "expected a deep original-cause chain, got {}",
            culprits.len()
        );
    }
}
