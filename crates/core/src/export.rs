//! Checkpoint export: persist the analysis program's collected state for
//! offline analysis.
//!
//! The paper's artifact ships "experiment data collected from our testing
//! and script to reproduce the paper results"; the analogous capability
//! here is serializing an [`AnalysisProgram`]'s checkpoint store to JSON
//! (human-inspectable, diffable) so a long run's registers can be archived
//! and re-queried later without re-simulating.

use crate::control::{AnalysisProgram, Checkpoint, CoverageGap};
use crate::metrics::ControlHealth;
use crate::params::TimeWindowConfig;
use serde::{Deserialize, Serialize};
use std::io::{self, Read, Write};

/// A serializable archive of one port's checkpoints.
#[derive(Debug, Serialize, Deserialize)]
pub struct CheckpointArchive {
    /// Format version.
    pub version: u32,
    /// The time-window configuration the checkpoints were captured under.
    pub tw_config: TimeWindowConfig,
    /// The port the checkpoints belong to.
    pub port: u16,
    /// The checkpoints, oldest first.
    pub checkpoints: Vec<Checkpoint>,
    /// Coverage gaps recorded for the port (empty for archives captured
    /// before fault tracking, via the serde default).
    #[serde(default)]
    pub gaps: Vec<CoverageGap>,
    /// Control-plane health counters at capture time (all-zero for old
    /// archives, via the serde default).
    #[serde(default)]
    pub health: ControlHealth,
}

impl CheckpointArchive {
    /// Capture an archive from a live analysis program.
    pub fn capture(analysis: &AnalysisProgram, port: u16) -> CheckpointArchive {
        CheckpointArchive {
            version: 1,
            tw_config: *analysis.tw_config(),
            port,
            checkpoints: analysis.checkpoints(port).to_vec(),
            gaps: analysis.coverage_gaps(port).to_vec(),
            health: analysis.health(),
        }
    }

    /// Serialize as JSON.
    pub fn write_json<W: Write>(&self, w: W) -> io::Result<()> {
        serde_json::to_writer(w, self).map_err(io::Error::other)
    }

    /// Deserialize from JSON, validating the version.
    pub fn read_json<R: Read>(r: R) -> io::Result<CheckpointArchive> {
        let archive: CheckpointArchive = serde_json::from_reader(r).map_err(io::Error::other)?;
        if archive.version != 1 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "unsupported archive version",
            ));
        }
        Ok(archive)
    }

    /// Re-run a time-window query against the archived checkpoints, exactly
    /// as the live analysis program would (§6.3 semantics, including the
    /// per-checkpoint slice clamping).
    pub fn query(
        &self,
        interval: crate::snapshot::QueryInterval,
        coeffs: &crate::coefficient::Coefficients,
    ) -> crate::snapshot::FlowEstimates {
        self.query_result(interval, coeffs).estimates
    }

    /// [`CheckpointArchive::query`] with the live program's coverage
    /// annotations: recorded gaps overlapping the interval, plus the
    /// open-ended gap when the interval reaches more than `t_set` past the
    /// last archived periodic checkpoint.
    pub fn query_result(
        &self,
        interval: crate::snapshot::QueryInterval,
        coeffs: &crate::coefficient::Coefficients,
    ) -> crate::control::QueryResult {
        let mut result = crate::snapshot::FlowEstimates::default();
        let mut prev_frozen_at: Option<u64> = None;
        for cp in &self.checkpoints {
            let slice_from = interval.from.max(prev_frozen_at.map_or(0, |t| t + 1));
            let slice_to = interval.to.min(cp.frozen_at);
            if !cp.on_demand {
                prev_frozen_at = Some(cp.frozen_at);
            }
            if slice_from > slice_to || cp.on_demand {
                continue;
            }
            let est = cp.windows.query(
                crate::snapshot::QueryInterval::new(slice_from, slice_to),
                coeffs,
            );
            result.merge(&est);
        }
        let mut gaps: Vec<CoverageGap> = self
            .gaps
            .iter()
            .filter(|g| g.overlaps(interval))
            .copied()
            .collect();
        let t_set = self.tw_config.set_period();
        let last = prev_frozen_at.unwrap_or(0);
        if interval.to > last.saturating_add(t_set) {
            gaps.push(CoverageGap {
                from: last,
                to: interval.to,
            });
        }
        crate::control::QueryResult {
            degraded: !gaps.is_empty(),
            estimates: result,
            gaps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coefficient::Coefficients;
    use crate::control::ControlConfig;
    use crate::snapshot::QueryInterval;
    use pq_packet::FlowId;

    fn program_with_data() -> AnalysisProgram {
        let tw = TimeWindowConfig::new(0, 1, 6, 2);
        let mut ap = AnalysisProgram::new(
            tw,
            ControlConfig {
                poll_period: 64,
                max_snapshots: 16,
            },
            &[0],
            32,
            1,
            1,
        );
        for t in 0..48u64 {
            ap.record_dequeue(0, FlowId((t % 3) as u32), t);
        }
        ap.qm_enqueue(0, 0, FlowId(7), 5, 10);
        ap.on_tick(64);
        ap
    }

    #[test]
    fn archive_roundtrips_through_json() {
        let ap = program_with_data();
        let archive = CheckpointArchive::capture(&ap, 0);
        let mut buf = Vec::new();
        archive.write_json(&mut buf).unwrap();
        let back = CheckpointArchive::read_json(buf.as_slice()).unwrap();
        assert_eq!(back.checkpoints.len(), archive.checkpoints.len());
        assert_eq!(back.tw_config, archive.tw_config);
        assert_eq!(
            back.checkpoints[0].frozen_at,
            archive.checkpoints[0].frozen_at
        );
    }

    #[test]
    fn archived_queries_match_live_queries() {
        let ap = program_with_data();
        let interval = QueryInterval::new(0, 47);
        let live = ap.query_time_windows(0, interval);

        let archive = CheckpointArchive::capture(&ap, 0);
        let mut buf = Vec::new();
        archive.write_json(&mut buf).unwrap();
        let back = CheckpointArchive::read_json(buf.as_slice()).unwrap();
        let coeffs = Coefficients::compute(&back.tw_config, 1);
        let offline = back.query(interval, &coeffs);

        assert_eq!(live.counts.len(), offline.counts.len());
        for (flow, n) in &live.counts {
            assert!((offline.counts[flow] - n).abs() < 1e-9);
        }
    }

    #[test]
    fn queue_monitor_state_survives_archiving() {
        let ap = program_with_data();
        let archive = CheckpointArchive::capture(&ap, 0);
        let mut buf = Vec::new();
        archive.write_json(&mut buf).unwrap();
        let back = CheckpointArchive::read_json(buf.as_slice()).unwrap();
        let culprits = back.checkpoints[0]
            .queue_monitor()
            .expect("archived checkpoint has a monitor")
            .original_culprits();
        assert_eq!(culprits.len(), 1);
        assert_eq!(culprits[0].flow, FlowId(7));
    }

    #[test]
    fn version_mismatch_rejected() {
        let ap = program_with_data();
        let mut archive = CheckpointArchive::capture(&ap, 0);
        archive.version = 99;
        let mut buf = Vec::new();
        archive.write_json(&mut buf).unwrap();
        assert!(CheckpointArchive::read_json(buf.as_slice()).is_err());
    }
}
