//! Ground-truth culprit taxonomy (§2 of the paper), computed exactly from
//! telemetry records.
//!
//! For a victim packet enqueued at `t1` and dequeued at `t2`:
//!
//! * **direct culprits** — packets dequeued during `[t1, t2]`: the switch
//!   chose to send them instead of the victim (scheduling-policy agnostic);
//! * **indirect culprits** — packets dequeued before `t1` while the queue
//!   was continuously non-empty back from `t1`: the rest of the congestion
//!   regime;
//! * **original culprits** — the subset of packets whose arrival raised the
//!   queue, level by level, to its height at `t1` and whose contribution
//!   was never drained away — the monotone chain the queue monitor tracks.
//!
//! These are the evaluation's reference values ("we examine the logged
//! telemetry headers to compute the ground truth", §7.1).

use pq_packet::{FlowId, Nanos};
use pq_switch::TelemetryRecord;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Per-flow ground-truth packet counts for one victim's congestion regime.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CulpritReport {
    /// Packets dequeued within the victim's queueing interval, per flow.
    pub direct: HashMap<FlowId, u64>,
    /// Packets of the congestion regime dequeued before the victim
    /// enqueued, per flow.
    pub indirect: HashMap<FlowId, u64>,
    /// The original causes of the congestion, per flow.
    pub original: HashMap<FlowId, u64>,
    /// When the congestion regime began (first instant the queue became
    /// non-empty before the victim's enqueue).
    pub regime_start: Nanos,
}

impl CulpritReport {
    /// Total direct culprit packets.
    pub fn direct_total(&self) -> u64 {
        self.direct.values().sum()
    }

    /// Total indirect culprit packets.
    pub fn indirect_total(&self) -> u64 {
        self.indirect.values().sum()
    }

    /// Total original-cause packets.
    pub fn original_total(&self) -> u64 {
        self.original.values().sum()
    }
}

/// Ground-truth oracle for one egress port, built from its telemetry
/// records (the simulator's stand-in for the paper's DPDK receiver logs).
#[derive(Debug)]
pub struct GroundTruth {
    /// Records sorted by dequeue timestamp.
    by_deq: Vec<TelemetryRecord>,
    /// Queue events sorted by time: (time, signed cell delta, record index
    /// into `by_deq`, is_enqueue).
    events: Vec<QueueEventRec>,
    /// Buffer cell size, to convert packet lengths to cells.
    cell_bytes: u32,
}

#[derive(Debug, Clone, Copy)]
struct QueueEventRec {
    at: Nanos,
    /// +cells on enqueue, −cells on dequeue.
    delta: i64,
    /// Index into `by_deq`.
    record: usize,
    is_enqueue: bool,
}

impl GroundTruth {
    /// Build the oracle from one port's telemetry records.
    pub fn new(records: &[TelemetryRecord], cell_bytes: u32) -> GroundTruth {
        let mut by_deq: Vec<TelemetryRecord> = records.to_vec();
        by_deq.sort_by_key(|r| (r.deq_timestamp(), r.seqno));
        let mut events = Vec::with_capacity(by_deq.len() * 2);
        for (i, r) in by_deq.iter().enumerate() {
            let cells = i64::from(r.len.div_ceil(cell_bytes));
            events.push(QueueEventRec {
                at: r.meta.enq_timestamp,
                delta: cells,
                record: i,
                is_enqueue: true,
            });
            events.push(QueueEventRec {
                at: r.deq_timestamp(),
                delta: -cells,
                record: i,
                is_enqueue: false,
            });
        }
        // Ordering at identical instants mirrors the hardware: departures
        // of *earlier* packets free their slots before a new arrival is
        // admitted — but a packet that sails through an idle port both
        // enqueues and dequeues at the same nanosecond, and its own
        // enqueue must come first. Rank: dequeues of earlier enqueues (0),
        // then enqueues (1), then zero-delay dequeues (2).
        events.sort_by_key(|e| {
            let rank = if e.is_enqueue {
                1u8
            } else if by_deq[e.record].meta.enq_timestamp < e.at {
                0
            } else {
                2
            };
            (e.at, rank, e.record)
        });
        GroundTruth {
            by_deq,
            events,
            cell_bytes,
        }
    }

    /// Records dequeued in `[from, to]` (the direct-culprit window),
    /// excluding the victim itself by sequence number.
    pub fn direct_culprits(
        &self,
        from: Nanos,
        to: Nanos,
        victim_seqno: u64,
    ) -> HashMap<FlowId, u64> {
        let mut counts = HashMap::new();
        for r in &self.by_deq {
            let d = r.deq_timestamp();
            if d > to {
                break;
            }
            if d >= from && r.seqno != victim_seqno {
                *counts.entry(r.flow).or_insert(0) += 1;
            }
        }
        counts
    }

    /// The start of the congestion regime containing time `at`: the latest
    /// instant ≤ `at` when the queue was empty (0 if it never was).
    pub fn regime_start(&self, at: Nanos) -> Nanos {
        let mut depth: i64 = 0;
        let mut start: Nanos = 0;
        for e in &self.events {
            if e.at > at {
                break;
            }
            depth += e.delta;
            debug_assert!(depth >= 0, "ground-truth depth went negative");
            if depth == 0 {
                start = e.at;
            }
        }
        start
    }

    /// Full per-victim report: direct, indirect, and original culprits.
    ///
    /// `victim` must be one of the port's records.
    pub fn report(&self, victim: &TelemetryRecord) -> CulpritReport {
        let t1 = victim.meta.enq_timestamp;
        let t2 = victim.deq_timestamp();
        let regime_start = self.regime_start(t1);
        let direct = self.direct_culprits(t1, t2, victim.seqno);

        // Indirect (§2): dequeue time t2' before the victim's enqueue t1
        // with the queue non-empty over [t2', t1]. A packet dequeuing at
        // the exact instant the queue last hit empty is *before* the
        // regime, hence strictly-greater — unless the regime reaches back
        // to time zero (the queue was never empty).
        let mut indirect = HashMap::new();
        for r in &self.by_deq {
            let d = r.deq_timestamp();
            if d >= t1 {
                break;
            }
            let in_regime = d > regime_start || regime_start == 0;
            if in_regime && r.seqno != victim.seqno {
                *indirect.entry(r.flow).or_insert(0) += 1;
            }
        }

        // Original: replay events up to t1 maintaining the monotone chain
        // of arrivals that raised the queue to its level at t1. This is the
        // idealized (event-granular) version of what the queue monitor
        // computes: a stack of (level-after-enqueue, record); dequeues pop
        // every entry whose level exceeds the new depth.
        let mut stack: Vec<(i64, usize)> = Vec::new();
        let mut depth: i64 = 0;
        for e in &self.events {
            if e.at > t1 {
                break;
            }
            // Do not let the victim's own enqueue implicate itself.
            if e.is_enqueue && self.by_deq[e.record].seqno == victim.seqno {
                depth += e.delta;
                continue;
            }
            depth += e.delta;
            if e.is_enqueue {
                stack.push((depth, e.record));
            } else {
                while matches!(stack.last(), Some((lvl, _)) if *lvl > depth) {
                    stack.pop();
                }
            }
        }
        let mut original = HashMap::new();
        for (_, rec) in stack {
            *original.entry(self.by_deq[rec].flow).or_insert(0) += 1;
        }

        CulpritReport {
            direct,
            indirect,
            original,
            regime_start,
        }
    }

    /// Queue depth (cells) immediately after time `at`.
    pub fn depth_at(&self, at: Nanos) -> u32 {
        let mut depth: i64 = 0;
        for e in &self.events {
            if e.at > at {
                break;
            }
            depth += e.delta;
        }
        depth.max(0) as u32
    }

    /// Depth time series sampled every `step` ns over `[from, to]` — used
    /// to regenerate Figure 16(a).
    pub fn depth_series(&self, from: Nanos, to: Nanos, step: Nanos) -> Vec<(Nanos, u32)> {
        assert!(step > 0);
        let mut out = Vec::new();
        let mut depth: i64 = 0;
        let mut next_sample = from;
        for e in &self.events {
            while next_sample <= to && e.at > next_sample {
                out.push((next_sample, depth.max(0) as u32));
                next_sample += step;
            }
            if e.at > to {
                break;
            }
            depth += e.delta;
        }
        while next_sample <= to {
            out.push((next_sample, depth.max(0) as u32));
            next_sample += step;
        }
        out
    }

    /// The records, sorted by dequeue time.
    pub fn records(&self) -> &[TelemetryRecord] {
        &self.by_deq
    }

    /// Buffer cell size used for depth accounting.
    pub fn cell_bytes(&self) -> u32 {
        self.cell_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pq_packet::PacketMeta;

    /// Build a record with 1-cell packets for easy depth math.
    fn rec(seqno: u64, flow: u32, enq: Nanos, deq: Nanos) -> TelemetryRecord {
        TelemetryRecord {
            flow: FlowId(flow),
            port: 0,
            len: 80,
            seqno,
            meta: PacketMeta {
                egress_port: 0,
                enq_timestamp: enq,
                deq_timedelta: (deq - enq) as u32,
                enq_qdepth: 0,
                queue: 0,
            },
        }
    }

    /// Three packets back-to-back: A[0,10), B[2,20), victim V[5,30).
    fn simple() -> Vec<TelemetryRecord> {
        vec![rec(0, 1, 0, 10), rec(1, 2, 2, 20), rec(2, 9, 5, 30)]
    }

    #[test]
    fn direct_culprits_are_interval_dequeues() {
        let gt = GroundTruth::new(&simple(), 80);
        let victim = rec(2, 9, 5, 30);
        let report = gt.report(&victim);
        // A dequeued at 10 and B at 20, both within [5, 30].
        assert_eq!(report.direct[&FlowId(1)], 1);
        assert_eq!(report.direct[&FlowId(2)], 1);
        assert_eq!(report.direct_total(), 2);
    }

    #[test]
    fn victim_not_its_own_culprit() {
        let gt = GroundTruth::new(&simple(), 80);
        let victim = rec(2, 9, 5, 30);
        let report = gt.report(&victim);
        assert!(!report.direct.contains_key(&FlowId(9)));
        assert!(!report.original.contains_key(&FlowId(9)));
    }

    #[test]
    fn regime_start_found_at_empty_queue() {
        // Packet at [0,10); queue empty in (10, 20); packet at [20, 30);
        // victim at [22, 40).
        let records = vec![rec(0, 1, 0, 10), rec(1, 2, 20, 30), rec(2, 9, 22, 40)];
        let gt = GroundTruth::new(&records, 80);
        assert_eq!(gt.regime_start(22), 10);
        let report = gt.report(&rec(2, 9, 22, 40));
        // Flow 1's packet left before the regime started → not indirect.
        assert!(!report.indirect.contains_key(&FlowId(1)));
        assert_eq!(report.regime_start, 10);
    }

    #[test]
    fn indirect_culprits_span_regime() {
        // Continuous occupancy: A [0,10), B [1, 20), victim [15, 30).
        // B dequeues at 20 ≥ t1=15 → direct. A dequeues at 10 < 15 with
        // queue non-empty over [10, 15] (B present) → indirect.
        let records = vec![rec(0, 1, 0, 10), rec(1, 2, 1, 20), rec(2, 9, 15, 30)];
        let gt = GroundTruth::new(&records, 80);
        let report = gt.report(&rec(2, 9, 15, 30));
        assert_eq!(report.indirect[&FlowId(1)], 1);
        assert_eq!(report.direct[&FlowId(2)], 1);
    }

    #[test]
    fn original_culprits_form_monotone_chain() {
        // Build: A enq 0 (depth 1), B enq 1 (depth 2), C enq 2 (depth 3);
        // A deq at 10 (depth 2), D enq 11 (depth 3); victim enq 12.
        // At t1=12 depth is 3 (B, C, D queued). The monotone chain: B at
        // level... after A's dequeue the stack pops entries with level > 2:
        // C (level 3) is popped, leaving A(1), B(2) — but A was dequeued...
        // The stack tracks *arrival* events that raised depth; A's own
        // arrival (level 1) survives only until depth drops below 1.
        // Here depth after A's dequeue is 2 ≥ 1, so A's entry survives —
        // matching the paper: the queue has never drained below 1 since A
        // arrived, so the regime still stands on A's shoulders... but A
        // has left; its *slot* was refilled by later arrivals. The queue
        // monitor's register would have been overwritten at level 1 only
        // if some arrival raised depth to exactly 1 again. Ground truth
        // mirrors the stack semantics.
        let records = vec![
            rec(0, 1, 0, 10),  // A
            rec(1, 2, 1, 20),  // B
            rec(2, 3, 2, 30),  // C
            rec(3, 4, 11, 40), // D
            rec(4, 9, 12, 50), // victim
        ];
        let gt = GroundTruth::new(&records, 80);
        let report = gt.report(&rec(4, 9, 12, 50));
        // Stack after replay to t=12: A(1), B(2), D(3). C was popped when
        // depth fell to 2 at A's dequeue; D re-raised to 3.
        assert_eq!(report.original[&FlowId(1)], 1);
        assert_eq!(report.original[&FlowId(2)], 1);
        assert_eq!(report.original[&FlowId(4)], 1);
        assert!(!report.original.contains_key(&FlowId(3)));
        assert_eq!(report.original_total(), 3);
    }

    #[test]
    fn depth_series_tracks_events() {
        let records = vec![rec(0, 1, 0, 10), rec(1, 2, 2, 20)];
        let gt = GroundTruth::new(&records, 80);
        let series = gt.depth_series(0, 25, 5);
        assert_eq!(series[0], (0, 1)); // A in queue
        assert_eq!(series[1], (5, 2)); // A + B
        assert_eq!(series[2], (10, 1)); // A left
        assert_eq!(series[4], (20, 0)); // both gone
    }

    #[test]
    fn depth_at_counts_cells_not_packets() {
        // A 800-byte packet at 80 B cells = 10 cells.
        let mut r = rec(0, 1, 0, 10);
        r.len = 800;
        let gt = GroundTruth::new(&[r], 80);
        assert_eq!(gt.depth_at(5), 10);
        assert_eq!(gt.depth_at(15), 0);
    }
}
