//! High-level diagnosis: one call from victim to a full congestion-regime
//! report.
//!
//! §3 of the paper positions PrintQueue "as a general framework for
//! higher-level queue diagnosis tasks" — operators trigger a query on a
//! complaint, the data plane triggers one on high queueing. This module is
//! that layer: given a victim's enqueue/dequeue timestamps, it runs all
//! three culprit queries (direct and indirect from the time windows,
//! original from the queue monitor), ranks the flows, and classifies the
//! congestion pattern heuristically (heavy hitter, synchronized burst,
//! many-flow convergence) the way §2's motivating examples do.

use crate::control::{AnalysisProgram, CoverageGap};
use crate::snapshot::{FlowEstimates, QueryInterval};
use pq_packet::{FlowId, Nanos};
use serde::{Deserialize, Serialize};

/// A coarse classification of the congestion pattern, in the spirit of the
/// §2 examples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CongestionPattern {
    /// One or two flows dominate the direct culprits — a heavy hitter (or
    /// a priority class) is crowding the victim out.
    HeavyHitter,
    /// Many flows with similar small contributions — convergence of a
    /// synchronized application (incast-like).
    Synchronized,
    /// A broad mix with no dominant structure.
    Mixed,
    /// Too little data to classify.
    Unknown,
}

/// The full report for one victim.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Diagnosis {
    /// The victim's queueing interval.
    pub interval: QueryInterval,
    /// Per-flow direct-culprit estimates (dequeued during the wait).
    pub direct: FlowEstimates,
    /// Per-flow indirect-culprit estimates (the earlier congestion regime),
    /// when a regime extent was supplied.
    pub indirect: Option<FlowEstimates>,
    /// Per-flow original-cause counts from the queue monitor.
    pub original: Vec<(FlowId, u64)>,
    /// Heuristic pattern classification of the direct culprits.
    pub pattern: CongestionPattern,
    /// True when any contributing query was answered over a control-plane
    /// coverage gap: the report is best-effort, not authoritative.
    #[serde(default)]
    pub degraded: bool,
    /// The coverage gaps that intersected the queries, if any.
    #[serde(default)]
    pub gaps: Vec<CoverageGap>,
}

impl Diagnosis {
    /// The top `n` direct culprits.
    pub fn top_direct(&self, n: usize) -> Vec<(FlowId, f64)> {
        self.direct.ranked().into_iter().take(n).collect()
    }

    /// Flows implicated as original causes but absent (or negligible, under
    /// one estimated packet) among the direct culprits — the "burst left
    /// long ago" signature of the §7.2 case study.
    pub fn historical_only(&self) -> Vec<FlowId> {
        self.original
            .iter()
            .filter(|(flow, _)| self.direct.counts.get(flow).copied().unwrap_or(0.0) < 1.0)
            .map(|(flow, _)| *flow)
            .collect()
    }
}

/// Classify the direct-culprit distribution.
fn classify(direct: &FlowEstimates) -> CongestionPattern {
    let total = direct.total();
    if total < 2.0 || direct.counts.is_empty() {
        return CongestionPattern::Unknown;
    }
    if direct.counts.len() == 1 {
        // A single flow occupying the whole interval is the degenerate
        // heavy hitter.
        return CongestionPattern::HeavyHitter;
    }
    let ranked = direct.ranked();
    let top_share = ranked[0].1 / total;
    let top2_share = (ranked[0].1 + ranked.get(1).map_or(0.0, |r| r.1)) / total;
    if top_share > 0.5 || top2_share > 0.7 {
        CongestionPattern::HeavyHitter
    } else if ranked.len() >= 8 {
        // Many flows each contributing a small, similar share: compare the
        // largest against the median contributor.
        let median = ranked[ranked.len() / 2].1;
        if median > 0.0 && ranked[0].1 / median < 4.0 {
            CongestionPattern::Synchronized
        } else {
            CongestionPattern::Mixed
        }
    } else {
        CongestionPattern::Mixed
    }
}

/// Run the full diagnosis for a victim on `port`.
///
/// `regime_start` (if known, e.g. from a depth series or the ground-truth
/// oracle in experiments) extends the report with indirect culprits over
/// `[regime_start, enqueue)`.
pub fn diagnose(
    analysis: &AnalysisProgram,
    port: u16,
    enq_timestamp: Nanos,
    deq_timestamp: Nanos,
    regime_start: Option<Nanos>,
) -> Diagnosis {
    let interval = QueryInterval::new(enq_timestamp, deq_timestamp);
    let direct_answer = analysis.query_time_windows(port, interval);
    let indirect_answer = regime_start.map(|start| {
        analysis.query_time_windows(
            port,
            QueryInterval::new(start, enq_timestamp.saturating_sub(1)),
        )
    });
    let mut degraded = direct_answer.degraded;
    let mut gaps = direct_answer.gaps.clone();
    if let Some(ind) = &indirect_answer {
        degraded |= ind.degraded;
        for g in &ind.gaps {
            if !gaps.contains(g) {
                gaps.push(*g);
            }
        }
    }
    let original = analysis
        .query_queue_monitor(port, deq_timestamp)
        .map(|answer| {
            degraded |= answer.degraded;
            for g in &answer.gaps {
                if !gaps.contains(g) {
                    gaps.push(*g);
                }
            }
            let mut counts: Vec<(FlowId, u64)> = answer.culprit_counts().into_iter().collect();
            counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            counts
        })
        .unwrap_or_default();
    let direct = direct_answer.estimates;
    let pattern = classify(&direct);
    Diagnosis {
        interval,
        direct,
        indirect: indirect_answer.map(|q| q.estimates),
        original,
        pattern,
        degraded,
        gaps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn estimates(pairs: &[(u32, f64)]) -> FlowEstimates {
        FlowEstimates {
            counts: pairs
                .iter()
                .map(|(f, n)| (FlowId(*f), *n))
                .collect::<HashMap<_, _>>(),
        }
    }

    #[test]
    fn dominant_flow_classifies_heavy_hitter() {
        let est = estimates(&[(1, 90.0), (2, 5.0), (3, 5.0)]);
        assert_eq!(classify(&est), CongestionPattern::HeavyHitter);
    }

    #[test]
    fn many_equal_flows_classify_synchronized() {
        let pairs: Vec<(u32, f64)> = (0..20).map(|f| (f, 10.0)).collect();
        let est = estimates(&pairs);
        assert_eq!(classify(&est), CongestionPattern::Synchronized);
    }

    #[test]
    fn skewed_multiflow_classifies_mixed() {
        let mut pairs: Vec<(u32, f64)> = (0..12).map(|f| (f, 2.0)).collect();
        pairs.push((99, 12.0)); // 12/36 = 33% top share, 10x median
        let est = estimates(&pairs);
        assert_eq!(classify(&est), CongestionPattern::Mixed);
    }

    #[test]
    fn tiny_evidence_is_unknown() {
        assert_eq!(
            classify(&estimates(&[(1, 0.5)])),
            CongestionPattern::Unknown
        );
        assert_eq!(classify(&estimates(&[])), CongestionPattern::Unknown);
    }

    #[test]
    fn historical_only_excludes_active_flows() {
        let diag = Diagnosis {
            interval: QueryInterval::new(0, 10),
            direct: estimates(&[(1, 50.0), (2, 0.2)]),
            indirect: None,
            original: vec![(FlowId(1), 10), (FlowId(2), 8), (FlowId(3), 6)],
            pattern: CongestionPattern::HeavyHitter,
            degraded: false,
            gaps: Vec::new(),
        };
        // Flow 1 is active (direct ≥ 1); flows 2 and 3 are historical-only.
        assert_eq!(diag.historical_only(), vec![FlowId(2), FlowId(3)]);
    }

    #[test]
    fn end_to_end_diagnose_smoke() {
        use crate::params::TimeWindowConfig;
        use crate::printqueue::{PrintQueue, PrintQueueConfig};
        use pq_packet::SimPacket;
        use pq_switch::{Arrival, QueueHooks, Switch, SwitchConfig};

        let tw = TimeWindowConfig::new(6, 1, 8, 3);
        let mut config = PrintQueueConfig::single_port(tw, 1200);
        config.control.poll_period = 100_000;
        let mut pq = PrintQueue::new(config);
        let mut sw = Switch::new(SwitchConfig::single_port(10.0, 32_768));
        // One heavy flow crowding out the rest.
        let arrivals: Vec<Arrival> = (0..500u64)
            .map(|i| {
                let flow = if i % 10 == 0 { 2 } else { 1 };
                Arrival::new(SimPacket::new(FlowId(flow), 1500, i * 700), 0)
            })
            .collect();
        {
            let mut hooks: Vec<&mut dyn QueueHooks> = vec![&mut pq];
            sw.run(arrivals, &mut hooks, 100_000);
        }
        // Diagnose a synthetic victim window late in the run.
        let diag = diagnose(pq.analysis(), 0, 250_000, 300_000, Some(0));
        assert!(diag.direct.total() > 10.0);
        assert_eq!(diag.pattern, CongestionPattern::HeavyHitter);
        assert!(diag.indirect.is_some());
        assert!(!diag.original.is_empty());
        assert_eq!(diag.top_direct(1)[0].0, FlowId(1));
    }
}
