//! The physical register-index layout of Figure 8 and §6.1.
//!
//! PrintQueue allocates each structure as one large register array shared by
//! all activated ports. The index decomposes, high bit to low bit, as:
//!
//! ```text
//!   [ dp-query flip : 1 ][ periodic flip : 1 ][ port prefix : q ][ cell : k ]
//! ```
//!
//! * the **highest** bit selects the special (data-plane query) copy;
//! * the **second-highest** bit alternates between the two periodic copies
//!   every `t_set` (the Mantis freeze);
//! * the next `q = log2(r(#ports))` bits select the port's partition — the
//!   §6.1 ingress flow table matches on the egress port and returns this
//!   prefix;
//! * the low `k` bits address the cell within the partition.
//!
//! The simulator's data path keeps logical per-port structures for clarity
//! (see [`crate::control`]), but this module computes the physical mapping
//! so the SRAM accounting, the port-gating table, and any hardware
//! translation stay faithful — and it is property-tested to be a bijection.

use crate::resources::r_ports;
use serde::{Deserialize, Serialize};

/// The §6.1 ingress gate: maps an egress port to its register prefix, or
/// refuses (PrintQueue disabled on that port).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PortGateTable {
    /// Activated ports in prefix order: `prefix = position in this list`.
    ports: Vec<u16>,
    /// `q`: number of prefix bits (`log2(r(#ports))`).
    q: u8,
}

impl PortGateTable {
    /// Build from the activated port list. Prefixes are assigned in list
    /// order; the partition count rounds up to a power of two (`r(#ports)`).
    pub fn new(ports: &[u16]) -> PortGateTable {
        assert!(!ports.is_empty(), "activate at least one port");
        let r = r_ports(ports.len() as u32);
        PortGateTable {
            ports: ports.to_vec(),
            q: r.trailing_zeros() as u8,
        }
    }

    /// Number of prefix bits.
    pub fn q(&self) -> u8 {
        self.q
    }

    /// Partition count (`r(#ports)`).
    pub fn partitions(&self) -> u32 {
        1 << self.q
    }

    /// The flow-table match: egress port → register prefix. `None` when the
    /// port is not activated ("If no matching is found, the packet is
    /// ignored", §6.1).
    pub fn prefix_of(&self, egress_port: u16) -> Option<u32> {
        self.ports
            .iter()
            .position(|p| *p == egress_port)
            .map(|i| i as u32)
    }
}

/// The full index decomposition for one register access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegisterIndex {
    /// Highest bit: the data-plane-query (special) copy.
    pub special: bool,
    /// Second-highest bit: which periodic copy.
    pub periodic_copy: bool,
    /// Port partition prefix (`q` bits).
    pub port_prefix: u32,
    /// Cell index within the partition (`k` bits).
    pub cell: u32,
}

/// Compose/decompose physical indices for arrays of `2^k` cells per
/// partition and `q` prefix bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegisterLayout {
    /// Cell bits.
    pub k: u8,
    /// Port-prefix bits.
    pub q: u8,
}

impl RegisterLayout {
    /// Construct, validating the widths fit a 32-bit index with the two
    /// flip bits.
    pub fn new(k: u8, q: u8) -> RegisterLayout {
        assert!(
            u32::from(k) + u32::from(q) + 2 <= 32,
            "index exceeds 32 bits"
        );
        RegisterLayout { k, q }
    }

    /// Total physical cells across both flip bits and all partitions.
    pub fn total_cells(&self) -> u64 {
        1u64 << (self.k + self.q + 2)
    }

    /// Compose the physical index.
    pub fn compose(&self, idx: RegisterIndex) -> u32 {
        debug_assert!(idx.port_prefix < (1 << self.q), "prefix out of range");
        debug_assert!(idx.cell < (1 << self.k), "cell out of range");
        (u32::from(idx.special) << (self.k + self.q + 1))
            | (u32::from(idx.periodic_copy) << (self.k + self.q))
            | (idx.port_prefix << self.k)
            | idx.cell
    }

    /// Decompose a physical index.
    pub fn decompose(&self, physical: u32) -> RegisterIndex {
        RegisterIndex {
            special: (physical >> (self.k + self.q + 1)) & 1 == 1,
            periodic_copy: (physical >> (self.k + self.q)) & 1 == 1,
            port_prefix: (physical >> self.k) & ((1 << self.q) - 1),
            cell: physical & ((1 << self.k) - 1),
        }
    }

    /// The Figure 8 transitions, as bit operations on a physical index:
    /// flip the periodic copy (second-highest bit).
    pub fn flip_periodic(&self, physical: u32) -> u32 {
        physical ^ (1 << (self.k + self.q))
    }

    /// Flip into/out of the special copy (highest bit).
    pub fn flip_special(&self, physical: u32) -> u32 {
        physical ^ (1 << (self.k + self.q + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_table_prefixes_in_order() {
        let gate = PortGateTable::new(&[140, 141, 144]);
        assert_eq!(gate.partitions(), 4); // rounds 3 → 4
        assert_eq!(gate.q(), 2);
        assert_eq!(gate.prefix_of(140), Some(0));
        assert_eq!(gate.prefix_of(144), Some(2));
        assert_eq!(gate.prefix_of(999), None, "unactivated ports are ignored");
    }

    #[test]
    fn single_port_has_zero_prefix_bits() {
        let gate = PortGateTable::new(&[7]);
        assert_eq!(gate.q(), 0);
        assert_eq!(gate.partitions(), 1);
    }

    #[test]
    fn compose_decompose_roundtrip() {
        let layout = RegisterLayout::new(12, 2);
        for special in [false, true] {
            for copy in [false, true] {
                for prefix in [0u32, 1, 3] {
                    for cell in [0u32, 1, 4095] {
                        let idx = RegisterIndex {
                            special,
                            periodic_copy: copy,
                            port_prefix: prefix,
                            cell,
                        };
                        assert_eq!(layout.decompose(layout.compose(idx)), idx);
                    }
                }
            }
        }
    }

    #[test]
    fn flips_touch_only_their_bit() {
        let layout = RegisterLayout::new(12, 2);
        let idx = RegisterIndex {
            special: false,
            periodic_copy: false,
            port_prefix: 2,
            cell: 1234,
        };
        let physical = layout.compose(idx);
        let flipped = layout.decompose(layout.flip_periodic(physical));
        assert_eq!(
            flipped,
            RegisterIndex {
                periodic_copy: true,
                ..idx
            }
        );
        let special = layout.decompose(layout.flip_special(physical));
        assert_eq!(
            special,
            RegisterIndex {
                special: true,
                ..idx
            }
        );
        // Double flip restores.
        assert_eq!(
            layout.flip_periodic(layout.flip_periodic(physical)),
            physical
        );
    }

    #[test]
    fn total_cells_matches_widths() {
        // k=12, q=2 → 4096 cells × 4 partitions × 4 copies (2 flip bits).
        assert_eq!(RegisterLayout::new(12, 2).total_cells(), 4096 * 4 * 4);
    }

    #[test]
    fn composition_is_injective_across_copies() {
        let layout = RegisterLayout::new(4, 1);
        let mut seen = std::collections::HashSet::new();
        for special in [false, true] {
            for copy in [false, true] {
                for prefix in 0..2u32 {
                    for cell in 0..16u32 {
                        let physical = layout.compose(RegisterIndex {
                            special,
                            periodic_copy: copy,
                            port_prefix: prefix,
                            cell,
                        });
                        assert!(seen.insert(physical), "collision at {physical}");
                    }
                }
            }
        }
        assert_eq!(seen.len() as u64, layout.total_cells());
    }
}
