//! Error bounds for coefficient-recovered counts — extending §4.3.
//!
//! The paper's Theorem 2 gives only the *expectation* of a compressed
//! window's observation ("The proportional property only provides an
//! expected value without any error bounds", §4.3). Under the same i.i.d.
//! model, however, the observation is binomial: each of a flow's `n`
//! original packets independently survives into window `w` with probability
//! `coefficient[w]`. That yields closed-form variance for the recovered
//! estimate `X/c`:
//!
//! ```text
//!   X ~ Binomial(n, c)        E[X/c] = n
//!   Var[X/c] = n (1 − c) / c
//! ```
//!
//! from which relative standard error and distribution-free (Chebyshev)
//! confidence intervals follow. The estimator-facing consequence matches
//! the paper's empirical findings: deep windows (small `c`) and small flows
//! (small `n`) carry large relative error, which is why Figure 12's deep-
//! window accuracy decays and why small query intervals landing in deep
//! windows hurt (Figure 11).

use crate::coefficient::Coefficients;
use serde::{Deserialize, Serialize};

/// Uncertainty summary for one recovered count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryBound {
    /// The recovered (expected-original) count `X / c`.
    pub estimate: f64,
    /// Standard deviation of the recovered count.
    pub std_dev: f64,
    /// Relative standard error `σ / estimate` (∞ for a zero estimate).
    pub relative_error: f64,
    /// Distribution-free 95% interval half-width (Chebyshev, k = √20).
    pub chebyshev95_half_width: f64,
}

/// Bound the recovery of an observation of `observed` packets in window
/// `w`.
///
/// Treating the (unknown) original count as the recovered estimate itself
/// (the plug-in approach), the binomial survival model gives the variance
/// directly.
pub fn recovery_bound(coeffs: &Coefficients, w: u8, observed: f64) -> RecoveryBound {
    let c = coeffs.coefficient[usize::from(w)];
    let estimate = observed / c;
    // Var[X/c] with n ≈ estimate: n(1-c)/c.
    let variance = (estimate * (1.0 - c) / c).max(0.0);
    let std_dev = variance.sqrt();
    RecoveryBound {
        estimate,
        std_dev,
        relative_error: if estimate > 0.0 {
            std_dev / estimate
        } else {
            f64::INFINITY
        },
        chebyshev95_half_width: 20f64.sqrt() * std_dev,
    }
}

/// The smallest original flow size whose window-`w` recovery achieves a
/// relative standard error of at most `target` — the "how big must a flow
/// be to trust deep windows" question behind Figure 12's Top-K behaviour.
///
/// From `σ/n = sqrt((1−c)/(n c))`, solving for `n`:
/// `n ≥ (1 − c) / (c · target²)`.
pub fn min_trustworthy_flow(coeffs: &Coefficients, w: u8, target: f64) -> f64 {
    assert!(target > 0.0);
    let c = coeffs.coefficient[usize::from(w)];
    ((1.0 - c) / (c * target * target)).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::TimeWindowConfig;

    fn uw_coeffs() -> Coefficients {
        Coefficients::compute(&TimeWindowConfig::UW, 110)
    }

    #[test]
    fn window0_is_exact() {
        let coeffs = uw_coeffs();
        let bound = recovery_bound(&coeffs, 0, 100.0);
        assert_eq!(bound.estimate, 100.0);
        assert_eq!(bound.std_dev, 0.0);
        assert_eq!(bound.relative_error, 0.0);
    }

    #[test]
    fn relative_error_grows_with_window_depth() {
        let coeffs = uw_coeffs();
        let mut prev = 0.0;
        for w in 0..4u8 {
            // Same *observed* mass in each window (so deeper estimates are
            // larger but noisier).
            let bound = recovery_bound(&coeffs, w, 50.0);
            assert!(
                bound.relative_error >= prev,
                "w{w}: {} < {prev}",
                bound.relative_error
            );
            prev = bound.relative_error;
        }
    }

    #[test]
    fn bigger_flows_have_smaller_relative_error() {
        let coeffs = uw_coeffs();
        let small = recovery_bound(&coeffs, 3, 5.0);
        let big = recovery_bound(&coeffs, 3, 500.0);
        assert!(big.relative_error < small.relative_error);
        // √n scaling: 100× the observation → 10× smaller relative error.
        let ratio = small.relative_error / big.relative_error;
        assert!((9.0..11.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn zero_observation_is_infinite_relative_error() {
        let coeffs = uw_coeffs();
        let bound = recovery_bound(&coeffs, 2, 0.0);
        assert_eq!(bound.estimate, 0.0);
        assert!(bound.relative_error.is_infinite());
    }

    #[test]
    fn min_trustworthy_flow_matches_inverse() {
        let coeffs = uw_coeffs();
        for w in 1..4u8 {
            let n = min_trustworthy_flow(&coeffs, w, 0.25);
            // A flow of exactly that size should land at ~25% relative
            // error: check by plugging the implied observation back in.
            let c = coeffs.coefficient[usize::from(w)];
            let bound = recovery_bound(&coeffs, w, n * c);
            assert!(
                (bound.relative_error - 0.25).abs() < 0.01,
                "w{w}: {}",
                bound.relative_error
            );
        }
    }

    #[test]
    fn monte_carlo_variance_matches_model() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        // Simulate the binomial survival process and compare the measured
        // variance of the recovered estimate with the closed form.
        let c = 0.2f64;
        let n = 400u64;
        let mut rng = SmallRng::seed_from_u64(9);
        let trials = 4_000;
        let mut recovered = Vec::with_capacity(trials);
        for _ in 0..trials {
            let survivors = (0..n).filter(|_| rng.gen::<f64>() < c).count() as f64;
            recovered.push(survivors / c);
        }
        let mean = recovered.iter().sum::<f64>() / trials as f64;
        let var = recovered
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f64>()
            / trials as f64;
        let model_var = n as f64 * (1.0 - c) / c;
        assert!((mean - n as f64).abs() < 5.0, "mean {mean}");
        assert!(
            (var - model_var).abs() / model_var < 0.1,
            "var {var} vs model {model_var}"
        );
    }
}
