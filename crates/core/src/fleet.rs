//! Network-wide coordination of per-switch PrintQueue instances.
//!
//! PrintQueue is deliberately a *per-switch* system; §8 positions its
//! results as inputs to higher-level provenance frameworks (Dapper, DTaP,
//! Zeno) that reason across machines. This module is that integration
//! seam: a [`Fleet`] owns one [`PrintQueue`] per switch, fans hook events
//! out by switch id, and answers *path queries* — given a victim flow's
//! per-hop queueing record, diagnose each hop and rank where the delay was
//! added and by whom.
//!
//! Nothing here adds data-plane state: the fleet is control-plane glue
//! over the per-switch artifacts, exactly how a network operator would
//! deploy the paper's system across a fabric.

use crate::diagnosis::{diagnose, Diagnosis};
use crate::metrics::ControlHealth;
use crate::printqueue::{PrintQueue, PrintQueueConfig};
use pq_packet::{Nanos, SimPacket};
use pq_switch::QueueHooks;
use pq_telemetry::RegistrySnapshot;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Identifies one switch in the fabric.
pub type SwitchId = u32;

/// One hop of a victim's path: where it queued, and when.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HopRecord {
    /// The switch traversed.
    pub switch: SwitchId,
    /// Egress port on that switch.
    pub port: u16,
    /// Enqueue timestamp at that hop (that switch's clock).
    pub enq_timestamp: Nanos,
    /// Dequeue timestamp at that hop.
    pub deq_timestamp: Nanos,
}

impl HopRecord {
    /// Queueing delay at this hop.
    pub fn delay(&self) -> Nanos {
        self.deq_timestamp.saturating_sub(self.enq_timestamp)
    }
}

/// A per-hop diagnosis within a path query's answer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HopDiagnosis {
    pub hop: HopRecord,
    /// Share of the path's total queueing that accrued at this hop.
    pub delay_share: f64,
    /// The per-switch PrintQueue diagnosis for the hop's interval.
    pub diagnosis: Diagnosis,
}

/// The answer to a path query: hops ordered by traversal, plus the index of
/// the dominant hop.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PathDiagnosis {
    pub hops: Vec<HopDiagnosis>,
    /// Index into `hops` of the largest delay contributor.
    pub dominant_hop: usize,
    /// Total path queueing delay.
    pub total_delay: Nanos,
}

/// Fleet-level rollup of per-switch control-plane health.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetHealth {
    /// Per-switch counters, sorted by switch id for stable output.
    pub per_switch: Vec<(SwitchId, ControlHealth)>,
    /// Sum over all switches.
    pub total: ControlHealth,
}

impl FleetHealth {
    /// Switch ids whose control plane has recorded coverage gaps, dropped
    /// checkpoints, or failed reads — the ones whose answers may be stale.
    pub fn degraded_switches(&self) -> Vec<SwitchId> {
        self.per_switch
            .iter()
            .filter(|(_, h)| !h.is_healthy())
            .map(|(id, _)| *id)
            .collect()
    }
}

/// A fabric of per-switch PrintQueue instances.
pub struct Fleet {
    instances: HashMap<SwitchId, PrintQueue>,
}

impl Fleet {
    /// Start with no switches.
    pub fn new() -> Fleet {
        Fleet {
            instances: HashMap::new(),
        }
    }

    /// Deploy PrintQueue on a switch. Replaces any previous instance.
    pub fn deploy(&mut self, switch: SwitchId, config: PrintQueueConfig) {
        self.instances.insert(switch, PrintQueue::new(config));
    }

    /// Number of monitored switches.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// True when no switches are deployed.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// The instance for one switch.
    pub fn instance(&self, switch: SwitchId) -> Option<&PrintQueue> {
        self.instances.get(&switch)
    }

    /// Mutable instance access (attach as a hook while simulating that
    /// switch).
    pub fn instance_mut(&mut self, switch: SwitchId) -> Option<&mut PrintQueue> {
        self.instances.get_mut(&switch)
    }

    /// A hook adapter binding this fleet's instance for `switch`, to attach
    /// to that switch's simulation run.
    pub fn hook(&mut self, switch: SwitchId) -> FleetHook<'_> {
        FleetHook {
            inner: self
                .instances
                .get_mut(&switch)
                .expect("switch not deployed"),
        }
    }

    /// Roll up every switch's control-plane health counters. Each
    /// [`ControlHealth`] is read out of that switch's telemetry registry,
    /// so this rollup and [`Fleet::metrics`] can never disagree.
    pub fn health(&self) -> FleetHealth {
        let mut per_switch: Vec<(SwitchId, ControlHealth)> = self
            .instances
            .iter()
            .map(|(id, pq)| (*id, pq.analysis().health()))
            .collect();
        per_switch.sort_by_key(|(id, _)| *id);
        let mut total = ControlHealth::default();
        for (_, h) in &per_switch {
            total.merge(h);
        }
        FleetHealth { per_switch, total }
    }

    /// Merge every switch's telemetry registry into one fleet-wide
    /// snapshot (counters add, gauges take the max, histograms add
    /// bucket-wise — all associative, so fold order is irrelevant).
    pub fn metrics(&self) -> RegistrySnapshot {
        let mut total = RegistrySnapshot::default();
        for pq in self.instances.values() {
            total.merge(&pq.analysis().telemetry().snapshot());
        }
        total
    }

    /// Diagnose a victim across its path.
    ///
    /// `path` lists the hops in traversal order with per-hop timestamps
    /// (from INT-style postcards or per-hop telemetry). For each hop with a
    /// deployed instance, runs the full §3 diagnosis against that switch's
    /// own checkpoints.
    pub fn diagnose_path(&self, path: &[HopRecord]) -> PathDiagnosis {
        let total_delay: Nanos = path.iter().map(HopRecord::delay).sum();
        let mut hops = Vec::with_capacity(path.len());
        for hop in path {
            let Some(instance) = self.instances.get(&hop.switch) else {
                continue;
            };
            let diagnosis = diagnose(
                instance.analysis(),
                hop.port,
                hop.enq_timestamp,
                hop.deq_timestamp,
                None,
            );
            hops.push(HopDiagnosis {
                hop: *hop,
                delay_share: if total_delay == 0 {
                    0.0
                } else {
                    hop.delay() as f64 / total_delay as f64
                },
                diagnosis,
            });
        }
        let dominant_hop = hops
            .iter()
            .enumerate()
            .max_by_key(|(_, h)| h.hop.delay())
            .map(|(i, _)| i)
            .unwrap_or(0);
        PathDiagnosis {
            hops,
            dominant_hop,
            total_delay,
        }
    }
}

impl Default for Fleet {
    fn default() -> Self {
        Fleet::new()
    }
}

/// Borrowed hook binding one fleet instance to one switch run.
pub struct FleetHook<'a> {
    inner: &'a mut PrintQueue,
}

impl QueueHooks for FleetHook<'_> {
    fn on_enqueue(&mut self, pkt: &SimPacket, port: u16, depth_after: u32, now: Nanos) {
        self.inner.on_enqueue(pkt, port, depth_after, now);
    }
    fn on_dequeue(&mut self, pkt: &SimPacket, port: u16, depth_after: u32, now: Nanos) {
        self.inner.on_dequeue(pkt, port, depth_after, now);
    }
    fn on_drop(&mut self, pkt: &SimPacket, port: u16, now: Nanos) {
        self.inner.on_drop(pkt, port, now);
    }
    fn on_tick(&mut self, now: Nanos) {
        self.inner.on_tick(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::TimeWindowConfig;
    use pq_packet::FlowId;
    use pq_switch::topology::DepartureTap;
    use pq_switch::{Arrival, Switch, SwitchConfig};

    fn config() -> PrintQueueConfig {
        let tw = TimeWindowConfig::new(10, 1, 10, 3);
        let mut c = PrintQueueConfig::single_port(tw, 1200);
        c.control.poll_period = 500_000;
        c
    }

    /// Two-hop fabric: hop 20 is the bottleneck. The path diagnosis must
    /// attribute the delay there and name the competing flow.
    #[test]
    fn path_diagnosis_finds_the_dominant_hop() {
        let mut fleet = Fleet::new();
        fleet.deploy(10, config());
        fleet.deploy(20, config());

        // Hop 10 at 40 Gbps: barely queues. Victim flow 0 and a heavy
        // competitor flow 1.
        let mut arrivals = Vec::new();
        for i in 0..2_000u64 {
            arrivals.push(Arrival::new(SimPacket::new(FlowId(1), 1500, i * 600), 0));
            if i % 20 == 0 {
                arrivals.push(Arrival::new(
                    SimPacket::new(FlowId(0), 1500, i * 600 + 1),
                    0,
                ));
            }
        }
        arrivals.sort_by_key(|a| a.pkt.arrival);

        let mut sw1 = Switch::new(SwitchConfig::single_port(40.0, 32_768));
        let mut tap = DepartureTap::new(0, 0, 2_000);
        let mut sink1 = pq_switch::TelemetrySink::new();
        {
            let mut hook = fleet.hook(10);
            let mut hooks: Vec<&mut dyn QueueHooks> = vec![&mut tap, &mut hook, &mut sink1];
            sw1.run(arrivals, &mut hooks, 500_000);
        }
        let mut sw2 = Switch::new(SwitchConfig::single_port(10.0, 32_768));
        let mut sink2 = pq_switch::TelemetrySink::new();
        {
            let mut hook = fleet.hook(20);
            let mut hooks: Vec<&mut dyn QueueHooks> = vec![&mut hook, &mut sink2];
            sw2.run(tap.into_arrivals(), &mut hooks, 500_000);
        }

        // Build the victim's path record from each hop's telemetry.
        let v1 = sink1
            .records
            .iter()
            .filter(|r| r.flow == FlowId(0))
            .max_by_key(|r| r.meta.enq_timestamp)
            .copied()
            .unwrap();
        let v2 = sink2
            .records
            .iter()
            .filter(|r| r.flow == FlowId(0))
            .max_by_key(|r| r.meta.deq_timedelta)
            .copied()
            .unwrap();
        let path = vec![
            HopRecord {
                switch: 10,
                port: 0,
                enq_timestamp: v1.meta.enq_timestamp,
                deq_timestamp: v1.deq_timestamp(),
            },
            HopRecord {
                switch: 20,
                port: 0,
                enq_timestamp: v2.meta.enq_timestamp,
                deq_timestamp: v2.deq_timestamp(),
            },
        ];
        let result = fleet.diagnose_path(&path);
        assert_eq!(result.hops.len(), 2);
        assert_eq!(result.dominant_hop, 1, "hop 20 is the bottleneck");
        assert!(result.hops[1].delay_share > 0.9);
        // The bottleneck hop's diagnosis names the competitor.
        let top = result.hops[1].diagnosis.top_direct(1);
        assert_eq!(top[0].0, FlowId(1));
        assert!(result.total_delay > 0);
    }

    #[test]
    fn undeployed_switches_are_skipped() {
        let mut fleet = Fleet::new();
        fleet.deploy(1, config());
        let path = vec![
            HopRecord {
                switch: 1,
                port: 0,
                enq_timestamp: 0,
                deq_timestamp: 100,
            },
            HopRecord {
                switch: 99, // not deployed
                port: 0,
                enq_timestamp: 0,
                deq_timestamp: 1_000,
            },
        ];
        let result = fleet.diagnose_path(&path);
        assert_eq!(result.hops.len(), 1);
        assert_eq!(result.total_delay, 1_100);
        assert!(!fleet.is_empty());
        assert!(fleet.instance(99).is_none());
    }

    #[test]
    fn metrics_rollup_agrees_with_health_rollup() {
        let mut fleet = Fleet::new();
        fleet.deploy(1, config());
        fleet.deploy(2, config());
        fleet
            .instance_mut(1)
            .unwrap()
            .analysis_mut()
            .on_tick(500_000);
        fleet
            .instance_mut(2)
            .unwrap()
            .analysis_mut()
            .on_tick(500_000);
        fleet
            .instance_mut(2)
            .unwrap()
            .analysis_mut()
            .on_tick(1_000_000);
        let health = fleet.health();
        let metrics = fleet.metrics();
        assert_eq!(health.total.polls_attempted, 3);
        assert_eq!(
            metrics.counter(pq_telemetry::names::CONTROL_POLLS_ATTEMPTED, &[]),
            Some(health.total.polls_attempted)
        );
        assert_eq!(
            metrics.counter(pq_telemetry::names::CONTROL_CHECKPOINTS_STORED, &[]),
            Some(health.total.checkpoints_stored)
        );
    }

    #[test]
    fn zero_delay_path_has_zero_shares() {
        let mut fleet = Fleet::new();
        fleet.deploy(1, config());
        let path = vec![HopRecord {
            switch: 1,
            port: 0,
            enq_timestamp: 50,
            deq_timestamp: 50,
        }];
        let result = fleet.diagnose_path(&path);
        assert_eq!(result.hops[0].delay_share, 0.0);
    }
}
