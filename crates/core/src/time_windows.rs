//! The time-windows data structure (§4 of the paper, Algorithm 1).
//!
//! `T` ring buffers of `2^k` cells each. Every dequeued packet is written
//! into window 0 at the cell indexed by the low bits of its trimmed dequeue
//! timestamp. A collision evicts the older occupant, which is *passed* to
//! the next window only if its cycle ID is exactly one less than the
//! incoming packet's (the "one shot" passing rule) — otherwise it is
//! dropped. Deeper windows therefore hold exponentially older, exponentially
//! more compressed history in linear space (Figure 2).

use crate::params::TimeWindowConfig;
use crate::tts::Tts;
use pq_packet::{FlowId, Nanos};
use pq_switch::RegisterArray;
use serde::{Deserialize, Serialize};

/// One register cell: a single packet's flow ID and cycle ID (Figure 4).
///
/// On the Tofino this is a paired 32-bit register entry; 8 bytes per cell is
/// the figure the SRAM model uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cell {
    /// Flow occupying the cell ([`FlowId::NONE`] when empty).
    pub flow: FlowId,
    /// Cycle ID of the stored packet's TTS.
    pub cycle: u64,
}

impl Cell {
    /// The empty cell.
    pub const EMPTY: Cell = Cell {
        flow: FlowId::NONE,
        cycle: u64::MAX,
    };

    /// True when no packet occupies the cell.
    pub fn is_empty(&self) -> bool {
        self.flow.is_none()
    }
}

impl Default for Cell {
    fn default() -> Self {
        Cell::EMPTY
    }
}

/// Statistics of the per-packet update path, useful for the ablation bench.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimeWindowStats {
    /// Packets recorded into window 0.
    pub recorded: u64,
    /// Evictions passed to a deeper window.
    pub passed: u64,
    /// Evictions dropped by the passing rule.
    pub dropped: u64,
}

/// A set of `T` time windows for one egress port.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeWindowSet {
    config: TimeWindowConfig,
    windows: Vec<RegisterArray<Cell>>,
    /// When false, evicted packets are always dropped instead of passed —
    /// the ablation of the Algorithm-1 passing rule.
    passing_enabled: bool,
    stats: TimeWindowStats,
}

impl TimeWindowSet {
    /// Allocate the windows for `config`.
    pub fn new(config: TimeWindowConfig) -> TimeWindowSet {
        config.validate();
        TimeWindowSet {
            windows: (0..config.t)
                .map(|_| RegisterArray::new(config.cells()))
                .collect(),
            config,
            passing_enabled: true,
            stats: TimeWindowStats::default(),
        }
    }

    /// Disable the passing rule (ablation: every eviction becomes a drop).
    pub fn without_passing(mut self) -> TimeWindowSet {
        self.passing_enabled = false;
        self
    }

    /// The configuration.
    pub fn config(&self) -> &TimeWindowConfig {
        &self.config
    }

    /// Update-path statistics.
    pub fn stats(&self) -> TimeWindowStats {
        self.stats
    }

    /// Record a dequeued packet — Algorithm 1.
    ///
    /// `deq_ts` is `enq_timestamp + deq_timedelta` (§4.2). Runs one
    /// read-modify-write per window, exactly the per-stage budget the
    /// hardware implementation has ("two additional stages for each time
    /// window", §7).
    pub fn record(&mut self, flow: FlowId, deq_ts: Nanos) {
        self.stats.recorded += 1;
        let k = self.config.k;
        // Window 0 TTS.
        let mut tts = deq_ts >> self.config.m0;
        let mut incoming_flow = flow;
        for i in 0..usize::from(self.config.t) {
            let index = (tts & ((1u64 << k) - 1)) as usize;
            let cycle = tts >> k;
            let reg = &mut self.windows[i];
            reg.begin_packet();
            let evicted = reg.rmw(index, |cell| {
                let old = *cell;
                *cell = Cell {
                    flow: incoming_flow,
                    cycle,
                };
                old
            });
            // Passing rule: pass only a packet from exactly the previous
            // cycle of this cell.
            let pass = self.passing_enabled
                && !evicted.is_empty()
                && cycle.wrapping_sub(evicted.cycle) == 1;
            if !pass {
                if !evicted.is_empty() {
                    self.stats.dropped += 1;
                }
                break;
            }
            if i + 1 == usize::from(self.config.t) {
                // Evicted from the deepest window: gone for good.
                self.stats.dropped += 1;
                break;
            }
            self.stats.passed += 1;
            // Reconstruct the evicted packet's TTS in this window, then
            // shift into the next window's TTS space.
            let evicted_tts = (evicted.cycle << k) | index as u64;
            tts = evicted_tts >> self.config.alpha;
            incoming_flow = evicted.flow;
        }
    }

    /// Control-plane bulk read of window `i` (PCIe poll).
    pub fn window(&self, i: u8) -> &[Cell] {
        self.windows[usize::from(i)].as_slice()
    }

    /// Control-plane reset of all windows.
    pub fn clear(&mut self) {
        for w in &mut self.windows {
            w.clear();
        }
    }

    /// The latest (maximum-TTS) occupied cell of window 0, if any —
    /// `LatestCell()` of Algorithm 3.
    pub fn latest_cell(&self) -> Option<Tts> {
        self.windows[0]
            .as_slice()
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.is_empty())
            .map(|(index, c)| Tts {
                cycle: c.cycle,
                index,
            })
            .max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny configuration mirroring the Figure 6 walk-through:
    /// k = 2 (4 cells), T = 3, α = 1, and m0 = 0 so timestamps are TTS
    /// values directly.
    fn tiny() -> TimeWindowConfig {
        TimeWindowConfig::new(0, 1, 2, 3)
    }

    fn cell(set: &TimeWindowSet, w: u8, idx: usize) -> Cell {
        set.window(w)[idx]
    }

    #[test]
    fn empty_cells_start_empty() {
        let set = TimeWindowSet::new(tiny());
        for w in 0..3 {
            for idx in 0..4 {
                assert!(cell(&set, w, idx).is_empty());
            }
        }
        assert_eq!(set.latest_cell(), None);
    }

    #[test]
    fn single_packet_lands_in_window0() {
        let mut set = TimeWindowSet::new(tiny());
        // TTS 0b000_01 → cycle 0, index 1.
        set.record(FlowId(7), 0b0001);
        let c = cell(&set, 0, 1);
        assert_eq!(c.flow, FlowId(7));
        assert_eq!(c.cycle, 0);
        assert_eq!(set.stats().recorded, 1);
    }

    #[test]
    fn same_cycle_collision_drops_older() {
        // Figure 6, time step 1: A then B in the same cell and cycle — A is
        // dropped, not passed.
        let mut set = TimeWindowSet::new(tiny());
        set.record(FlowId(0xA), 0b0000); // cycle 0, index 0
        set.record(FlowId(0xB), 0b0000); // same cell, same cycle
        assert_eq!(cell(&set, 0, 0).flow, FlowId(0xB));
        assert!(cell(&set, 1, 0).is_empty(), "A must not be passed");
        assert_eq!(set.stats().dropped, 1);
    }

    #[test]
    fn next_cycle_collision_passes_older() {
        let mut set = TimeWindowSet::new(tiny());
        set.record(FlowId(0xB), 0b0000); // cycle 0, index 0
        set.record(FlowId(0xA), 0b0100); // cycle 1, index 0 → evicts B, passes it
        assert_eq!(cell(&set, 0, 0).flow, FlowId(0xA));
        // B's window-0 TTS was 0b000; window-1 TTS = 0b000 >> 1 = 0, so
        // cycle 0, index 0 of window 1.
        let passed = cell(&set, 1, 0);
        assert_eq!(passed.flow, FlowId(0xB));
        assert_eq!(passed.cycle, 0);
        assert_eq!(set.stats().passed, 1);
    }

    #[test]
    fn stale_cycle_collision_drops() {
        // Figure 6, time step 2: D's packet evicted by a packet two cycles
        // later is dropped ("its cycle ID is too far in the past").
        let mut set = TimeWindowSet::new(tiny());
        set.record(FlowId(0xD), 0b0011); // cycle 0, index 3
        set.record(FlowId(0xA), 0b1011); // cycle 2, index 3
        assert_eq!(cell(&set, 0, 3).flow, FlowId(0xA));
        assert!(cell(&set, 1, 1).is_empty());
        assert_eq!(set.stats().dropped, 1);
    }

    #[test]
    fn recursive_pass_through_windows() {
        // Figure 6, time step 3: a window-1 occupant whose cycle is exactly
        // one behind the newly passed packet gets pushed to window 2.
        let mut set = TimeWindowSet::new(tiny());
        // Packet X at TTS 0b00_00 (cycle 0) — lands w0[0].
        set.record(FlowId(1), 0b0000);
        // Packet Y at TTS 0b01_00 (cycle 1) — evicts X to w1 (TTS 0, cycle 0).
        set.record(FlowId(2), 0b0100);
        // Packet Z at TTS 0b10_00 (cycle 2) — evicts Y to w1 (TTS 0b10, cycle 0,
        // index 2)... w1 cell 2 is empty so it stops there.
        set.record(FlowId(3), 0b1000);
        assert_eq!(cell(&set, 1, 0).flow, FlowId(1));
        assert_eq!(cell(&set, 1, 2).flow, FlowId(2));
        // Packet W at TTS 0b11_00 (cycle 3) — evicts Z to w1 TTS 0b110>>...
        // Z's w0 TTS = 0b1000; w1 TTS = 0b100 → cycle 1, index 0: evicts X
        // (cycle 0) which passes to w2: X w1 TTS 0 >> 1 = 0, cycle 0, idx 0.
        set.record(FlowId(4), 0b1100);
        assert_eq!(cell(&set, 1, 0).flow, FlowId(3));
        assert_eq!(cell(&set, 2, 0).flow, FlowId(1));
        // Four passes total: flows 1, 2, 3 each passed w0→w1 once, and
        // flow 1 passed w1→w2.
        assert_eq!(set.stats().passed, 4);
    }

    #[test]
    fn eviction_from_deepest_window_is_dropped() {
        let config = TimeWindowConfig::new(0, 1, 1, 1); // single window, 2 cells
        let mut set = TimeWindowSet::new(config);
        set.record(FlowId(1), 0b00); // cycle 0 idx 0
        set.record(FlowId(2), 0b10); // cycle 1 idx 0 → evict, but no deeper window
        assert_eq!(set.stats().dropped, 1);
        assert_eq!(set.stats().passed, 0);
    }

    #[test]
    fn without_passing_always_drops() {
        let mut set = TimeWindowSet::new(tiny()).without_passing();
        set.record(FlowId(1), 0b0000);
        set.record(FlowId(2), 0b0100); // would pass under Algorithm 1
        assert!(cell(&set, 1, 0).is_empty());
        assert_eq!(set.stats().dropped, 1);
    }

    #[test]
    fn latest_cell_tracks_max_tts() {
        let mut set = TimeWindowSet::new(tiny());
        set.record(FlowId(1), 0b0001);
        set.record(FlowId(2), 0b0111); // cycle 1, index 3
        set.record(FlowId(3), 0b0110); // cycle 1, index 2
        let latest = set.latest_cell().unwrap();
        assert_eq!(latest.cycle, 1);
        assert_eq!(latest.index, 3);
    }

    #[test]
    fn clear_resets_everything() {
        let mut set = TimeWindowSet::new(tiny());
        set.record(FlowId(1), 0b0001);
        set.clear();
        assert_eq!(set.latest_cell(), None);
    }

    #[test]
    fn packet_level_precision_in_window0_without_collisions() {
        // §4.1: with a cell period below the min packet tx delay, window 0
        // has at most one packet per cell per cycle — every packet of a
        // window period is tracked precisely.
        let config = TimeWindowConfig::new(6, 1, 8, 2); // 256 cells, 64 ns cells
        let mut set = TimeWindowSet::new(config);
        // 256 packets, one per 64 ns slot, all within one window period.
        for i in 0..256u64 {
            set.record(FlowId(i as u32), i * 64);
        }
        let occupied = set.window(0).iter().filter(|c| !c.is_empty()).count();
        assert_eq!(occupied, 256);
        assert_eq!(set.stats().dropped + set.stats().passed, 0);
    }
}
