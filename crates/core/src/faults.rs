//! Deterministic control-plane fault injection.
//!
//! The paper's correctness leans on a liveness assumption: the analysis
//! program freezes and reads every register set "at least once per t_set"
//! (§6.2), or the ring buffers wrap and history is silently lost. Real
//! Tofino control planes do not offer that guarantee for free — register
//! reads cross PCIe/gRPC with real latency, transient failures, and
//! whole-process stalls (GC pauses, competing table writes). This module
//! models those faults so the rest of the control plane
//! ([`crate::control`]) can be exercised — and hardened — against them.
//!
//! Everything is deterministic given the seed: the same [`FaultConfig`]
//! replayed against the same event sequence injects the same faults, so
//! failing runs shrink to reproducible test cases.

use pq_packet::Nanos;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Read-latency distribution for one freeze-and-read.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum LatencyModel {
    /// Reads complete in zero simulated time — the idealized behavior the
    /// rest of the codebase was originally written against.
    #[default]
    Zero,
    /// Every read takes exactly this many nanoseconds.
    Fixed(Nanos),
    /// Uniform in `[min, max]` nanoseconds.
    Uniform(Nanos, Nanos),
}

impl LatencyModel {
    fn sample(&self, rng: &mut SmallRng) -> Nanos {
        match *self {
            LatencyModel::Zero => 0,
            LatencyModel::Fixed(ns) => ns,
            LatencyModel::Uniform(min, max) => {
                if max <= min {
                    min
                } else {
                    rng.gen_range(min..=max)
                }
            }
        }
    }

    /// The largest latency this model can produce.
    pub fn worst_case(&self) -> Nanos {
        match *self {
            LatencyModel::Zero => 0,
            LatencyModel::Fixed(ns) => ns,
            LatencyModel::Uniform(min, max) => max.max(min),
        }
    }
}

/// Periodic control-plane stalls: during `[k·period, k·period + duration)`
/// the analysis program cannot issue reads at all (modeling GC pauses,
/// gRPC backpressure, or competing control-plane work).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StallWindows {
    /// Stall recurrence period.
    pub period: Nanos,
    /// Stall length at the start of each period. Must be `< period` to
    /// leave any room to poll.
    pub duration: Nanos,
}

impl StallWindows {
    /// Is the control plane stalled at `now`?
    pub fn covers(&self, now: Nanos) -> bool {
        self.period > 0 && now % self.period < self.duration
    }
}

/// The fault profile applied to one port's reads.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultProfile {
    /// Probability that a freeze-and-read attempt fails outright
    /// (transient gRPC/PCIe error).
    #[serde(default)]
    pub read_failure_prob: f64,
    /// How long a successful read occupies the spare register copy.
    #[serde(default)]
    pub read_latency: LatencyModel,
    /// Probability that a completed read's checkpoint is lost before it
    /// reaches the snapshot store (analysis-program crash/restart).
    #[serde(default)]
    pub drop_checkpoint_prob: f64,
    /// Recurring windows during which no read can even be issued.
    #[serde(default)]
    pub stall: Option<StallWindows>,
}

impl FaultProfile {
    /// No faults at all.
    pub fn none() -> FaultProfile {
        FaultProfile {
            read_failure_prob: 0.0,
            read_latency: LatencyModel::Zero,
            drop_checkpoint_prob: 0.0,
            stall: None,
        }
    }

    /// Only read failures, at probability `p`.
    pub fn read_failures(p: f64) -> FaultProfile {
        FaultProfile {
            read_failure_prob: p,
            ..FaultProfile::none()
        }
    }

    /// True when this profile can never perturb a read.
    pub fn is_benign(&self) -> bool {
        self.read_failure_prob <= 0.0
            && self.drop_checkpoint_prob <= 0.0
            && matches!(self.read_latency, LatencyModel::Zero)
            && self.stall.is_none()
    }
}

impl Default for FaultProfile {
    fn default() -> FaultProfile {
        FaultProfile::none()
    }
}

/// Serializable configuration for a [`FaultInjector`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Seed for the injector's private RNG stream.
    pub seed: u64,
    /// Profile applied to every port without an override.
    #[serde(default)]
    pub base: FaultProfile,
    /// Per-port overrides, replacing `base` entirely for that port.
    #[serde(default)]
    pub per_port: Vec<(u16, FaultProfile)>,
}

impl FaultConfig {
    /// A benign (fault-free) configuration with the given seed.
    pub fn new(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            base: FaultProfile::none(),
            per_port: Vec::new(),
        }
    }

    /// Set the default profile for all ports.
    pub fn with_base(mut self, profile: FaultProfile) -> FaultConfig {
        self.base = profile;
        self
    }

    /// Override the profile for one port.
    pub fn with_port(mut self, port: u16, profile: FaultProfile) -> FaultConfig {
        self.per_port.retain(|(p, _)| *p != port);
        self.per_port.push((port, profile));
        self
    }
}

/// Retry policy for failed freeze-and-reads: capped exponential backoff
/// with multiplicative jitter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Delay before the first retry.
    pub base_backoff: Nanos,
    /// Ceiling on the (pre-jitter) delay.
    pub max_backoff: Nanos,
    /// Jitter fraction in `[0, 1)`: each delay is scaled uniformly within
    /// `[1 − jitter, 1 + jitter]` to decorrelate retry storms.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            base_backoff: 5_000,  // 5 µs
            max_backoff: 320_000, // 320 µs — a few t_set at paper scales
            jitter: 0.1,
        }
    }
}

impl RetryPolicy {
    /// The capped exponential delay for 0-based retry `attempt`, before
    /// jitter: `min(base · 2^attempt, max)`.
    pub fn raw_backoff(&self, attempt: u32) -> Nanos {
        let factor = 1u64.checked_shl(attempt).unwrap_or(u64::MAX);
        self.base_backoff
            .saturating_mul(factor)
            .min(self.max_backoff)
            .max(1)
    }

    /// Has `attempt` reached the backoff ceiling?
    pub fn at_ceiling(&self, attempt: u32) -> bool {
        let factor = 1u64.checked_shl(attempt).unwrap_or(u64::MAX);
        self.base_backoff.saturating_mul(factor) >= self.max_backoff
    }
}

/// Deterministic seeded fault injector, one per analysis program.
///
/// All randomness comes from a private xoshiro stream seeded by
/// [`FaultConfig::seed`]; injected fault sequences depend only on the
/// seed and the order of queries against the injector.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    config: FaultConfig,
    rng: SmallRng,
}

impl FaultInjector {
    /// Build an injector from its configuration.
    pub fn new(config: FaultConfig) -> FaultInjector {
        let rng = SmallRng::seed_from_u64(config.seed);
        FaultInjector { config, rng }
    }

    /// The configuration this injector was built from.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// The effective profile for `port`.
    pub fn profile(&self, port: u16) -> &FaultProfile {
        self.config
            .per_port
            .iter()
            .find(|(p, _)| *p == port)
            .map(|(_, prof)| prof)
            .unwrap_or(&self.config.base)
    }

    /// Is the control plane stalled for `port` at `now`?
    pub fn stalled(&self, port: u16, now: Nanos) -> bool {
        self.profile(port).stall.is_some_and(|s| s.covers(now))
    }

    /// Draw: does this read attempt fail?
    pub fn read_fails(&mut self, port: u16) -> bool {
        let p = self.profile(port).read_failure_prob.clamp(0.0, 1.0);
        p > 0.0 && self.rng.gen_bool(p)
    }

    /// Draw: how long does this read occupy the spare copy?
    pub fn read_latency(&mut self, port: u16) -> Nanos {
        let model = self.profile(port).read_latency;
        model.sample(&mut self.rng)
    }

    /// Draw: is this completed read's checkpoint lost before storage?
    pub fn drop_checkpoint(&mut self, port: u16) -> bool {
        let p = self.profile(port).drop_checkpoint_prob.clamp(0.0, 1.0);
        p > 0.0 && self.rng.gen_bool(p)
    }

    /// The jittered backoff delay for 0-based retry `attempt`.
    pub fn backoff(&mut self, policy: &RetryPolicy, attempt: u32) -> Nanos {
        let raw = policy.raw_backoff(attempt) as f64;
        let jitter = policy.jitter.clamp(0.0, 0.99);
        let scale = 1.0 - jitter + self.rng.gen::<f64>() * 2.0 * jitter;
        ((raw * scale) as Nanos).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_then_caps() {
        let policy = RetryPolicy {
            base_backoff: 100,
            max_backoff: 1_000,
            jitter: 0.0,
        };
        assert_eq!(policy.raw_backoff(0), 100);
        assert_eq!(policy.raw_backoff(1), 200);
        assert_eq!(policy.raw_backoff(2), 400);
        assert_eq!(policy.raw_backoff(3), 800);
        assert_eq!(policy.raw_backoff(4), 1_000, "capped");
        assert_eq!(policy.raw_backoff(63), 1_000);
        assert_eq!(policy.raw_backoff(64), 1_000, "shift overflow saturates");
        assert!(!policy.at_ceiling(3));
        assert!(policy.at_ceiling(4));
    }

    #[test]
    fn jitter_stays_within_bounds() {
        let policy = RetryPolicy {
            base_backoff: 10_000,
            max_backoff: 10_000,
            jitter: 0.25,
        };
        let mut inj = FaultInjector::new(FaultConfig::new(11));
        for attempt in 0..200 {
            let d = inj.backoff(&policy, attempt % 6);
            assert!((7_500..=12_500).contains(&d), "delay {d} outside ±25%");
        }
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        let config = FaultConfig::new(42).with_base(FaultProfile {
            read_failure_prob: 0.5,
            read_latency: LatencyModel::Uniform(100, 900),
            drop_checkpoint_prob: 0.2,
            stall: None,
        });
        let mut a = FaultInjector::new(config.clone());
        let mut b = FaultInjector::new(config);
        for _ in 0..256 {
            assert_eq!(a.read_fails(0), b.read_fails(0));
            assert_eq!(a.read_latency(0), b.read_latency(0));
            assert_eq!(a.drop_checkpoint(0), b.drop_checkpoint(0));
        }
    }

    #[test]
    fn per_port_override_wins() {
        let config = FaultConfig::new(1)
            .with_base(FaultProfile::read_failures(1.0))
            .with_port(7, FaultProfile::none());
        let mut inj = FaultInjector::new(config);
        for _ in 0..32 {
            assert!(inj.read_fails(0), "base profile always fails");
            assert!(!inj.read_fails(7), "override never fails");
        }
    }

    #[test]
    fn stall_windows_cover_their_prefix() {
        let s = StallWindows {
            period: 1_000,
            duration: 250,
        };
        assert!(s.covers(0));
        assert!(s.covers(249));
        assert!(!s.covers(250));
        assert!(!s.covers(999));
        assert!(s.covers(1_100));
    }

    #[test]
    fn benign_profiles_are_detected() {
        assert!(FaultProfile::none().is_benign());
        assert!(!FaultProfile::read_failures(0.1).is_benign());
        let latency_only = FaultProfile {
            read_latency: LatencyModel::Fixed(10),
            ..FaultProfile::none()
        };
        assert!(!latency_only.is_benign());
    }

    #[test]
    fn config_roundtrips_through_json() {
        let config = FaultConfig::new(9)
            .with_base(FaultProfile {
                read_failure_prob: 0.25,
                read_latency: LatencyModel::Uniform(1_000, 5_000),
                drop_checkpoint_prob: 0.05,
                stall: Some(StallWindows {
                    period: 1_000_000,
                    duration: 50_000,
                }),
            })
            .with_port(3, FaultProfile::read_failures(0.9));
        let json = serde_json::to_string(&config).unwrap();
        let back: FaultConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, config);
    }
}
