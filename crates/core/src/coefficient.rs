//! Count-recovery coefficients — Algorithm 2 and Theorems 1–3 of the paper.
//!
//! Passing across time windows is lossy: by Theorem 2 the expected fraction
//! of a window's fresh packets that survive into the next window is
//! `r = z · (1 − p^{2^α}) / (1 − p) / 2^α`, where `z` is the probability a
//! cell receives a fresh packet each window period and `p = 1 − z²` is the
//! no-pass probability of Theorem 1. `coefficient[i]` is the cumulative
//! product of those per-hop ratios, so dividing an observed per-flow packet
//! count in window `i` by `coefficient[i]` recovers the expected count the
//! flow had in window 0 — the "proportional property".
//!
//! Theorem 3 supplies the boot value: at line rate, window 0's `z` is
//! `2^{m0} / d` with `d` the transmission delay of a minimum-sized packet.

use crate::params::TimeWindowConfig;
use pq_packet::Nanos;

/// The per-window recovery coefficients plus the intermediate `z` values
/// (exposed for the analysis in the property tests and benches).
#[derive(Debug, Clone, PartialEq)]
pub struct Coefficients {
    /// `coefficient[i]`: expected observed fraction in window `i` of a count
    /// that was fresh in window 0. `coefficient[0] = 1`.
    pub coefficient: Vec<f64>,
    /// Per-window fresh-cell probability `z_i`.
    pub z: Vec<f64>,
}

impl Coefficients {
    /// Algorithm 2, with `d` = transmission delay of a minimum-sized packet
    /// in nanoseconds.
    pub fn compute(config: &TimeWindowConfig, d: Nanos) -> Coefficients {
        assert!(d > 0, "transmission delay must be positive");
        let t = usize::from(config.t);
        let two_alpha = f64::from(1u32 << config.alpha);
        let mut coefficient = vec![1.0f64; t];
        let mut zs = Vec::with_capacity(t);

        // Theorem 3: window 0's z. Clamp to 1: if the cell period exceeds
        // the packet gap, window 0 saturates (the paper assumes 2^m0 ≤ d,
        // but sweeps may explore beyond it).
        let mut z = ((1u64 << config.m0) as f64 / d as f64).min(1.0);
        zs.push(z);
        let mut acc = 1.0f64;
        #[allow(clippy::needless_range_loop)]
        for i in 1..t {
            let p = 1.0 - z * z;
            // Ratio of Theorem 2; the (1-p^{2^α})/(1-p) factor is the
            // geometric series Σ_{m<2^α} p^m. Guard the p→1 limit (z→0),
            // where the series sums to 2^α.
            let series = if 1.0 - p < 1e-12 {
                two_alpha
            } else {
                (1.0 - p.powf(two_alpha)) / (1.0 - p)
            };
            let ratio = z * series / two_alpha;
            // Floor against f64 underflow for pathologically slow traffic:
            // recover() divides by the coefficient and must stay finite.
            acc = (acc * ratio).max(1e-300);
            coefficient[i] = acc;
            z = 1.0 - p.powf(two_alpha);
            zs.push(z);
        }
        Coefficients { coefficient, z: zs }
    }

    /// Recover the original (window-0-equivalent) count from an observation
    /// of `n` packets in window `i`.
    pub fn recover(&self, window: u8, n: f64) -> f64 {
        n / self.coefficient[usize::from(window)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coeffs(m0: u8, alpha: u8, t: u8, d: Nanos) -> Coefficients {
        Coefficients::compute(&TimeWindowConfig::new(m0, alpha, 12, t), d)
    }

    #[test]
    fn coefficient_zero_is_one() {
        let c = coeffs(6, 2, 4, 80);
        assert_eq!(c.coefficient[0], 1.0);
    }

    #[test]
    fn coefficients_decrease_monotonically() {
        // Each hop loses packets, so deeper windows observe smaller
        // fractions.
        for (m0, alpha, d) in [(6u8, 1u8, 80u64), (6, 2, 80), (10, 1, 1200), (6, 3, 52)] {
            let c = coeffs(m0, alpha, 5, d);
            for w in c.coefficient.windows(2) {
                assert!(
                    w[1] < w[0] && w[1] > 0.0,
                    "coefficients not decreasing for m0={m0} alpha={alpha}: {:?}",
                    c.coefficient
                );
            }
        }
    }

    #[test]
    fn saturated_window0_passes_half_with_alpha1() {
        // z = 1 (every cell fresh every period): p = 0, series = 1, ratio =
        // 1/2^α... with α = 1 the next window keeps 1/2 of the packets —
        // matching the intuition that two cells merge into one.
        let c = coeffs(6, 1, 3, 64); // 2^6 / 64 = 1
        assert!((c.z[0] - 1.0).abs() < 1e-12);
        assert!((c.coefficient[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn z_evolves_via_theorem2() {
        let config = TimeWindowConfig::new(6, 2, 4, 12);
        let c = Coefficients::compute(&config, 110);
        // z_{i+1} = 1 - (1 - z_i^2)^{2^alpha}.
        for i in 0..c.z.len() - 1 {
            let p = 1.0 - c.z[i] * c.z[i];
            let expect = 1.0 - p.powi(4);
            assert!((c.z[i + 1] - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn recover_inverts_observation() {
        let c = coeffs(6, 2, 4, 110);
        let original = 1000.0;
        for w in 0..4u8 {
            let observed = original * c.coefficient[usize::from(w)];
            assert!((c.recover(w, observed) - original).abs() < 1e-6);
        }
    }

    #[test]
    fn tiny_z_does_not_produce_nan() {
        // Very slow traffic: z near zero must stay finite via the series
        // guard.
        let c = coeffs(6, 2, 6, 1_000_000_000);
        for v in &c.coefficient {
            assert!(v.is_finite() && *v > 0.0, "bad coefficient {v}");
        }
    }

    /// Monte-Carlo check of Theorem 2: simulate the cell process directly
    /// (fresh packet in each cell with probability z per window period,
    /// Algorithm-1 one-shot passing, 2^α window-0 cells merging into one
    /// window-1 cell) and compare the measured survival ratio with the
    /// analytic `z · (1 − p^{2^α}) / (1 − p) / 2^α`.
    ///
    /// A packet fresh in period P can be passed only during period P+1; it
    /// *survives* (counts as "stored in the subsequent window") if no later
    /// pass in period P+1 lands in the same merged cell. So survivors of
    /// fresh-period P = merged cells whose last pass of period P+1 carried
    /// a fresh-P packet — and every pass in period P+1 carries a fresh-P
    /// packet by the one-shot rule.
    #[test]
    fn theorem2_matches_simulation() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        for (alpha, z) in [(1u32, 0.8f64), (2, 0.6), (1, 0.3)] {
            let p = 1.0 - z * z;
            let two_alpha = 1usize << alpha;
            let analytic = z * (1.0 - p.powf(two_alpha as f64)) / (1.0 - p) / two_alpha as f64;

            let mut rng = SmallRng::seed_from_u64(42 + alpha as u64);
            let cells = 1 << 14;
            let periods = 40usize;
            // Window-0 cell state: Some(period the occupant was written).
            let mut window0: Vec<Option<usize>> = vec![None; cells];
            let mut fresh = vec![0usize; periods];
            let mut survived = vec![0usize; periods];
            // Merged-cell scoreboard: did the *last* pass of this period
            // land here (value = period of the pass)?
            let mut last_pass: Vec<Option<usize>> = vec![None; cells >> alpha];
            for period in 0..periods {
                for (idx, cell) in window0.iter_mut().enumerate() {
                    if rng.gen::<f64>() < z {
                        fresh[period] += 1;
                        if let Some(wrote) = cell.replace(period) {
                            if period - wrote == 1 {
                                last_pass[idx >> alpha] = Some(period);
                            }
                        }
                    }
                }
                // End of `period`: every merged cell whose last pass
                // happened this period holds a survivor fresh in period-1.
                if period >= 1 {
                    survived[period - 1] +=
                        last_pass.iter().filter(|p| **p == Some(period)).count();
                }
            }
            let total_fresh: usize = fresh[5..periods - 5].iter().sum();
            let total_survived: usize = survived[5..periods - 5].iter().sum();
            let measured = total_survived as f64 / total_fresh as f64;
            assert!(
                (measured - analytic).abs() < 0.05,
                "alpha={alpha} z={z}: measured {measured:.3} vs analytic {analytic:.3}"
            );
        }
    }
}
