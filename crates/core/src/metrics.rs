//! Accuracy metrics — the §7.1 methodology.
//!
//! "We first compute, for every flow in the query period, the true positives
//! of PrintQueue. Precision is the sum of the true positives over
//! PrintQueue's cumulative packet count estimate. Recall is the sum of the
//! true positives over the ground truth's cumulative estimate." A flow's
//! true positives are `min(estimate, truth)`.

use pq_packet::FlowId;
use pq_telemetry::{names, Counter, Histogram, Telemetry};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Per-flow packet counts (either estimated or ground truth).
pub type FlowCounts = HashMap<FlowId, f64>;

/// A precision/recall pair.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PrecisionRecall {
    pub precision: f64,
    pub recall: f64,
}

impl PrecisionRecall {
    /// F1 harmonic mean (not used by the paper, handy in tests).
    pub fn f1(&self) -> f64 {
        if self.precision + self.recall == 0.0 {
            0.0
        } else {
            2.0 * self.precision * self.recall / (self.precision + self.recall)
        }
    }
}

/// Control-plane health counters: how the analysis program's read loop is
/// faring under (possibly injected) faults. All counters are cumulative
/// since construction; with no fault injector only `polls_attempted` and
/// `checkpoints_stored` move (and stay equal).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ControlHealth {
    /// Freeze-and-read attempts issued (first tries and retries alike).
    pub polls_attempted: u64,
    /// Attempts that failed outright (injected read failure).
    pub polls_failed: u64,
    /// Attempts that were retries of earlier failures or deferrals.
    pub polls_retried: u64,
    /// Attempts rejected because the control plane was inside an injected
    /// stall window.
    pub polls_stalled: u64,
    /// Checkpoints successfully stored.
    pub checkpoints_stored: u64,
    /// Checkpoints read but lost before storage (injected drop).
    pub checkpoints_dropped: u64,
    /// Coverage gaps recorded (inter-checkpoint silence exceeded `t_set`).
    pub coverage_gaps: u64,
    /// Total nanoseconds covered by recorded gaps.
    pub gap_ns: u64,
    /// Failures whose backoff had already reached the policy ceiling.
    pub backoff_ceiling_hits: u64,
    /// Data-plane triggers rejected while a special read was outstanding.
    pub dp_triggers_rejected: u64,
    /// Checkpoint-spill sink writes that failed (the checkpoint stays in
    /// the in-RAM ring; on-disk history has a hole). Zero without a sink.
    #[serde(default)]
    pub spill_errors: u64,
}

impl ControlHealth {
    /// Accumulate another instance's counters (fleet rollups).
    pub fn merge(&mut self, other: &ControlHealth) {
        self.polls_attempted += other.polls_attempted;
        self.polls_failed += other.polls_failed;
        self.polls_retried += other.polls_retried;
        self.polls_stalled += other.polls_stalled;
        self.checkpoints_stored += other.checkpoints_stored;
        self.checkpoints_dropped += other.checkpoints_dropped;
        self.coverage_gaps += other.coverage_gaps;
        self.gap_ns += other.gap_ns;
        self.backoff_ceiling_hits += other.backoff_ceiling_hits;
        self.dp_triggers_rejected += other.dp_triggers_rejected;
        self.spill_errors += other.spill_errors;
    }

    /// Fraction of read attempts that failed or stalled (0 when none ran).
    pub fn poll_failure_rate(&self) -> f64 {
        if self.polls_attempted == 0 {
            0.0
        } else {
            (self.polls_failed + self.polls_stalled) as f64 / self.polls_attempted as f64
        }
    }

    /// A healthy control plane has lost no coverage and dropped nothing.
    pub fn is_healthy(&self) -> bool {
        self.coverage_gaps == 0 && self.checkpoints_dropped == 0 && self.polls_failed == 0
    }
}

/// Pre-resolved registry handles for every control-plane counter.
///
/// The registry is the single source of truth for these numbers;
/// [`ControlHealth`] is assembled on demand as a back-compat *view* of the
/// same atomics ([`ControlCounters::health`]), so the struct an experiment
/// serializes and the exposition `pqsim --telemetry` emits can never
/// disagree. Handles are resolved once per telemetry plane (registration is
/// the cold path); incrementing them is a relaxed atomic add.
pub(crate) struct ControlCounters {
    pub polls_attempted: Counter,
    pub polls_failed: Counter,
    pub polls_retried: Counter,
    pub polls_stalled: Counter,
    pub checkpoints_stored: Counter,
    pub checkpoints_dropped: Counter,
    pub coverage_gaps: Counter,
    pub gap_ns: Counter,
    pub backoff_ceiling_hits: Counter,
    pub dp_triggers_rejected: Counter,
    pub spill_errors: Counter,
    pub entries_read: Counter,
    pub bytes_read: Counter,
    pub read_ns: Histogram,
}

impl ControlCounters {
    /// Resolve every handle against `plane`'s registry.
    pub fn resolve(plane: &Telemetry) -> ControlCounters {
        let reg = plane.registry();
        ControlCounters {
            polls_attempted: reg.counter(names::CONTROL_POLLS_ATTEMPTED, &[]),
            polls_failed: reg.counter(names::CONTROL_POLLS_FAILED, &[]),
            polls_retried: reg.counter(names::CONTROL_POLLS_RETRIED, &[]),
            polls_stalled: reg.counter(names::CONTROL_POLLS_STALLED, &[]),
            checkpoints_stored: reg.counter(names::CONTROL_CHECKPOINTS_STORED, &[]),
            checkpoints_dropped: reg.counter(names::CONTROL_CHECKPOINTS_DROPPED, &[]),
            coverage_gaps: reg.counter(names::CONTROL_COVERAGE_GAPS, &[]),
            gap_ns: reg.counter(names::CONTROL_GAP_NS, &[]),
            backoff_ceiling_hits: reg.counter(names::CONTROL_BACKOFF_CEILING, &[]),
            dp_triggers_rejected: reg.counter(names::CONTROL_DP_REJECTED, &[]),
            spill_errors: reg.counter(names::CONTROL_SPILL_ERRORS, &[]),
            entries_read: reg.counter(names::CONTROL_ENTRIES_READ, &[]),
            bytes_read: reg.counter(names::CONTROL_BYTES_READ, &[]),
            read_ns: reg.histogram(names::CONTROL_READ_NS, &[]),
        }
    }

    /// Carry counts accumulated under a previous plane into this one, so
    /// attaching telemetry mid-run loses nothing.
    pub fn seed(&self, health: &ControlHealth, entries_read: u64, bytes_read: u64) {
        self.polls_attempted.add(health.polls_attempted);
        self.polls_failed.add(health.polls_failed);
        self.polls_retried.add(health.polls_retried);
        self.polls_stalled.add(health.polls_stalled);
        self.checkpoints_stored.add(health.checkpoints_stored);
        self.checkpoints_dropped.add(health.checkpoints_dropped);
        self.coverage_gaps.add(health.coverage_gaps);
        self.gap_ns.add(health.gap_ns);
        self.backoff_ceiling_hits.add(health.backoff_ceiling_hits);
        self.dp_triggers_rejected.add(health.dp_triggers_rejected);
        self.spill_errors.add(health.spill_errors);
        self.entries_read.add(entries_read);
        self.bytes_read.add(bytes_read);
    }

    /// The back-compat view: a [`ControlHealth`] read out of the registry.
    pub fn health(&self) -> ControlHealth {
        ControlHealth {
            polls_attempted: self.polls_attempted.get(),
            polls_failed: self.polls_failed.get(),
            polls_retried: self.polls_retried.get(),
            polls_stalled: self.polls_stalled.get(),
            checkpoints_stored: self.checkpoints_stored.get(),
            checkpoints_dropped: self.checkpoints_dropped.get(),
            coverage_gaps: self.coverage_gaps.get(),
            gap_ns: self.gap_ns.get(),
            backoff_ceiling_hits: self.backoff_ceiling_hits.get(),
            dp_triggers_rejected: self.dp_triggers_rejected.get(),
            spill_errors: self.spill_errors.get(),
        }
    }
}

/// Compute per-flow-weighted precision and recall of `estimate` against
/// `truth` (§7.1).
///
/// Conventions for the degenerate cases: an empty estimate has precision 1
/// (nothing claimed, nothing wrong) and an empty truth has recall 1.
pub fn precision_recall(estimate: &FlowCounts, truth: &FlowCounts) -> PrecisionRecall {
    let est_total: f64 = estimate.values().sum();
    let truth_total: f64 = truth.values().sum();
    let tp: f64 = estimate
        .iter()
        .map(|(flow, est)| truth.get(flow).copied().unwrap_or(0.0).min(*est))
        .sum();
    PrecisionRecall {
        precision: if est_total == 0.0 {
            1.0
        } else {
            tp / est_total
        },
        recall: if truth_total == 0.0 {
            1.0
        } else {
            tp / truth_total
        },
    }
}

/// Restrict `counts` to its `k` largest flows (ties broken by flow id for
/// determinism) — the Figure 12 Top-K metric.
pub fn top_k(counts: &FlowCounts, k: usize) -> FlowCounts {
    let mut ranked: Vec<(FlowId, f64)> = counts.iter().map(|(f, n)| (*f, *n)).collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    ranked.truncate(k);
    ranked.into_iter().collect()
}

/// Convert integer ground-truth counts to the float-valued [`FlowCounts`].
pub fn to_float_counts(counts: &HashMap<FlowId, u64>) -> FlowCounts {
    counts.iter().map(|(f, n)| (*f, *n as f64)).collect()
}

/// Median of a slice (averaging the middle pair for even lengths).
/// Returns 0 for an empty slice.
pub fn median(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

/// Mean of a slice (0 for empty).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Empirical CDF points `(value, fraction ≤ value)` for plotting
/// (Figure 10's precision/recall CDFs).
pub fn cdf_points(values: &[f64]) -> Vec<(f64, f64)> {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = sorted.len();
    sorted
        .into_iter()
        .enumerate()
        .map(|(i, v)| (v, (i + 1) as f64 / n as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(pairs: &[(u32, f64)]) -> FlowCounts {
        pairs.iter().map(|(f, n)| (FlowId(*f), *n)).collect()
    }

    #[test]
    fn perfect_estimate_scores_one() {
        let truth = counts(&[(1, 10.0), (2, 5.0)]);
        let pr = precision_recall(&truth, &truth);
        assert_eq!(pr.precision, 1.0);
        assert_eq!(pr.recall, 1.0);
        assert_eq!(pr.f1(), 1.0);
    }

    #[test]
    fn overestimate_hurts_precision_only() {
        let truth = counts(&[(1, 10.0)]);
        let est = counts(&[(1, 20.0)]);
        let pr = precision_recall(&est, &truth);
        assert_eq!(pr.precision, 0.5);
        assert_eq!(pr.recall, 1.0);
    }

    #[test]
    fn underestimate_hurts_recall_only() {
        let truth = counts(&[(1, 10.0)]);
        let est = counts(&[(1, 5.0)]);
        let pr = precision_recall(&est, &truth);
        assert_eq!(pr.precision, 1.0);
        assert_eq!(pr.recall, 0.5);
    }

    #[test]
    fn phantom_flow_hurts_precision() {
        let truth = counts(&[(1, 10.0)]);
        let est = counts(&[(1, 10.0), (2, 10.0)]);
        let pr = precision_recall(&est, &truth);
        assert_eq!(pr.precision, 0.5);
        assert_eq!(pr.recall, 1.0);
    }

    #[test]
    fn empty_cases() {
        let empty = FlowCounts::new();
        let truth = counts(&[(1, 1.0)]);
        let pr = precision_recall(&empty, &truth);
        assert_eq!(pr.precision, 1.0);
        assert_eq!(pr.recall, 0.0);
        let pr = precision_recall(&truth, &empty);
        assert_eq!(pr.precision, 0.0);
        assert_eq!(pr.recall, 1.0);
        assert_eq!(precision_recall(&empty, &empty).f1(), 1.0);
    }

    #[test]
    fn top_k_selects_largest() {
        let c = counts(&[(1, 5.0), (2, 9.0), (3, 1.0)]);
        let top2 = top_k(&c, 2);
        assert_eq!(top2.len(), 2);
        assert!(top2.contains_key(&FlowId(1)));
        assert!(top2.contains_key(&FlowId(2)));
    }

    #[test]
    fn median_and_mean() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
    }

    #[test]
    fn cdf_is_monotone_ending_at_one() {
        let points = cdf_points(&[0.5, 0.1, 0.9, 0.1]);
        assert_eq!(points.len(), 4);
        assert!(points
            .windows(2)
            .all(|w| w[0].0 <= w[1].0 && w[0].1 < w[1].1));
        assert_eq!(points.last().unwrap().1, 1.0);
    }
}
