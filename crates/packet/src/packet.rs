//! The simulation-level packet descriptor.
//!
//! Inside the simulator we do not shuttle full byte buffers through the
//! switch for every packet — at UW-trace rates (~9 Mpps) that would dominate
//! runtime without changing any result, because PrintQueue only reads the
//! metadata of Table 1. [`SimPacket`] is that metadata plus the flow id and
//! wire length. The integration tests build real byte frames with
//! [`crate::ethernet`]/[`crate::ipv4`]/... and convert them to descriptors to
//! prove the two views agree.

use crate::ethernet;
use crate::flow::{FlowId, FlowKey, Protocol};
use crate::ipv4;
use crate::tcp;
use crate::time::Nanos;
use crate::udp;
use crate::wire::{Error, Result};
use serde::{Deserialize, Serialize};

/// Queueing metadata attached by the traffic manager, mirroring the intrinsic
/// metadata of Table 1 in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PacketMeta {
    /// `egress_spec` — output port chosen by the ingress pipeline.
    pub egress_port: u16,
    /// `enq_timestamp` — when the packet entered the queue.
    pub enq_timestamp: Nanos,
    /// `deq_timedelta` — time spent in the queue.
    pub deq_timedelta: u32,
    /// `enq_qdepth` — depth (in buffer cells) of the packet's *own* queue
    /// observed at enqueue, *including* this packet's cells. For a FIFO
    /// port this equals the port depth; multi-queue disciplines report the
    /// per-queue depth, which is what the paper's queue monitor tracks
    /// "individually" per queue (§5).
    pub enq_qdepth: u32,
    /// Which of the egress port's queues the packet occupied (0 on FIFO
    /// ports).
    #[serde(default)]
    pub queue: u8,
}

impl PacketMeta {
    /// Dequeue timestamp: `enq_timestamp + deq_timedelta` (§4.2).
    pub fn deq_timestamp(&self) -> Nanos {
        self.enq_timestamp + Nanos::from(self.deq_timedelta)
    }
}

/// A packet travelling through the simulated switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimPacket {
    /// Interned flow identity.
    pub flow: FlowId,
    /// Wire length in bytes (Ethernet frame, no FCS).
    pub len: u32,
    /// Time the packet arrived at the switch ingress.
    pub arrival: Nanos,
    /// Scheduling priority (0 = highest). Only meaningful for
    /// priority-scheduled ports; FIFO ports ignore it.
    pub priority: u8,
    /// Monotonic per-simulation sequence number, used to keep ground truth
    /// records unambiguous even when timestamps collide.
    pub seqno: u64,
    /// Queueing metadata, filled by the traffic manager.
    pub meta: PacketMeta,
}

impl SimPacket {
    /// Construct an un-enqueued packet.
    pub fn new(flow: FlowId, len: u32, arrival: Nanos) -> SimPacket {
        SimPacket {
            flow,
            len,
            arrival,
            priority: 0,
            seqno: 0,
            meta: PacketMeta::default(),
        }
    }

    /// Builder-style priority assignment.
    pub fn with_priority(mut self, priority: u8) -> SimPacket {
        self.priority = priority;
        self
    }
}

/// A fully parsed frame: link + network + transport headers and the flow key
/// derived from them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedFrame {
    pub ethernet: ethernet::Repr,
    pub ipv4: ipv4::Repr,
    pub flow: FlowKey,
    /// Transport payload length in bytes.
    pub payload_len: usize,
    /// Total frame length in bytes.
    pub frame_len: usize,
}

/// Parse an Ethernet/IPv4/{TCP,UDP} frame into a [`ParsedFrame`].
///
/// This is the ingress parser of the simulated switch: exactly the state
/// machine a P4 parser would run to extract the 5-tuple ("The flow ID can be
/// derived directly from packet header contents", §4).
pub fn parse_frame(bytes: &[u8]) -> Result<ParsedFrame> {
    let eth_frame = ethernet::Frame::new_checked(bytes)?;
    let eth = ethernet::Repr::parse(&eth_frame);
    if eth.ethertype != ethernet::EtherType::Ipv4 {
        return Err(Error::Malformed);
    }
    let ip_packet = ipv4::Packet::new_checked(eth_frame.payload())?;
    let ip = ipv4::Repr::parse(&ip_packet)?;
    let (src_port, dst_port, payload_len) = match Protocol::from(ip.protocol) {
        Protocol::Tcp => {
            let seg = tcp::Segment::new_checked(ip_packet.payload())?;
            let repr = tcp::Repr::parse(&seg);
            (repr.src_port, repr.dst_port, seg.payload().len())
        }
        Protocol::Udp => {
            let dgram = udp::Datagram::new_checked(ip_packet.payload())?;
            let repr = udp::Repr::parse(&dgram);
            (repr.src_port, repr.dst_port, dgram.payload().len())
        }
        Protocol::Other(_) => (0, 0, ip_packet.payload().len()),
    };
    let flow = FlowKey {
        src: ip.src.0,
        dst: ip.dst.0,
        src_port,
        dst_port,
        protocol: Protocol::from(ip.protocol),
    };
    Ok(ParsedFrame {
        ethernet: eth,
        ipv4: ip,
        flow,
        payload_len,
        frame_len: bytes.len(),
    })
}

/// Build a complete Ethernet/IPv4/{TCP,UDP} frame for a flow with
/// `payload_len` payload bytes (zero-filled). Used by tests and examples to
/// exercise the byte-level path.
pub fn build_frame(flow: &FlowKey, payload_len: usize) -> Vec<u8> {
    let transport_len = match flow.protocol {
        Protocol::Tcp => tcp::HEADER_LEN,
        Protocol::Udp => udp::HEADER_LEN,
        Protocol::Other(_) => 0,
    } + payload_len;
    let total = ethernet::HEADER_LEN + ipv4::HEADER_LEN + transport_len;
    let mut bytes = vec![0u8; total];

    let eth = ethernet::Repr {
        dst: ethernet::Address([0x02, 0, 0, 0, 0, 0x01]),
        src: ethernet::Address([0x02, 0, 0, 0, 0, 0x02]),
        ethertype: ethernet::EtherType::Ipv4,
    };
    let mut eth_frame = ethernet::Frame::new_unchecked(&mut bytes);
    eth.emit(&mut eth_frame);

    let ip = ipv4::Repr {
        src: flow.src_addr(),
        dst: flow.dst_addr(),
        protocol: flow.protocol.number(),
        payload_len: transport_len as u16,
        dscp: 0,
        ttl: 64,
    };
    let mut ip_packet = ipv4::Packet::new_unchecked(eth_frame.payload_mut());
    ip.emit(&mut ip_packet);

    match flow.protocol {
        Protocol::Tcp => {
            let repr = tcp::Repr {
                src_port: flow.src_port,
                dst_port: flow.dst_port,
                seq: 0,
                ack: 0,
                flags: tcp::flags::ACK,
                window: 65535,
            };
            let mut seg = tcp::Segment::new_unchecked(ip_packet.payload_mut());
            repr.emit(&mut seg, flow.src_addr(), flow.dst_addr());
        }
        Protocol::Udp => {
            let repr = udp::Repr {
                src_port: flow.src_port,
                dst_port: flow.dst_port,
                payload_len: payload_len as u16,
            };
            let mut dgram = udp::Datagram::new_unchecked(ip_packet.payload_mut());
            repr.emit(&mut dgram, flow.src_addr(), flow.dst_addr());
        }
        Protocol::Other(_) => {}
    }
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipv4::Address;

    fn tcp_key() -> FlowKey {
        FlowKey::tcp(
            Address::new(10, 0, 0, 1),
            40000,
            Address::new(10, 0, 1, 2),
            80,
        )
    }

    fn udp_key() -> FlowKey {
        FlowKey::udp(
            Address::new(10, 0, 0, 9),
            5000,
            Address::new(10, 0, 1, 2),
            9999,
        )
    }

    #[test]
    fn build_then_parse_tcp() {
        let key = tcp_key();
        let bytes = build_frame(&key, 100);
        let parsed = parse_frame(&bytes).unwrap();
        assert_eq!(parsed.flow, key);
        assert_eq!(parsed.payload_len, 100);
        assert_eq!(parsed.frame_len, bytes.len());
    }

    #[test]
    fn build_then_parse_udp() {
        let key = udp_key();
        let bytes = build_frame(&key, 22);
        let parsed = parse_frame(&bytes).unwrap();
        assert_eq!(parsed.flow, key);
        assert_eq!(parsed.payload_len, 22);
    }

    #[test]
    fn non_ipv4_rejected() {
        let key = tcp_key();
        let mut bytes = build_frame(&key, 10);
        bytes[12..14].copy_from_slice(&0x0806u16.to_be_bytes()); // ARP
        assert_eq!(parse_frame(&bytes).unwrap_err(), Error::Malformed);
    }

    #[test]
    fn meta_deq_timestamp() {
        let meta = PacketMeta {
            egress_port: 1,
            enq_timestamp: 100,
            deq_timedelta: 40,
            enq_qdepth: 7,
            queue: 0,
        };
        assert_eq!(meta.deq_timestamp(), 140);
    }

    #[test]
    fn sim_packet_builder() {
        let p = SimPacket::new(FlowId(3), 64, 1000).with_priority(2);
        assert_eq!(p.priority, 2);
        assert_eq!(p.len, 64);
        assert_eq!(p.meta, PacketMeta::default());
    }
}
