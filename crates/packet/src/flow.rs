//! Flow identification: the 5-tuple key and the compact interned flow ID.
//!
//! PrintQueue identifies every culprit flow by its 5-tuple (§3 of the paper):
//! source/destination IPv4 addresses, source/destination transport ports, and
//! the protocol number. On the Tofino the data-plane register cells store a
//! 32-bit flow signature computed from these fields; the reproduction mirrors
//! that with an interned [`FlowId`] (`u32`) handed out by a [`FlowTable`], so
//! a register cell costs the same 4 bytes it costs on the ASIC while queries
//! can still recover the full tuple.

use crate::ipv4;
use core::fmt;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Transport protocols distinguished by the flow key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Protocol {
    Tcp,
    Udp,
    /// Any other IP protocol number.
    Other(u8),
}

impl Protocol {
    /// The IP protocol number.
    pub fn number(self) -> u8 {
        match self {
            Protocol::Tcp => 6,
            Protocol::Udp => 17,
            Protocol::Other(n) => n,
        }
    }
}

impl From<u8> for Protocol {
    fn from(n: u8) -> Self {
        match n {
            6 => Protocol::Tcp,
            17 => Protocol::Udp,
            other => Protocol::Other(other),
        }
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Protocol::Tcp => write!(f, "tcp"),
            Protocol::Udp => write!(f, "udp"),
            Protocol::Other(n) => write!(f, "proto{n}"),
        }
    }
}

/// The 5-tuple flow key (§3: "Flow ID, expressed as 5-Tuple").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FlowKey {
    pub src: [u8; 4],
    pub dst: [u8; 4],
    pub src_port: u16,
    pub dst_port: u16,
    pub protocol: Protocol,
}

impl FlowKey {
    /// Build a TCP flow key from address/port pairs.
    pub fn tcp(src: ipv4::Address, src_port: u16, dst: ipv4::Address, dst_port: u16) -> FlowKey {
        FlowKey {
            src: src.0,
            dst: dst.0,
            src_port,
            dst_port,
            protocol: Protocol::Tcp,
        }
    }

    /// Build a UDP flow key from address/port pairs.
    pub fn udp(src: ipv4::Address, src_port: u16, dst: ipv4::Address, dst_port: u16) -> FlowKey {
        FlowKey {
            src: src.0,
            dst: dst.0,
            src_port,
            dst_port,
            protocol: Protocol::Udp,
        }
    }

    /// Source address as the wire type.
    pub fn src_addr(&self) -> ipv4::Address {
        ipv4::Address(self.src)
    }

    /// Destination address as the wire type.
    pub fn dst_addr(&self) -> ipv4::Address {
        ipv4::Address(self.dst)
    }

    /// A stable 32-bit signature of the tuple — the value a Tofino register
    /// cell would store. FNV-1a over the 13 tuple bytes: cheap, deterministic
    /// across runs (unlike `DefaultHasher`), and adequately mixed for the
    /// hash-indexed baselines.
    pub fn signature(&self) -> u32 {
        let mut hash: u32 = 0x811c_9dc5;
        let mut eat = |byte: u8| {
            hash ^= u32::from(byte);
            hash = hash.wrapping_mul(0x0100_0193);
        };
        for b in self.src {
            eat(b);
        }
        for b in self.dst {
            eat(b);
        }
        for b in self.src_port.to_be_bytes() {
            eat(b);
        }
        for b in self.dst_port.to_be_bytes() {
            eat(b);
        }
        eat(self.protocol.number());
        hash
    }

    /// An independent second hash (FNV over the bytes in reverse with a
    /// different offset basis) for multi-hash structures such as FlowRadar's
    /// encoded flowset.
    pub fn signature2(&self) -> u32 {
        let mut hash: u32 = 0xcbf2_9ce4;
        let mut eat = |byte: u8| {
            hash = hash.wrapping_mul(0x0100_0193);
            hash ^= u32::from(byte);
        };
        eat(self.protocol.number());
        for b in self.dst_port.to_be_bytes().iter().rev() {
            eat(*b);
        }
        for b in self.src_port.to_be_bytes().iter().rev() {
            eat(*b);
        }
        for b in self.dst.iter().rev() {
            eat(*b);
        }
        for b in self.src.iter().rev() {
            eat(*b);
        }
        hash
    }
}

impl fmt::Display for FlowKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} > {}:{} ({})",
            self.src_addr(),
            self.src_port,
            self.dst_addr(),
            self.dst_port,
            self.protocol
        )
    }
}

/// Compact interned flow identifier, as stored in data-plane register cells.
///
/// `FlowId(u32::MAX)` is reserved as the "empty cell" sentinel by the
/// data-plane structures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FlowId(pub u32);

impl FlowId {
    /// Sentinel for an empty register cell.
    pub const NONE: FlowId = FlowId(u32::MAX);

    /// True when this is the empty-cell sentinel.
    pub fn is_none(self) -> bool {
        self == Self::NONE
    }
}

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_none() {
            write!(f, "flow#none")
        } else {
            write!(f, "flow#{}", self.0)
        }
    }
}

/// Bidirectional intern table between [`FlowKey`]s and dense [`FlowId`]s.
///
/// The simulator interns each tuple once at generation time; the data plane
/// then only ever touches the 4-byte id, faithfully modelling the ASIC's
/// storage cost while keeping query output human-readable.
#[derive(Debug, Default, Clone)]
pub struct FlowTable {
    ids: HashMap<FlowKey, FlowId>,
    keys: Vec<FlowKey>,
}

impl FlowTable {
    /// Create an empty table.
    pub fn new() -> FlowTable {
        FlowTable::default()
    }

    /// Intern a key, returning its dense id (allocating one if new).
    pub fn intern(&mut self, key: FlowKey) -> FlowId {
        if let Some(&id) = self.ids.get(&key) {
            return id;
        }
        let id = FlowId(self.keys.len() as u32);
        assert!(id.0 != u32::MAX, "flow table exhausted the 32-bit id space");
        self.keys.push(key);
        self.ids.insert(key, id);
        id
    }

    /// Look up an id without interning.
    pub fn get(&self, key: &FlowKey) -> Option<FlowId> {
        self.ids.get(key).copied()
    }

    /// Recover the tuple for an id.
    pub fn resolve(&self, id: FlowId) -> Option<&FlowKey> {
        self.keys.get(id.0 as usize)
    }

    /// Number of interned flows.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when no flows are interned.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Iterate over `(FlowId, FlowKey)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (FlowId, &FlowKey)> {
        self.keys
            .iter()
            .enumerate()
            .map(|(i, k)| (FlowId(i as u32), k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u8) -> FlowKey {
        FlowKey::tcp(
            ipv4::Address::new(10, 0, 0, n),
            1000 + u16::from(n),
            ipv4::Address::new(10, 0, 1, 1),
            80,
        )
    }

    #[test]
    fn intern_is_idempotent() {
        let mut table = FlowTable::new();
        let a = table.intern(key(1));
        let b = table.intern(key(2));
        assert_ne!(a, b);
        assert_eq!(table.intern(key(1)), a);
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn resolve_roundtrip() {
        let mut table = FlowTable::new();
        let id = table.intern(key(7));
        assert_eq!(table.resolve(id), Some(&key(7)));
        assert_eq!(table.resolve(FlowId(99)), None);
    }

    #[test]
    fn signature_is_deterministic_and_discriminating() {
        let a = key(1).signature();
        assert_eq!(a, key(1).signature());
        assert_ne!(a, key(2).signature());
    }

    #[test]
    fn two_signatures_are_independent() {
        // Not a strong statistical test, just a regression check that the
        // two hashes don't collapse to the same function.
        let mut same = 0;
        for n in 0..100u8 {
            if key(n).signature() % 64 == key(n).signature2() % 64 {
                same += 1;
            }
        }
        assert!(same < 20, "hashes look correlated: {same}/100");
    }

    #[test]
    fn protocol_numbers_roundtrip() {
        assert_eq!(Protocol::from(6), Protocol::Tcp);
        assert_eq!(Protocol::from(17), Protocol::Udp);
        assert_eq!(Protocol::from(47), Protocol::Other(47));
        assert_eq!(Protocol::Other(47).number(), 47);
    }

    #[test]
    fn display_forms() {
        let k = key(3);
        assert_eq!(k.to_string(), "10.0.0.3:1003 > 10.0.1.1:80 (tcp)");
        assert_eq!(FlowId(5).to_string(), "flow#5");
        assert_eq!(FlowId::NONE.to_string(), "flow#none");
    }

    #[test]
    fn none_sentinel() {
        assert!(FlowId::NONE.is_none());
        assert!(!FlowId(0).is_none());
    }
}
