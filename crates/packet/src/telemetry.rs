//! PrintQueue ground-truth telemetry header.
//!
//! To compute its evaluation metrics, the paper's testbed switch inserts a
//! telemetry header into every packet carrying the enqueue/dequeue timestamps
//! and queue depth at enqueue (§7.1: "the switch inserts a telemetry header
//! into every packet that contains the enqueue/dequeue timestamps and queue
//! depth at the packet's enqueue time"). The header is *not* part of a real
//! deployment — only the ground-truth path uses it. We mirror it as a fixed
//! 20-byte header placed between Ethernet and IPv4 (ethertype 0x88b5).
//!
//! Layout (all big-endian):
//!
//! ```text
//!  0       4       8       12      16    18   20
//!  +-------+-------+-------+-------+-----+----+
//!  | enq_ts (u64)  | deq_delta u32 | qd  |port|
//!  +---------------+---------------+-----+----+
//! ```
//!
//! where `qd` is the 16-bit enqueue queue depth in buffer cells and `port`
//! the 16-bit egress port.

use crate::time::Nanos;
use crate::wire::{Error, Result};
use serde::{Deserialize, Serialize};

/// Length of the telemetry header in bytes.
pub const HEADER_LEN: usize = 20;

/// The decoded telemetry header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TelemetryHeader {
    /// Switch time when the packet was enqueued.
    pub enq_timestamp: Nanos,
    /// Time spent in the queue (`deq_timestamp - enq_timestamp`).
    pub deq_timedelta: u32,
    /// Queue depth (in buffer cells) observed at enqueue.
    pub enq_qdepth: u16,
    /// Egress port the packet left through.
    pub egress_port: u16,
}

impl TelemetryHeader {
    /// Dequeue timestamp (`enq_timestamp + deq_timedelta`), the value
    /// PrintQueue's time windows index on (§4.2).
    pub fn deq_timestamp(&self) -> Nanos {
        self.enq_timestamp + Nanos::from(self.deq_timedelta)
    }

    /// Parse from the front of a byte slice.
    pub fn parse(data: &[u8]) -> Result<TelemetryHeader> {
        if data.len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        Ok(TelemetryHeader {
            enq_timestamp: u64::from_be_bytes(data[0..8].try_into().unwrap()),
            deq_timedelta: u32::from_be_bytes(data[8..12].try_into().unwrap()),
            enq_qdepth: u16::from_be_bytes(data[12..14].try_into().unwrap()),
            egress_port: u16::from_be_bytes(data[14..16].try_into().unwrap()),
        })
    }

    /// Emit into the front of a byte slice. The final four bytes are a
    /// reserved field zeroed for alignment.
    pub fn emit(&self, data: &mut [u8]) -> Result<()> {
        if data.len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        data[0..8].copy_from_slice(&self.enq_timestamp.to_be_bytes());
        data[8..12].copy_from_slice(&self.deq_timedelta.to_be_bytes());
        data[12..14].copy_from_slice(&self.enq_qdepth.to_be_bytes());
        data[14..16].copy_from_slice(&self.egress_port.to_be_bytes());
        data[16..20].copy_from_slice(&[0; 4]);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let hdr = TelemetryHeader {
            enq_timestamp: 0xAAA9_105A,
            deq_timedelta: 123_456,
            enq_qdepth: 4096,
            egress_port: 140,
        };
        let mut buf = [0u8; HEADER_LEN];
        hdr.emit(&mut buf).unwrap();
        assert_eq!(TelemetryHeader::parse(&buf).unwrap(), hdr);
    }

    #[test]
    fn deq_timestamp_is_sum() {
        let hdr = TelemetryHeader {
            enq_timestamp: 1_000,
            deq_timedelta: 500,
            enq_qdepth: 0,
            egress_port: 0,
        };
        assert_eq!(hdr.deq_timestamp(), 1_500);
    }

    #[test]
    fn short_buffers_rejected() {
        let hdr = TelemetryHeader {
            enq_timestamp: 0,
            deq_timedelta: 0,
            enq_qdepth: 0,
            egress_port: 0,
        };
        let mut short = [0u8; HEADER_LEN - 1];
        assert_eq!(hdr.emit(&mut short).unwrap_err(), Error::Truncated);
        assert_eq!(
            TelemetryHeader::parse(&short).unwrap_err(),
            Error::Truncated
        );
    }
}
