//! TCP header parsing and emission (header only — the simulator does not run
//! a TCP state machine; flow-level senders in `pq-trace` model rate behaviour
//! instead, matching how the paper drives its testbed with replayed traces).

use crate::checksum::{self, Sum};
use crate::ipv4;
use crate::wire::{Error, Result};

/// Minimum TCP header length (no options), in bytes.
pub const HEADER_LEN: usize = 20;

/// TCP flag bits.
pub mod flags {
    pub const FIN: u8 = 0x01;
    pub const SYN: u8 = 0x02;
    pub const RST: u8 = 0x04;
    pub const PSH: u8 = 0x08;
    pub const ACK: u8 = 0x10;
}

/// A borrowed view over a TCP segment.
#[derive(Debug)]
pub struct Segment<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Segment<T> {
    /// Wrap a buffer, validating length fields.
    pub fn new_checked(buffer: T) -> Result<Segment<T>> {
        let segment = Segment { buffer };
        let b = segment.buffer.as_ref();
        if b.len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        let header_len = segment.header_len() as usize;
        if header_len < HEADER_LEN || header_len > b.len() {
            return Err(Error::Malformed);
        }
        Ok(segment)
    }

    /// Wrap without validation.
    pub fn new_unchecked(buffer: T) -> Segment<T> {
        Segment { buffer }
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[0], b[1]])
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[2], b[3]])
    }

    /// Sequence number.
    pub fn seq_number(&self) -> u32 {
        let b = self.buffer.as_ref();
        u32::from_be_bytes([b[4], b[5], b[6], b[7]])
    }

    /// Acknowledgement number.
    pub fn ack_number(&self) -> u32 {
        let b = self.buffer.as_ref();
        u32::from_be_bytes([b[8], b[9], b[10], b[11]])
    }

    /// Header length in bytes (data offset × 4).
    pub fn header_len(&self) -> u8 {
        (self.buffer.as_ref()[12] >> 4) * 4
    }

    /// Flag byte (FIN/SYN/RST/PSH/ACK bits).
    pub fn flags(&self) -> u8 {
        self.buffer.as_ref()[13] & 0x3f
    }

    /// Receive window.
    pub fn window(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[14], b[15]])
    }

    /// Checksum field.
    pub fn checksum(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[16], b[17]])
    }

    /// Payload after the header.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[self.header_len() as usize..]
    }

    /// Verify the checksum against the IPv4 pseudo-header.
    pub fn verify_checksum(&self, src: ipv4::Address, dst: ipv4::Address) -> bool {
        let b = self.buffer.as_ref();
        let mut sum = checksum::pseudo_header_sum(src.0, dst.0, 6, b.len() as u16);
        sum.add_bytes(b);
        sum.finish() == 0
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Segment<T> {
    /// Set the source port.
    pub fn set_src_port(&mut self, port: u16) {
        self.buffer.as_mut()[0..2].copy_from_slice(&port.to_be_bytes());
    }

    /// Set the destination port.
    pub fn set_dst_port(&mut self, port: u16) {
        self.buffer.as_mut()[2..4].copy_from_slice(&port.to_be_bytes());
    }

    /// Set the sequence number.
    pub fn set_seq_number(&mut self, seq: u32) {
        self.buffer.as_mut()[4..8].copy_from_slice(&seq.to_be_bytes());
    }

    /// Set the acknowledgement number.
    pub fn set_ack_number(&mut self, ack: u32) {
        self.buffer.as_mut()[8..12].copy_from_slice(&ack.to_be_bytes());
    }

    /// Set data offset (header length in bytes).
    pub fn set_header_len(&mut self, len: u8) {
        debug_assert_eq!(len % 4, 0);
        self.buffer.as_mut()[12] = (len / 4) << 4;
    }

    /// Set the flag byte.
    pub fn set_flags(&mut self, flags: u8) {
        self.buffer.as_mut()[13] = flags & 0x3f;
    }

    /// Set the receive window.
    pub fn set_window(&mut self, window: u16) {
        self.buffer.as_mut()[14..16].copy_from_slice(&window.to_be_bytes());
    }

    /// Compute and store the checksum over pseudo-header + segment.
    pub fn fill_checksum(&mut self, src: ipv4::Address, dst: ipv4::Address) {
        let len = self.buffer.as_ref().len() as u16;
        let b = self.buffer.as_mut();
        b[16..18].copy_from_slice(&[0, 0]);
        let mut sum: Sum = checksum::pseudo_header_sum(src.0, dst.0, 6, len);
        sum.add_bytes(b);
        let cksum = sum.finish();
        b[16..18].copy_from_slice(&cksum.to_be_bytes());
    }
}

/// Owned representation of a TCP header (no options).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Repr {
    pub src_port: u16,
    pub dst_port: u16,
    pub seq: u32,
    pub ack: u32,
    pub flags: u8,
    pub window: u16,
}

impl Repr {
    /// Parse from a segment view (checksum verified separately, since it
    /// needs the pseudo-header).
    pub fn parse<T: AsRef<[u8]>>(segment: &Segment<T>) -> Repr {
        Repr {
            src_port: segment.src_port(),
            dst_port: segment.dst_port(),
            seq: segment.seq_number(),
            ack: segment.ack_number(),
            flags: segment.flags(),
            window: segment.window(),
        }
    }

    /// Bytes required to emit this header.
    pub const fn buffer_len(&self) -> usize {
        HEADER_LEN
    }

    /// Emit into a segment view and compute the checksum.
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(
        &self,
        segment: &mut Segment<T>,
        src: ipv4::Address,
        dst: ipv4::Address,
    ) {
        segment.set_src_port(self.src_port);
        segment.set_dst_port(self.dst_port);
        segment.set_seq_number(self.seq);
        segment.set_ack_number(self.ack);
        segment.set_header_len(HEADER_LEN as u8);
        segment.set_flags(self.flags);
        segment.set_window(self.window);
        segment.fill_checksum(src, dst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: ipv4::Address = ipv4::Address::new(10, 0, 0, 1);
    const DST: ipv4::Address = ipv4::Address::new(10, 0, 0, 2);

    fn sample() -> Repr {
        Repr {
            src_port: 43211,
            dst_port: 80,
            seq: 0x12345678,
            ack: 0x9abcdef0,
            flags: flags::ACK | flags::PSH,
            window: 65535,
        }
    }

    #[test]
    fn roundtrip_with_payload() {
        let repr = sample();
        let mut bytes = vec![0u8; HEADER_LEN + 11];
        bytes[HEADER_LEN..].copy_from_slice(b"hello world");
        let mut segment = Segment::new_unchecked(&mut bytes);
        repr.emit(&mut segment, SRC, DST);
        let segment = Segment::new_checked(&bytes).unwrap();
        assert!(segment.verify_checksum(SRC, DST));
        assert_eq!(Repr::parse(&segment), repr);
        assert_eq!(segment.payload(), b"hello world");
    }

    #[test]
    fn checksum_binds_addresses() {
        let repr = sample();
        let mut bytes = vec![0u8; HEADER_LEN];
        let mut segment = Segment::new_unchecked(&mut bytes);
        repr.emit(&mut segment, SRC, DST);
        let segment = Segment::new_checked(&bytes).unwrap();
        assert!(!segment.verify_checksum(SRC, ipv4::Address::new(10, 0, 0, 3)));
    }

    #[test]
    fn rejects_bad_data_offset() {
        let mut bytes = [0u8; HEADER_LEN];
        bytes[12] = 0x20; // header length 8 < 20
        assert_eq!(
            Segment::new_checked(bytes.as_slice()).unwrap_err(),
            Error::Malformed
        );
    }

    #[test]
    fn flag_bits() {
        let repr = sample();
        let mut bytes = vec![0u8; HEADER_LEN];
        let mut segment = Segment::new_unchecked(&mut bytes);
        repr.emit(&mut segment, SRC, DST);
        let segment = Segment::new_checked(&bytes).unwrap();
        assert_eq!(segment.flags() & flags::ACK, flags::ACK);
        assert_eq!(segment.flags() & flags::SYN, 0);
    }
}
