//! IPv4 header parsing and emission.

use crate::checksum;
use crate::wire::{Error, Result};
use core::fmt;

/// An IPv4 address (kept as raw octets to stay `no_std`-shaped like smoltcp;
/// converts to/from `std::net::Ipv4Addr`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Address(pub [u8; 4]);

impl Address {
    /// Build from four octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Address {
        Address([a, b, c, d])
    }

    /// The address as a big-endian `u32` (useful for hashing in register
    /// cells, which is how the Tofino implementation treats it).
    pub fn to_u32(self) -> u32 {
        u32::from_be_bytes(self.0)
    }

    /// Build from a big-endian `u32`.
    pub fn from_u32(raw: u32) -> Address {
        Address(raw.to_be_bytes())
    }
}

impl From<std::net::Ipv4Addr> for Address {
    fn from(a: std::net::Ipv4Addr) -> Self {
        Address(a.octets())
    }
}

impl From<Address> for std::net::Ipv4Addr {
    fn from(a: Address) -> Self {
        std::net::Ipv4Addr::from(a.0)
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}.{}.{}", self.0[0], self.0[1], self.0[2], self.0[3])
    }
}

/// Minimum (and, without options, actual) IPv4 header length in bytes.
pub const HEADER_LEN: usize = 20;

/// A borrowed view over an IPv4 packet.
#[derive(Debug)]
pub struct Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Packet<T> {
    /// Wrap a buffer, validating length, version, and the header's own
    /// length fields.
    pub fn new_checked(buffer: T) -> Result<Packet<T>> {
        let packet = Packet { buffer };
        packet.check()?;
        Ok(packet)
    }

    /// Wrap without validation.
    pub fn new_unchecked(buffer: T) -> Packet<T> {
        Packet { buffer }
    }

    fn check(&self) -> Result<()> {
        let b = self.buffer.as_ref();
        if b.len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        if self.version() != 4 {
            return Err(Error::Malformed);
        }
        let header_len = self.header_len() as usize;
        if header_len < HEADER_LEN || header_len > b.len() {
            return Err(Error::Malformed);
        }
        let total_len = self.total_len() as usize;
        if total_len < header_len || total_len > b.len() {
            return Err(Error::Truncated);
        }
        Ok(())
    }

    /// IP version field (must be 4).
    pub fn version(&self) -> u8 {
        self.buffer.as_ref()[0] >> 4
    }

    /// Header length in bytes (IHL × 4).
    pub fn header_len(&self) -> u8 {
        (self.buffer.as_ref()[0] & 0x0f) * 4
    }

    /// Differentiated services code point (priority classes in the paper's
    /// strict-priority scenarios map onto this).
    pub fn dscp(&self) -> u8 {
        self.buffer.as_ref()[1] >> 2
    }

    /// Total packet length (header + payload) in bytes.
    pub fn total_len(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[2], b[3]])
    }

    /// Identification field.
    pub fn ident(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[4], b[5]])
    }

    /// Time to live.
    pub fn ttl(&self) -> u8 {
        self.buffer.as_ref()[8]
    }

    /// Transport protocol number.
    pub fn protocol(&self) -> u8 {
        self.buffer.as_ref()[9]
    }

    /// Header checksum field.
    pub fn header_checksum(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[10], b[11]])
    }

    /// Source address.
    pub fn src_addr(&self) -> Address {
        let b = self.buffer.as_ref();
        Address(b[12..16].try_into().unwrap())
    }

    /// Destination address.
    pub fn dst_addr(&self) -> Address {
        let b = self.buffer.as_ref();
        Address(b[16..20].try_into().unwrap())
    }

    /// Verify the header checksum.
    pub fn verify_checksum(&self) -> bool {
        let b = self.buffer.as_ref();
        checksum::verify(&b[..self.header_len() as usize])
    }

    /// Payload (bytes after the header, bounded by `total_len`).
    pub fn payload(&self) -> &[u8] {
        let header_len = self.header_len() as usize;
        let total_len = self.total_len() as usize;
        &self.buffer.as_ref()[header_len..total_len]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Packet<T> {
    /// Set version and IHL in one write.
    pub fn set_version_and_len(&mut self, header_len: u8) {
        debug_assert_eq!(header_len % 4, 0);
        self.buffer.as_mut()[0] = 0x40 | (header_len / 4);
    }

    /// Set the DSCP bits (ECN left zero).
    pub fn set_dscp(&mut self, dscp: u8) {
        self.buffer.as_mut()[1] = dscp << 2;
    }

    /// Set the total-length field.
    pub fn set_total_len(&mut self, len: u16) {
        self.buffer.as_mut()[2..4].copy_from_slice(&len.to_be_bytes());
    }

    /// Set the identification field.
    pub fn set_ident(&mut self, ident: u16) {
        self.buffer.as_mut()[4..6].copy_from_slice(&ident.to_be_bytes());
    }

    /// Set flags/fragment offset to "don't fragment".
    pub fn set_dont_fragment(&mut self) {
        self.buffer.as_mut()[6..8].copy_from_slice(&0x4000u16.to_be_bytes());
    }

    /// Set the TTL.
    pub fn set_ttl(&mut self, ttl: u8) {
        self.buffer.as_mut()[8] = ttl;
    }

    /// Set the transport protocol number.
    pub fn set_protocol(&mut self, protocol: u8) {
        self.buffer.as_mut()[9] = protocol;
    }

    /// Set the source address.
    pub fn set_src_addr(&mut self, addr: Address) {
        self.buffer.as_mut()[12..16].copy_from_slice(&addr.0);
    }

    /// Set the destination address.
    pub fn set_dst_addr(&mut self, addr: Address) {
        self.buffer.as_mut()[16..20].copy_from_slice(&addr.0);
    }

    /// Mutable access to the payload following the header.
    ///
    /// Unlike [`Packet::payload`], this is not bounded by `total_len`,
    /// because it is used while a frame is still being assembled (before the
    /// length field is final).
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let header_len = self.header_len() as usize;
        &mut self.buffer.as_mut()[header_len..]
    }

    /// Zero then recompute the header checksum.
    pub fn fill_checksum(&mut self) {
        let header_len = self.header_len() as usize;
        let b = self.buffer.as_mut();
        b[10..12].copy_from_slice(&[0, 0]);
        let sum = checksum::checksum(&b[..header_len]);
        b[10..12].copy_from_slice(&sum.to_be_bytes());
    }
}

/// Owned representation of an IPv4 header (no options).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Repr {
    pub src: Address,
    pub dst: Address,
    pub protocol: u8,
    pub payload_len: u16,
    pub dscp: u8,
    pub ttl: u8,
}

impl Repr {
    /// Parse from a validated packet view; verifies the checksum.
    pub fn parse<T: AsRef<[u8]>>(packet: &Packet<T>) -> Result<Repr> {
        if !packet.verify_checksum() {
            return Err(Error::Checksum);
        }
        Ok(Repr {
            src: packet.src_addr(),
            dst: packet.dst_addr(),
            protocol: packet.protocol(),
            payload_len: packet.total_len() - u16::from(packet.header_len()),
            dscp: packet.dscp(),
            ttl: packet.ttl(),
        })
    }

    /// Bytes required to emit this header.
    pub const fn buffer_len(&self) -> usize {
        HEADER_LEN
    }

    /// Emit into a packet view, computing the checksum.
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(&self, packet: &mut Packet<T>) {
        packet.set_version_and_len(HEADER_LEN as u8);
        packet.set_dscp(self.dscp);
        packet.set_total_len(HEADER_LEN as u16 + self.payload_len);
        packet.set_ident(0);
        packet.set_dont_fragment();
        packet.set_ttl(self.ttl);
        packet.set_protocol(self.protocol);
        packet.set_src_addr(self.src);
        packet.set_dst_addr(self.dst);
        packet.fill_checksum();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Repr {
        Repr {
            src: Address::new(10, 0, 0, 1),
            dst: Address::new(10, 0, 0, 2),
            protocol: 6,
            payload_len: 40,
            dscp: 0,
            ttl: 64,
        }
    }

    #[test]
    fn roundtrip() {
        let repr = sample();
        let mut bytes = vec![0u8; HEADER_LEN + 40];
        let mut packet = Packet::new_unchecked(&mut bytes);
        repr.emit(&mut packet);
        let packet = Packet::new_checked(&bytes).unwrap();
        assert!(packet.verify_checksum());
        assert_eq!(Repr::parse(&packet).unwrap(), repr);
        assert_eq!(packet.payload().len(), 40);
    }

    #[test]
    fn rejects_wrong_version() {
        let repr = sample();
        let mut bytes = vec![0u8; HEADER_LEN + 40];
        let mut packet = Packet::new_unchecked(&mut bytes);
        repr.emit(&mut packet);
        bytes[0] = 0x65; // version 6
        assert_eq!(Packet::new_checked(&bytes).unwrap_err(), Error::Malformed);
    }

    #[test]
    fn rejects_total_len_beyond_buffer() {
        let repr = sample();
        let mut bytes = vec![0u8; HEADER_LEN + 40];
        let mut packet = Packet::new_unchecked(&mut bytes);
        repr.emit(&mut packet);
        packet.set_total_len(2000);
        assert_eq!(Packet::new_checked(&bytes).unwrap_err(), Error::Truncated);
    }

    #[test]
    fn corrupted_checksum_detected() {
        let repr = sample();
        let mut bytes = vec![0u8; HEADER_LEN + 40];
        let mut packet = Packet::new_unchecked(&mut bytes);
        repr.emit(&mut packet);
        bytes[15] ^= 0xff;
        let packet = Packet::new_checked(&bytes).unwrap();
        assert_eq!(Repr::parse(&packet).unwrap_err(), Error::Checksum);
    }

    #[test]
    fn address_u32_roundtrip() {
        let a = Address::new(192, 168, 1, 77);
        assert_eq!(Address::from_u32(a.to_u32()), a);
        assert_eq!(a.to_string(), "192.168.1.77");
    }

    #[test]
    fn std_conversion() {
        let a: Address = std::net::Ipv4Addr::new(1, 2, 3, 4).into();
        let back: std::net::Ipv4Addr = a.into();
        assert_eq!(back, std::net::Ipv4Addr::new(1, 2, 3, 4));
    }
}
