//! UDP header parsing and emission.

use crate::checksum::{self, Sum};
use crate::ipv4;
use crate::wire::{Error, Result};

/// UDP header length in bytes.
pub const HEADER_LEN: usize = 8;

/// A borrowed view over a UDP datagram.
#[derive(Debug)]
pub struct Datagram<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Datagram<T> {
    /// Wrap a buffer, validating length fields.
    pub fn new_checked(buffer: T) -> Result<Datagram<T>> {
        let datagram = Datagram { buffer };
        let b = datagram.buffer.as_ref();
        if b.len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        let len = datagram.len() as usize;
        if len < HEADER_LEN || len > b.len() {
            return Err(Error::Malformed);
        }
        Ok(datagram)
    }

    /// Wrap without validation.
    pub fn new_unchecked(buffer: T) -> Datagram<T> {
        Datagram { buffer }
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[0], b[1]])
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[2], b[3]])
    }

    /// Length field (header + payload).
    pub fn len(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[4], b[5]])
    }

    /// True when the length field covers only the header.
    pub fn is_empty(&self) -> bool {
        self.len() as usize == HEADER_LEN
    }

    /// Checksum field.
    pub fn checksum(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[6], b[7]])
    }

    /// Payload bytes, bounded by the length field.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[HEADER_LEN..self.len() as usize]
    }

    /// Verify the checksum (a zero checksum means "not computed" per RFC 768
    /// and verifies trivially).
    pub fn verify_checksum(&self, src: ipv4::Address, dst: ipv4::Address) -> bool {
        if self.checksum() == 0 {
            return true;
        }
        let b = &self.buffer.as_ref()[..self.len() as usize];
        let mut sum = checksum::pseudo_header_sum(src.0, dst.0, 17, self.len());
        sum.add_bytes(b);
        sum.finish() == 0
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Datagram<T> {
    /// Set the source port.
    pub fn set_src_port(&mut self, port: u16) {
        self.buffer.as_mut()[0..2].copy_from_slice(&port.to_be_bytes());
    }

    /// Set the destination port.
    pub fn set_dst_port(&mut self, port: u16) {
        self.buffer.as_mut()[2..4].copy_from_slice(&port.to_be_bytes());
    }

    /// Set the length field.
    pub fn set_len(&mut self, len: u16) {
        self.buffer.as_mut()[4..6].copy_from_slice(&len.to_be_bytes());
    }

    /// Compute and store the checksum.
    pub fn fill_checksum(&mut self, src: ipv4::Address, dst: ipv4::Address) {
        let len = self.len();
        let b = self.buffer.as_mut();
        b[6..8].copy_from_slice(&[0, 0]);
        let mut sum: Sum = checksum::pseudo_header_sum(src.0, dst.0, 17, len);
        sum.add_bytes(&b[..len as usize]);
        let mut cksum = sum.finish();
        if cksum == 0 {
            // RFC 768: a computed zero checksum is transmitted as all-ones.
            cksum = 0xffff;
        }
        b[6..8].copy_from_slice(&cksum.to_be_bytes());
    }
}

/// Owned representation of a UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Repr {
    pub src_port: u16,
    pub dst_port: u16,
    pub payload_len: u16,
}

impl Repr {
    /// Parse from a datagram view.
    pub fn parse<T: AsRef<[u8]>>(datagram: &Datagram<T>) -> Repr {
        Repr {
            src_port: datagram.src_port(),
            dst_port: datagram.dst_port(),
            payload_len: datagram.len() - HEADER_LEN as u16,
        }
    }

    /// Bytes required to emit this header.
    pub const fn buffer_len(&self) -> usize {
        HEADER_LEN
    }

    /// Emit into a datagram view and compute the checksum.
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(
        &self,
        datagram: &mut Datagram<T>,
        src: ipv4::Address,
        dst: ipv4::Address,
    ) {
        datagram.set_src_port(self.src_port);
        datagram.set_dst_port(self.dst_port);
        datagram.set_len(HEADER_LEN as u16 + self.payload_len);
        datagram.fill_checksum(src, dst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: ipv4::Address = ipv4::Address::new(10, 0, 0, 1);
    const DST: ipv4::Address = ipv4::Address::new(10, 0, 0, 2);

    #[test]
    fn roundtrip() {
        let repr = Repr {
            src_port: 5353,
            dst_port: 9999,
            payload_len: 5,
        };
        let mut bytes = vec![0u8; HEADER_LEN + 5];
        bytes[HEADER_LEN..].copy_from_slice(b"burst");
        let mut dgram = Datagram::new_unchecked(&mut bytes);
        repr.emit(&mut dgram, SRC, DST);
        let dgram = Datagram::new_checked(&bytes).unwrap();
        assert!(dgram.verify_checksum(SRC, DST));
        assert_eq!(Repr::parse(&dgram), repr);
        assert_eq!(dgram.payload(), b"burst");
    }

    #[test]
    fn zero_checksum_accepted() {
        let mut bytes = vec![0u8; HEADER_LEN];
        let mut dgram = Datagram::new_unchecked(&mut bytes);
        dgram.set_src_port(1);
        dgram.set_dst_port(2);
        dgram.set_len(HEADER_LEN as u16);
        let dgram = Datagram::new_checked(&bytes).unwrap();
        assert!(dgram.verify_checksum(SRC, DST));
    }

    #[test]
    fn length_field_beyond_buffer_rejected() {
        let mut bytes = vec![0u8; HEADER_LEN];
        bytes[4..6].copy_from_slice(&100u16.to_be_bytes());
        assert_eq!(Datagram::new_checked(&bytes).unwrap_err(), Error::Malformed);
    }

    #[test]
    fn corrupt_payload_detected() {
        let repr = Repr {
            src_port: 1,
            dst_port: 2,
            payload_len: 4,
        };
        let mut bytes = vec![0u8; HEADER_LEN + 4];
        bytes[HEADER_LEN..].copy_from_slice(b"data");
        let mut dgram = Datagram::new_unchecked(&mut bytes);
        repr.emit(&mut dgram, SRC, DST);
        bytes[HEADER_LEN] ^= 0xff;
        let dgram = Datagram::new_checked(&bytes).unwrap();
        assert!(!dgram.verify_checksum(SRC, DST));
    }
}
