//! Error handling for wire-format parsing and emission.

use core::fmt;

/// Errors produced when parsing or emitting packet headers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Error {
    /// The buffer is shorter than the header (or the header's own length
    /// field claims more bytes than are present).
    Truncated,
    /// A header field holds a value the parser cannot accept (bad version,
    /// impossible header length, unsupported ethertype, ...).
    Malformed,
    /// A checksum did not verify.
    Checksum,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Truncated => write!(f, "truncated packet"),
            Error::Malformed => write!(f, "malformed header field"),
            Error::Checksum => write!(f, "checksum mismatch"),
        }
    }
}

impl std::error::Error for Error {}

/// Result alias for wire operations.
pub type Result<T> = core::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(Error::Truncated.to_string(), "truncated packet");
        assert_eq!(Error::Malformed.to_string(), "malformed header field");
        assert_eq!(Error::Checksum.to_string(), "checksum mismatch");
    }
}
