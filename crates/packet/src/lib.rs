//! Packet model and wire formats for the PrintQueue reproduction.
//!
//! This crate is the leaf of the workspace dependency graph. It provides:
//!
//! * nanosecond time types ([`Nanos`], [`time`] helpers) shared by every
//!   other crate,
//! * wire-format parsing and emission for the headers PrintQueue derives its
//!   flow IDs from (Ethernet II, IPv4, TCP, UDP) in the style of `smoltcp`:
//!   a borrowed view type over a byte slice plus an owned `Repr`,
//! * the 5-tuple [`FlowKey`] and the compact interned [`FlowId`] used in
//!   data-plane register cells,
//! * the PrintQueue ground-truth telemetry header ([`telemetry`]) that the
//!   paper's evaluation inserts into every packet (§7.1), and
//! * the simulation-level packet descriptor [`SimPacket`] that travels
//!   through the switch substrate.
//!
//! The wire formats are complete enough to round-trip real packet bytes; the
//! simulator mostly moves [`SimPacket`] descriptors around for speed, but the
//! integration tests demonstrate full parse → queue → emit paths.

pub mod checksum;
pub mod ethernet;
pub mod flow;
pub mod ipv4;
pub mod packet;
pub mod tcp;
pub mod telemetry;
pub mod time;
pub mod udp;
pub mod wire;

pub use flow::{FlowId, FlowKey, FlowTable, Protocol};
pub use packet::{PacketMeta, SimPacket};
pub use telemetry::TelemetryHeader;
pub use time::{Nanos, NanosExt};
pub use wire::{Error as WireError, Result as WireResult};
