//! Ethernet II framing.

use crate::wire::{Error, Result};
use core::fmt;

/// A six-octet MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Address(pub [u8; 6]);

impl Address {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: Address = Address([0xff; 6]);

    /// True when the least-significant bit of the first octet is set
    /// (multicast or broadcast destination).
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// True for the all-ones broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }

    /// True for unicast (not multicast, not all-zero).
    pub fn is_unicast(&self) -> bool {
        !self.is_multicast() && self.0 != [0; 6]
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

/// EtherType values this reproduction cares about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    Ipv4,
    Arp,
    /// PrintQueue's evaluation inserts a telemetry header between Ethernet
    /// and IPv4; we mark such frames with a dedicated (locally administered)
    /// ethertype, as INT-style prototypes commonly do.
    Telemetry,
    Unknown(u16),
}

impl From<u16> for EtherType {
    fn from(raw: u16) -> Self {
        match raw {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            0x88b5 => EtherType::Telemetry, // IEEE local experimental
            other => EtherType::Unknown(other),
        }
    }
}

impl From<EtherType> for u16 {
    fn from(value: EtherType) -> u16 {
        match value {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Telemetry => 0x88b5,
            EtherType::Unknown(other) => other,
        }
    }
}

/// Length of the Ethernet II header in bytes.
pub const HEADER_LEN: usize = 14;

/// A borrowed view over an Ethernet II frame.
#[derive(Debug)]
pub struct Frame<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Frame<T> {
    /// Wrap a buffer, validating there is room for the header.
    pub fn new_checked(buffer: T) -> Result<Frame<T>> {
        if buffer.as_ref().len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        Ok(Frame { buffer })
    }

    /// Wrap a buffer without validation (caller guarantees length).
    pub fn new_unchecked(buffer: T) -> Frame<T> {
        Frame { buffer }
    }

    /// Destination MAC address.
    pub fn dst_addr(&self) -> Address {
        let b = self.buffer.as_ref();
        Address(b[0..6].try_into().unwrap())
    }

    /// Source MAC address.
    pub fn src_addr(&self) -> Address {
        let b = self.buffer.as_ref();
        Address(b[6..12].try_into().unwrap())
    }

    /// EtherType field.
    pub fn ethertype(&self) -> EtherType {
        let b = self.buffer.as_ref();
        EtherType::from(u16::from_be_bytes([b[12], b[13]]))
    }

    /// The payload following the header.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[HEADER_LEN..]
    }

    /// Release the inner buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Frame<T> {
    /// Set the destination MAC address.
    pub fn set_dst_addr(&mut self, addr: Address) {
        self.buffer.as_mut()[0..6].copy_from_slice(&addr.0);
    }

    /// Set the source MAC address.
    pub fn set_src_addr(&mut self, addr: Address) {
        self.buffer.as_mut()[6..12].copy_from_slice(&addr.0);
    }

    /// Set the EtherType field.
    pub fn set_ethertype(&mut self, value: EtherType) {
        self.buffer.as_mut()[12..14].copy_from_slice(&u16::from(value).to_be_bytes());
    }

    /// Mutable access to the payload following the header.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.buffer.as_mut()[HEADER_LEN..]
    }
}

/// Owned representation of an Ethernet II header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Repr {
    pub dst: Address,
    pub src: Address,
    pub ethertype: EtherType,
}

impl Repr {
    /// Parse from a frame view.
    pub fn parse<T: AsRef<[u8]>>(frame: &Frame<T>) -> Repr {
        Repr {
            dst: frame.dst_addr(),
            src: frame.src_addr(),
            ethertype: frame.ethertype(),
        }
    }

    /// Bytes required to emit this header.
    pub const fn buffer_len(&self) -> usize {
        HEADER_LEN
    }

    /// Emit into a frame view.
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(&self, frame: &mut Frame<T>) {
        frame.set_dst_addr(self.dst);
        frame.set_src_addr(self.src);
        frame.set_ethertype(self.ethertype);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Repr {
        Repr {
            dst: Address([0x02, 0, 0, 0, 0, 0x01]),
            src: Address([0x02, 0, 0, 0, 0, 0x02]),
            ethertype: EtherType::Ipv4,
        }
    }

    #[test]
    fn roundtrip() {
        let repr = sample();
        let mut bytes = vec![0u8; HEADER_LEN + 4];
        let mut frame = Frame::new_unchecked(&mut bytes);
        repr.emit(&mut frame);
        let frame = Frame::new_checked(&bytes).unwrap();
        assert_eq!(Repr::parse(&frame), repr);
        assert_eq!(frame.payload().len(), 4);
    }

    #[test]
    fn checked_rejects_short_buffer() {
        assert_eq!(
            Frame::new_checked([0u8; 13].as_slice()).unwrap_err(),
            Error::Truncated
        );
    }

    #[test]
    fn ethertype_mapping() {
        assert_eq!(EtherType::from(0x0800), EtherType::Ipv4);
        assert_eq!(EtherType::from(0x88b5), EtherType::Telemetry);
        assert_eq!(u16::from(EtherType::Unknown(0x1234)), 0x1234);
    }

    #[test]
    fn address_classification() {
        assert!(Address::BROADCAST.is_broadcast());
        assert!(Address::BROADCAST.is_multicast());
        assert!(Address([0x02, 0, 0, 0, 0, 1]).is_unicast());
        assert!(!Address([0x03, 0, 0, 0, 0, 1]).is_unicast());
    }

    #[test]
    fn display_format() {
        let a = Address([0xde, 0xad, 0xbe, 0xef, 0x00, 0x01]);
        assert_eq!(a.to_string(), "de:ad:be:ef:00:01");
    }
}
