//! The Internet checksum (RFC 1071), used by IPv4, TCP, and UDP.

/// Incrementally computable ones-complement sum.
///
/// Feed byte slices with [`Sum::add_bytes`]; odd-length slices are padded
/// with a trailing zero byte, so split inputs only on even boundaries.
#[derive(Debug, Default, Clone, Copy)]
pub struct Sum(u32);

impl Sum {
    /// Start a fresh sum.
    pub fn new() -> Self {
        Sum(0)
    }

    /// Fold a byte slice into the sum (big-endian 16-bit words).
    pub fn add_bytes(&mut self, data: &[u8]) {
        let mut chunks = data.chunks_exact(2);
        for chunk in &mut chunks {
            self.0 += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
        }
        if let [last] = chunks.remainder() {
            self.0 += u32::from(u16::from_be_bytes([*last, 0]));
        }
    }

    /// Fold a single big-endian 16-bit word into the sum.
    pub fn add_word(&mut self, word: u16) {
        self.0 += u32::from(word);
    }

    /// Finish: fold carries and complement.
    pub fn finish(self) -> u16 {
        let mut sum = self.0;
        while sum > 0xffff {
            sum = (sum & 0xffff) + (sum >> 16);
        }
        !(sum as u16)
    }
}

/// One-shot checksum of a contiguous byte slice.
pub fn checksum(data: &[u8]) -> u16 {
    let mut sum = Sum::new();
    sum.add_bytes(data);
    sum.finish()
}

/// Verify that a buffer containing its own checksum field sums to zero.
pub fn verify(data: &[u8]) -> bool {
    checksum(data) == 0
}

/// The IPv4 pseudo-header contribution used by TCP and UDP checksums.
pub fn pseudo_header_sum(src: [u8; 4], dst: [u8; 4], protocol: u8, length: u16) -> Sum {
    let mut sum = Sum::new();
    sum.add_bytes(&src);
    sum.add_bytes(&dst);
    sum.add_word(u16::from(protocol));
    sum.add_word(length);
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // Classic example: 00 01 f2 03 f4 f5 f6 f7 -> sum 0xddf2, cksum 0x220d.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(checksum(&data), 0x220d);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(checksum(&[0xab]), !0xab00);
    }

    #[test]
    fn verify_detects_single_bit_flip() {
        // A valid IPv4 header from a real capture (checksum field included).
        let mut hdr = [
            0x45u8, 0x00, 0x00, 0x3c, 0x1c, 0x46, 0x40, 0x00, 0x40, 0x06, 0xb1, 0xe6, 0xac, 0x10,
            0x0a, 0x63, 0xac, 0x10, 0x0a, 0x0c,
        ];
        assert!(verify(&hdr));
        hdr[3] ^= 0x01;
        assert!(!verify(&hdr));
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data: Vec<u8> = (0u8..=63).collect();
        let mut sum = Sum::new();
        sum.add_bytes(&data[..32]);
        sum.add_bytes(&data[32..]);
        assert_eq!(sum.finish(), checksum(&data));
    }

    #[test]
    fn all_zero_data_sums_to_ffff() {
        assert_eq!(checksum(&[0u8; 8]), 0xffff);
    }
}
