//! Nanosecond time base shared by the whole workspace.
//!
//! Modern switch ASICs timestamp packets with a free-running nanosecond
//! clock; PrintQueue's trimmed timestamps (TTS, §4.2 of the paper) are
//! derived from that clock by bit shifts. Everything in this reproduction
//! therefore uses a plain `u64` nanosecond counter starting at zero when the
//! simulation starts. A newtype would buy little here and cost a lot of
//! arithmetic noise, so `Nanos` is a type alias plus an extension trait for
//! readable construction.

/// A point in (simulated) time or a duration, in nanoseconds.
pub type Nanos = u64;

/// Nanoseconds in one microsecond.
pub const MICRO: Nanos = 1_000;
/// Nanoseconds in one millisecond.
pub const MILLI: Nanos = 1_000_000;
/// Nanoseconds in one second.
pub const SECOND: Nanos = 1_000_000_000;

/// Readable constructors for [`Nanos`] values: `5.micros()`, `3.millis()`.
pub trait NanosExt {
    /// Interpret `self` as a count of microseconds.
    fn micros(self) -> Nanos;
    /// Interpret `self` as a count of milliseconds.
    fn millis(self) -> Nanos;
    /// Interpret `self` as a count of seconds.
    fn secs(self) -> Nanos;
}

impl NanosExt for u64 {
    fn micros(self) -> Nanos {
        self * MICRO
    }
    fn millis(self) -> Nanos {
        self * MILLI
    }
    fn secs(self) -> Nanos {
        self * SECOND
    }
}

/// Transmission (serialization) delay of `bytes` at `rate_gbps` gigabits per
/// second, rounded up to a whole nanosecond.
///
/// This is the quantum that drives the whole simulation: a port transmits one
/// packet every `tx_delay_ns(len, rate)` nanoseconds when backlogged. At
/// 10 Gbps a 64 B minimum frame takes 51.2 ns — hence the paper's choice of
/// `m0 = 6` (cell period 64 ns) for minimum-size packets, and `m0 = 10`
/// (1024 ns) for near-MTU traffic.
pub fn tx_delay_ns(bytes: u32, rate_gbps: f64) -> Nanos {
    debug_assert!(rate_gbps > 0.0, "line rate must be positive");
    let bits = f64::from(bytes) * 8.0;
    (bits / rate_gbps).ceil() as Nanos
}

/// Convert a nanosecond duration to seconds as `f64` (for rate math).
pub fn to_secs_f64(ns: Nanos) -> f64 {
    ns as f64 / SECOND as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constructors() {
        assert_eq!(5u64.micros(), 5_000);
        assert_eq!(3u64.millis(), 3_000_000);
        assert_eq!(2u64.secs(), 2_000_000_000);
    }

    #[test]
    fn tx_delay_min_frame_at_10g() {
        // 64 B * 8 = 512 bits at 10 Gbps = 51.2 ns, rounds up to 52.
        assert_eq!(tx_delay_ns(64, 10.0), 52);
    }

    #[test]
    fn tx_delay_mtu_at_10g() {
        // 1500 B * 8 = 12000 bits at 10 Gbps = 1200 ns.
        assert_eq!(tx_delay_ns(1500, 10.0), 1200);
    }

    #[test]
    fn tx_delay_at_40g_is_quarter() {
        assert_eq!(tx_delay_ns(1500, 40.0), 300);
    }

    #[test]
    fn to_secs_roundtrip() {
        assert!((to_secs_f64(SECOND) - 1.0).abs() < 1e-12);
        assert!((to_secs_f64(MILLI) - 1e-3).abs() < 1e-12);
    }
}
