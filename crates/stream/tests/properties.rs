//! Property tests for the standing-query operators. Three claims carry
//! the whole subsystem (mirroring `crates/router/tests/properties.rs`):
//!
//! 1. the watermark is monotone under arbitrary record streams — a
//!    closed window can never reopen;
//! 2. window closes are deterministic under shuffled arrival order
//!    whenever the lateness bound covers the skew — the emitted
//!    `(key, aggregate, fired)` list is a function of the record *set*,
//!    not the record *sequence*;
//! 3. the bounded top-k merge is commutative and associative in the
//!    exact regime (union fits capacity) — with integer-valued f64
//!    weights, where IEEE summation is exact, so the assertion is
//!    legitimate — and capacity plus eviction accounting hold under
//!    any offer/merge sequence.

use pq_stream::{parse, Closed, Record, Standing, TopKSummary};
use proptest::collection::vec;
use proptest::prelude::*;

fn arb_record() -> impl Strategy<Value = Record> {
    (0u64..2_000, 0u16..4, 0u64..50).prop_map(|(t_ns, port, depth)| Record { t_ns, port, depth })
}

fn arb_query() -> impl Strategy<Value = String> {
    let window = prop_oneof![
        (1u64..300)
            .prop_map(|s| format!("window tumbling {s}"))
            .boxed(),
        (1u64..300, 1u64..300)
            .prop_map(|(a, b)| {
                let (size, slide) = (a.max(b), a.min(b));
                format!("window sliding {size} slide {slide}")
            })
            .boxed(),
    ];
    let pred = prop_oneof![
        Just(String::new()).boxed(),
        (0u64..40)
            .prop_map(|v| format!(" where max(depth) > {v}"))
            .boxed(),
        (0u64..40)
            .prop_map(|v| format!(" where avg(depth) <= {v}"))
            .boxed(),
        (0u64..20)
            .prop_map(|v| format!(" where count(depth) >= {v}"))
            .boxed(),
    ];
    (window, pred).prop_map(|(w, p)| format!("port * {w}{p}"))
}

/// Canonical emission transcript: every close (watermark-driven and
/// end-of-stream), in emission order.
fn transcript(query: &str, records: &[Record], max_open: usize) -> Vec<Closed> {
    let mut s = Standing::new(parse(query).unwrap(), max_open);
    let mut out = Vec::new();
    for &r in records {
        s.push(r);
        out.extend(s.drain());
    }
    s.seal();
    out.extend(s.drain());
    out
}

proptest! {
    /// The watermark never decreases, no matter the record stream.
    #[test]
    fn watermark_is_monotone(
        query in arb_query(),
        records in vec(arb_record(), 0..64),
        lateness in 0u64..500,
    ) {
        let q = parse(&format!("{query} lateness {lateness}")).unwrap();
        let mut s = Standing::new(q, 16);
        let mut wm = s.watermark();
        for r in records {
            s.push(r);
            s.drain();
            prop_assert!(s.watermark() >= wm, "watermark moved backwards");
            wm = s.watermark();
        }
        s.seal();
        prop_assert!(s.watermark() >= wm);
    }

    /// With lateness covering the full skew (so nothing is dropped) and
    /// capacity for every window, the close transcript is a function of
    /// the record set: any shuffle emits identical keys, aggregates,
    /// and fired flags.
    #[test]
    fn closes_are_deterministic_under_shuffled_arrival(
        query in arb_query(),
        records in vec(arb_record(), 0..48),
        shuffle in vec(any::<u64>(), 0..48),
    ) {
        let q = format!("{query} lateness 2000");
        let mut shuffled = records.clone();
        // A deterministic shuffle keyed by the generated permutation
        // weights (no RNG in tests: failures must replay exactly).
        shuffled.sort_by_key(|r| {
            let i = records.iter().position(|x| x == r).unwrap_or(0);
            shuffle.get(i).copied().unwrap_or(0)
        });
        let a = transcript(&q, &records, usize::MAX);
        let b = transcript(&q, &shuffled, usize::MAX);
        // Emission *timing* differs (closes happen when the watermark
        // passes), but the final sorted transcript must be identical.
        let canon = |mut v: Vec<Closed>| {
            v.sort_by_key(|c| (c.key.to, c.key.from, c.key.port));
            v
        };
        prop_assert_eq!(canon(a), canon(b));
    }

    /// Late records never mutate already-closed windows: a transcript's
    /// closes are unique per window key.
    #[test]
    fn closed_windows_never_reopen(
        query in arb_query(),
        records in vec(arb_record(), 0..64),
    ) {
        let closes = transcript(&query, &records, 16);
        let mut keys: Vec<_> = closes.iter().map(|c| c.key).collect();
        let n = keys.len();
        keys.sort_unstable();
        keys.dedup();
        prop_assert_eq!(keys.len(), n);
    }

    /// Open-window state stays under the configured cap at every step,
    /// and every early close is accounted as forced.
    #[test]
    fn open_windows_respect_the_cap(
        query in arb_query(),
        records in vec(arb_record(), 0..64),
        cap in 1usize..8,
    ) {
        let mut s = Standing::new(parse(&query).unwrap(), cap);
        let mut forced_seen = 0u64;
        for r in records {
            s.push(r);
            prop_assert!(s.open_windows() <= cap);
            forced_seen += s.drain().iter().filter(|c| c.forced).count() as u64;
        }
        s.seal();
        forced_seen += s.drain().iter().filter(|c| c.forced).count() as u64;
        prop_assert_eq!(forced_seen, s.forced_closes);
    }

    /// Exact-regime merge associativity/commutativity: integer weights,
    /// distinct flows within capacity — the shard-rollup contract.
    #[test]
    fn topk_merge_is_associative_when_exact(
        a in vec((0u32..12, 1u16..100), 0..6),
        b in vec((0u32..12, 1u16..100), 0..6),
        c in vec((0u32..12, 1u16..100), 0..6),
    ) {
        let fill = |offers: &[(u32, u16)]| {
            let mut s = TopKSummary::new(12);
            for &(flow, w) in offers {
                // Integer-valued f64s: summation is exact, so the
                // associativity assertion below is legitimate.
                s.offer(flow, f64::from(w));
            }
            s
        };
        let (sa, sb, sc) = (fill(&a), fill(&b), fill(&c));
        let mut ab_c = sa.clone();
        ab_c.merge(&sb);
        ab_c.merge(&sc);
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut a_bc = sa.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(ab_c.ranked(None), a_bc.ranked(None));
        let mut ba = sb.clone();
        ba.merge(&sa);
        let mut ab = sa.clone();
        ab.merge(&sb);
        prop_assert_eq!(ab.ranked(None), ba.ranked(None));
        prop_assert_eq!(ab.evictions, 0);
    }

    /// Capacity and accounting invariants hold in the inexact regime
    /// too: len <= cap always, and retained+evicted weight conserves
    /// the total offered mass as an upper bound.
    #[test]
    fn topk_bounds_memory_and_accounts_evictions(
        offers in vec((0u32..64, 1u16..50), 0..64),
        cap in 1usize..8,
    ) {
        let mut s = TopKSummary::new(cap);
        let mut total = 0.0;
        for &(flow, w) in &offers {
            s.offer(flow, f64::from(w));
            total += f64::from(w);
            prop_assert!(s.len() <= cap);
        }
        let retained: f64 = s.ranked(None).iter().map(|(_, c)| c).sum();
        // Space-saving counts over-estimate, so retained + evicted
        // covers the true mass.
        prop_assert!(retained + s.evicted_weight >= total - 1e-6);
        if s.evictions == 0 {
            prop_assert_eq!(s.evicted_weight, 0.0);
            prop_assert!((retained - total).abs() < 1e-6);
        }
    }
}
