//! Window operators and the watermark state machine.
//!
//! Records are checkpoint events on the sim-time axis: `(t_ns, port,
//! depth)` where `depth` is the queue-monitor stack top at freeze
//! time. Because checkpoints from different ports (and, through the
//! router, different shards) interleave out of order, a window's
//! answer may only be emitted once a **watermark** proves it complete:
//!
//! - the watermark is `max(observed event time) - lateness`, and is
//!   monotone by construction (it only ever ratchets up);
//! - a window `[from, to)` closes exactly when `watermark >= to`;
//! - a record with `t < watermark` is *late*: it is counted and
//!   dropped, never folded into a window that may already have been
//!   emitted. With `lateness` at least the arrival skew, no record is
//!   late and window contents are arrival-order independent — the
//!   property tests shuffle arrivals to pin this down.
//!
//! Per-window state is one [`DepthAgg`] — a handful of u64s whose
//! `offer`/`merge` are commutative and associative, so shuffled
//! arrivals and shard-partial merges land on identical aggregates.
//! The open-window table itself is bounded: when a subscription would
//! hold more than `max_open` open windows, the oldest is **force
//! closed** early and flagged, keeping worst-case memory fixed while
//! surfacing the truncation instead of hiding it.

use crate::query::{Emit, PortSel, Query, Stat, Target, WindowKind};
use std::collections::BTreeMap;

/// One checkpoint event on the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Record {
    /// Sim time the checkpoint was frozen at.
    pub t_ns: u64,
    pub port: u16,
    /// Queue-monitor stack depth (entry levels) at freeze time.
    pub depth: u64,
}

/// A window's identity: `[from, to)` on one port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct WindowKey {
    pub port: u16,
    pub from: u64,
    pub to: u64,
}

/// Order-independent depth aggregate for one window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepthAgg {
    pub max: u64,
    pub min: u64,
    /// Sum/count as integers — exact, so `avg` is deterministic no
    /// matter the fold order.
    pub sum: u64,
    pub count: u64,
    /// Latest record, tie-broken by depth so equal-time records from
    /// different arrival orders still agree.
    pub last_t: u64,
    pub last_depth: u64,
}

impl Default for DepthAgg {
    fn default() -> DepthAgg {
        DepthAgg {
            max: 0,
            min: u64::MAX,
            sum: 0,
            count: 0,
            last_t: 0,
            last_depth: 0,
        }
    }
}

impl DepthAgg {
    pub fn offer(&mut self, t_ns: u64, depth: u64) {
        self.max = self.max.max(depth);
        self.min = self.min.min(depth);
        self.sum = self.sum.saturating_add(depth);
        self.count += 1;
        if self.count == 1 || (t_ns, depth) > (self.last_t, self.last_depth) {
            self.last_t = t_ns;
            self.last_depth = depth;
        }
    }

    /// Fold another aggregate in (shard partials at the router).
    pub fn merge(&mut self, other: &DepthAgg) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
        self.sum = self.sum.saturating_add(other.sum);
        self.count += other.count;
        if (other.last_t, other.last_depth) > (self.last_t, self.last_depth) {
            self.last_t = other.last_t;
            self.last_depth = other.last_depth;
        }
    }

    /// Evaluate one statistic; `min` on an empty aggregate is 0.
    /// Quantile stats are rejected at parse time for depth, so they
    /// evaluate as 0 here.
    pub fn stat(&self, stat: Stat) -> f64 {
        match stat {
            Stat::Max => self.max as f64,
            Stat::Min => {
                if self.count == 0 {
                    0.0
                } else {
                    self.min as f64
                }
            }
            Stat::Avg => {
                if self.count == 0 {
                    0.0
                } else {
                    self.sum as f64 / self.count as f64
                }
            }
            Stat::Last => self.last_depth as f64,
            Stat::Count => self.count as f64,
            Stat::P50 | Stat::P90 | Stat::P99 => 0.0,
        }
    }
}

/// Number of log-scale RTT buckets; mirrors `pq-rtt`'s histogram so a
/// standing `p99(rtt)` and a `pqsim rtt` report quantize identically
/// (pq-stream stays dependency-free, so the scheme is duplicated, not
/// imported).
pub const RTT_BUCKETS: usize = 64;

/// Order-independent RTT aggregate for one window: exact scalar moments
/// plus a bounded log₂ histogram for quantiles. `offer`/`merge` are
/// commutative and associative like [`DepthAgg`]'s, so shuffled arrivals
/// and shard-partial merges agree bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RttAgg {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    /// Latest sample, tie-broken by value (see [`DepthAgg::last_t`]).
    pub last_t: u64,
    pub last_rtt: u64,
    /// `buckets[i]` counts samples `v` with `bucket_of(v) == i`.
    pub buckets: [u64; RTT_BUCKETS],
}

impl Default for RttAgg {
    fn default() -> RttAgg {
        RttAgg {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            last_t: 0,
            last_rtt: 0,
            buckets: [0; RTT_BUCKETS],
        }
    }
}

/// Log₂ bucket index of an RTT sample (same mapping as `pq-rtt`).
pub fn rtt_bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros() as usize).min(RTT_BUCKETS - 1)
    }
}

impl RttAgg {
    pub fn offer(&mut self, t_ns: u64, rtt_ns: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(rtt_ns);
        self.min = self.min.min(rtt_ns);
        self.max = self.max.max(rtt_ns);
        self.buckets[rtt_bucket_of(rtt_ns)] += 1;
        if self.count == 1 || (t_ns, rtt_ns) > (self.last_t, self.last_rtt) {
            self.last_t = t_ns;
            self.last_rtt = rtt_ns;
        }
    }

    /// Fold another aggregate in (shard partials at the router).
    pub fn merge(&mut self, other: &RttAgg) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        if (other.last_t, other.last_rtt) > (self.last_t, self.last_rtt) {
            self.last_t = other.last_t;
            self.last_rtt = other.last_rtt;
        }
    }

    /// Quantile estimate: the upper bound of the bucket holding the
    /// q-th sample, clamped to the exact observed max (≤ one octave of
    /// error, matching `pq-rtt`). 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let bound = if i == 0 {
                    0
                } else if i < RTT_BUCKETS - 1 {
                    (1u64 << i) - 1
                } else {
                    u64::MAX
                };
                return bound.min(self.max);
            }
        }
        self.max
    }

    /// Evaluate one statistic; empty aggregates read as 0.
    pub fn stat(&self, stat: Stat) -> f64 {
        match stat {
            Stat::Max => self.max as f64,
            Stat::Min => {
                if self.count == 0 {
                    0.0
                } else {
                    self.min as f64
                }
            }
            Stat::Avg => {
                if self.count == 0 {
                    0.0
                } else {
                    self.sum as f64 / self.count as f64
                }
            }
            Stat::Last => self.last_rtt as f64,
            Stat::Count => self.count as f64,
            Stat::P50 => self.quantile(0.50) as f64,
            Stat::P90 => self.quantile(0.90) as f64,
            Stat::P99 => self.quantile(0.99) as f64,
        }
    }
}

/// A closed window, ready for emission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Closed {
    pub key: WindowKey,
    pub agg: DepthAgg,
    /// Passive RTT samples that landed in the window (empty unless the
    /// source feeds them).
    pub rtt: RttAgg,
    /// The query predicate held (or the query has none).
    pub fired: bool,
    /// Closed early by the open-window cap, not the watermark — the
    /// aggregate may be missing records that were still in flight.
    pub forced: bool,
}

/// Window starts containing `t` for the given shape, oldest first.
fn window_starts(t: u64, size: u64, kind: WindowKind) -> Vec<u64> {
    match kind {
        WindowKind::Tumbling => vec![t - t % size],
        WindowKind::Sliding { slide_ns } => {
            // Starts s with s <= t < s + size, aligned to the slide.
            let newest = t - t % slide_ns;
            let mut starts = Vec::new();
            let mut s = newest;
            loop {
                starts.push(s);
                match s.checked_sub(slide_ns) {
                    Some(prev) if prev.saturating_add(size) > t => s = prev,
                    _ => break,
                }
            }
            starts.reverse();
            starts
        }
    }
}

/// The full per-subscription engine: open windows, watermark, late and
/// forced-close accounting, predicate evaluation at close.
#[derive(Debug, Clone)]
pub struct Standing {
    pub query: Query,
    /// Open windows keyed `(to, from, port)` so the close scan walks
    /// them in emission order.
    open: BTreeMap<(u64, u64, u16), (DepthAgg, RttAgg)>,
    /// Cap on `open.len()`; exceeded entries are force-closed oldest
    /// first.
    max_open: usize,
    forced: Vec<Closed>,
    watermark: u64,
    sealed: bool,
    pub late_records: u64,
    pub forced_closes: u64,
    pub records: u64,
}

impl Standing {
    /// An engine for `query`, holding at most `max_open` open windows
    /// (clamped to at least 1).
    pub fn new(query: Query, max_open: usize) -> Standing {
        Standing {
            query,
            open: BTreeMap::new(),
            max_open: max_open.max(1),
            forced: Vec::new(),
            watermark: 0,
            sealed: false,
            late_records: 0,
            forced_closes: 0,
            records: 0,
        }
    }

    /// The current watermark: no record at or after it will be folded
    /// into a yet-to-close window once dropped as late.
    pub fn watermark(&self) -> u64 {
        self.watermark
    }

    /// Open windows currently held (bounded by the configured cap).
    pub fn open_windows(&self) -> usize {
        self.open.len()
    }

    pub fn sealed(&self) -> bool {
        self.sealed
    }

    /// Feed one record. Returns `false` if the record was late (dropped
    /// and counted); the watermark ratchets up either way.
    pub fn push(&mut self, r: Record) -> bool {
        self.feed(r.t_ns, r.port, r.depth, None)
    }

    /// Feed one passive RTT sample. Samples share the record stream's
    /// time axis and watermark: a late sample is dropped and counted
    /// exactly like a late checkpoint record.
    pub fn push_rtt(&mut self, t_ns: u64, port: u16, rtt_ns: u64) -> bool {
        self.feed(t_ns, port, 0, Some(rtt_ns))
    }

    fn feed(&mut self, t_ns: u64, port: u16, depth: u64, rtt: Option<u64>) -> bool {
        if !self.query.wants_port(port) {
            return true;
        }
        let on_time = t_ns >= self.watermark && !self.sealed;
        self.watermark = self
            .watermark
            .max(t_ns.saturating_sub(self.query.lateness_ns));
        if !on_time {
            self.late_records += 1;
            return false;
        }
        self.records += 1;
        for from in window_starts(t_ns, self.query.size_ns, self.query.kind) {
            let to = from.saturating_add(self.query.size_ns);
            let (depth_agg, rtt_agg) = self.open.entry((to, from, port)).or_default();
            match rtt {
                None => depth_agg.offer(t_ns, depth),
                Some(v) => rtt_agg.offer(t_ns, v),
            }
        }
        while self.open.len() > self.max_open {
            let (&key, _) = self.open.iter().next().expect("len > max_open >= 1");
            let (agg, rtt) = self.open.remove(&key).expect("key came from the map");
            let (to, from, port) = key;
            self.forced_closes += 1;
            self.forced.push(Closed {
                key: WindowKey { port, from, to },
                agg,
                rtt,
                fired: self.fires(&agg, &rtt),
                forced: true,
            });
        }
        true
    }

    /// End-of-stream: the source proved no further records exist, so
    /// every open window may close (a bounded source's final
    /// watermark, in Dataflow-model terms). Idempotent.
    pub fn seal(&mut self) {
        self.sealed = true;
        self.watermark = u64::MAX;
    }

    fn fires(&self, agg: &DepthAgg, rtt: &RttAgg) -> bool {
        match &self.query.predicate {
            None => true,
            Some(p) => {
                let lhs = match p.target {
                    Target::Depth => agg.stat(p.stat),
                    Target::Rtt => rtt.stat(p.stat),
                };
                p.cmp.eval(lhs, p.value)
            }
        }
    }

    /// Close and return every window proven complete by the current
    /// watermark, plus any cap-forced closes, in deterministic
    /// `(to, from, port)` order.
    pub fn drain(&mut self) -> Vec<Closed> {
        let mut out = std::mem::take(&mut self.forced);
        while let Some((&key, _)) = self.open.iter().next() {
            let (to, from, port) = key;
            if to > self.watermark {
                break;
            }
            let (agg, rtt) = self.open.remove(&key).expect("key came from the map");
            out.push(Closed {
                key: WindowKey { port, from, to },
                agg,
                rtt,
                fired: self.fires(&agg, &rtt),
                forced: false,
            });
        }
        out.sort_by_key(|c| (c.key.to, c.key.from, c.key.port));
        out
    }

    /// Flow weight cap for the bounded per-window top-k summary: the
    /// emitted `topk k` when present, else the subscription cap.
    pub fn summary_cap(&self, sub_cap: usize) -> usize {
        match (self.query.emit, self.query.top_k) {
            (Emit::Depth, _) => 1,
            (Emit::Flows, Some(k)) => (k as usize).min(sub_cap).max(1),
            (Emit::Flows, None) => sub_cap.max(1),
        }
    }

    /// Which single port the query pins, if any (used by servers to
    /// skip scanning unrelated ports).
    pub fn pinned_port(&self) -> Option<u16> {
        match self.query.port {
            PortSel::Any => None,
            PortSel::One(p) => Some(p),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::parse;

    fn rec(t_ns: u64, port: u16, depth: u64) -> Record {
        Record { t_ns, port, depth }
    }

    #[test]
    fn tumbling_windows_close_on_watermark() {
        let q = parse("port 1 window tumbling 100").unwrap();
        let mut s = Standing::new(q, 64);
        assert!(s.push(rec(10, 1, 3)));
        assert!(s.push(rec(150, 1, 7)));
        // Watermark is 150; [0,100) is complete, [100,200) is not.
        let closed = s.drain();
        assert_eq!(closed.len(), 1);
        assert_eq!(
            closed[0].key,
            WindowKey {
                port: 1,
                from: 0,
                to: 100
            }
        );
        assert_eq!(closed[0].agg.max, 3);
        assert!(closed[0].fired && !closed[0].forced);
        assert_eq!(s.open_windows(), 1);
    }

    #[test]
    fn sliding_records_land_in_every_covering_window() {
        let q = parse("port 1 window sliding 100 slide 25").unwrap();
        let mut s = Standing::new(q, 64);
        s.push(rec(110, 1, 5));
        s.push(rec(500, 1, 1));
        let closed = s.drain();
        // t=110 covers starts 25, 50, 75, 100 (s <= 110 < s+100).
        let with_record: Vec<&Closed> = closed.iter().filter(|c| c.agg.count > 0).collect();
        assert_eq!(
            with_record
                .iter()
                .map(|c| (c.key.from, c.key.to))
                .collect::<Vec<_>>(),
            vec![(25, 125), (50, 150), (75, 175), (100, 200)]
        );
    }

    #[test]
    fn late_records_are_counted_and_dropped() {
        let q = parse("port 1 window tumbling 100").unwrap();
        let mut s = Standing::new(q, 64);
        s.push(rec(250, 1, 1));
        assert!(!s.push(rec(40, 1, 9)), "t=40 < watermark=250 is late");
        assert_eq!(s.late_records, 1);
        let closed = s.drain();
        // The late record must not appear in [0,100).
        assert!(closed.iter().all(|c| c.key.from != 0 || c.agg.count == 0));
    }

    #[test]
    fn lateness_holds_the_watermark_back() {
        let q = parse("port 1 window tumbling 100 lateness 300").unwrap();
        let mut s = Standing::new(q, 64);
        s.push(rec(250, 1, 1));
        assert_eq!(s.watermark(), 0);
        assert!(s.push(rec(40, 1, 9)), "within lateness: accepted");
        assert_eq!(s.late_records, 0);
    }

    #[test]
    fn open_window_cap_forces_oldest_closed() {
        let q = parse("port 1 window tumbling 10").unwrap();
        let mut s = Standing::new(q, 2);
        // Three distinct windows arriving at the same watermark-safe
        // times (out of order so nothing closes naturally first).
        s.push(rec(5, 1, 1));
        s.push(rec(15, 1, 2));
        s.push(rec(25, 1, 3));
        assert!(s.open_windows() <= 2);
        assert_eq!(s.forced_closes, 1);
        let closed = s.drain();
        let forced: Vec<&Closed> = closed.iter().filter(|c| c.forced).collect();
        assert_eq!(forced.len(), 1);
        assert_eq!(forced[0].key.from, 0);
    }

    #[test]
    fn seal_closes_everything() {
        let q = parse("port * window tumbling 100 where max(depth) > 5").unwrap();
        let mut s = Standing::new(q, 64);
        s.push(rec(10, 1, 3));
        s.push(rec(20, 2, 9));
        s.seal();
        let closed = s.drain();
        assert_eq!(closed.len(), 2);
        assert_eq!(s.open_windows(), 0);
        let fired: Vec<u16> = closed
            .iter()
            .filter(|c| c.fired)
            .map(|c| c.key.port)
            .collect();
        assert_eq!(fired, vec![2]);
        // Records after the seal are late by definition.
        assert!(!s.push(rec(500, 1, 1)));
        assert_eq!(s.late_records, 1);
    }

    #[test]
    fn rtt_samples_share_the_watermark_and_fire_predicates() {
        let q = parse("port 1 window tumbling 100 where p99(rtt) > 1000").unwrap();
        let mut s = Standing::new(q, 64);
        assert!(s.push_rtt(10, 1, 500));
        assert!(s.push_rtt(20, 1, 800));
        assert!(s.push_rtt(110, 1, 5_000));
        // RTT samples ratchet the watermark like records do.
        assert_eq!(s.watermark(), 110);
        assert!(!s.push_rtt(50, 1, 9_999), "behind the watermark: late");
        assert_eq!(s.late_records, 1);
        s.seal();
        let closed = s.drain();
        assert_eq!(closed.len(), 2);
        // [0,100): p99 quantizes to the 800 ns sample's octave — under
        // the 1 µs threshold. [100,200): the 5 µs sample trips it.
        assert!(!closed[0].fired);
        assert_eq!(closed[0].rtt.count, 2);
        assert!(closed[1].fired);
        assert_eq!(closed[1].rtt.max, 5_000);
        // Depth aggregates are untouched by RTT samples.
        assert_eq!(closed[0].agg.count, 0);
    }

    #[test]
    fn rtt_agg_merge_matches_sequential_fold() {
        let samples = [(10u64, 400u64), (20, 90_000), (30, 1_200), (30, 700)];
        let mut whole = RttAgg::default();
        let mut left = RttAgg::default();
        let mut right = RttAgg::default();
        for &(t, v) in &samples {
            whole.offer(t, v);
        }
        for &(t, v) in &samples[..2] {
            left.offer(t, v);
        }
        for &(t, v) in &samples[2..] {
            right.offer(t, v);
        }
        left.merge(&right);
        assert_eq!(left, whole);
        assert_eq!(whole.stat(Stat::Count), 4.0);
        assert_eq!(whole.stat(Stat::Avg), 23_075.0);
        assert_eq!(whole.stat(Stat::Min), 400.0);
        assert_eq!(whole.stat(Stat::Max), 90_000.0);
        assert_eq!(
            whole.stat(Stat::Last),
            1_200.0,
            "equal-time tie breaks by value"
        );
        // Quantiles clamp to the observed max.
        assert_eq!(whole.quantile(1.0), 90_000);
        assert!(whole.quantile(0.5) >= 700 && whole.quantile(0.5) <= 2_047);
        assert_eq!(RttAgg::default().quantile(0.99), 0);
    }

    #[test]
    fn depth_agg_merge_matches_sequential_fold() {
        let mut whole = DepthAgg::default();
        let mut left = DepthAgg::default();
        let mut right = DepthAgg::default();
        let recs = [(10u64, 4u64), (20, 9), (30, 2), (30, 7)];
        for &(t, d) in &recs {
            whole.offer(t, d);
        }
        for &(t, d) in &recs[..2] {
            left.offer(t, d);
        }
        for &(t, d) in &recs[2..] {
            right.offer(t, d);
        }
        left.merge(&right);
        assert_eq!(left, whole);
        assert_eq!(whole.stat(Stat::Max), 9.0);
        assert_eq!(whole.stat(Stat::Avg), 5.5);
        assert_eq!(
            whole.stat(Stat::Last),
            7.0,
            "equal-time tie breaks by depth"
        );
    }
}
