//! Standing continuous queries over PrintQueue's checkpoint stream.
//!
//! The offline query path answers "who filled port 3's queue between
//! t₀ and t₁?" after the operator thinks to ask. This crate turns that
//! around: a client registers a *standing* query — "emit the top-k
//! culprit flows for every 1 ms tumbling window where the port-3 queue
//! exceeded depth 5" — and the daemon evaluates it continuously,
//! pushing each window's answer as it materializes.
//!
//! The design follows the streams-vs-tables split from streaming SQL
//! (see SNIPPETS.md, bpfquery's streaming design): the checkpoint
//! stream is an unbounded, append-only relation keyed by sim time, so
//! "the answer" is only well-defined per *window*, and a window's
//! answer may only be emitted once a **watermark** proves no more
//! records for it will arrive. Three pieces:
//!
//! - [`query`]: a small typed AST plus a text parser for the standing
//!   query language (`port 3 window tumbling 1ms where max(depth) > 5
//!   topk 8 emit flows`). The canonical [`std::fmt::Display`] rendering
//!   round-trips through the parser, so servers can echo the query they
//!   actually run.
//! - [`window`]: tumbling/sliding window assignment, order-independent
//!   per-window depth aggregates, and the watermark state machine.
//!   Window closes are deterministic under out-of-order arrival: a
//!   record later than the watermark is counted and dropped, never
//!   silently folded into an already-emitted window.
//! - [`topk`]: a fixed-capacity space-saving summary for per-window
//!   flow rankings. Memory is bounded by the configured cap no matter
//!   how many distinct flows appear; evictions are counted and their
//!   displaced weight accounted, surfaced to clients as a coverage
//!   caveat rather than hidden.
//!
//! The crate is engine-only — std, no I/O, no threads — so the serve
//! daemon, the router, and the property tests all drive the exact same
//! state machines.

pub mod query;
pub mod topk;
pub mod window;

pub use query::{
    parse, Cmp, Emit, ParseError, PortSel, Predicate, Query, Stat, Target, WindowKind,
};
pub use topk::TopKSummary;
pub use window::{
    rtt_bucket_of, Closed, DepthAgg, Record, RttAgg, Standing, WindowKey, RTT_BUCKETS,
};
