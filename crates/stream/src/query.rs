//! The standing-query language: a typed AST and its text form.
//!
//! The grammar is a single clause chain, keyword-introduced so the
//! parser needs no lookahead:
//!
//! ```text
//! [port <n>|port *]
//! window tumbling <dur> | window sliding <dur> slide <dur>
//! [where <stat>(depth|rtt) <cmp> <number>]
//! [topk <n>]
//! [emit flows|depth]
//! [lateness <dur>]
//! ```
//!
//! Durations take `ns`/`us`/`ms`/`s` suffixes (a bare integer is
//! nanoseconds of sim time). `<stat>` is one of `max`, `min`, `avg`,
//! `last`, `count` — plus `p50`/`p90`/`p99`, which are histogram-backed
//! and therefore valid only over `rtt`; `<cmp>` one of `>`, `>=`, `<`,
//! `<=`. A bare stat name (no parenthesised target) means `(depth)`,
//! the historical form. RTT thresholds are in nanoseconds. Defaults:
//! every port, no predicate (every window fires), emit `flows`,
//! lateness 0.
//!
//! [`Query`]'s `Display` renders the canonical text — all defaults
//! explicit except the absent predicate — and `parse(q.to_string())`
//! is the identity, which lets servers echo the query they admitted
//! without keeping the client's original string around.

use std::fmt;

/// Which ports a standing query watches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortSel {
    /// Every active port, each windowed independently.
    Any,
    /// A single egress port.
    One(u16),
}

/// Window shape. Sliding windows overlap; a record lands in every
/// window whose span contains it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowKind {
    Tumbling,
    Sliding {
        /// Distance between consecutive window starts; `0 < slide <=
        /// size` is enforced at parse time.
        slide_ns: u64,
    },
}

/// A per-window statistic over checkpoint queue depths or RTT samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stat {
    Max,
    Min,
    Avg,
    /// Value of the latest-timestamped record in the window.
    Last,
    /// Number of records that landed in the window.
    Count,
    /// Median — histogram-backed, so `rtt` only.
    P50,
    /// 90th percentile (`rtt` only).
    P90,
    /// 99th percentile (`rtt` only).
    P99,
}

impl Stat {
    fn name(self) -> &'static str {
        match self {
            Stat::Max => "max",
            Stat::Min => "min",
            Stat::Avg => "avg",
            Stat::Last => "last",
            Stat::Count => "count",
            Stat::P50 => "p50",
            Stat::P90 => "p90",
            Stat::P99 => "p99",
        }
    }

    /// Quantile stats need the bounded histogram only the RTT aggregate
    /// keeps; the depth aggregate is a handful of scalars.
    pub fn needs_histogram(self) -> bool {
        matches!(self, Stat::P50 | Stat::P90 | Stat::P99)
    }
}

/// What a `where` clause measures: checkpoint queue depths or the
/// window's passive RTT samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    Depth,
    Rtt,
}

impl Target {
    fn name(self) -> &'static str {
        match self {
            Target::Depth => "depth",
            Target::Rtt => "rtt",
        }
    }
}

/// Comparison operator in a `where` clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    Gt,
    Ge,
    Lt,
    Le,
}

impl Cmp {
    fn name(self) -> &'static str {
        match self {
            Cmp::Gt => ">",
            Cmp::Ge => ">=",
            Cmp::Lt => "<",
            Cmp::Le => "<=",
        }
    }

    /// Apply the comparison; used on aggregate stats at window close.
    pub fn eval(self, lhs: f64, rhs: f64) -> bool {
        match self {
            Cmp::Gt => lhs > rhs,
            Cmp::Ge => lhs >= rhs,
            Cmp::Lt => lhs < rhs,
            Cmp::Le => lhs <= rhs,
        }
    }
}

/// `where <stat>(depth|rtt) <cmp> <value>` — evaluated once per closed
/// window; a window "fires" when the predicate holds (or when the
/// query has no predicate at all). RTT thresholds are nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Predicate {
    pub stat: Stat,
    pub target: Target,
    pub cmp: Cmp,
    pub value: f64,
}

/// What a fired window carries: the ranked culprit flows (a
/// `query_time_windows` call over the closed span) or just the depth
/// aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Emit {
    Flows,
    Depth,
}

/// One parsed standing query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub port: PortSel,
    pub size_ns: u64,
    pub kind: WindowKind,
    pub predicate: Option<Predicate>,
    /// `topk n` trims the emitted flow ranking to `n`; `None` emits
    /// every flow the bounded summary retained.
    pub top_k: Option<u32>,
    pub emit: Emit,
    /// Allowed out-of-orderness: the watermark trails the maximum
    /// observed event time by this much.
    pub lateness_ns: u64,
}

impl Query {
    /// Does this query watch `port`?
    pub fn wants_port(&self, port: u16) -> bool {
        match self.port {
            PortSel::Any => true,
            PortSel::One(p) => p == port,
        }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.port {
            PortSel::Any => write!(f, "port *")?,
            PortSel::One(p) => write!(f, "port {p}")?,
        }
        match self.kind {
            WindowKind::Tumbling => write!(f, " window tumbling {}", dur(self.size_ns))?,
            WindowKind::Sliding { slide_ns } => write!(
                f,
                " window sliding {} slide {}",
                dur(self.size_ns),
                dur(slide_ns)
            )?,
        }
        if let Some(p) = &self.predicate {
            write!(
                f,
                " where {}({}) {} {}",
                p.stat.name(),
                p.target.name(),
                p.cmp.name(),
                p.value
            )?;
        }
        if let Some(k) = self.top_k {
            write!(f, " topk {k}")?;
        }
        match self.emit {
            Emit::Flows => write!(f, " emit flows")?,
            Emit::Depth => write!(f, " emit depth")?,
        }
        if self.lateness_ns > 0 {
            write!(f, " lateness {}", dur(self.lateness_ns))?;
        }
        Ok(())
    }
}

/// Render a duration with the coarsest exact unit.
fn dur(ns: u64) -> String {
    if ns > 0 && ns.is_multiple_of(1_000_000_000) {
        format!("{}s", ns / 1_000_000_000)
    } else if ns > 0 && ns.is_multiple_of(1_000_000) {
        format!("{}ms", ns / 1_000_000)
    } else if ns > 0 && ns.is_multiple_of(1_000) {
        format!("{}us", ns / 1_000)
    } else {
        format!("{ns}ns")
    }
}

/// A parse or validation failure, with enough context to fix the query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad standing query: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(msg: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError(msg.into()))
}

struct Tokens<'a> {
    toks: Vec<&'a str>,
    at: usize,
}

impl<'a> Tokens<'a> {
    fn peek(&self) -> Option<&'a str> {
        self.toks.get(self.at).copied()
    }

    fn next(&mut self, what: &str) -> Result<&'a str, ParseError> {
        match self.toks.get(self.at) {
            Some(t) => {
                self.at += 1;
                Ok(t)
            }
            None => err(format!("expected {what}, found end of query")),
        }
    }
}

fn parse_duration(tok: &str) -> Result<u64, ParseError> {
    let (digits, scale) = if let Some(d) = tok.strip_suffix("ns") {
        (d, 1)
    } else if let Some(d) = tok.strip_suffix("us") {
        (d, 1_000)
    } else if let Some(d) = tok.strip_suffix("ms") {
        (d, 1_000_000)
    } else if let Some(d) = tok.strip_suffix('s') {
        (d, 1_000_000_000)
    } else {
        (tok, 1)
    };
    let n: u64 = match digits.parse() {
        Ok(n) => n,
        Err(_) => return err(format!("bad duration {tok:?} (want e.g. 500us, 1ms, 2s)")),
    };
    n.checked_mul(scale)
        .map_or_else(|| err(format!("duration {tok:?} overflows")), Ok)
}

/// Split `max(depth)` / `p99(rtt)` style stat references. A bare stat
/// name (the historical form) targets depth.
fn parse_stat(tok: &str) -> Result<(Stat, Target), ParseError> {
    let (name, target) = if let Some(n) = tok.strip_suffix("(depth)") {
        (n, Target::Depth)
    } else if let Some(n) = tok.strip_suffix("(rtt)") {
        (n, Target::Rtt)
    } else {
        (tok, Target::Depth)
    };
    let stat = match name {
        "max" => Stat::Max,
        "min" => Stat::Min,
        "avg" => Stat::Avg,
        "last" => Stat::Last,
        "count" => Stat::Count,
        "p50" => Stat::P50,
        "p90" => Stat::P90,
        "p99" => Stat::P99,
        _ => {
            return err(format!(
                "unknown stat {tok:?} (want max/min/avg/last/count over depth or rtt, \
                 or p50/p90/p99 over rtt)"
            ))
        }
    };
    if stat.needs_histogram() && target != Target::Rtt {
        return err(format!(
            "{} needs a histogram and is only available over rtt, e.g. `{}(rtt)`",
            stat.name(),
            stat.name()
        ));
    }
    Ok((stat, target))
}

/// Parse the standing-query text form. See the module docs for the
/// grammar; errors name the offending token.
pub fn parse(text: &str) -> Result<Query, ParseError> {
    let mut t = Tokens {
        toks: text.split_whitespace().collect(),
        at: 0,
    };
    if t.toks.is_empty() {
        return err("empty query");
    }

    let mut port = PortSel::Any;
    if t.peek() == Some("port") {
        t.next("port")?;
        let tok = t.next("a port number or *")?;
        port = if tok == "*" {
            PortSel::Any
        } else {
            match tok.parse() {
                Ok(p) => PortSel::One(p),
                Err(_) => return err(format!("bad port {tok:?}")),
            }
        };
    }

    if t.next("the window clause")? != "window" {
        return err("expected `window <tumbling|sliding> <duration>`");
    }
    let shape = t.next("tumbling or sliding")?;
    let size_ns = parse_duration(t.next("a window size")?)?;
    if size_ns == 0 {
        return err("window size must be positive");
    }
    let kind = match shape {
        "tumbling" => WindowKind::Tumbling,
        "sliding" => {
            if t.next("slide")? != "slide" {
                return err("sliding windows need `slide <duration>`");
            }
            let slide_ns = parse_duration(t.next("a slide step")?)?;
            if slide_ns == 0 || slide_ns > size_ns {
                return err("slide must satisfy 0 < slide <= window size");
            }
            WindowKind::Sliding { slide_ns }
        }
        other => return err(format!("unknown window kind {other:?}")),
    };

    let mut predicate = None;
    let mut top_k = None;
    let mut emit = Emit::Flows;
    let mut lateness_ns = 0;
    while let Some(clause) = t.peek() {
        t.next("a clause")?;
        match clause {
            "where" => {
                if predicate.is_some() {
                    return err("duplicate where clause");
                }
                let (stat, target) = parse_stat(t.next("a stat like max(depth) or p99(rtt)")?)?;
                let cmp = match t.next("a comparison")? {
                    ">" => Cmp::Gt,
                    ">=" => Cmp::Ge,
                    "<" => Cmp::Lt,
                    "<=" => Cmp::Le,
                    other => return err(format!("unknown comparison {other:?}")),
                };
                let vtok = t.next("a threshold value")?;
                let value: f64 = match vtok.parse() {
                    Ok(v) if f64::is_finite(v) => v,
                    _ => return err(format!("bad threshold {vtok:?}")),
                };
                predicate = Some(Predicate {
                    stat,
                    target,
                    cmp,
                    value,
                });
            }
            "topk" => {
                let ktok = t.next("a top-k count")?;
                let k: u32 = match ktok.parse() {
                    Ok(k) if k > 0 => k,
                    _ => return err(format!("bad topk count {ktok:?}")),
                };
                top_k = Some(k);
            }
            "emit" => {
                emit = match t.next("flows or depth")? {
                    "flows" => Emit::Flows,
                    "depth" => Emit::Depth,
                    other => return err(format!("unknown emit target {other:?}")),
                };
            }
            "lateness" => {
                lateness_ns = parse_duration(t.next("a lateness bound")?)?;
            }
            other => return err(format!("unexpected token {other:?}")),
        }
    }

    Ok(Query {
        port,
        size_ns,
        kind,
        predicate,
        top_k,
        emit,
        lateness_ns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_grammar() {
        let q = parse(
            "port 3 window tumbling 1ms where max(depth) > 5 topk 8 emit flows lateness 10us",
        )
        .unwrap();
        assert_eq!(q.port, PortSel::One(3));
        assert_eq!(q.size_ns, 1_000_000);
        assert_eq!(q.kind, WindowKind::Tumbling);
        assert_eq!(
            q.predicate,
            Some(Predicate {
                stat: Stat::Max,
                target: Target::Depth,
                cmp: Cmp::Gt,
                value: 5.0
            })
        );
        assert_eq!(q.top_k, Some(8));
        assert_eq!(q.emit, Emit::Flows);
        assert_eq!(q.lateness_ns, 10_000);
    }

    #[test]
    fn defaults_are_any_port_emit_flows_no_lateness() {
        let q = parse("window tumbling 2s").unwrap();
        assert_eq!(q.port, PortSel::Any);
        assert_eq!(q.predicate, None);
        assert_eq!(q.top_k, None);
        assert_eq!(q.emit, Emit::Flows);
        assert_eq!(q.lateness_ns, 0);
    }

    #[test]
    fn sliding_requires_a_valid_slide() {
        let q = parse("window sliding 1ms slide 250us emit depth").unwrap();
        assert_eq!(q.kind, WindowKind::Sliding { slide_ns: 250_000 });
        assert!(parse("window sliding 1ms").is_err());
        assert!(parse("window sliding 1ms slide 2ms").is_err());
        assert!(parse("window sliding 1ms slide 0").is_err());
    }

    #[test]
    fn display_round_trips() {
        for text in [
            "port 3 window tumbling 1ms where max(depth) > 5 topk 8 emit flows",
            "port * window sliding 1s slide 250ms emit depth lateness 2us",
            "window tumbling 100ns where avg(depth) <= 1.5",
            "port 65535 window tumbling 3s where count(depth) >= 10 topk 1 emit depth",
            "port 2 window tumbling 1ms where p99(rtt) > 1000000 emit flows",
            "window sliding 2ms slide 1ms where avg(rtt) <= 500000 emit depth",
        ] {
            let q = parse(text).unwrap();
            let canon = q.to_string();
            assert_eq!(parse(&canon).unwrap(), q, "round-trip of {canon:?}");
        }
    }

    #[test]
    fn rejects_malformed_queries() {
        for bad in [
            "",
            "port",
            "port x window tumbling 1ms",
            "window",
            "window tumbling 0",
            "window tumbling 1ms where",
            "window tumbling 1ms where median(depth) > 1",
            "window tumbling 1ms where p99(depth) > 1",
            "window tumbling 1ms where p99 > 1",
            "window tumbling 1ms where max(latency) > 1",
            "window tumbling 1ms where max(depth) != 1",
            "window tumbling 1ms where max(depth) > nan",
            "window tumbling 1ms topk 0",
            "window tumbling 1ms emit everything",
            "window tumbling 1ms extra",
            "window tumbling 10zz",
            "window tumbling 99999999999999999999s",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn durations_scale() {
        assert_eq!(parse_duration("7").unwrap(), 7);
        assert_eq!(parse_duration("7ns").unwrap(), 7);
        assert_eq!(parse_duration("7us").unwrap(), 7_000);
        assert_eq!(parse_duration("7ms").unwrap(), 7_000_000);
        assert_eq!(parse_duration("7s").unwrap(), 7_000_000_000);
    }
}
