//! Bounded top-k flow summaries (space-saving).
//!
//! A standing subscription must not grow with the number of distinct
//! flows it observes — that is the memory discipline that makes a
//! fleet of subscriptions deployable. `TopKSummary` is a fixed-capacity
//! space-saving summary (Metwally et al.): at most `cap` slots, each
//! holding an over-estimating count and the error bound inherited from
//! the slot it displaced. Two invariants make it honest:
//!
//! - `count >= true weight` and `count - err <= true weight` for every
//!   retained flow, so rankings never silently *lose* a heavy flow to
//!   an eviction without the displaced weight showing up in the error.
//! - every eviction is **accounted**: `evictions` counts them and
//!   `evicted_weight` accumulates the displaced slots' counts (an
//!   upper bound on the unrepresented mass), which the wire surfaces
//!   to clients as a coverage caveat.
//!
//! Merging (the router's per-window shard rollup) is union-sum of
//! counts and errors followed by a trim back to capacity. When the
//! union fits within `cap` — the regime the scale-out acceptance tests
//! pin — no trim occurs, the summary is exact, and the merge is
//! associative and commutative; the property tests assert this with
//! integer-valued weights where f64 summation is exact.
//!
//! Determinism everywhere: the backing map is a `BTreeMap`, the evicted
//! slot is the `(count, flow)`-lexicographic minimum by count with the
//! *largest* flow id breaking ties (so smaller ids survive, matching
//! the ranking's tie-break), and `ranked()` sorts by count descending
//! then flow ascending — the same order `FlowEstimates::ranked` uses.

use std::collections::BTreeMap;

#[derive(Debug, Clone, Copy, PartialEq)]
struct Slot {
    count: f64,
    /// Maximum over-estimation: the count of the slot this one evicted
    /// (0 for flows admitted into free capacity).
    err: f64,
}

/// A fixed-capacity space-saving summary over `(flow, weight)` offers.
#[derive(Debug, Clone, PartialEq)]
pub struct TopKSummary {
    cap: usize,
    slots: BTreeMap<u32, Slot>,
    /// Slots displaced since creation (offer evictions + merge trims).
    pub evictions: u64,
    /// Upper bound on the total weight the displaced slots carried.
    pub evicted_weight: f64,
}

impl TopKSummary {
    /// A summary holding at most `cap` flows; `cap` is clamped to at
    /// least 1 so an offer always lands somewhere.
    pub fn new(cap: usize) -> TopKSummary {
        TopKSummary {
            cap: cap.max(1),
            slots: BTreeMap::new(),
            evictions: 0,
            evicted_weight: 0.0,
        }
    }

    pub fn cap(&self) -> usize {
        self.cap
    }

    pub fn len(&self) -> usize {
        self.slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The deterministic eviction victim: minimum count, ties broken
    /// toward the largest flow id.
    fn victim(&self) -> Option<u32> {
        self.slots
            .iter()
            .min_by(|(fa, a), (fb, b)| {
                a.count
                    .partial_cmp(&b.count)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(fb.cmp(fa))
            })
            .map(|(&flow, _)| flow)
    }

    /// Fold `weight` for `flow` into the summary.
    pub fn offer(&mut self, flow: u32, weight: f64) {
        if let Some(slot) = self.slots.get_mut(&flow) {
            slot.count += weight;
            return;
        }
        if self.slots.len() < self.cap {
            self.slots.insert(
                flow,
                Slot {
                    count: weight,
                    err: 0.0,
                },
            );
            return;
        }
        let victim = self.victim().expect("cap >= 1, so a victim exists");
        let displaced = self
            .slots
            .remove(&victim)
            .expect("victim came from the map");
        self.evictions += 1;
        self.evicted_weight += displaced.count;
        self.slots.insert(
            flow,
            Slot {
                count: displaced.count + weight,
                err: displaced.count,
            },
        );
    }

    /// Union another summary in (counts and error bounds sum per flow),
    /// then trim back to this summary's capacity with the same
    /// accounted eviction rule. Exact — and associative — whenever the
    /// union fits within `cap`.
    pub fn merge(&mut self, other: &TopKSummary) {
        for (&flow, o) in &other.slots {
            match self.slots.get_mut(&flow) {
                Some(slot) => {
                    slot.count += o.count;
                    slot.err += o.err;
                }
                None => {
                    self.slots.insert(flow, *o);
                }
            }
        }
        self.evictions += other.evictions;
        self.evicted_weight += other.evicted_weight;
        while self.slots.len() > self.cap {
            let victim = self.victim().expect("len > cap >= 1");
            let displaced = self
                .slots
                .remove(&victim)
                .expect("victim came from the map");
            self.evictions += 1;
            self.evicted_weight += displaced.count;
        }
    }

    /// Retained flows, heaviest first (count descending, flow id
    /// ascending on ties), trimmed to `k` when given.
    pub fn ranked(&self, k: Option<u32>) -> Vec<(u32, f64)> {
        let mut out: Vec<(u32, f64)> = self
            .slots
            .iter()
            .map(|(&flow, slot)| (flow, slot.count))
            .collect();
        out.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        if let Some(k) = k {
            out.truncate(k as usize);
        }
        out
    }

    /// The error bound for a retained flow (how far `count` may
    /// overestimate its true weight).
    pub fn err_of(&self, flow: u32) -> Option<f64> {
        self.slots.get(&flow).map(|s| s.err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_within_capacity() {
        let mut s = TopKSummary::new(4);
        s.offer(1, 10.0);
        s.offer(2, 5.0);
        s.offer(1, 2.0);
        assert_eq!(s.ranked(None), vec![(1, 12.0), (2, 5.0)]);
        assert_eq!(s.evictions, 0);
        assert_eq!(s.evicted_weight, 0.0);
        assert_eq!(s.err_of(1), Some(0.0));
    }

    #[test]
    fn eviction_is_accounted_and_bounded() {
        let mut s = TopKSummary::new(2);
        s.offer(1, 10.0);
        s.offer(2, 3.0);
        s.offer(3, 1.0); // displaces flow 2 (count 3)
        assert_eq!(s.len(), 2);
        assert_eq!(s.evictions, 1);
        assert_eq!(s.evicted_weight, 3.0);
        // Space-saving invariant: new slot overestimates by the
        // displaced count, and err records exactly that.
        assert_eq!(s.ranked(None), vec![(1, 10.0), (3, 4.0)]);
        assert_eq!(s.err_of(3), Some(3.0));
    }

    #[test]
    fn victim_tie_breaks_toward_larger_flow_id() {
        let mut s = TopKSummary::new(2);
        s.offer(7, 1.0);
        s.offer(2, 1.0);
        s.offer(9, 5.0); // equal-count victims 7 and 2: 7 goes
        let flows: Vec<u32> = s.ranked(None).into_iter().map(|(f, _)| f).collect();
        assert!(flows.contains(&2) && !flows.contains(&7));
    }

    #[test]
    fn merge_unions_and_trims_with_accounting() {
        let mut a = TopKSummary::new(2);
        a.offer(1, 4.0);
        a.offer(2, 2.0);
        let mut b = TopKSummary::new(2);
        b.offer(3, 3.0);
        b.offer(2, 1.0);
        a.merge(&b);
        assert_eq!(a.len(), 2);
        // Union was {1:4, 2:3, 3:3}; the trim victim is the count-3
        // slot with the larger flow id.
        assert_eq!(a.ranked(None), vec![(1, 4.0), (2, 3.0)]);
        assert_eq!(a.evictions, 1);
        assert_eq!(a.evicted_weight, 3.0);
    }

    #[test]
    fn ranked_truncates_to_k() {
        let mut s = TopKSummary::new(8);
        for f in 0..5u32 {
            s.offer(f, f64::from(f + 1));
        }
        assert_eq!(s.ranked(Some(2)), vec![(4, 5.0), (3, 4.0)]);
    }
}
