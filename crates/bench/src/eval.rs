//! Shared query-evaluation logic for the accuracy figures.

use crate::harness::RunOutput;
use crate::victims::{bucket_of, Victim};
use pq_baselines::ProratedQuerier;
use pq_core::metrics::{self, FlowCounts, PrecisionRecall};
use pq_core::snapshot::QueryInterval;
use serde::Serialize;

/// Accuracy of one query, tagged with its depth bucket.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct QueryAccuracy {
    /// Index into [`crate::victims::DEPTH_BUCKETS`].
    pub bucket: usize,
    pub pr: PrecisionRecall,
}

/// Ground-truth direct-culprit counts for a victim.
pub fn victim_truth(out: &RunOutput, victim: &Victim) -> FlowCounts {
    let truth = out.truth.direct_culprits(
        victim.record.meta.enq_timestamp,
        victim.record.deq_timestamp(),
        victim.record.seqno,
    );
    metrics::to_float_counts(&truth)
}

/// Evaluate asynchronous PrintQueue queries for each victim (§7.1 AQ).
pub fn eval_async(out: &mut RunOutput, victims: &[Victim]) -> Vec<QueryAccuracy> {
    victims
        .iter()
        .map(|v| {
            let truth = victim_truth(out, v);
            let interval =
                QueryInterval::new(v.record.meta.enq_timestamp, v.record.deq_timestamp());
            let est = out
                .printqueue
                .analysis_mut()
                .query_time_windows(0, interval);
            QueryAccuracy {
                bucket: v.bucket,
                pr: metrics::precision_recall(&est.counts, &truth),
            }
        })
        .collect()
}

/// Evaluate the data-plane (on-demand) queries that fired during the run
/// (§7.1 DQ): each trigger froze a special register set; accuracy is
/// computed for the triggering packet itself.
pub fn eval_dataplane(out: &mut RunOutput) -> Vec<QueryAccuracy> {
    let triggers = out.printqueue.triggers_fired.clone();
    let mut results = Vec::new();
    for (i, (_port, interval, _at, depth)) in triggers.iter().enumerate() {
        let Some(bucket) = bucket_of(*depth) else {
            continue;
        };
        let Some(est) = out.printqueue.analysis_mut().query_special(0, Some(i)) else {
            continue;
        };
        // Recover the triggering packet's ground truth. The trigger packet
        // is the one that dequeued at `interval.to` having enqueued at
        // `interval.from`.
        let Some(victim) = out
            .truth
            .records()
            .iter()
            .find(|r| r.meta.enq_timestamp == interval.from && r.deq_timestamp() == interval.to)
            .copied()
        else {
            continue;
        };
        let truth = metrics::to_float_counts(&out.truth.direct_culprits(
            interval.from,
            interval.to,
            victim.seqno,
        ));
        results.push(QueryAccuracy {
            bucket,
            pr: metrics::precision_recall(&est.counts, &truth),
        });
    }
    results
}

/// Evaluate a prorated fixed-interval baseline for each victim.
pub fn eval_baseline(
    out: &RunOutput,
    querier: &ProratedQuerier,
    victims: &[Victim],
) -> Vec<QueryAccuracy> {
    victims
        .iter()
        .map(|v| {
            let truth = victim_truth(out, v);
            let est = querier.query(v.record.meta.enq_timestamp, v.record.deq_timestamp());
            QueryAccuracy {
                bucket: v.bucket,
                pr: metrics::precision_recall(&est, &truth),
            }
        })
        .collect()
}

/// Aggregate per-bucket statistics of a set of query accuracies.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct BucketStats {
    pub samples: usize,
    pub mean_precision: f64,
    pub mean_recall: f64,
    pub median_precision: f64,
    pub median_recall: f64,
}

/// Group accuracies into the six depth buckets.
pub fn per_bucket(accuracies: &[QueryAccuracy]) -> [BucketStats; 6] {
    let mut out = [BucketStats::default(); 6];
    for (b, stats) in out.iter_mut().enumerate() {
        let ps: Vec<f64> = accuracies
            .iter()
            .filter(|a| a.bucket == b)
            .map(|a| a.pr.precision)
            .collect();
        let rs: Vec<f64> = accuracies
            .iter()
            .filter(|a| a.bucket == b)
            .map(|a| a.pr.recall)
            .collect();
        *stats = BucketStats {
            samples: ps.len(),
            mean_precision: metrics::mean(&ps),
            mean_recall: metrics::mean(&rs),
            median_precision: metrics::median(&ps),
            median_recall: metrics::median(&rs),
        };
    }
    out
}

/// Overall averages across every sample.
pub fn overall(accuracies: &[QueryAccuracy]) -> PrecisionRecall {
    let ps: Vec<f64> = accuracies.iter().map(|a| a.pr.precision).collect();
    let rs: Vec<f64> = accuracies.iter().map(|a| a.pr.recall).collect();
    PrecisionRecall {
        precision: metrics::mean(&ps),
        recall: metrics::mean(&rs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pq_core::metrics::PrecisionRecall;

    fn acc(bucket: usize, p: f64, r: f64) -> QueryAccuracy {
        QueryAccuracy {
            bucket,
            pr: PrecisionRecall {
                precision: p,
                recall: r,
            },
        }
    }

    #[test]
    fn per_bucket_groups_and_averages() {
        let accs = vec![acc(0, 1.0, 0.5), acc(0, 0.5, 1.0), acc(3, 0.2, 0.2)];
        let stats = per_bucket(&accs);
        assert_eq!(stats[0].samples, 2);
        assert!((stats[0].mean_precision - 0.75).abs() < 1e-12);
        assert!((stats[0].mean_recall - 0.75).abs() < 1e-12);
        assert!((stats[0].median_precision - 0.75).abs() < 1e-12);
        assert_eq!(stats[3].samples, 1);
        assert_eq!(stats[1].samples, 0);
        assert_eq!(stats[1].mean_precision, 0.0);
    }

    #[test]
    fn overall_averages_everything() {
        let accs = vec![acc(0, 1.0, 0.0), acc(5, 0.0, 1.0)];
        let pr = overall(&accs);
        assert!((pr.precision - 0.5).abs() < 1e-12);
        assert!((pr.recall - 0.5).abs() < 1e-12);
    }

    #[test]
    fn overall_of_empty_is_zero() {
        let pr = overall(&[]);
        assert_eq!(pr.precision, 0.0);
        assert_eq!(pr.recall, 0.0);
    }
}
