//! Victim sampling — the §7.1 methodology.
//!
//! "For a given victim packet, we classify its query into six groups based
//! on the queuing it encounters: 1k to 2k, 2k to 5k, 5k to 10k, 10k to 15k,
//! 15k to 20k, and above 20k" (queue depth in buffer cells). "For
//! asynchronous queries, we randomly sample 100 victim packets experiencing
//! each queue depth."

use pq_core::culprits::GroundTruth;
use pq_switch::TelemetryRecord;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A queue-depth bucket in cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepthBucket {
    /// Inclusive lower bound in cells.
    pub lo: u32,
    /// Exclusive upper bound (`u32::MAX` = unbounded).
    pub hi: u32,
    /// Display label, e.g. `1-2`.
    pub label: &'static str,
}

impl DepthBucket {
    /// Does a depth fall inside the bucket?
    pub fn contains(&self, depth_cells: u32) -> bool {
        depth_cells >= self.lo && depth_cells < self.hi
    }
}

/// The paper's six queue-depth groups (×10³ cells).
pub const DEPTH_BUCKETS: [DepthBucket; 6] = [
    DepthBucket {
        lo: 1_000,
        hi: 2_000,
        label: "1-2",
    },
    DepthBucket {
        lo: 2_000,
        hi: 5_000,
        label: "2-5",
    },
    DepthBucket {
        lo: 5_000,
        hi: 10_000,
        label: "5-10",
    },
    DepthBucket {
        lo: 10_000,
        hi: 15_000,
        label: "10-15",
    },
    DepthBucket {
        lo: 15_000,
        hi: 20_000,
        label: "15-20",
    },
    DepthBucket {
        lo: 20_000,
        hi: u32::MAX,
        label: ">20",
    },
];

/// A sampled victim packet.
#[derive(Debug, Clone, Copy)]
pub struct Victim {
    /// The victim's telemetry record.
    pub record: TelemetryRecord,
    /// Which bucket its enqueue-time depth fell into.
    pub bucket: usize,
}

/// Sample up to `per_bucket` victims per depth bucket, uniformly at random
/// with a fixed seed.
pub fn sample_victims(truth: &GroundTruth, per_bucket: usize, seed: u64) -> Vec<Victim> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut victims = Vec::new();
    for (b, bucket) in DEPTH_BUCKETS.iter().enumerate() {
        let mut in_bucket: Vec<&TelemetryRecord> = truth
            .records()
            .iter()
            .filter(|r| bucket.contains(r.meta.enq_qdepth))
            .collect();
        in_bucket.shuffle(&mut rng);
        victims.extend(in_bucket.into_iter().take(per_bucket).map(|r| Victim {
            record: *r,
            bucket: b,
        }));
    }
    victims
}

/// Index of the bucket containing `depth_cells`, if any.
pub fn bucket_of(depth_cells: u32) -> Option<usize> {
    DEPTH_BUCKETS.iter().position(|b| b.contains(depth_cells))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pq_packet::{FlowId, PacketMeta};

    fn rec(seqno: u64, depth: u32) -> TelemetryRecord {
        TelemetryRecord {
            flow: FlowId(0),
            port: 0,
            len: 80,
            seqno,
            meta: PacketMeta {
                egress_port: 0,
                enq_timestamp: seqno * 10,
                deq_timedelta: 100,
                enq_qdepth: depth,
                queue: 0,
            },
        }
    }

    #[test]
    fn buckets_partition_the_range() {
        assert_eq!(bucket_of(999), None);
        assert_eq!(bucket_of(1_000), Some(0));
        assert_eq!(bucket_of(4_999), Some(1));
        assert_eq!(bucket_of(19_999), Some(4));
        assert_eq!(bucket_of(1_000_000), Some(5));
    }

    #[test]
    fn sampling_respects_bucket_and_cap() {
        let mut records = Vec::new();
        for i in 0..500u64 {
            records.push(rec(i, 1_500)); // bucket 0
        }
        for i in 500..520u64 {
            records.push(rec(i, 3_000)); // bucket 1
        }
        let truth = GroundTruth::new(&records, 80);
        let victims = sample_victims(&truth, 100, 7);
        let b0 = victims.iter().filter(|v| v.bucket == 0).count();
        let b1 = victims.iter().filter(|v| v.bucket == 1).count();
        assert_eq!(b0, 100, "bucket 0 capped at 100");
        assert_eq!(b1, 20, "bucket 1 exhausts its 20 records");
        assert!(victims.iter().all(|v| v.bucket <= 1));
    }

    #[test]
    fn sampling_is_deterministic() {
        let records: Vec<TelemetryRecord> = (0..300).map(|i| rec(i, 1_200)).collect();
        let truth = GroundTruth::new(&records, 80);
        let a: Vec<u64> = sample_victims(&truth, 50, 1)
            .iter()
            .map(|v| v.record.seqno)
            .collect();
        let b: Vec<u64> = sample_victims(&truth, 50, 1)
            .iter()
            .map(|v| v.record.seqno)
            .collect();
        assert_eq!(a, b);
    }
}
