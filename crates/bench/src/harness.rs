//! Shared experiment runner: wire a workload, the switch, PrintQueue, and
//! the baselines together and collect everything the figures need.

use pq_baselines::{FlowRadar, HashPipe, ProratedQuerier};
use pq_core::culprits::GroundTruth;
use pq_core::faults::FaultConfig;
use pq_core::params::TimeWindowConfig;
use pq_core::printqueue::{DataPlaneTrigger, PrintQueue, PrintQueueConfig};
use pq_packet::{FlowKey, Nanos, SimPacket};
use pq_switch::{QueueHooks, Switch, SwitchConfig, TelemetrySink};
use pq_trace::workload::GeneratedTrace;

/// Runs HashPipe and FlowRadar side-by-side with PrintQueue, resetting both
/// at a fixed period (the paper sets it to PrintQueue's set period) and
/// accumulating per-period counts for prorated queries.
pub struct BaselineHook {
    pub hashpipe: HashPipe,
    pub flowradar: FlowRadar,
    pub hp_periods: ProratedQuerier,
    pub fr_periods: ProratedQuerier,
    /// FlowId → tuple, for the hash functions.
    keys: Vec<FlowKey>,
    period: Nanos,
    period_start: Nanos,
}

impl BaselineHook {
    /// Paper-parity baselines (4096 × 5 stages) resetting every `period`.
    pub fn paper_parity(keys: Vec<FlowKey>, period: Nanos) -> BaselineHook {
        BaselineHook {
            hashpipe: HashPipe::new(5, 4096),
            flowradar: FlowRadar::paper_parity(),
            hp_periods: ProratedQuerier::new(),
            fr_periods: ProratedQuerier::new(),
            keys,
            period,
            period_start: 0,
        }
    }

    fn rollover(&mut self, now: Nanos) {
        if now < self.period_start + self.period {
            return;
        }
        self.hp_periods
            .push_period(self.period_start, now, self.hashpipe.counts());
        self.fr_periods
            .push_period(self.period_start, now, self.flowradar.decode());
        self.hashpipe.reset();
        self.flowradar.reset();
        self.period_start = now;
    }

    /// Flush the final partial period (call after the run).
    pub fn finish(&mut self, now: Nanos) {
        if now > self.period_start {
            self.hp_periods
                .push_period(self.period_start, now, self.hashpipe.counts());
            self.fr_periods
                .push_period(self.period_start, now, self.flowradar.decode());
            self.period_start = now;
        }
    }
}

impl QueueHooks for BaselineHook {
    fn on_dequeue(&mut self, pkt: &SimPacket, _port: u16, _depth_after: u32, _now: Nanos) {
        let key = self.keys[pkt.flow.0 as usize];
        self.hashpipe.record(pkt.flow, &key);
        self.flowradar.record(pkt.flow, &key);
    }

    fn on_tick(&mut self, now: Nanos) {
        self.rollover(now);
    }
}

/// One experiment run's configuration.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Time-window parameters.
    pub tw: TimeWindowConfig,
    /// Egress port rate in Gbps.
    pub port_rate_gbps: f64,
    /// Tail-drop threshold in cells.
    pub max_depth_cells: u32,
    /// Theorem-3 boot value: min packet tx delay in ns.
    pub min_pkt_tx_delay: Nanos,
    /// Attach the baselines?
    pub with_baselines: bool,
    /// Data-plane trigger (for DQ experiments).
    pub trigger: Option<DataPlaneTrigger>,
    /// Queue-monitor entries (0 disables by using 1 entry).
    pub qm_entries: usize,
    /// Control-plane poll period override (`None` = once per set period,
    /// the paper's default).
    pub poll_period: Option<Nanos>,
    /// Fault injection for the control plane (`None` = perfectly reliable
    /// reads, the historical behaviour).
    pub faults: Option<FaultConfig>,
}

impl RunConfig {
    /// Defaults matching the paper's testbed: 10 Gbps bottleneck, deep
    /// buffer, min-packet delay of the workload's packet floor.
    pub fn new(tw: TimeWindowConfig, min_pkt_tx_delay: Nanos) -> RunConfig {
        RunConfig {
            tw,
            port_rate_gbps: 10.0,
            max_depth_cells: 32_768,
            min_pkt_tx_delay,
            with_baselines: false,
            trigger: None,
            qm_entries: 32 * 1024,
            poll_period: None,
            faults: None,
        }
    }

    /// Enable the baseline hooks.
    pub fn with_baselines(mut self) -> RunConfig {
        self.with_baselines = true;
        self
    }

    /// Install a data-plane trigger.
    pub fn with_trigger(mut self, trigger: DataPlaneTrigger) -> RunConfig {
        self.trigger = Some(trigger);
        self
    }

    /// Inject control-plane faults during the run.
    pub fn with_faults(mut self, faults: FaultConfig) -> RunConfig {
        self.faults = Some(faults);
        self
    }
}

/// Everything a figure needs after a run.
pub struct RunOutput {
    /// PrintQueue with its checkpoints (query through `analysis_mut`).
    pub printqueue: PrintQueue,
    /// Baselines, when enabled.
    pub baselines: Option<BaselineHook>,
    /// Ground-truth oracle built from the telemetry records.
    pub truth: GroundTruth,
    /// Raw drop count.
    pub drops: u64,
    /// The end-of-run simulation time.
    pub end_time: Nanos,
    /// Packets transmitted.
    pub transmitted: u64,
}

/// Run `trace` through a single-port switch with PrintQueue (and optionally
/// the baselines) attached.
pub fn run(config: &RunConfig, trace: &GeneratedTrace) -> RunOutput {
    let mut pq_config = PrintQueueConfig::single_port(config.tw, config.min_pkt_tx_delay);
    pq_config.qm_entries = config.qm_entries.max(1);
    if let Some(poll) = config.poll_period {
        pq_config.control.poll_period = poll;
    }
    if let Some(trigger) = config.trigger {
        pq_config = pq_config.with_trigger(trigger);
    }
    if let Some(faults) = config.faults.clone() {
        pq_config = pq_config.with_faults(faults);
    }
    // The switch tick drives both the analysis program's polling and the
    // baselines' resets.
    let set_period = pq_config.control.poll_period.min(config.tw.set_period());
    let mut printqueue = PrintQueue::new(pq_config);
    let mut sink = TelemetrySink::new();
    let mut baselines = config.with_baselines.then(|| {
        let keys: Vec<FlowKey> = trace.flows.iter().map(|(_, k)| *k).collect();
        BaselineHook::paper_parity(keys, set_period)
    });

    let mut sw = Switch::new(SwitchConfig::single_port(
        config.port_rate_gbps,
        config.max_depth_cells,
    ));
    {
        let mut hooks: Vec<&mut dyn QueueHooks> = vec![&mut printqueue, &mut sink];
        if let Some(b) = baselines.as_mut() {
            hooks.push(b);
        }
        sw.run(trace.arrivals.iter().copied(), &mut hooks, set_period);
    }
    let end_time = sw.now();
    if let Some(b) = baselines.as_mut() {
        b.finish(end_time);
    }
    let transmitted = sw.port_stats(0).dequeued;
    RunOutput {
        printqueue,
        baselines,
        truth: GroundTruth::new(&sink.records, 80),
        drops: sink.drops,
        end_time,
        transmitted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pq_packet::NanosExt;
    use pq_trace::workload::{Workload, WorkloadKind};

    fn small_trace() -> GeneratedTrace {
        Workload {
            kind: WorkloadKind::Ws,
            duration: 5u64.millis(),
            load: 1.2,
            port: 0,
            port_rate_gbps: 10.0,
            sender_rate_gbps: 40.0,
            min_flow_rate_gbps: 0.5,
            warmup: 5u64.millis(),
            seed: 3,
        }
        .generate()
    }

    #[test]
    fn run_produces_ground_truth_and_checkpoints() {
        let trace = small_trace();
        let config = RunConfig::new(TimeWindowConfig::WS_DM, 1200).with_baselines();
        let out = run(&config, &trace);
        assert!(out.transmitted > 100, "transmitted {}", out.transmitted);
        assert!(!out.printqueue.analysis().checkpoints(0).is_empty());
        let baselines = out.baselines.expect("baselines attached");
        assert!(!baselines.hp_periods.is_empty());
        assert!(!baselines.fr_periods.is_empty());
        assert_eq!(out.truth.records().len() as u64, out.transmitted);
    }
}
