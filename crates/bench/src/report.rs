//! Output formatting: aligned text tables and JSON result files.

use serde::{Serialize, Value};
use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

/// A simple aligned text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Table {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (cells stringified by the caller).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        debug_assert_eq!(cells.len(), self.header.len(), "ragged table row");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let _ = write!(line, "{:<width$}", cell, width = widths[i]);
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout with a title.
    pub fn print(&self, title: &str) {
        println!("\n== {title} ==");
        print!("{}", self.render());
    }
}

/// Format a float to 3 decimals (the paper's accuracy precision).
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// The provenance block stamped into every `results/*.json` file: the
/// git commit the numbers came from, the exact argv, and whether the
/// observability plane was off during the measured region (span tracing
/// and registry updates can perturb per-packet timings).
pub fn run_meta(telemetry_off: bool) -> Value {
    let git_commit = pq_telemetry::provenance::git_commit();
    let argv: Vec<Value> = std::env::args().map(Value::Str).collect();
    Value::Object(vec![
        ("git_commit".to_string(), Value::Str(git_commit)),
        ("argv".to_string(), Value::Array(argv)),
        ("telemetry_off".to_string(), Value::Bool(telemetry_off)),
    ])
}

/// Write `value` as pretty JSON to `results/<name>.json` under the
/// workspace root (best effort — experiments still print to stdout).
/// A `meta` provenance block (see [`run_meta`]) is injected at the top
/// of the object; non-object values are wrapped as `{meta, results}`.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    write_json_with(name, value, true);
}

/// [`write_json`] for benches that deliberately run with telemetry
/// attached (so the `meta.telemetry_off` stamp is honest).
pub fn write_json_with<T: Serialize>(name: &str, value: &T, telemetry_off: bool) {
    write_json_with_meta(name, value, telemetry_off, Vec::new());
}

/// [`write_json_with`] plus experiment-specific provenance appended to
/// the `meta` block (e.g. a serving bench's observed cache hit-rate and
/// shed-rate, which qualify every row in the file).
pub fn write_json_with_meta<T: Serialize>(
    name: &str,
    value: &T,
    telemetry_off: bool,
    extra_meta: Vec<(String, Value)>,
) {
    let dir = results_dir();
    if fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    let mut meta = run_meta(telemetry_off);
    if let Value::Object(fields) = &mut meta {
        fields.extend(extra_meta);
    }
    let root = stamp(value.to_value(), meta);
    match serde_json::to_string_pretty(&root) {
        Ok(json) => {
            if fs::write(&path, json).is_ok() {
                println!("[results written to {}]", path.display());
            }
        }
        Err(err) => eprintln!("JSON serialization failed: {err}"),
    }
}

/// Inject `meta` as the first key of an object, or wrap a non-object
/// value as `{meta, results}`.
fn stamp(mut root: Value, meta: Value) -> Value {
    match &mut root {
        Value::Object(fields) => {
            fields.insert(0, ("meta".to_string(), meta));
            root
        }
        _ => Value::Object(vec![
            ("meta".to_string(), meta),
            ("results".to_string(), root),
        ]),
    }
}

fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; results live at the repo root.
    let manifest = env!("CARGO_MANIFEST_DIR");
    PathBuf::from(manifest)
        .parent()
        .and_then(|p| p.parent())
        .map(|p| p.join("results"))
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Parse the common experiment flags from argv: `--quick` (reduced scale)
/// and `--seed N`.
#[derive(Debug, Clone, Copy)]
pub struct CommonArgs {
    pub quick: bool,
    pub seed: u64,
}

impl CommonArgs {
    /// Parse from `std::env::args`.
    pub fn parse() -> CommonArgs {
        let mut quick = false;
        let mut seed = 1u64;
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => quick = true,
                "--seed" => {
                    seed = args
                        .next()
                        .and_then(|s| s.parse().ok())
                        .expect("--seed needs an integer");
                }
                other => {
                    eprintln!("unknown argument: {other} (supported: --quick, --seed N)");
                    std::process::exit(2);
                }
            }
        }
        CommonArgs { quick, seed }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new(vec!["a", "long-header", "c"]);
        t.row(vec!["1", "2", "3"]);
        t.row(vec!["wide-cell", "x", "y"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // Column 2 starts at the same offset in every data line.
        let off = lines[0].find("long-header").unwrap();
        assert_eq!(lines[2].find('2').unwrap(), off);
        assert_eq!(lines[3].find('x').unwrap(), off);
    }

    #[test]
    fn f3_rounds() {
        assert_eq!(f3(0.12345), "0.123");
        assert_eq!(f3(1.0), "1.000");
    }

    #[test]
    fn meta_is_first_key_of_objects() {
        let meta = run_meta(true);
        let stamped = stamp(Value::Object(vec![("x".into(), Value::U64(1))]), meta);
        let fields = stamped.as_object().unwrap();
        assert_eq!(fields[0].0, "meta");
        assert_eq!(fields[1].0, "x");
        let meta_fields = fields[0].1.as_object().unwrap();
        assert!(meta_fields.iter().any(|(k, _)| k == "git_commit"));
        assert!(meta_fields.iter().any(|(k, _)| k == "argv"));
        assert!(meta_fields
            .iter()
            .any(|(k, v)| k == "telemetry_off" && *v == Value::Bool(true)));
    }

    #[test]
    fn non_objects_get_wrapped() {
        let stamped = stamp(Value::Array(vec![Value::U64(7)]), run_meta(false));
        let fields = stamped.as_object().unwrap();
        assert_eq!(fields[0].0, "meta");
        assert_eq!(fields[1].0, "results");
        assert_eq!(fields[1].1, Value::Array(vec![Value::U64(7)]));
    }
}
