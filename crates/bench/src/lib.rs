//! Experiment harness regenerating the PrintQueue paper's evaluation.
//!
//! One binary per table/figure lives in `src/bin/`; shared machinery here:
//!
//! * [`harness`] — build a switch + PrintQueue + baselines for a workload,
//!   run it, and return the telemetry ground truth alongside the queryable
//!   state;
//! * [`victims`] — the §7.1 victim-sampling methodology: bucket victims by
//!   the queue depth they encountered and sample per bucket;
//! * [`report`] — aligned text tables and JSON result files under
//!   `results/`.
//!
//! All experiments are deterministic given their seeds. Run with
//! `--release`; the UW workloads push millions of packets per run.

pub mod eval;
pub mod harness;
pub mod report;
pub mod sweep;
pub mod victims;

pub use harness::{BaselineHook, RunConfig, RunOutput};
pub use victims::{DepthBucket, Victim, DEPTH_BUCKETS};
