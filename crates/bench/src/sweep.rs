//! Parallel parameter sweeps across seeds.
//!
//! Single-trace results carry heavy-tail noise (a couple of elephant flows
//! dominate any 100 ms window), so headline comparisons should be averaged
//! across seeds. This module fans a closure over seeds on worker threads
//! (each run is independent and CPU-bound — the case where threads, not
//! async, are the right tool) and aggregates mean and standard deviation.

use serde::{Deserialize, Serialize};
use std::thread;

/// Mean and standard deviation of one metric across runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aggregate {
    pub mean: f64,
    pub std_dev: f64,
    pub runs: usize,
}

impl Aggregate {
    /// Aggregate a sample set.
    pub fn of(values: &[f64]) -> Aggregate {
        let n = values.len();
        if n == 0 {
            return Aggregate {
                mean: 0.0,
                std_dev: 0.0,
                runs: 0,
            };
        }
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        Aggregate {
            mean,
            std_dev: var.sqrt(),
            runs: n,
        }
    }

    /// Render as `mean ± std`.
    pub fn display(&self) -> String {
        format!("{:.3} ± {:.3}", self.mean, self.std_dev)
    }
}

/// Run `job` once per seed, in parallel across up to `workers` threads, and
/// return the results in seed order.
///
/// `job` must be deterministic per seed; results are collected positionally
/// so thread scheduling cannot perturb output order.
pub fn sweep_seeds<T, F>(seeds: &[u64], workers: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    assert!(workers >= 1);
    let mut results: Vec<Option<T>> = Vec::with_capacity(seeds.len());
    results.resize_with(seeds.len(), || None);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results_mutex = std::sync::Mutex::new(&mut results);

    // std::thread::scope propagates worker panics when the scope exits.
    thread::scope(|scope| {
        for _ in 0..workers.min(seeds.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= seeds.len() {
                    break;
                }
                let out = job(seeds[i]);
                results_mutex.lock().unwrap()[i] = Some(out);
            });
        }
    });

    results
        .into_iter()
        .map(|r| r.expect("every seed produced a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_math() {
        let agg = Aggregate::of(&[1.0, 2.0, 3.0]);
        assert!((agg.mean - 2.0).abs() < 1e-12);
        assert!((agg.std_dev - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(agg.runs, 3);
        assert_eq!(Aggregate::of(&[]).runs, 0);
    }

    #[test]
    fn sweep_preserves_seed_order() {
        let seeds: Vec<u64> = (0..32).collect();
        let results = sweep_seeds(&seeds, 4, |s| s * 10);
        assert_eq!(results, (0..32).map(|s| s * 10).collect::<Vec<u64>>());
    }

    #[test]
    fn sweep_runs_in_parallel() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let concurrent = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let seeds: Vec<u64> = (0..16).collect();
        sweep_seeds(&seeds, 4, |_| {
            let now = concurrent.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(20));
            concurrent.fetch_sub(1, Ordering::SeqCst);
        });
        assert!(
            peak.load(Ordering::SeqCst) >= 2,
            "never observed parallelism"
        );
    }

    #[test]
    fn single_worker_degrades_to_serial() {
        let results = sweep_seeds(&[5, 6], 1, |s| s + 1);
        assert_eq!(results, vec![6, 7]);
    }
}
