//! Extension experiment: per-packet cost of the continuous profiler.
//!
//! Replays the same workload through the switch + PrintQueue stack in
//! three modes — profiler fully detached (scopes and lock stats off),
//! attached but not sampling (scopes enabled, the production default
//! once `--prof` is passed), and sampling at the production fleet period (5 ms, the CI prof smoke's `--prof-sample-ms`) — and reports the
//! per-packet wall time of each. The headline acceptance numbers are
//! the *attached* overhead (must stay under 2%: a disabled scope guard
//! is one relaxed atomic load, an enabled one two `Instant` reads and a
//! handful of relaxed adds on leaked statics) and the *sampling*
//! overhead (under 5%: the ticker thread walks seqlock-published stacks
//! without ever stopping the mutators). Rounds are interleaved (one rep
//! of each mode per round) so clock drift and cache warmth hit all
//! modes equally, mirroring `ext_telemetry_overhead`. CI gates these
//! numbers, so the overhead estimator must survive a noisy shared
//! runner: machine speed drifts *multiplicatively* across a run
//! (frequency governors, co-tenants), which an unpaired median or min
//! cannot cancel. Instead each round yields a paired ratio — this
//! round's attached (or sampling) time over this round's detached time,
//! measured back-to-back on the same machine state — and the reported
//! overhead is the median of those ratios.

use pq_bench::report::{write_json_with_meta, CommonArgs, Table};
use pq_core::params::TimeWindowConfig;
use pq_core::printqueue::{PrintQueue, PrintQueueConfig};
use pq_switch::{QueueHooks, Switch, SwitchConfig};
use pq_trace::workload::{GeneratedTrace, Workload, WorkloadKind};
use serde::{Serialize, Value};
use std::time::{Duration, Instant};

const MIN_PKT_TX_DELAY: u64 = 110;

/// Sampling period for the Sampling mode: the production period the CI
/// prof smoke runs its fleet at. (1 ms works too, but on a single-core
/// box a 1 kHz ticker's wakeup interference — not the sampling work —
/// dominates what the budget is meant to measure.)
const SAMPLE_MS: u64 = 5;

#[derive(Clone, Copy, PartialEq, Debug)]
enum Mode {
    /// Seed behavior: scopes off, lock stats off, no sampler.
    Detached,
    /// Scopes and lock stats recording, no stack sampler.
    Attached,
    /// Attached plus the stack-sampling ticker at the fleet period.
    Sampling,
}

fn tw() -> TimeWindowConfig {
    // The paper's WS/DM data-plane configuration (§7.1).
    TimeWindowConfig::new(6, 1, 10, 3)
}

/// One full replay; returns wall nanoseconds per packet. The profiler
/// is process-global, so each rep flips the global switches for its
/// mode and resets accumulated state afterwards to keep reps
/// independent.
fn run_once(trace: &GeneratedTrace, mode: Mode) -> f64 {
    pq_prof::set_enabled(mode != Mode::Detached);
    pq_prof::set_lock_stats(mode != Mode::Detached);
    if mode == Mode::Sampling {
        pq_prof::start_sampler(Duration::from_millis(SAMPLE_MS));
    }
    let tw = tw();
    let mut pq = PrintQueue::new(PrintQueueConfig::single_port(tw, MIN_PKT_TX_DELAY));
    let mut sw = Switch::new(SwitchConfig::single_port(10.0, 32_768));
    let start = Instant::now();
    {
        let mut hooks: Vec<&mut dyn QueueHooks> = vec![&mut pq];
        sw.run(trace.arrivals.iter().copied(), &mut hooks, tw.set_period());
    }
    let elapsed_ns = start.elapsed().as_nanos() as f64;
    if mode == Mode::Sampling {
        pq_prof::stop_sampler();
    }
    pq_prof::set_enabled(false);
    pq_prof::set_lock_stats(true);
    pq_prof::reset();
    elapsed_ns / trace.packets() as f64
}

fn min_ns(samples: &[f64]) -> f64 {
    samples.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Median of per-round `mode / detached` ratios, as an overhead
/// percentage. Pairing within a round cancels the multiplicative
/// machine-speed drift that dominates between rounds.
fn paired_overhead_pct(mode: &[f64], detached: &[f64]) -> f64 {
    let mut ratios: Vec<f64> = mode.iter().zip(detached).map(|(m, d)| m / d).collect();
    ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (ratios[ratios.len() / 2] - 1.0) * 100.0
}

#[derive(Serialize)]
struct Results {
    packets: u64,
    reps: usize,
    detached_ns_per_pkt: f64,
    attached_ns_per_pkt: f64,
    sampling_ns_per_pkt: f64,
    attached_overhead_pct: f64,
    sampling_overhead_pct: f64,
    attached_within_2pct: bool,
    sampling_within_5pct: bool,
}

fn main() {
    let args = CommonArgs::parse();
    let (duration_ms, reps): (u64, usize) = if args.quick { (20, 5) } else { (60, 9) };
    let trace =
        Workload::paper_testbed(WorkloadKind::Ws, duration_ms * 1_000_000, args.seed).generate();
    eprintln!(
        "[ext_prof_overhead] {} packets, min of {reps} interleaved reps",
        trace.packets()
    );

    // Warmup rep of each mode (first-touch page faults, branch training,
    // scope-site interning).
    for mode in [Mode::Detached, Mode::Attached, Mode::Sampling] {
        run_once(&trace, mode);
    }
    let mut detached = Vec::with_capacity(reps);
    let mut attached = Vec::with_capacity(reps);
    let mut sampling = Vec::with_capacity(reps);
    for _ in 0..reps {
        detached.push(run_once(&trace, Mode::Detached));
        attached.push(run_once(&trace, Mode::Attached));
        sampling.push(run_once(&trace, Mode::Sampling));
    }
    // The ns/pkt columns are best-case (min) throughput per mode; the
    // gated overheads come from the paired per-round ratios.
    let detached_ns = min_ns(&detached);
    let attached_ns = min_ns(&attached);
    let sampling_ns = min_ns(&sampling);
    let attached_pct = paired_overhead_pct(&attached, &detached);
    let sampling_pct = paired_overhead_pct(&sampling, &detached);

    let mut table = Table::new(vec!["mode", "ns/pkt", "overhead"]);
    table.row(vec![
        "detached".to_string(),
        format!("{detached_ns:.1}"),
        "-".to_string(),
    ]);
    table.row(vec![
        "attached, not sampling".to_string(),
        format!("{attached_ns:.1}"),
        format!("{attached_pct:+.2}%"),
    ]);
    table.row(vec![
        format!("sampling at {SAMPLE_MS}ms"),
        format!("{sampling_ns:.1}"),
        format!("{sampling_pct:+.2}%"),
    ]);
    table.print("Extension — continuous profiler per-packet overhead");
    let results = Results {
        packets: trace.packets() as u64,
        reps,
        detached_ns_per_pkt: detached_ns,
        attached_ns_per_pkt: attached_ns,
        sampling_ns_per_pkt: sampling_ns,
        attached_overhead_pct: attached_pct,
        sampling_overhead_pct: sampling_pct,
        attached_within_2pct: attached_pct < 2.0,
        sampling_within_5pct: sampling_pct < 5.0,
    };
    // The overhead percentages ride in the meta block too, so any
    // consumer of the results file sees the qualification without
    // parsing the rows.
    write_json_with_meta(
        "ext_prof_overhead",
        &results,
        true,
        vec![
            (
                "overhead_attached_pct".to_string(),
                Value::F64(attached_pct),
            ),
            (
                "overhead_sampling_pct".to_string(),
                Value::F64(sampling_pct),
            ),
        ],
    );
    if !results.attached_within_2pct {
        eprintln!("WARNING: attached-profiler overhead {attached_pct:.2}% exceeds the 2% budget");
    }
    if !results.sampling_within_5pct {
        eprintln!("WARNING: sampling-profiler overhead {sampling_pct:.2}% exceeds the 5% budget");
    }
}
