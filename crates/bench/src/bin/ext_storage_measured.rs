//! Extension experiment: *measured* storage comparison on a live run.
//!
//! Figure 14(a)'s ratio is analytic; this binary measures the same
//! comparison end-to-end: the UW workload runs once with both a
//! NetSight-style postcard collector (linear per-packet storage) and
//! PrintQueue's analysis program (periodic register reads) attached, and
//! reports actual bytes accumulated by each, plus what each can answer.

use pq_baselines::history::PostcardEmitter;
use pq_bench::harness::RunConfig;
use pq_bench::report::{write_json, CommonArgs, Table};
use pq_core::culprits::GroundTruth;
use pq_core::metrics::{self, precision_recall};
use pq_core::params::TimeWindowConfig;
use pq_core::printqueue::{PrintQueue, PrintQueueConfig};
use pq_core::snapshot::QueryInterval;
use pq_packet::NanosExt;
use pq_switch::{QueueHooks, Switch, SwitchConfig, TelemetrySink};
use pq_trace::workload::{Workload, WorkloadKind};
use serde::Serialize;

#[derive(Serialize)]
struct Output {
    duration_ms: u64,
    packets: u64,
    netsight_bytes: u64,
    printqueue_bytes: u64,
    ratio: f64,
    netsight_recall: f64,
    printqueue_recall: f64,
}

fn main() {
    let args = CommonArgs::parse();
    let duration = if args.quick {
        30u64.millis()
    } else {
        120u64.millis()
    };
    let tw = TimeWindowConfig::UW;
    let config = RunConfig::new(tw, 110);
    let trace = Workload::paper_testbed(WorkloadKind::Uw, duration, args.seed).generate();
    eprintln!("[ext_storage_measured] UW: {} packets", trace.packets());

    let mut pq = PrintQueue::new(PrintQueueConfig::single_port(tw, config.min_pkt_tx_delay));
    let mut emitter = PostcardEmitter::new(1);
    let mut sink = TelemetrySink::new();
    let mut sw = Switch::new(SwitchConfig::single_port(
        config.port_rate_gbps,
        config.max_depth_cells,
    ));
    {
        let mut hooks: Vec<&mut dyn QueueHooks> = vec![&mut pq, &mut emitter, &mut sink];
        sw.run(trace.arrivals.iter().copied(), &mut hooks, tw.set_period());
    }

    // Accuracy of each on a sample victim (NetSight is exact by
    // construction; PrintQueue approximates).
    let truth = GroundTruth::new(&sink.records, 80);
    let victim = truth
        .records()
        .iter()
        .filter(|r| r.meta.enq_qdepth > 5_000)
        .max_by_key(|r| r.meta.deq_timedelta)
        .copied()
        .expect("congested victim");
    let interval = QueryInterval::new(victim.meta.enq_timestamp, victim.deq_timestamp());
    let gt =
        metrics::to_float_counts(&truth.direct_culprits(interval.from, interval.to, victim.seqno));

    let ns_counts = metrics::to_float_counts(&emitter.collector.flow_counts(
        1,
        0,
        interval.from,
        interval.to,
    ));
    // The collector also logged the victim itself; remove one packet of its
    // flow to mirror the ground-truth convention.
    let mut ns_counts = ns_counts;
    if let Some(n) = ns_counts.get_mut(&victim.flow) {
        *n -= 1.0;
    }
    let ns_pr = precision_recall(&ns_counts, &gt);

    let pq_est = pq.analysis().query_time_windows(0, interval);
    let pq_pr = precision_recall(&pq_est.counts, &gt);

    let netsight_bytes = emitter.collector.storage_bytes();
    let printqueue_bytes = pq.analysis().bytes_read;
    let out = Output {
        duration_ms: duration / 1_000_000,
        packets: sw.port_stats(0).dequeued,
        netsight_bytes,
        printqueue_bytes,
        ratio: netsight_bytes as f64 / printqueue_bytes.max(1) as f64,
        netsight_recall: ns_pr.recall,
        printqueue_recall: pq_pr.recall,
    };

    let mut table = Table::new(vec!["system", "collected bytes", "victim P/R"]);
    table.row(vec![
        "NetSight postcards".to_string(),
        format!("{} ({:.1} MB)", netsight_bytes, netsight_bytes as f64 / 1e6),
        format!("{:.3}/{:.3}", ns_pr.precision, ns_pr.recall),
    ]);
    table.row(vec![
        "PrintQueue registers".to_string(),
        format!(
            "{} ({:.2} MB)",
            printqueue_bytes,
            printqueue_bytes as f64 / 1e6
        ),
        format!("{:.3}/{:.3}", pq_pr.precision, pq_pr.recall),
    ]);
    table.print("Extension — measured storage: linear postcards vs PrintQueue");
    println!(
        "\nlinear storage collected {:.0}x more bytes over {} ms of UW traffic;\n\
         it answers exactly, PrintQueue approximates at a fraction of the cost\n\
         (the trade Figure 14(a) prices analytically).",
        out.ratio, out.duration_ms
    );
    write_json("ext_storage_measured", &out);
}
