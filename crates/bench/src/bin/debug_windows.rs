//! Diagnostic: per-window occupancy and recovery quality inside real
//! checkpoints (not a paper figure; useful when tuning parameters).
use pq_bench::harness::{run, RunConfig};
use pq_core::params::TimeWindowConfig;
use pq_core::snapshot::QueryInterval;
use pq_packet::NanosExt;
use pq_trace::workload::{Workload, WorkloadKind};

fn main() {
    let tw = TimeWindowConfig::new(6, 1, 12, 5);
    let trace = Workload::paper_testbed(WorkloadKind::Uw, 30u64.millis(), 1).generate();
    println!(
        "packets {} offered {:.2} Gbps",
        trace.packets(),
        trace.offered_gbps(30u64.millis())
    );
    let out = run(&RunConfig::new(tw, 110), &trace);
    let coeffs = out.printqueue.analysis().coefficients().clone();
    println!("coefficients: {:?}", coeffs.coefficient);
    for (ci, cp) in out.printqueue.analysis().checkpoints(0).iter().enumerate() {
        let mut snap = cp.windows.clone();
        snap.filter();
        print!("cp{ci}@{:.1}ms:", cp.frozen_at as f64 / 1e6);
        for w in snap.occupancy_profile() {
            let Some((from, to)) = w.span else {
                print!("  w{}[empty]", w.window);
                continue;
            };
            let truth = out
                .truth
                .records()
                .iter()
                .filter(|r| (from..to).contains(&r.deq_timestamp()))
                .count();
            let est = snap
                .query_window(w.window, QueryInterval::new(from, to - 1), &coeffs)
                .total();
            print!(
                "  w{}[{:.0}% full {:.1}-{:.1}ms est {est:.0} truth {truth}]",
                w.window,
                w.fill * 100.0,
                from as f64 / 1e6,
                to as f64 / 1e6
            );
        }
        println!();
    }
}
