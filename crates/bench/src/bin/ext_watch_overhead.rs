//! Extension experiment: cost of live metrics subscriptions on serving.
//!
//! Re-runs the `ext_serve_throughput` cache-on workload — concurrent
//! clients issuing replay queries against a spilled archive — three
//! times, with 0, 1, and 4 metrics subscribers attached for the whole
//! run. Each subscriber streams snapshot-delta updates at 250 ms —
//! four times the watch dashboard's default 1 s cadence, to be
//! conservative — while the query load runs; the publisher thread and
//! the per-update snapshot/diff work are the overhead being measured.
//!
//! Reported per scenario: achieved qps, p50/p99 request latency, and
//! how many updates/changed-series the subscribers saw. The headline
//! numbers — fractional qps regression with 1 and with 4 subscribers
//! relative to the 0-subscriber baseline — are stamped into the `meta`
//! block of `results/ext_watch_overhead.json`.

use pq_bench::report::{write_json_with_meta, CommonArgs, Table};
use pq_core::control::{AnalysisProgram, ControlConfig};
use pq_core::params::TimeWindowConfig;
use pq_packet::FlowId;
use pq_serve::{Client, ClientError, Request, ServeConfig, Server, Sources};
use pq_store::{SegmentPolicy, SharedStoreWriter, StoreWriter};
use pq_telemetry::Telemetry;
use serde::{Serialize, Value};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const POLL_PERIOD: u64 = 4_096;
const PORT: u16 = 0;
const SUB_INTERVAL_MS: u32 = 250;

#[derive(Serialize)]
struct Row {
    scenario: String,
    subscribers: usize,
    clients: usize,
    requests: usize,
    ok: usize,
    busy: usize,
    wall_ms: f64,
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
    updates_seen: usize,
    series_seen: usize,
}

fn tw() -> TimeWindowConfig {
    TimeWindowConfig::new(6, 1, 10, 3)
}

/// Spill `n_checkpoints` polls of synthetic traffic into a `.pqa` file.
fn build_archive(n_checkpoints: u64, path: &PathBuf) {
    let writer = StoreWriter::new(Vec::new(), tw(), SegmentPolicy::default()).unwrap();
    let handle = SharedStoreWriter::new(writer);
    let mut ap = AnalysisProgram::new(
        tw(),
        ControlConfig {
            poll_period: POLL_PERIOD,
            max_snapshots: n_checkpoints as usize + 8,
        },
        &[PORT],
        64,
        1,
        110,
    );
    ap.set_spill(Box::new(handle.clone()));
    let mut t = 0u64;
    for i in 0..n_checkpoints {
        for p in 0..50u64 {
            let flow = FlowId(((i * 7 + p) % 96) as u32);
            ap.record_dequeue(PORT, flow, t + p * (POLL_PERIOD / 64));
        }
        t += POLL_PERIOD;
        ap.on_tick(t);
    }
    handle.with(|w| w.set_health(PORT, ap.health())).unwrap();
    std::fs::write(path, handle.finish().unwrap()).unwrap();
}

/// The rotating query mix: `k` narrow intervals spread over the archive.
fn intervals(n_checkpoints: u64, k: u64) -> Vec<(u64, u64)> {
    let span = n_checkpoints * POLL_PERIOD;
    (0..k)
        .map(|i| {
            let from = (span * i) / k;
            (from, from + 4 * POLL_PERIOD)
        })
        .collect()
}

struct Outcome {
    ok: usize,
    busy: usize,
    wall_ms: f64,
    latencies_ms: Vec<f64>,
    updates_seen: usize,
    series_seen: usize,
}

/// Drive the query workload with `subscribers` live metrics streams
/// attached for the whole run. Subscribers fold updates until the
/// server's shutdown drain delivers the `last` frame, so they observe
/// every phase of the workload including teardown.
fn run_scenario(
    archive: &PathBuf,
    clients: usize,
    per_client: usize,
    mix: &[(u64, u64)],
    subscribers: usize,
) -> Outcome {
    let plane = Telemetry::new();
    let server = Server::bind(
        ("127.0.0.1", 0),
        Sources {
            live: None,
            archive: Some(archive.clone()),
            rtt: Vec::new(),
        },
        ServeConfig::default(),
        &plane,
    )
    .unwrap();
    let handle = server.spawn().unwrap();
    let addr: SocketAddr = handle.addr();

    let sub_threads: Vec<_> = (0..subscribers)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let first = client.subscribe(SUB_INTERVAL_MS, 0).unwrap();
                let mut updates = 1usize;
                let mut series = first.changed.iter().count();
                loop {
                    match client.next_update() {
                        Ok(update) => {
                            updates += 1;
                            series += update.changed.iter().count();
                            if update.last {
                                break;
                            }
                        }
                        Err(_) => break,
                    }
                }
                (updates, series)
            })
        })
        .collect();
    // Let the worker pool and every subscription settle before the
    // measured region starts — unconditionally, so the 0-subscriber
    // baseline gets the same grace period as the watched runs.
    std::thread::sleep(Duration::from_millis(50));

    let start = Instant::now();
    let threads: Vec<_> = (0..clients)
        .map(|c| {
            let mix = mix.to_vec();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut ok = 0usize;
                let mut busy = 0usize;
                let mut latencies = Vec::with_capacity(per_client);
                for r in 0..per_client {
                    let (from, to) = mix[(c + r) % mix.len()];
                    let t0 = Instant::now();
                    match client.query(Request::Replay {
                        port: PORT,
                        from,
                        to,
                        d: 110,
                    }) {
                        Ok(res) => {
                            assert!(!res.estimates.counts.is_empty());
                            latencies.push(t0.elapsed().as_secs_f64() * 1e3);
                            ok += 1;
                        }
                        Err(ClientError::Busy { retry_after_ms }) => {
                            busy += 1;
                            std::thread::sleep(Duration::from_millis(u64::from(retry_after_ms)));
                        }
                        Err(e) => panic!("query failed: {e}"),
                    }
                }
                (ok, busy, latencies)
            })
        })
        .collect();
    let mut ok = 0;
    let mut busy = 0;
    let mut latencies_ms = Vec::new();
    for t in threads {
        let (o, b, l) = t.join().unwrap();
        ok += o;
        busy += b;
        latencies_ms.extend(l);
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;

    // Shut down; the drain sends each subscriber its final update.
    handle.shutdown().unwrap();
    let mut updates_seen = 0;
    let mut series_seen = 0;
    for t in sub_threads {
        let (u, s) = t.join().unwrap();
        updates_seen += u;
        series_seen += s;
    }
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    Outcome {
        ok,
        busy,
        wall_ms,
        latencies_ms,
        updates_seen,
        series_seen,
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn main() {
    let args = CommonArgs::parse();
    let (n_checkpoints, clients, per_client, trials) = if args.quick {
        (512u64, 4usize, 100usize, 2usize)
    } else {
        (2_048, 8, 2_000, 3)
    };
    let mix = intervals(n_checkpoints, 8);
    let archive =
        std::env::temp_dir().join(format!("pq_ext_watch_overhead_{}.pqa", std::process::id()));
    eprintln!(
        "[ext_watch_overhead] spilling {n_checkpoints} checkpoints, \
         {clients} clients x {per_client} queries, subscribers 0/1/4"
    );
    build_archive(n_checkpoints, &archive);

    let mut rows = Vec::new();
    let mut table = Table::new(vec![
        "scenario", "subs", "clients", "ok", "busy", "qps", "p50 ms", "p99 ms", "updates", "series",
    ]);
    let mut push = |name: &str, subs: usize, out: &Outcome| -> f64 {
        let requests = clients * per_client;
        let qps = out.ok as f64 / (out.wall_ms / 1e3);
        let p50 = percentile(&out.latencies_ms, 0.50);
        let p99 = percentile(&out.latencies_ms, 0.99);
        table.row(vec![
            name.to_string(),
            format!("{subs}"),
            format!("{clients}"),
            format!("{}", out.ok),
            format!("{}", out.busy),
            format!("{qps:.0}"),
            format!("{p50:.3}"),
            format!("{p99:.3}"),
            format!("{}", out.updates_seen),
            format!("{}", out.series_seen),
        ]);
        rows.push(Row {
            scenario: name.to_string(),
            subscribers: subs,
            clients,
            requests,
            ok: out.ok,
            busy: out.busy,
            wall_ms: out.wall_ms,
            qps,
            p50_ms: p50,
            p99_ms: p99,
            updates_seen: out.updates_seen,
            series_seen: out.series_seen,
        });
        qps
    };

    // One discarded full-length pass to warm the OS page cache for the
    // archive, then `trials` interleaved rounds over the three scenarios
    // (0, 1, 4 subscribers in every round) so progressive system warming
    // — page cache, CPU frequency, allocator arenas — cannot bias any
    // one scenario. Best-of per scenario: the fastest run is the least
    // scheduler-perturbed estimate of what the configuration sustains.
    let _ = run_scenario(&archive, clients, per_client, &mix, 0);
    let mut best: [Option<Outcome>; 3] = [None, None, None];
    for _ in 0..trials {
        for (slot, subs) in [0usize, 1, 4].into_iter().enumerate() {
            let out = run_scenario(&archive, clients, per_client, &mix, subs);
            let better = best[slot]
                .as_ref()
                .is_none_or(|b| out.ok as f64 / out.wall_ms > b.ok as f64 / b.wall_ms);
            if better {
                best[slot] = Some(out);
            }
        }
    }
    let [base, one, four] = best.map(Option::unwrap);

    let qps_0 = push("subs_0", 0, &base);
    let qps_1 = push("subs_1", 1, &one);
    assert!(
        one.updates_seen >= 2,
        "the subscriber must see at least the initial snapshot and the drain"
    );
    let qps_4 = push("subs_4", 4, &four);
    assert!(four.updates_seen >= 8, "all four subscribers must stream");

    // Fractional qps regression vs. the 0-subscriber baseline. Negative
    // values mean the watched run measured faster (scheduling noise).
    let overhead = |qps: f64| (qps_0 - qps) / qps_0;
    let overhead_1 = overhead(qps_1);
    let overhead_4 = overhead(qps_4);

    table.print("Extension — watch overhead: serve qps with 0/1/4 metrics subscribers");
    println!(
        "qps {:.0} (0 subs) -> {:.0} (1 sub, {:+.2}%) -> {:.0} (4 subs, {:+.2}%)",
        qps_0,
        qps_1,
        overhead_1 * 100.0,
        qps_4,
        overhead_4 * 100.0
    );
    write_json_with_meta(
        "ext_watch_overhead",
        &rows,
        false,
        vec![
            ("overhead_1_sub".to_string(), Value::F64(overhead_1)),
            ("overhead_4_subs".to_string(), Value::F64(overhead_4)),
            (
                "sub_interval_ms".to_string(),
                Value::U64(u64::from(SUB_INTERVAL_MS)),
            ),
        ],
    );
    let _ = std::fs::remove_file(&archive);
}
