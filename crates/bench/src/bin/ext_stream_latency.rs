//! Extension experiment: standing-query detection latency and overhead.
//!
//! Two measurements over a live analysis program served by pq-serve:
//!
//! 1. **Detection latency** — wall time from registering a standing
//!    depth-threshold query to receiving its first fired window, with
//!    1, 4, and 16 subscriptions registering concurrently. The path
//!    includes the evaluator's 10 ms service tick, so this bounds the
//!    event-to-emission delay an operator sees.
//! 2. **Serving overhead** — achieved qps and request latency of
//!    concurrent live time-window queries with 0/1/4/16 standing
//!    subscriptions attached for the whole run, versus the
//!    0-subscription baseline.
//!
//! Headline numbers — detection p50 and the fractional qps regression
//! at 1/4/16 subscriptions — are stamped into the `meta` block of
//! `results/ext_stream_latency.json`.

use pq_bench::report::{write_json_with_meta, CommonArgs, Table};
use pq_core::control::{AnalysisProgram, ControlConfig};
use pq_core::params::TimeWindowConfig;
use pq_packet::FlowId;
use pq_serve::{Client, ClientError, Request, ServeConfig, Server, Sources};
use pq_telemetry::Telemetry;
use serde::{Serialize, Value};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

const POLL_PERIOD: u64 = 4_096;
const PORT: u16 = 0;

#[derive(Serialize)]
struct Row {
    scenario: String,
    subscriptions: usize,
    clients: usize,
    ok: usize,
    busy: usize,
    wall_ms: f64,
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
    detect_p50_ms: f64,
    detect_max_ms: f64,
    windows_seen: usize,
}

fn tw() -> TimeWindowConfig {
    TimeWindowConfig::new(6, 1, 10, 3)
}

/// A live program with steady per-poll traffic and queue-monitor
/// activity, so every tumbling window holds flows and nonzero depths.
fn build_live(n_checkpoints: u64) -> Arc<AnalysisProgram> {
    let mut ap = AnalysisProgram::new(
        tw(),
        ControlConfig {
            poll_period: POLL_PERIOD,
            max_snapshots: n_checkpoints as usize + 8,
        },
        &[PORT],
        64,
        1,
        110,
    );
    let mut t = 0u64;
    for i in 0..n_checkpoints {
        for p in 0..50u64 {
            let flow = FlowId(((i * 7 + p) % 96) as u32);
            let at = t + p * (POLL_PERIOD / 64);
            ap.record_dequeue(PORT, flow, at);
            if p % 5 == 0 {
                ap.qm_enqueue(PORT, 0, flow, (p % 24) as u32, at);
            }
        }
        t += POLL_PERIOD;
        ap.on_tick(t);
    }
    Arc::new(ap)
}

fn spawn_server(ap: Arc<AnalysisProgram>) -> (pq_serve::ServerHandle, Telemetry) {
    let plane = Telemetry::new();
    let server = Server::bind(
        ("127.0.0.1", 0),
        Sources {
            live: Some(ap),
            archive: None,
            rtt: Vec::new(),
        },
        ServeConfig::default(),
        &plane,
    )
    .unwrap();
    (server.spawn().unwrap(), plane)
}

/// The standing query each subscriber registers: a depth threshold that
/// always holds for this workload, top-5 culprits per 8-poll window.
fn query(n_checkpoints: u64) -> String {
    format!(
        "port {PORT} window tumbling {}ns where max(depth) >= 0 topk 5",
        (n_checkpoints / 8).max(1) * POLL_PERIOD
    )
}

/// Register `subs` standing queries concurrently; each waits for its
/// first fired window (`max_windows = 1` ends the stream there) and
/// reports the registration-to-result wall time.
fn measure_detection(addr: SocketAddr, subs: usize, q: &str) -> Vec<f64> {
    let threads: Vec<_> = (0..subs)
        .map(|_| {
            let q = q.to_string();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let t0 = Instant::now();
                let ack = client.standing(&q, 64, 1, false).unwrap();
                loop {
                    let r = client.next_stream_result(ack.sub).unwrap();
                    if r.to != 0 && r.fired {
                        break t0.elapsed().as_secs_f64() * 1e3;
                    }
                    assert!(!r.last, "stream ended without a fired window");
                }
            })
        })
        .collect();
    let mut out: Vec<f64> = threads.into_iter().map(|t| t.join().unwrap()).collect();
    out.sort_by(|a, b| a.partial_cmp(b).unwrap());
    out
}

struct Outcome {
    ok: usize,
    busy: usize,
    wall_ms: f64,
    latencies_ms: Vec<f64>,
    windows_seen: usize,
}

/// Run the live-query workload with `subs` long-lived standing
/// subscriptions attached. Subscribers drain their window backlog and
/// then sit on the stream until the shutdown drain delivers `last`.
fn run_scenario(
    ap: &Arc<AnalysisProgram>,
    clients: usize,
    per_client: usize,
    span: u64,
    subs: usize,
    q: &str,
) -> Outcome {
    let (handle, _plane) = spawn_server(Arc::clone(ap));
    let addr: SocketAddr = handle.addr();

    let sub_threads: Vec<_> = (0..subs)
        .map(|_| {
            let q = q.to_string();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let ack = client.standing(&q, 64, 0, false).unwrap();
                let mut windows = 0usize;
                loop {
                    match client.next_stream_result(ack.sub) {
                        Ok(r) => {
                            if r.to != 0 {
                                windows += 1;
                            }
                            if r.last {
                                break;
                            }
                        }
                        Err(_) => break,
                    }
                }
                windows
            })
        })
        .collect();
    // Give the evaluator one tick to absorb every subscription's
    // backlog before the measured region — unconditionally, so the
    // baseline gets the same grace period.
    std::thread::sleep(Duration::from_millis(50));

    let start = Instant::now();
    let threads: Vec<_> = (0..clients)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut ok = 0usize;
                let mut busy = 0usize;
                let mut latencies = Vec::with_capacity(per_client);
                for r in 0..per_client {
                    let from = (span * ((c + r) as u64 % 8)) / 8;
                    let to = from + 4 * POLL_PERIOD;
                    let t0 = Instant::now();
                    match client.query(Request::TimeWindows {
                        port: PORT,
                        from,
                        to,
                    }) {
                        Ok(res) => {
                            assert!(!res.estimates.counts.is_empty());
                            latencies.push(t0.elapsed().as_secs_f64() * 1e3);
                            ok += 1;
                        }
                        Err(ClientError::Busy { retry_after_ms }) => {
                            busy += 1;
                            std::thread::sleep(Duration::from_millis(u64::from(retry_after_ms)));
                        }
                        Err(e) => panic!("query failed: {e}"),
                    }
                }
                (ok, busy, latencies)
            })
        })
        .collect();
    let mut ok = 0;
    let mut busy = 0;
    let mut latencies_ms = Vec::new();
    for t in threads {
        let (o, b, l) = t.join().unwrap();
        ok += o;
        busy += b;
        latencies_ms.extend(l);
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;

    handle.shutdown().unwrap();
    let windows_seen = sub_threads.into_iter().map(|t| t.join().unwrap()).sum();
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    Outcome {
        ok,
        busy,
        wall_ms,
        latencies_ms,
        windows_seen,
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn main() {
    let args = CommonArgs::parse();
    let (n_checkpoints, clients, per_client, trials) = if args.quick {
        (512u64, 4usize, 100usize, 2usize)
    } else {
        (2_048, 8, 1_000, 3)
    };
    let span = n_checkpoints * POLL_PERIOD;
    let q = query(n_checkpoints);
    eprintln!(
        "[ext_stream_latency] {n_checkpoints} checkpoints live, {clients} clients x \
         {per_client} queries, standing subscriptions 0/1/4/16"
    );
    let ap = build_live(n_checkpoints);

    // Detection latency at each fleet size, on a dedicated server so
    // the measurement sees only the evaluator tick plus wire time.
    let mut detect = Vec::new();
    for subs in [1usize, 4, 16] {
        let (handle, _plane) = spawn_server(Arc::clone(&ap));
        let samples = measure_detection(handle.addr(), subs, &q);
        handle.shutdown().unwrap();
        detect.push((subs, samples));
    }

    let scenarios = [0usize, 1, 4, 16];
    let mut best: Vec<Option<Outcome>> = scenarios.iter().map(|_| None).collect();
    let _ = run_scenario(&ap, clients, per_client, span, 0, &q);
    for _ in 0..trials {
        for (slot, &subs) in scenarios.iter().enumerate() {
            let out = run_scenario(&ap, clients, per_client, span, subs, &q);
            let better = best[slot]
                .as_ref()
                .is_none_or(|b| out.ok as f64 / out.wall_ms > b.ok as f64 / b.wall_ms);
            if better {
                best[slot] = Some(out);
            }
        }
    }

    let mut rows = Vec::new();
    let mut table = Table::new(vec![
        "scenario",
        "subs",
        "ok",
        "busy",
        "qps",
        "p50 ms",
        "p99 ms",
        "detect p50 ms",
        "windows",
    ]);
    let mut qps_by_subs = Vec::new();
    for (slot, &subs) in scenarios.iter().enumerate() {
        let out = best[slot].take().unwrap();
        let qps = out.ok as f64 / (out.wall_ms / 1e3);
        let p50 = percentile(&out.latencies_ms, 0.50);
        let p99 = percentile(&out.latencies_ms, 0.99);
        let (d50, dmax) = detect
            .iter()
            .find(|(s, _)| *s == subs)
            .map(|(_, samples)| {
                (
                    percentile(samples, 0.50),
                    samples.last().copied().unwrap_or(0.0),
                )
            })
            .unwrap_or((0.0, 0.0));
        if subs > 0 {
            assert!(
                out.windows_seen >= subs,
                "every standing subscription must see its windows"
            );
        }
        table.row(vec![
            format!("subs_{subs}"),
            format!("{subs}"),
            format!("{}", out.ok),
            format!("{}", out.busy),
            format!("{qps:.0}"),
            format!("{p50:.3}"),
            format!("{p99:.3}"),
            format!("{d50:.2}"),
            format!("{}", out.windows_seen),
        ]);
        rows.push(Row {
            scenario: format!("subs_{subs}"),
            subscriptions: subs,
            clients,
            ok: out.ok,
            busy: out.busy,
            wall_ms: out.wall_ms,
            qps,
            p50_ms: p50,
            p99_ms: p99,
            detect_p50_ms: d50,
            detect_max_ms: dmax,
            windows_seen: out.windows_seen,
        });
        qps_by_subs.push((subs, qps));
    }

    let qps_0 = qps_by_subs[0].1;
    let overhead = |subs: usize| {
        let qps = qps_by_subs.iter().find(|(s, _)| *s == subs).unwrap().1;
        (qps_0 - qps) / qps_0
    };
    let detect_p50 = rows
        .iter()
        .find(|r| r.subscriptions == 1)
        .map(|r| r.detect_p50_ms)
        .unwrap_or(0.0);

    table.print("Extension — standing queries: detection latency and serve qps at 0/1/4/16 subs");
    println!(
        "detect p50 {detect_p50:.2} ms; qps {:.0} (0 subs) -> {:.0} (16 subs, {:+.2}%)",
        qps_0,
        qps_by_subs.last().unwrap().1,
        overhead(16) * 100.0
    );
    write_json_with_meta(
        "ext_stream_latency",
        &rows,
        false,
        vec![
            ("detect_p50_ms_1_sub".to_string(), Value::F64(detect_p50)),
            (
                "qps_overhead_frac_1_sub".to_string(),
                Value::F64(overhead(1)),
            ),
            (
                "qps_overhead_frac_4_subs".to_string(),
                Value::F64(overhead(4)),
            ),
            (
                "qps_overhead_frac_16_subs".to_string(),
                Value::F64(overhead(16)),
            ),
        ],
    );
}
