//! Extension experiment (not a paper figure): diagnosis accuracy across
//! scheduling disciplines.
//!
//! The paper claims its culprit definitions and time windows are
//! "independent of the packet scheduling algorithm" (§2) and "compatible
//! with non-FIFO queuing policies" (§1). This binary quantifies that: the
//! same WS workload (split into two priority classes) runs under FIFO,
//! strict priority, and deficit round-robin; victims are sampled and
//! diagnosed identically. The expectation is comparable precision/recall
//! across all three disciplines — the time windows only consume dequeue
//! timestamps, which every discipline produces.

use pq_bench::eval::victim_truth;
use pq_bench::report::{f3, write_json, CommonArgs, Table};
use pq_bench::victims::{sample_victims, Victim};
use pq_core::culprits::GroundTruth;
use pq_core::metrics::{self, precision_recall};
use pq_core::params::TimeWindowConfig;
use pq_core::printqueue::{PrintQueue, PrintQueueConfig};
use pq_core::snapshot::QueryInterval;
use pq_packet::NanosExt;
use pq_switch::{QueueHooks, SchedulerKind, Switch, SwitchConfig, TelemetrySink};
use pq_trace::workload::{GeneratedTrace, Workload, WorkloadKind};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    scheduler: &'static str,
    victims: usize,
    precision: f64,
    recall: f64,
    mean_delay_us: f64,
}

fn run_under(
    scheduler: SchedulerKind,
    trace: &GeneratedTrace,
    tw: TimeWindowConfig,
) -> (PrintQueue, GroundTruth, f64) {
    let mut sw_config = SwitchConfig::single_port(10.0, 32_768);
    sw_config.ports[0].scheduler = scheduler;
    let mut sw = Switch::new(sw_config);
    let mut pq_config = PrintQueueConfig::single_port(tw, 1200);
    pq_config.queues_per_port = 2;
    let mut pq = PrintQueue::new(pq_config);
    let mut sink = TelemetrySink::new();
    {
        let mut hooks: Vec<&mut dyn QueueHooks> = vec![&mut pq, &mut sink];
        // Assign alternating flows to two priority classes.
        let arrivals = trace.arrivals.iter().map(|a| {
            let mut a = *a;
            a.pkt.priority = (a.pkt.flow.0 % 2) as u8;
            a
        });
        sw.run(arrivals, &mut hooks, tw.set_period());
    }
    let mean_delay = sw.port_stats(0).mean_queue_delay() / 1e3;
    (pq, GroundTruth::new(&sink.records, 80), mean_delay)
}

fn main() {
    let args = CommonArgs::parse();
    let duration = if args.quick {
        30u64.millis()
    } else {
        100u64.millis()
    };
    let per_bucket_n = if args.quick { 20 } else { 60 };
    let tw = TimeWindowConfig::WS_DM;
    let trace = Workload::paper_testbed(WorkloadKind::Ws, duration, args.seed).generate();
    eprintln!("[ext_scheduler] WS: {} packets", trace.packets());

    let schedulers: [(&'static str, SchedulerKind); 3] = [
        ("FIFO", SchedulerKind::Fifo),
        (
            "StrictPriority",
            SchedulerKind::StrictPriority { queues: 2 },
        ),
        (
            "DRR",
            SchedulerKind::Drr {
                queues: 2,
                quantum: 1500,
            },
        ),
    ];
    let mut table = Table::new(vec![
        "scheduler",
        "victims",
        "precision",
        "recall",
        "mean delay µs",
    ]);
    let mut rows = Vec::new();
    for (name, kind) in schedulers {
        let (pq, truth, mean_delay) = run_under(kind, &trace, tw);
        let victims: Vec<Victim> = sample_victims(&truth, per_bucket_n, args.seed);
        let mut ps = Vec::new();
        let mut rs = Vec::new();
        // Build a lightweight RunOutput-alike for victim_truth.
        let out = pq_bench::harness::RunOutput {
            printqueue: pq,
            baselines: None,
            truth,
            drops: 0,
            end_time: 0,
            transmitted: 0,
        };
        for v in &victims {
            let gt = victim_truth(&out, v);
            let interval =
                QueryInterval::new(v.record.meta.enq_timestamp, v.record.deq_timestamp());
            let est = out.printqueue.analysis().query_time_windows(0, interval);
            let pr = precision_recall(&est.counts, &gt);
            ps.push(pr.precision);
            rs.push(pr.recall);
        }
        let row = Row {
            scheduler: name,
            victims: victims.len(),
            precision: metrics::mean(&ps),
            recall: metrics::mean(&rs),
            mean_delay_us: mean_delay,
        };
        table.row(vec![
            name.to_string(),
            row.victims.to_string(),
            f3(row.precision),
            f3(row.recall),
            format!("{:.1}", row.mean_delay_us),
        ]);
        rows.push(row);
    }
    table.print("Extension — diagnosis accuracy across scheduling disciplines (WS)");
    println!("\ntime windows index on dequeue timestamps only, so accuracy holds under\nnon-FIFO policies — the §1/§2 claim, quantified.");
    write_json("ext_scheduler", &rows);
}
