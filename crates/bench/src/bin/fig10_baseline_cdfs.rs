//! Figure 10: CDFs of per-victim precision and recall for PrintQueue,
//! HashPipe, and FlowRadar under the UW trace, split by query-interval
//! (queue-depth) class: 1k–5k, 5k–15k, and >15k cells.
//!
//! Shape to reproduce: PrintQueue's CDF sits to the right (higher accuracy)
//! of both baselines in every class, and the baselines track each other.

use pq_bench::eval::{eval_async, eval_baseline, QueryAccuracy};
use pq_bench::harness::{run, RunConfig};
use pq_bench::report::{f3, write_json, CommonArgs, Table};
use pq_bench::victims::sample_victims;
use pq_core::metrics::cdf_points;
use pq_core::params::TimeWindowConfig;
use pq_packet::NanosExt;
use pq_trace::workload::{Workload, WorkloadKind};
use serde::Serialize;

/// Figure 10's coarser depth classes, as bucket-index ranges over
/// `DEPTH_BUCKETS` (1–2 & 2–5 → "1k–5k", 5–10 & 10–15 → "5k–15k", rest).
const CLASSES: [(&str, [usize; 2]); 3] = [("1k-5k", [0, 1]), ("5k-15k", [2, 3]), (">15k", [4, 5])];

#[derive(Serialize)]
struct CdfSeries {
    class: &'static str,
    system: &'static str,
    metric: &'static str,
    points: Vec<(f64, f64)>,
}

fn in_class(acc: &QueryAccuracy, class: &[usize; 2]) -> bool {
    acc.bucket == class[0] || acc.bucket == class[1]
}

fn main() {
    let args = CommonArgs::parse();
    let duration = if args.quick {
        30u64.millis()
    } else {
        120u64.millis()
    };
    let per_bucket_n = if args.quick { 25 } else { 100 };

    let tw = TimeWindowConfig::UW;
    let trace = Workload::paper_testbed(WorkloadKind::Uw, duration, args.seed).generate();
    eprintln!("[fig10] UW: {} packets", trace.packets());
    let mut out = run(&RunConfig::new(tw, 110).with_baselines(), &trace);
    let victims = sample_victims(&out.truth, per_bucket_n, args.seed);

    let pq = eval_async(&mut out, &victims);
    let baselines = out.baselines.as_ref().expect("baselines attached");
    let hp = eval_baseline(&out, &baselines.hp_periods, &victims);
    let fr = eval_baseline(&out, &baselines.fr_periods, &victims);

    let mut series = Vec::new();
    for (label, class) in CLASSES {
        let mut table = Table::new(vec!["system", "metric", "p25", "median", "p75"]);
        for (system, accs) in [("PrintQueue", &pq), ("HashPipe", &hp), ("FlowRadar", &fr)] {
            for (metric, values) in [
                (
                    "precision",
                    accs.iter()
                        .filter(|a| in_class(a, &class))
                        .map(|a| a.pr.precision)
                        .collect::<Vec<f64>>(),
                ),
                (
                    "recall",
                    accs.iter()
                        .filter(|a| in_class(a, &class))
                        .map(|a| a.pr.recall)
                        .collect::<Vec<f64>>(),
                ),
            ] {
                let points = cdf_points(&values);
                let q = |p: f64| -> f64 {
                    if points.is_empty() {
                        return 0.0;
                    }
                    let idx = ((points.len() as f64 * p) as usize).min(points.len() - 1);
                    points[idx].0
                };
                table.row(vec![
                    system.to_string(),
                    metric.to_string(),
                    f3(q(0.25)),
                    f3(q(0.5)),
                    f3(q(0.75)),
                ]);
                series.push(CdfSeries {
                    class: label,
                    system,
                    metric,
                    points,
                });
            }
        }
        table.print(&format!(
            "Figure 10 — accuracy CDF quartiles, depth {label}"
        ));
    }
    write_json("fig10_baseline_cdfs", &series);
}
