//! Figure 12: per-window accuracy for Top-K flows under the UW trace
//! (α=1, k=12, T=5; query interval = the window's full period).
//!
//! Shape to reproduce: precision near 1 in window 0 (uncompressed) and
//! falling with window depth; Top-50/100 stay relatively accurate in deep
//! windows (heavy flows survive passing preferentially) while Top-500 and
//! "all flows" collapse as the mice overwhelm the elephants.

use pq_bench::harness::{run, RunConfig};
use pq_bench::report::{f3, write_json, CommonArgs, Table};
use pq_core::metrics::{self, FlowCounts};
use pq_core::params::TimeWindowConfig;
use pq_core::snapshot::QueryInterval;
use pq_packet::NanosExt;
use pq_trace::workload::{Workload, WorkloadKind};
use serde::Serialize;

const TOP_KS: [usize; 5] = [50, 100, 200, 500, usize::MAX];

#[derive(Serialize)]
struct Row {
    window: u8,
    top_k: String,
    precision: f64,
    recall: f64,
}

fn label_of(k: usize) -> String {
    if k == usize::MAX {
        "All".to_string()
    } else {
        format!("Top {k}")
    }
}

fn truth_counts(out: &pq_bench::harness::RunOutput, from: u64, to: u64) -> FlowCounts {
    let mut counts = FlowCounts::new();
    for r in out.truth.records() {
        let d = r.deq_timestamp();
        if (from..=to).contains(&d) {
            *counts.entry(r.flow).or_insert(0.0) += 1.0;
        }
    }
    counts
}

fn main() {
    let args = CommonArgs::parse();
    let duration = if args.quick {
        30u64.millis()
    } else {
        120u64.millis()
    };
    let tw = TimeWindowConfig::new(6, 1, 12, 5);
    let trace = Workload::paper_testbed(WorkloadKind::Uw, duration, args.seed).generate();
    eprintln!("[fig12] UW: {} packets, tw {}", trace.packets(), tw.label());
    let out = run(&RunConfig::new(tw, 110), &trace);
    let coeffs = out.printqueue.analysis().coefficients().clone();

    // Use the last checkpoint with data in every window: iterate from the
    // newest backwards until one has a window-span for the deepest window.
    let n_checkpoints = out.printqueue.analysis().checkpoints(0).len();
    assert!(n_checkpoints > 0, "no checkpoints — trace too short?");

    let mut rows = Vec::new();
    let mut table = Table::new(vec![
        "window",
        "Top50 P/R",
        "Top100 P/R",
        "Top200 P/R",
        "Top500 P/R",
        "All P/R",
    ]);
    // Work on a clone of the snapshot so filtering state stays local.
    let cp_idx = n_checkpoints - 1;
    let mut snap = out.printqueue.analysis().checkpoints(0)[cp_idx]
        .windows
        .clone();
    snap.filter();
    for w in 0..tw.t {
        let Some((from, to)) = snap.window_span(w) else {
            table.row(vec![
                w.to_string(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
            continue;
        };
        let interval = QueryInterval::new(from, to.saturating_sub(1));
        let est = snap.query_window(w, interval, &coeffs);
        let truth = truth_counts(&out, interval.from, interval.to);
        let mut cells = vec![w.to_string()];
        for k in TOP_KS {
            let est_k = if k == usize::MAX {
                est.counts.clone()
            } else {
                metrics::top_k(&est.counts, k)
            };
            let truth_k = if k == usize::MAX {
                truth.clone()
            } else {
                metrics::top_k(&truth, k)
            };
            let pr = metrics::precision_recall(&est_k, &truth_k);
            cells.push(format!("{}/{}", f3(pr.precision), f3(pr.recall)));
            rows.push(Row {
                window: w,
                top_k: label_of(k),
                precision: pr.precision,
                recall: pr.recall,
            });
        }
        table.row(cells);
    }
    table.print("Figure 12 — Top-K accuracy per individual window (UW, α=1 k=12 T=5)");
    write_json("fig12_topk_per_window", &rows);
}
