//! Figure 13: control-plane storage overhead (MB/s) versus precision and
//! recall for different (α, k, T) configurations under the UW trace, with
//! the analysis program's data-exchange limit drawn as a feasibility line.
//!
//! Shape to reproduce: larger α or T compresses more aggressively, cutting
//! the required I/O but also the accuracy; k barely moves either axis for
//! asynchronous queries.

use pq_bench::eval::{eval_async, overall};
use pq_bench::harness::{run, RunConfig};
use pq_bench::report::{f3, write_json, CommonArgs, Table};
use pq_bench::victims::sample_victims;
use pq_core::params::TimeWindowConfig;
use pq_core::resources::{ResourceModel, READ_LIMIT_MBPS};
use pq_packet::NanosExt;
use pq_trace::workload::{Workload, WorkloadKind};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    config: String,
    control_mbps: f64,
    feasible: bool,
    precision: f64,
    recall: f64,
}

fn main() {
    let args = CommonArgs::parse();
    let duration = if args.quick {
        30u64.millis()
    } else {
        120u64.millis()
    };
    let per_bucket_n = if args.quick { 20 } else { 60 };
    let trace = Workload::paper_testbed(WorkloadKind::Uw, duration, args.seed).generate();
    eprintln!("[fig13] UW: {} packets", trace.packets());

    // The configurations named in Figure 13 (α_k_T).
    let configs = [
        TimeWindowConfig::new(6, 1, 12, 4),
        TimeWindowConfig::new(6, 2, 12, 4),
        TimeWindowConfig::new(6, 3, 12, 4),
        TimeWindowConfig::new(6, 1, 12, 5),
        TimeWindowConfig::new(6, 2, 12, 5),
        TimeWindowConfig::new(6, 2, 11, 4),
    ];
    let mut rows = Vec::new();
    let mut table = Table::new(vec![
        "config(a_k_T)",
        "MB/s",
        "feasible",
        "precision",
        "recall",
    ]);
    for tw in configs {
        let model = ResourceModel::new(&tw, 1, 0);
        let mut out = run(&RunConfig::new(tw, 110), &trace);
        let victims = sample_victims(&out.truth, per_bucket_n, args.seed);
        let pr = overall(&eval_async(&mut out, &victims));
        table.row(vec![
            tw.label(),
            format!("{:.2}", model.control_mbps),
            if model.control_feasible() {
                "yes"
            } else {
                "NO"
            }
            .to_string(),
            f3(pr.precision),
            f3(pr.recall),
        ]);
        rows.push(Row {
            config: tw.label(),
            control_mbps: model.control_mbps,
            feasible: model.control_feasible(),
            precision: pr.precision,
            recall: pr.recall,
        });
    }
    table.print("Figure 13 — storage overhead vs accuracy (UW)");
    println!("\ndata-exchange limit (feasibility line): {READ_LIMIT_MBPS} MB/s");
    write_json("fig13_storage_vs_accuracy", &rows);
}
