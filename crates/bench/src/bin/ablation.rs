//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! 1. **Passing rule** (Algorithm 1): with passing disabled, every eviction
//!    drops, so deep windows stay empty and long-interval recall collapses.
//! 2. **Coefficient recovery** (Algorithm 2): with unit coefficients, deep-
//!    window observations are not scaled back up, collapsing recall for
//!    compressed history.
//!
//! Each ablation runs the UW workload and reports overall AQ accuracy.

use pq_bench::eval::{per_bucket, victim_truth, QueryAccuracy};
use pq_bench::report::{f3, write_json, CommonArgs, Table};
use pq_bench::victims::{sample_victims, Victim, DEPTH_BUCKETS};
use pq_core::coefficient::Coefficients;
use pq_core::metrics;
use pq_core::params::TimeWindowConfig;
use pq_core::printqueue::{PrintQueue, PrintQueueConfig};
use pq_core::snapshot::QueryInterval;
use pq_packet::NanosExt;
use pq_switch::{QueueHooks, Switch, SwitchConfig, TelemetrySink};
use pq_trace::workload::{GeneratedTrace, Workload, WorkloadKind};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    variant: &'static str,
    bucket: &'static str,
    precision: f64,
    recall: f64,
}

/// Run with an optionally ablated PrintQueue and evaluate AQ accuracy.
fn run_variant(
    trace: &GeneratedTrace,
    tw: TimeWindowConfig,
    ablate_passing: bool,
    unit_coeffs: bool,
    seed: u64,
    per_bucket_n: usize,
) -> Vec<QueryAccuracy> {
    let mut pq_config = PrintQueueConfig::single_port(tw, 110);
    pq_config.ablate_passing = ablate_passing;
    let mut printqueue = PrintQueue::new(pq_config);
    let mut sink = TelemetrySink::new();
    let mut sw = Switch::new(SwitchConfig::single_port(10.0, 32_768));
    {
        let mut hooks: Vec<&mut dyn QueueHooks> = vec![&mut printqueue, &mut sink];
        sw.run(trace.arrivals.iter().copied(), &mut hooks, tw.set_period());
    }
    let mut out = pq_bench::harness::RunOutput {
        printqueue,
        baselines: None,
        truth: pq_core::culprits::GroundTruth::new(&sink.records, 80),
        drops: sink.drops,
        end_time: sw.now(),
        transmitted: sw.port_stats(0).dequeued,
    };
    let victims: Vec<Victim> = sample_victims(&out.truth, per_bucket_n, seed);
    let coeffs = if unit_coeffs {
        Coefficients {
            coefficient: vec![1.0; usize::from(tw.t)],
            z: vec![1.0; usize::from(tw.t)],
        }
    } else {
        out.printqueue.analysis().coefficients().clone()
    };
    victims
        .iter()
        .map(|v| {
            let truth = victim_truth(&out, v);
            let interval =
                QueryInterval::new(v.record.meta.enq_timestamp, v.record.deq_timestamp());
            let est = out
                .printqueue
                .analysis_mut()
                .query_time_windows_with(0, interval, &coeffs);
            QueryAccuracy {
                bucket: v.bucket,
                pr: metrics::precision_recall(&est.counts, &truth),
            }
        })
        .collect()
}

fn main() {
    let args = CommonArgs::parse();
    let duration = if args.quick {
        30u64.millis()
    } else {
        100u64.millis()
    };
    let per_bucket_n = if args.quick { 20 } else { 60 };
    let tw = TimeWindowConfig::UW;
    let trace = Workload::paper_testbed(WorkloadKind::Uw, duration, args.seed).generate();
    eprintln!("[ablation] UW: {} packets", trace.packets());

    let variants: [(&'static str, bool, bool); 3] = [
        ("full PrintQueue", false, false),
        ("no passing rule", true, false),
        ("no coefficient recovery", false, true),
    ];
    let mut rows = Vec::new();
    let mut table = Table::new(vec![
        "depth(1e3)",
        "full P/R",
        "no-pass P/R",
        "no-coeff P/R",
    ]);
    let mut stats = Vec::new();
    for (name, ablate_passing, unit_coeffs) in variants {
        let accs = run_variant(
            &trace,
            tw,
            ablate_passing,
            unit_coeffs,
            args.seed,
            per_bucket_n,
        );
        let bucketed = per_bucket(&accs);
        for (b, s) in bucketed.iter().enumerate() {
            rows.push(Row {
                variant: name,
                bucket: DEPTH_BUCKETS[b].label,
                precision: s.mean_precision,
                recall: s.mean_recall,
            });
        }
        stats.push(bucketed);
    }
    for (b, bucket) in DEPTH_BUCKETS.iter().enumerate() {
        table.row(vec![
            bucket.label.to_string(),
            format!(
                "{}/{}",
                f3(stats[0][b].mean_precision),
                f3(stats[0][b].mean_recall)
            ),
            format!(
                "{}/{}",
                f3(stats[1][b].mean_precision),
                f3(stats[1][b].mean_recall)
            ),
            format!(
                "{}/{}",
                f3(stats[2][b].mean_precision),
                f3(stats[2][b].mean_recall)
            ),
        ]);
    }
    table.print("Ablation — AQ accuracy per depth bucket (UW)");
    write_json("ablation", &rows);
}
