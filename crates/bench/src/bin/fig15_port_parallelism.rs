//! Figure 15: accuracy versus the number of PrintQueue-enabled ports under
//! the WS trace, with per-port (α, k) shrunk so the total SRAM stays inside
//! the budget.
//!
//! The ports are independent (each has its own register partition), so the
//! per-port accuracy is measured on a single simulated port running the
//! shrunken parameters; the SRAM column scales the partition count.
//!
//! Shape to reproduce: accuracy degrades as k shrinks and α grows to make
//! room for more ports; around 10 ports the configuration hits the PCIe /
//! SRAM wall (§7.1: "With α = 2, at most 10 ports can run PrintQueue in
//! parallel").

use pq_bench::eval::{eval_async, overall};
use pq_bench::harness::{run, RunConfig};
use pq_bench::report::{f3, write_json, CommonArgs, Table};
use pq_bench::victims::sample_victims;
use pq_core::params::TimeWindowConfig;
use pq_core::resources::{ResourceModel, READ_LIMIT_MBPS};
use pq_packet::NanosExt;
use pq_trace::workload::{Workload, WorkloadKind};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    ports: u32,
    alpha: u8,
    k: u8,
    sram_pct: f64,
    control_mbps: f64,
    precision: f64,
    recall: f64,
}

fn main() {
    let args = CommonArgs::parse();
    let duration = if args.quick {
        30u64.millis()
    } else {
        120u64.millis()
    };
    let per_bucket_n = if args.quick { 20 } else { 60 };
    let trace = Workload::paper_testbed(WorkloadKind::Ws, duration, args.seed).generate();
    eprintln!("[fig15] WS: {} packets", trace.packets());

    // The figure's x-axis: port count with the per-port parameters the
    // paper lists (α=1 k=12 @1, α=1 k=11 @2, α=2 k=10 @4/8/10).
    let setups: [(u32, u8, u8); 5] = [(1, 1, 12), (2, 1, 11), (4, 2, 10), (8, 2, 10), (10, 2, 10)];
    let mut rows = Vec::new();
    let mut table = Table::new(vec![
        "ports",
        "alpha",
        "k",
        "SRAM %",
        "MB/s",
        "precision",
        "recall",
    ]);
    for (ports, alpha, k) in setups {
        let tw = TimeWindowConfig::new(10, alpha, k, 4);
        let model = ResourceModel::new(&tw, ports, 0);
        let mut out = run(&RunConfig::new(tw, 1200), &trace);
        let victims = sample_victims(&out.truth, per_bucket_n, args.seed);
        let pr = overall(&eval_async(&mut out, &victims));
        table.row(vec![
            ports.to_string(),
            alpha.to_string(),
            k.to_string(),
            format!("{:.2}", model.sram_utilization_pct()),
            format!("{:.2}", model.control_mbps),
            f3(pr.precision),
            f3(pr.recall),
        ]);
        rows.push(Row {
            ports,
            alpha,
            k,
            sram_pct: model.sram_utilization_pct(),
            control_mbps: model.control_mbps,
            precision: pr.precision,
            recall: pr.recall,
        });
    }
    table.print("Figure 15 — accuracy vs enabled ports (WS)");
    println!("\ncontrol-plane limit: {READ_LIMIT_MBPS} MB/s total across ports");
    write_json("fig15_port_parallelism", &rows);
}
