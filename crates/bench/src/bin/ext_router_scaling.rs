//! Extension experiment: pq-router scatter-gather scaling and failover.
//!
//! Spills a 32-port checkpoint archive, replicates it to every backend
//! with the seal-and-ship path, and drives a router-fronted fleet of
//! 1, 2, and 4 pq-serve daemons with concurrent clients issuing replay
//! queries across all ports. Backends carry an artificial 1 ms service
//! delay and a 2-thread worker pool, so per-backend CPU is the
//! bottleneck and aggregate qps must climb as backends are added —
//! the headline claim of the scale-out tier.
//!
//! A final chaos phase runs a 2-backend, replication-2 fleet, SIGKILLs
//! the primary owner of the measured port mid-storm, and reports the
//! failover window — the worst single-query latency while the router
//! rode through the kill — plus the router's own failover counter.
//! Both are stamped into the `meta` block of
//! `results/ext_router_scaling.json`.

use pq_bench::report::{write_json_with_meta, CommonArgs, Table};
use pq_core::control::{AnalysisProgram, ControlConfig};
use pq_core::params::TimeWindowConfig;
use pq_packet::FlowId;
use pq_router::{rendezvous_rank, BackendSpec, Router, RouterConfig, RouterHandle};
use pq_serve::{Client, Request, ServeConfig, Server, ServerHandle, Sources};
use pq_store::{ship_archive, SegmentPolicy, SharedStoreWriter, StoreWriter};
use pq_telemetry::{parse_prometheus, Telemetry};
use serde::{Serialize, Value};
use std::path::PathBuf;
use std::time::{Duration, Instant};

const PORT_COUNT: u16 = 32;
const POLL_PERIOD: u64 = 64;

#[derive(Serialize)]
struct Row {
    backends: usize,
    replication: u32,
    clients: usize,
    requests: usize,
    ok: usize,
    wall_ms: f64,
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
}

fn tw() -> TimeWindowConfig {
    TimeWindowConfig::new(0, 1, 6, 2)
}

fn ports() -> Vec<u16> {
    (0..PORT_COUNT).collect()
}

/// Spill synthetic traffic on all 32 ports into a `.pqa` file.
fn build_archive(until: u64, path: &PathBuf) {
    let writer = StoreWriter::new(
        Vec::new(),
        tw(),
        SegmentPolicy {
            checkpoints_per_segment: 16,
            max_segment_bytes: 1 << 20,
            retain_segments_per_port: None,
        },
    )
    .unwrap();
    let handle = SharedStoreWriter::new(writer);
    let all = ports();
    let mut ap = AnalysisProgram::new(
        tw(),
        ControlConfig {
            poll_period: POLL_PERIOD,
            max_snapshots: 100_000,
        },
        &all,
        32,
        1,
        1,
    );
    ap.set_spill(Box::new(handle.clone()));
    for t in 0..until {
        for (i, &port) in all.iter().enumerate() {
            if t % (i as u64 % 4 + 2) == 0 {
                ap.record_dequeue(port, FlowId((t % 13) as u32 + i as u32 * 100), t);
            }
        }
        if t % POLL_PERIOD == 0 {
            ap.on_tick(t);
        }
    }
    for &port in &all {
        handle.with(|w| w.set_health(port, ap.health())).unwrap();
    }
    std::fs::write(path, handle.finish().unwrap()).unwrap();
}

/// The rotating query mix: `k` intervals tiling the archive's span.
fn intervals(until: u64, k: u64) -> Vec<(u64, u64)> {
    (0..k)
        .map(|i| {
            let from = (until * i) / k;
            (from, from + until / k)
        })
        .collect()
}

struct Fleet {
    backends: Vec<ServerHandle>,
    specs: Vec<BackendSpec>,
    router: RouterHandle,
    replicas: Vec<PathBuf>,
}

/// Replicate the source archive to `n` backends, start them, and put a
/// router in front with the given replication factor.
fn spawn_fleet(
    src: &PathBuf,
    n: usize,
    replication: u32,
    config: &ServeConfig,
    tag: &str,
) -> Fleet {
    let mut backends = Vec::new();
    let mut specs = Vec::new();
    let mut replicas = Vec::new();
    for i in 0..n {
        let replica = std::env::temp_dir().join(format!(
            "pq_ext_router_{}_{tag}_{i}.pqa",
            std::process::id()
        ));
        ship_archive(src, &replica).unwrap();
        let mut cfg = config.clone();
        cfg.shard = format!("shard-{i}");
        let server = Server::bind(
            ("127.0.0.1", 0),
            Sources {
                live: None,
                archive: Some(replica.clone()),
                rtt: Vec::new(),
            },
            cfg,
            &Telemetry::new(),
        )
        .unwrap();
        let handle = server.spawn().unwrap();
        specs.push(BackendSpec {
            name: format!("shard-{i}"),
            addr: handle.addr().to_string(),
        });
        backends.push(handle);
        replicas.push(replica);
    }
    let router = Router::bind(
        ("127.0.0.1", 0),
        specs.clone(),
        RouterConfig {
            replication,
            ..RouterConfig::default()
        },
        &Telemetry::new(),
    )
    .unwrap()
    .spawn()
    .unwrap();
    Fleet {
        backends,
        specs,
        router,
        replicas,
    }
}

impl Fleet {
    fn teardown(self) {
        self.router.shutdown().unwrap();
        for b in self.backends {
            b.shutdown().unwrap();
        }
        for r in &self.replicas {
            let _ = std::fs::remove_file(r);
        }
    }
}

/// Drive `clients` threads of `per_client` replay queries through the
/// router; every query must succeed (the router hides its fleet).
fn storm(
    addr: std::net::SocketAddr,
    clients: usize,
    per_client: usize,
    mix: &[(u64, u64)],
) -> (usize, f64, Vec<f64>) {
    let start = Instant::now();
    let threads: Vec<_> = (0..clients)
        .map(|c| {
            let mix = mix.to_vec();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut latencies = Vec::with_capacity(per_client);
                for r in 0..per_client {
                    let port = ((c * 13 + r * 7) % PORT_COUNT as usize) as u16;
                    let (from, to) = mix[(c + r) % mix.len()];
                    let t0 = Instant::now();
                    client
                        .query(Request::Replay {
                            port,
                            from,
                            to,
                            d: 1,
                        })
                        .unwrap_or_else(|e| panic!("routed query lost: {e}"));
                    latencies.push(t0.elapsed().as_secs_f64() * 1e3);
                }
                latencies
            })
        })
        .collect();
    let mut latencies_ms = Vec::new();
    for t in threads {
        latencies_ms.extend(t.join().unwrap());
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let ok = latencies_ms.len();
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (ok, wall_ms, latencies_ms)
}

fn router_metric(addr: std::net::SocketAddr, name: &str) -> f64 {
    let mut probe = Client::connect(addr).unwrap();
    parse_prometheus(&probe.metrics().unwrap())
        .unwrap()
        .iter()
        .filter(|m| m.name == name)
        .map(|m| m.value)
        .sum()
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn main() {
    let args = CommonArgs::parse();
    let (until, clients, per_client, chaos_queries) = if args.quick {
        (4_096u64, 8usize, 50usize, 600usize)
    } else {
        (8_192, 16, 200, 2_000)
    };
    let mix = intervals(until, 8);
    let src = std::env::temp_dir().join(format!("pq_ext_router_src_{}.pqa", std::process::id()));
    eprintln!(
        "[ext_router_scaling] spilling {PORT_COUNT} ports, then {clients} clients x \
         {per_client} queries against 1/2/4 backends"
    );
    build_archive(until, &src);

    // Per-backend capacity is pinned: 2 workers x 1 ms service delay.
    // Adding backends is the only way aggregate qps can rise.
    let slow = ServeConfig {
        workers: 2,
        work_delay: Duration::from_millis(1),
        queue_cap: 1_024,
        inflight_per_conn: 64,
        ..ServeConfig::default()
    };

    let mut rows = Vec::new();
    let mut table = Table::new(vec![
        "backends",
        "replication",
        "clients",
        "ok",
        "qps",
        "p50 ms",
        "p99 ms",
    ]);
    let mut qps_by_n = Vec::new();
    for &n in &[1usize, 2, 4] {
        let replication = (n as u32).min(2);
        let fleet = spawn_fleet(&src, n, replication, &slow, &format!("scale{n}"));
        let (ok, wall_ms, latencies) = storm(fleet.router.addr(), clients, per_client, &mix);
        let failovers = router_metric(fleet.router.addr(), "pq_router_failovers_total");
        assert_eq!(
            failovers, 0.0,
            "a healthy fleet must not fail over during the scaling storm"
        );
        fleet.teardown();
        let qps = ok as f64 / (wall_ms / 1e3);
        let p50 = percentile(&latencies, 0.50);
        let p99 = percentile(&latencies, 0.99);
        table.row(vec![
            format!("{n}"),
            format!("{replication}"),
            format!("{clients}"),
            format!("{ok}"),
            format!("{qps:.0}"),
            format!("{p50:.3}"),
            format!("{p99:.3}"),
        ]);
        rows.push(Row {
            backends: n,
            replication,
            clients,
            requests: clients * per_client,
            ok,
            wall_ms,
            qps,
            p50_ms: p50,
            p99_ms: p99,
        });
        qps_by_n.push((n, qps));
    }
    for pair in qps_by_n.windows(2) {
        assert!(
            pair[1].1 > pair[0].1,
            "aggregate qps must rise with backend count: {qps_by_n:?}"
        );
    }

    // Chaos phase: 2 backends, replication 2, kill the primary owner of
    // port 0 mid-storm. The worst latency any query pays while the
    // router rides through the kill is the failover window.
    eprintln!("[ext_router_scaling] chaos phase: killing the primary owner mid-storm");
    let mut fleet = spawn_fleet(&src, 2, 2, &ServeConfig::default(), "chaos");
    let victim = rendezvous_rank(&fleet.specs, 0, 0)[0];
    let addr = fleet.router.addr();
    let killer = {
        let handle = fleet.backends.remove(victim);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            handle.kill().unwrap();
        })
    };
    let mix0 = intervals(until, 8);
    let chaos = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        let mut latencies = Vec::with_capacity(chaos_queries);
        let started = Instant::now();
        let mut r = 0usize;
        // At least chaos_queries queries AND at least 150 ms of storm,
        // so the 50 ms kill always lands mid-storm even when queries
        // are fast.
        while r < chaos_queries || started.elapsed() < Duration::from_millis(150) {
            let (from, to) = mix0[r % mix0.len()];
            let t0 = Instant::now();
            client
                .query(Request::Replay {
                    port: 0,
                    from,
                    to,
                    d: 1,
                })
                .unwrap_or_else(|e| panic!("query {r} lost during failover: {e}"));
            latencies.push(t0.elapsed().as_secs_f64() * 1e3);
            r += 1;
        }
        latencies
    });
    killer.join().unwrap();
    let mut chaos_latencies = chaos.join().unwrap();
    let chaos_done = chaos_latencies.len();
    let failovers = router_metric(addr, "pq_router_failovers_total");
    assert!(
        failovers >= 1.0,
        "killing the primary owner must trigger at least one failover"
    );
    chaos_latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let failover_window_ms = chaos_latencies.last().copied().unwrap_or(0.0);
    let steady_p50_ms = percentile(&chaos_latencies, 0.50);
    fleet.teardown();
    let _ = std::fs::remove_file(&src);

    table.print("Extension — pq-router scaling: aggregate qps vs backend count");
    println!(
        "chaos: {chaos_done} queries, 0 lost; failover window {failover_window_ms:.1} ms \
         (steady p50 {steady_p50_ms:.3} ms), {failovers:.0} failover(s)"
    );
    write_json_with_meta(
        "ext_router_scaling",
        &rows,
        false,
        vec![
            ("chaos_queries".to_string(), Value::U64(chaos_done as u64)),
            ("chaos_lost".to_string(), Value::U64(0)),
            (
                "failover_window_ms".to_string(),
                Value::F64(failover_window_ms),
            ),
            ("chaos_steady_p50_ms".to_string(), Value::F64(steady_p50_ms)),
            ("failovers_total".to_string(), Value::F64(failovers)),
        ],
    );
}
