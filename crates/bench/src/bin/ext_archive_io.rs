//! Extension experiment: checkpoint archive I/O — JSON vs. the `.pqa`
//! segmented binary store.
//!
//! Sweeps the archive size (number of spilled checkpoints) and measures,
//! for each format: bytes on disk, encode and full-decode wall time, and
//! the latency of a narrow time-range replay-query. The `.pqa` path
//! answers that query from the trailer index by decoding only the
//! overlapping segments; the JSON path has no index and must parse the
//! whole archive first. The two headline ratios (size shrink, pruned
//! query speedup) are the acceptance numbers for the store subsystem.

use pq_bench::report::{write_json, CommonArgs, Table};
use pq_core::coefficient::Coefficients;
use pq_core::control::{AnalysisProgram, ControlConfig};
use pq_core::export::CheckpointArchive;
use pq_core::params::TimeWindowConfig;
use pq_core::snapshot::QueryInterval;
use pq_packet::FlowId;
use pq_store::{
    archives_from_json, ArchiveFormat, SegmentPolicy, SharedStoreWriter, StoreReader, StoreWriter,
};
use serde::Serialize;
use std::io::Cursor;
use std::time::Instant;

const POLL_PERIOD: u64 = 4_096;
const MIN_PKT_TX_DELAY: u64 = 110;

#[derive(Serialize)]
struct Row {
    checkpoints: u64,
    json_bytes: u64,
    pqa_bytes: u64,
    size_ratio: f64,
    json_encode_ms: f64,
    pqa_encode_ms: f64,
    json_decode_ms: f64,
    pqa_decode_ms: f64,
    json_full_query_ms: f64,
    pqa_pruned_query_ms: f64,
    query_speedup: f64,
    segments: usize,
}

fn tw() -> TimeWindowConfig {
    // The paper's WS/DM data-plane configuration (§7.1).
    TimeWindowConfig::new(6, 1, 10, 3)
}

/// Drive the analysis program for `n_checkpoints` polls with a steady
/// synthetic dequeue mix, spilling into `spill` if given.
fn drive(n_checkpoints: u64, spill: Option<SharedStoreWriter<Vec<u8>>>) -> AnalysisProgram {
    let mut ap = AnalysisProgram::new(
        tw(),
        ControlConfig {
            poll_period: POLL_PERIOD,
            max_snapshots: n_checkpoints as usize + 8,
        },
        &[0],
        64,
        1,
        MIN_PKT_TX_DELAY,
    );
    if let Some(handle) = spill {
        ap.set_spill(Box::new(handle));
    }
    let mut t = 0u64;
    for i in 0..n_checkpoints {
        // ~50 packets per poll period across a rotating flow population.
        for p in 0..50u64 {
            let flow = FlowId(((i * 7 + p) % 96) as u32);
            ap.record_dequeue(0, flow, t + p * (POLL_PERIOD / 64));
            if p % 5 == 0 {
                ap.qm_enqueue(0, 0, flow, (p % 24) as u32, t + p);
            }
        }
        t += POLL_PERIOD;
        ap.on_tick(t);
    }
    ap
}

/// Median-of-`reps` wall time in milliseconds.
fn time_ms<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn run_one(n_checkpoints: u64, reps: usize) -> Row {
    // Encode: spill streaming into an in-memory .pqa while the program
    // runs, exactly as `pqsim archive --format pqa` does.
    let pqa_start = Instant::now();
    let writer = StoreWriter::new(Vec::new(), tw(), SegmentPolicy::default()).unwrap();
    let handle = SharedStoreWriter::new(writer);
    let ap = drive(n_checkpoints, Some(handle.clone()));
    handle.with(|w| w.set_health(0, ap.health())).unwrap();
    let pqa_bytes_buf = handle.finish().unwrap();
    let pqa_encode_ms = pqa_start.elapsed().as_secs_f64() * 1e3;

    let json_start = Instant::now();
    let archive = CheckpointArchive::capture(&ap, 0);
    let mut json_bytes_buf = Vec::new();
    archive.write_json(&mut json_bytes_buf).unwrap();
    let json_encode_ms = json_start.elapsed().as_secs_f64() * 1e3;

    // Full decode: bytes back to in-RAM archives.
    let json_text = std::str::from_utf8(&json_bytes_buf).unwrap();
    let json_decode_ms = time_ms(reps, || {
        let archives = archives_from_json(json_text).unwrap();
        assert_eq!(archives[0].checkpoints.len() as u64, n_checkpoints);
    });
    let pqa_decode_ms = time_ms(reps, || {
        let mut reader = StoreReader::open(Cursor::new(pqa_bytes_buf.as_slice())).unwrap();
        let archives = reader.read_all().unwrap();
        assert_eq!(archives[0].checkpoints.len() as u64, n_checkpoints);
    });

    // Replay-query: a narrow interval near the end of the run (the usual
    // "diagnose this recent victim" shape). JSON must parse everything;
    // .pqa opens the trailer and decodes only overlapping segments.
    let t_end = n_checkpoints * POLL_PERIOD;
    let interval = QueryInterval::new(t_end.saturating_sub(4 * POLL_PERIOD), t_end);
    let coeffs = Coefficients::compute(&tw(), MIN_PKT_TX_DELAY);
    let reference = {
        let mut reader = StoreReader::open(Cursor::new(pqa_bytes_buf.as_slice())).unwrap();
        reader.query(0, interval, &coeffs).unwrap()
    };
    let json_full_query_ms = time_ms(reps, || {
        let archives = archives_from_json(json_text).unwrap();
        let result = archives[0].query_result(interval, &coeffs);
        assert_eq!(result.estimates.counts, reference.estimates.counts);
    });
    let pqa_pruned_query_ms = time_ms(reps, || {
        let mut reader = StoreReader::open(Cursor::new(pqa_bytes_buf.as_slice())).unwrap();
        let result = reader.query(0, interval, &coeffs).unwrap();
        assert_eq!(result.estimates.counts, reference.estimates.counts);
    });

    let segments = StoreReader::open(Cursor::new(pqa_bytes_buf.as_slice()))
        .unwrap()
        .segments()
        .len();
    assert_eq!(
        ArchiveFormat::sniff(&pqa_bytes_buf).unwrap(),
        ArchiveFormat::Pqa
    );
    Row {
        checkpoints: n_checkpoints,
        json_bytes: json_bytes_buf.len() as u64,
        pqa_bytes: pqa_bytes_buf.len() as u64,
        size_ratio: json_bytes_buf.len() as f64 / pqa_bytes_buf.len() as f64,
        json_encode_ms,
        pqa_encode_ms,
        json_decode_ms,
        pqa_decode_ms,
        json_full_query_ms,
        pqa_pruned_query_ms,
        query_speedup: json_full_query_ms / pqa_pruned_query_ms,
        segments,
    }
}

fn main() {
    let args = CommonArgs::parse();
    let (counts, reps): (&[u64], usize) = if args.quick {
        (&[128, 512, 2048], 5)
    } else {
        (&[128, 512, 2048, 8192], 9)
    };
    eprintln!(
        "[ext_archive_io] JSON vs .pqa over {:?} checkpoints, median of {reps} reps",
        counts
    );

    let mut rows = Vec::new();
    let mut table = Table::new(vec![
        "checkpoints",
        "json MB",
        "pqa MB",
        "shrink",
        "json query ms",
        "pqa query ms",
        "speedup",
        "segments",
    ]);
    for &n in counts {
        let row = run_one(n, reps);
        table.row(vec![
            format!("{n}"),
            format!("{:.2}", row.json_bytes as f64 / 1e6),
            format!("{:.3}", row.pqa_bytes as f64 / 1e6),
            format!("{:.1}x", row.size_ratio),
            format!("{:.2}", row.json_full_query_ms),
            format!("{:.3}", row.pqa_pruned_query_ms),
            format!("{:.0}x", row.query_speedup),
            format!("{}", row.segments),
        ]);
        rows.push(row);
    }
    table.print("Extension — archive I/O: JSON vs segmented .pqa store");
    write_json("ext_archive_io", &rows);
}
