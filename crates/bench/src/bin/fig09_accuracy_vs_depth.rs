//! Figure 9: precision and recall versus queue depth, for asynchronous
//! (AQ) and data-plane (DQ) queries, under the UW, WS, and DM workloads.
//!
//! Paper shape to reproduce: DQ accuracy consistently high (>0.9) across
//! depths; AQ accuracy lower and *increasing* with queue depth (short
//! intervals risk falling into heavily compressed windows); UW below WS/DM
//! because it must track ~10× more packets with a larger α.

use pq_bench::eval::{eval_async, eval_dataplane, per_bucket};
use pq_bench::harness::{run, RunConfig};
use pq_bench::report::{f3, write_json, CommonArgs, Table};
use pq_bench::victims::{sample_victims, DEPTH_BUCKETS};
use pq_core::params::TimeWindowConfig;
use pq_core::printqueue::DataPlaneTrigger;
use pq_packet::NanosExt;
use pq_trace::workload::{Workload, WorkloadKind};
use serde::Serialize;

#[derive(Serialize)]
struct FigureRow {
    workload: &'static str,
    query: &'static str,
    bucket: &'static str,
    samples: usize,
    precision: f64,
    recall: f64,
}

fn main() {
    let args = CommonArgs::parse();
    let duration = if args.quick {
        30u64.millis()
    } else {
        120u64.millis()
    };
    let per_bucket_n = if args.quick { 25 } else { 100 };
    let mut rows: Vec<FigureRow> = Vec::new();

    for kind in [WorkloadKind::Uw, WorkloadKind::Ws, WorkloadKind::Dm] {
        let (m0, alpha, k, t) = kind.paper_params();
        let tw = TimeWindowConfig::new(m0, alpha, k, t);
        // Mean packet interval: 110 ns for UW, ~1200 ns for WS/DM (§7.1).
        let d = match kind {
            WorkloadKind::Uw => 110,
            _ => 1200,
        };
        eprintln!(
            "[fig09] {} trace: {} ms, tw {}, set period {:.2} ms",
            kind.label(),
            duration / 1_000_000,
            tw.label(),
            tw.set_period() as f64 / 1e6
        );
        let trace = Workload::paper_testbed(kind, duration, args.seed).generate();
        eprintln!(
            "[fig09] {} packets, {} flows, offered {:.2} Gbps",
            trace.packets(),
            trace.flows.len(),
            trace.offered_gbps(duration)
        );

        // Asynchronous queries on periodically polled registers.
        let mut out = run(&RunConfig::new(tw, d), &trace);
        let victims = sample_victims(&out.truth, per_bucket_n, args.seed);
        let aq = eval_async(&mut out, &victims);
        let aq_stats = per_bucket(&aq);

        // Data-plane queries: a depth threshold in the egress pipeline.
        let trigger = DataPlaneTrigger {
            min_deq_timedelta: u32::MAX,
            min_enq_qdepth: 1_000,
            cooldown: 2u64.millis(),
        };
        let mut out_dq = run(&RunConfig::new(tw, d).with_trigger(trigger), &trace);
        let dq = eval_dataplane(&mut out_dq);
        let dq_stats = per_bucket(&dq);

        let mut table = Table::new(vec![
            "depth(1e3)",
            "AQ n",
            "AQ precision",
            "AQ recall",
            "DQ n",
            "DQ precision",
            "DQ recall",
        ]);
        for (b, bucket) in DEPTH_BUCKETS.iter().enumerate() {
            table.row(vec![
                bucket.label.to_string(),
                aq_stats[b].samples.to_string(),
                f3(aq_stats[b].mean_precision),
                f3(aq_stats[b].mean_recall),
                dq_stats[b].samples.to_string(),
                f3(dq_stats[b].mean_precision),
                f3(dq_stats[b].mean_recall),
            ]);
            for (query, stats) in [("AQ", &aq_stats[b]), ("DQ", &dq_stats[b])] {
                rows.push(FigureRow {
                    workload: kind.label(),
                    query,
                    bucket: bucket.label,
                    samples: stats.samples,
                    precision: stats.mean_precision,
                    recall: stats.mean_recall,
                });
            }
        }
        table.print(&format!(
            "Figure 9 — accuracy vs queue depth, {} trace",
            kind.label()
        ));
    }
    write_json("fig09_accuracy_vs_depth", &rows);
}
