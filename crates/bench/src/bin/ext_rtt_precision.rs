//! Extension experiment: passive RTT measurement precision under stress.
//!
//! The pq-rtt engines (seq-match histograms + QUIC spin-bit edges) run in
//! the switch pipeline under a fixed per-port memory budget. This binary
//! sweeps the QUIC-like workload over flow count × reordering × loss and
//! grades the estimates against the generator's ground truth:
//!
//! * **p50 relative error** of per-flow mean RTT over graded flows
//!   (≥ 8 samples — a spin flow that sent for less than one RTT yields
//!   no edges by construction),
//! * **top-decile recall** — does ranking flows by estimated mean find
//!   the truly slowest tenth? — the "who is the slow peer" headline,
//! * the honesty counters (collisions, evictions, sample drops) that
//!   justify each answer's degraded flag.
//!
//! Headline acceptance at the default budget (default `TableConfig`,
//! benign loss/reorder): p50 error ≤ 10% and top-decile recall ≥ 0.9.
//! The workload parameters of the sweep are stamped into the `meta`
//! block of `results/ext_rtt_precision.json`.

use pq_bench::report::{f3, write_json_with_meta, CommonArgs, Table};
use pq_rtt::{RttHook, RttReport, RttWorkload, TableConfig};
use pq_switch::{PortConfig, QueueHooks, Switch, SwitchConfig};
use serde::{Serialize, Value};
use std::collections::BTreeSet;

#[derive(Serialize)]
struct Row {
    flows: u32,
    reorder: f64,
    loss: f64,
    samples: u64,
    graded_flows: usize,
    p50_err: f64,
    p90_err: f64,
    top_decile_recall: f64,
    collisions: u64,
    evictions: u64,
    sample_drops: u64,
    degraded: bool,
}

/// Run one workload through the switch pipeline and measure it.
fn measure(cfg: &RttWorkload) -> (Vec<RttReport>, Vec<pq_rtt::FlowTruth>) {
    let trace = cfg.generate();
    let mut sw = Switch::new(SwitchConfig {
        ports: vec![
            PortConfig {
                rate_gbps: 100.0,
                ..PortConfig::default()
            };
            cfg.ports as usize
        ],
        ..SwitchConfig::default()
    });
    let mut hook = RttHook::new(&trace.obs, TableConfig::default());
    {
        let mut hooks: Vec<&mut dyn QueueHooks> = vec![&mut hook];
        sw.run(trace.arrivals.iter().cloned(), &mut hooks, 1_000_000);
    }
    (hook.reports(), trace.truth)
}

/// Grade estimates against ground truth over flows with ≥ 8 samples.
fn grade(reports: &[RttReport], truth: &[pq_rtt::FlowTruth]) -> (Vec<f64>, f64) {
    let mut errs = Vec::new();
    let mut est: Vec<(u64, u32)> = Vec::new();
    for r in reports {
        for f in &r.flows {
            let Some(t) = truth.get(f.flow as usize) else {
                continue;
            };
            if f.hist.count >= 8 {
                errs.push((f.hist.mean() as f64 - t.rtt_ns as f64).abs() / t.rtt_ns as f64);
                est.push((f.hist.mean(), f.flow));
            }
        }
    }
    errs.sort_by(f64::total_cmp);
    est.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let graded: BTreeSet<u32> = est.iter().map(|&(_, f)| f).collect();
    let mut by_truth: Vec<_> = truth.iter().filter(|t| graded.contains(&t.flow)).collect();
    by_truth.sort_by(|a, b| b.rtt_ns.cmp(&a.rtt_ns).then(a.flow.cmp(&b.flow)));
    if by_truth.is_empty() {
        return (errs, 0.0);
    }
    let k = by_truth.len().div_ceil(10).max(1);
    let want: BTreeSet<u32> = by_truth.iter().take(k).map(|t| t.flow).collect();
    let got: BTreeSet<u32> = est.iter().take(k).map(|&(_, f)| f).collect();
    (errs, want.intersection(&got).count() as f64 / k as f64)
}

fn main() {
    let args = CommonArgs::parse();
    let flow_counts: &[u32] = if args.quick { &[64] } else { &[64, 256] };
    let reorders: &[f64] = if args.quick {
        &[0.0, 0.2]
    } else {
        &[0.0, 0.05, 0.2]
    };
    let losses: &[f64] = if args.quick {
        &[0.0, 0.1]
    } else {
        &[0.0, 0.02, 0.1]
    };
    let pkts_per_flow: u32 = if args.quick { 96 } else { 192 };
    eprintln!(
        "[ext_rtt_precision] {:?} flows × {:?} reorder × {:?} loss, {pkts_per_flow} pkts/flow",
        flow_counts, reorders, losses
    );

    let mut table = Table::new(vec![
        "flows", "reorder", "loss", "samples", "graded", "p50 err", "p90 err", "recall", "coll",
        "evict", "drops",
    ]);
    let mut rows = Vec::new();
    let mut headline = None;
    for &flows in flow_counts {
        for &reorder in reorders {
            for &loss in losses {
                let cfg = RttWorkload {
                    flows,
                    ports: 1,
                    pkts_per_flow,
                    reorder,
                    loss,
                    seed: args.seed,
                    ..RttWorkload::default()
                };
                let (reports, truth) = measure(&cfg);
                let (errs, recall) = grade(&reports, &truth);
                let samples: u64 = reports.iter().map(RttReport::sample_count).sum();
                let c = reports.iter().fold((0u64, 0u64, 0u64), |acc, r| {
                    (
                        acc.0 + r.counters.collisions,
                        acc.1 + r.counters.evictions,
                        acc.2 + r.counters.sample_drops,
                    )
                });
                let p50 = errs.get(errs.len() / 2).copied().unwrap_or(f64::NAN);
                let p90 = errs
                    .get(errs.len() * 9 / 10)
                    .or(errs.last())
                    .copied()
                    .unwrap_or(f64::NAN);
                // The default-budget headline cell: benign impairment.
                if reorder == 0.0 && loss == 0.0 {
                    let h = headline.get_or_insert((p50, recall));
                    h.0 = h.0.max(p50);
                    h.1 = h.1.min(recall);
                }
                table.row(vec![
                    flows.to_string(),
                    f3(reorder),
                    f3(loss),
                    samples.to_string(),
                    errs.len().to_string(),
                    f3(p50),
                    f3(p90),
                    f3(recall),
                    c.0.to_string(),
                    c.1.to_string(),
                    c.2.to_string(),
                ]);
                rows.push(Row {
                    flows,
                    reorder,
                    loss,
                    samples,
                    graded_flows: errs.len(),
                    p50_err: p50,
                    p90_err: p90,
                    top_decile_recall: recall,
                    collisions: c.0,
                    evictions: c.1,
                    sample_drops: c.2,
                    degraded: reports.iter().any(RttReport::degraded),
                });
            }
        }
    }
    table.print("Extension — passive RTT precision vs flows × reorder × loss");
    if let Some((p50, recall)) = headline {
        let ok = p50 <= 0.10 && recall >= 0.9;
        println!(
            "\nheadline (default budget, no impairment): p50 err {} (≤ 0.100 required), \
             top-decile recall {} (≥ 0.900 required) — {}",
            f3(p50),
            f3(recall),
            if ok { "PASS" } else { "FAIL" }
        );
    }
    println!(
        "\nseq-match samples dominate; loss thins them roughly linearly while\n\
         reordering perturbs pairing and spin edges — the histograms' one-octave\n\
         bucket error stays the floor, and the counters say when to distrust a cell."
    );
    // Stamp the swept workload parameters into the provenance block so a
    // results file is interpretable without the argv.
    let farr = |xs: &[f64]| Value::Array(xs.iter().map(|&x| Value::F64(x)).collect());
    let meta = vec![
        (
            "flows".to_string(),
            Value::Array(flow_counts.iter().map(|&f| Value::U64(f as u64)).collect()),
        ),
        ("reorder_rate".to_string(), farr(reorders)),
        ("loss_rate".to_string(), farr(losses)),
        (
            "pkts_per_flow".to_string(),
            Value::U64(u64::from(pkts_per_flow)),
        ),
        ("seed".to_string(), Value::U64(args.seed)),
    ];
    write_json_with_meta("ext_rtt_precision", &rows, true, meta);
}
