//! Extension experiment: predicted vs measured per-window recovery error.
//!
//! §4.3 notes the proportional property "only provides an expected value
//! without any error bounds"; `pq_core::error_bounds` derives the missing
//! variance from the binomial survival model. This binary validates the
//! model against simulation: for each window, compare the *predicted*
//! relative standard error of per-flow recovered counts with the *measured*
//! relative RMS error over the UW trace.

use pq_bench::harness::{run, RunConfig};
use pq_bench::report::{f3, write_json, CommonArgs, Table};
use pq_core::error_bounds::{min_trustworthy_flow, recovery_bound};
use pq_core::metrics::FlowCounts;
use pq_core::params::TimeWindowConfig;
use pq_core::snapshot::QueryInterval;
use pq_packet::NanosExt;
use pq_trace::workload::{Workload, WorkloadKind};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    window: u8,
    flows_measured: usize,
    predicted_rel_err: f64,
    measured_rel_rmse: f64,
    min_trustworthy_flow_25pct: f64,
}

fn main() {
    let args = CommonArgs::parse();
    let duration = if args.quick {
        30u64.millis()
    } else {
        100u64.millis()
    };
    let tw = TimeWindowConfig::new(6, 1, 12, 5);
    let trace = Workload::paper_testbed(WorkloadKind::Uw, duration, args.seed).generate();
    eprintln!("[ext_error_bounds] UW: {} packets", trace.packets());
    let out = run(&RunConfig::new(tw, 110), &trace);
    let coeffs = out.printqueue.analysis().coefficients().clone();

    let cps = out.printqueue.analysis().checkpoints(0);
    let mut table = Table::new(vec![
        "window",
        "flows",
        "predicted σ/n",
        "measured RMSE/n",
        "min flow @25% err",
    ]);
    let mut rows = Vec::new();
    for w in 0..tw.t {
        // Gather per-flow (recovered, truth) pairs across checkpoints.
        let mut pairs: Vec<(f64, f64)> = Vec::new();
        for cp in cps {
            let mut snap = cp.windows.clone();
            snap.filter();
            let Some((from, to)) = snap.window_span(w) else {
                continue;
            };
            let est = snap.query_window(w, QueryInterval::new(from, to - 1), &coeffs);
            let mut truth: FlowCounts = FlowCounts::new();
            for r in out.truth.records() {
                let d = r.deq_timestamp();
                if (from..to).contains(&d) {
                    *truth.entry(r.flow).or_insert(0.0) += 1.0;
                }
            }
            for (flow, n_true) in &truth {
                // Only medium+ flows: tiny flows have infinite relative
                // error by design (the bound predicts that too).
                if *n_true >= 20.0 {
                    let n_est = est.counts.get(flow).copied().unwrap_or(0.0);
                    pairs.push((n_est, *n_true));
                }
            }
        }
        if pairs.is_empty() {
            continue;
        }
        // Measured relative RMSE.
        let mse: f64 = pairs
            .iter()
            .map(|(e, t)| ((e - t) / t) * ((e - t) / t))
            .sum::<f64>()
            / pairs.len() as f64;
        let measured = mse.sqrt();
        // Predicted relative error at the median flow size.
        let mut truths: Vec<f64> = pairs.iter().map(|(_, t)| *t).collect();
        truths.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median_n = truths[truths.len() / 2];
        let c = coeffs.coefficient[usize::from(w)];
        let predicted = recovery_bound(&coeffs, w, median_n * c).relative_error;
        let min_flow = min_trustworthy_flow(&coeffs, w, 0.25);

        table.row(vec![
            w.to_string(),
            pairs.len().to_string(),
            f3(predicted),
            f3(measured),
            format!("{min_flow:.0}"),
        ]);
        rows.push(Row {
            window: w,
            flows_measured: pairs.len(),
            predicted_rel_err: predicted,
            measured_rel_rmse: measured,
            min_trustworthy_flow_25pct: min_flow,
        });
    }
    table.print("Extension — predicted vs measured per-window recovery error (UW)");
    println!(
        "\nthe binomial model predicts the *scale* of the error and its growth with\n\
         window depth; measured error runs above prediction because real arrivals\n\
         are only near-i.i.d. (the §4.3 caveat)."
    );
    write_json("ext_error_bounds", &rows);
}
