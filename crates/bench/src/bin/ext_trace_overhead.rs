//! Extension experiment: the serving cost of distributed tracing.
//!
//! Drives the pq-serve daemon with concurrent replay-query clients at
//! four tracing settings and compares achieved qps:
//!
//! * `disabled`     — the trace store is off (`is_enabled` false), so the
//!   request path pays only the enabled check. This is the repo's
//!   tracing-off baseline: span collection is runtime-gated, not a
//!   compile-time feature, so "off" is one atomic load per request.
//! * `sample_0`     — tracing on with head sampling at 0: every request
//!   builds its span tree in the per-request buffer, but nothing commits
//!   (no request is sampled and none crosses the slow bar).
//! * `sample_1pct`  — head sampling at 1% (the recommended production
//!   setting); ~1 in 100 requests commits to the bounded trace ring.
//! * `sample_100pct`— every request commits: the worst case.
//!
//! The overhead of each setting relative to `disabled` is stamped into
//! the `meta` block of `results/ext_trace_overhead.json`. The budget the
//! tracing design was sized against is <= 2% qps loss at 1% sampling.

use pq_bench::report::{write_json_with_meta, CommonArgs, Table};
use pq_core::control::{AnalysisProgram, ControlConfig};
use pq_core::params::TimeWindowConfig;
use pq_packet::FlowId;
use pq_serve::{Client, ClientError, Request, ServeConfig, Server, Sources};
use pq_store::{SegmentPolicy, SharedStoreWriter, StoreWriter};
use pq_telemetry::{Telemetry, SAMPLE_ALWAYS_PPM};
use serde::{Serialize, Value};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const POLL_PERIOD: u64 = 4_096;
const PORT: u16 = 0;

#[derive(Serialize)]
struct Row {
    scenario: String,
    sample_ppm: u64,
    clients: usize,
    requests: usize,
    ok: usize,
    committed: u64,
    wall_ms: f64,
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
}

fn tw() -> TimeWindowConfig {
    TimeWindowConfig::new(6, 1, 10, 3)
}

fn build_archive(n_checkpoints: u64, path: &PathBuf) {
    let writer = StoreWriter::new(Vec::new(), tw(), SegmentPolicy::default()).unwrap();
    let handle = SharedStoreWriter::new(writer);
    let mut ap = AnalysisProgram::new(
        tw(),
        ControlConfig {
            poll_period: POLL_PERIOD,
            max_snapshots: n_checkpoints as usize + 8,
        },
        &[PORT],
        64,
        1,
        110,
    );
    ap.set_spill(Box::new(handle.clone()));
    let mut t = 0u64;
    for i in 0..n_checkpoints {
        for p in 0..50u64 {
            let flow = FlowId(((i * 7 + p) % 96) as u32);
            ap.record_dequeue(PORT, flow, t + p * (POLL_PERIOD / 64));
        }
        t += POLL_PERIOD;
        ap.on_tick(t);
    }
    handle.with(|w| w.set_health(PORT, ap.health())).unwrap();
    std::fs::write(path, handle.finish().unwrap()).unwrap();
}

fn intervals(n_checkpoints: u64, k: u64) -> Vec<(u64, u64)> {
    let span = n_checkpoints * POLL_PERIOD;
    (0..k)
        .map(|i| {
            let from = (span * i) / k;
            (from, from + 4 * POLL_PERIOD)
        })
        .collect()
}

struct Outcome {
    ok: usize,
    wall_ms: f64,
    latencies_ms: Vec<f64>,
    committed: u64,
}

/// Drive one tracing setting: `sample_ppm` of `None` leaves the trace
/// store disabled; `Some(ppm)` enables it at that head-sampling rate
/// with the slow threshold parked at infinity, so commits are governed
/// by sampling alone.
fn run_scenario(
    archive: &PathBuf,
    sample_ppm: Option<u32>,
    clients: usize,
    per_client: usize,
    mix: &[(u64, u64)],
) -> Outcome {
    let plane = Telemetry::new();
    if let Some(ppm) = sample_ppm {
        plane.traces().set_enabled(true);
        plane.traces().set_sample_ppm(ppm);
        plane.traces().set_slow_ns(u64::MAX);
    }
    let server = Server::bind(
        ("127.0.0.1", 0),
        Sources {
            live: None,
            archive: Some(archive.clone()),
            rtt: Vec::new(),
        },
        ServeConfig::default(),
        &plane,
    )
    .unwrap();
    let handle = server.spawn().unwrap();
    let addr: SocketAddr = handle.addr();

    // Warm the shared decode cache before the clock starts: one pass over
    // the mix decodes every segment the measured load will touch, so the
    // comparison isolates tracing cost instead of first-touch decode cost.
    {
        let mut warm = Client::connect(addr).unwrap();
        for &(from, to) in mix {
            let _ = warm.query(Request::Replay {
                port: PORT,
                from,
                to,
                d: 110,
            });
        }
    }

    let start = Instant::now();
    let threads: Vec<_> = (0..clients)
        .map(|c| {
            let mix = mix.to_vec();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut ok = 0usize;
                let mut latencies = Vec::with_capacity(per_client);
                for r in 0..per_client {
                    let (from, to) = mix[(c + r) % mix.len()];
                    let t0 = Instant::now();
                    match client.query(Request::Replay {
                        port: PORT,
                        from,
                        to,
                        d: 110,
                    }) {
                        Ok(res) => {
                            assert!(!res.estimates.counts.is_empty());
                            latencies.push(t0.elapsed().as_secs_f64() * 1e3);
                            ok += 1;
                        }
                        Err(ClientError::Busy { retry_after_ms }) => {
                            std::thread::sleep(Duration::from_millis(u64::from(retry_after_ms)));
                        }
                        Err(e) => panic!("query failed: {e}"),
                    }
                }
                (ok, latencies)
            })
        })
        .collect();
    let mut ok = 0;
    let mut latencies_ms = Vec::new();
    for t in threads {
        let (o, l) = t.join().unwrap();
        ok += o;
        latencies_ms.extend(l);
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let committed = plane.traces().committed();
    handle.shutdown().unwrap();
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    Outcome {
        ok,
        wall_ms,
        latencies_ms,
        committed,
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn main() {
    let args = CommonArgs::parse();
    let (n_checkpoints, clients, per_client) = if args.quick {
        (512u64, 4usize, 60usize)
    } else {
        (2_048, 8, 400)
    };
    let mix = intervals(n_checkpoints, 8);
    let archive =
        std::env::temp_dir().join(format!("pq_ext_trace_overhead_{}.pqa", std::process::id()));
    eprintln!(
        "[ext_trace_overhead] spilling {n_checkpoints} checkpoints, \
         {clients} clients x {per_client} queries per setting"
    );
    build_archive(n_checkpoints, &archive);

    // (scenario name, trace-store setting)
    let settings: [(&str, Option<u32>); 4] = [
        ("disabled", None),
        ("sample_0", Some(0)),
        ("sample_1pct", Some(SAMPLE_ALWAYS_PPM / 100)),
        ("sample_100pct", Some(SAMPLE_ALWAYS_PPM)),
    ];

    let mut rows = Vec::new();
    let mut table = Table::new(vec![
        "scenario",
        "sample",
        "ok",
        "committed",
        "qps",
        "p50 ms",
        "p99 ms",
        "overhead",
    ]);
    let mut baseline_qps = 0.0f64;
    let mut overheads: Vec<(String, f64)> = Vec::new();
    let reps = if args.quick { 2 } else { 5 };
    for (name, ppm) in settings {
        // Short serving runs are scheduler-noisy; take each setting's
        // best of `reps` fresh-server repetitions, which converges on
        // the setting's attainable throughput rather than on whichever
        // run the machine happened to interfere with.
        let out = (0..reps)
            .map(|_| run_scenario(&archive, ppm, clients, per_client, &mix))
            .max_by(|a, b| {
                (a.ok as f64 / a.wall_ms)
                    .partial_cmp(&(b.ok as f64 / b.wall_ms))
                    .unwrap()
            })
            .unwrap();
        let qps = out.ok as f64 / (out.wall_ms / 1e3);
        if name == "disabled" {
            baseline_qps = qps;
        }
        let overhead = if baseline_qps > 0.0 {
            1.0 - qps / baseline_qps
        } else {
            0.0
        };
        overheads.push((name.to_string(), overhead));
        let p50 = percentile(&out.latencies_ms, 0.50);
        let p99 = percentile(&out.latencies_ms, 0.99);
        table.row(vec![
            name.to_string(),
            ppm.map(|p| format!("{p} ppm")).unwrap_or("off".into()),
            format!("{}", out.ok),
            format!("{}", out.committed),
            format!("{qps:.0}"),
            format!("{p50:.3}"),
            format!("{p99:.3}"),
            format!("{:+.1}%", overhead * 100.0),
        ]);
        rows.push(Row {
            scenario: name.to_string(),
            sample_ppm: u64::from(ppm.unwrap_or(0)),
            clients,
            requests: clients * per_client,
            ok: out.ok,
            committed: out.committed,
            wall_ms: out.wall_ms,
            qps,
            p50_ms: p50,
            p99_ms: p99,
        });
    }

    table.print("Extension — tracing overhead: qps by sampling setting");
    let at_1pct = overheads
        .iter()
        .find(|(n, _)| n == "sample_1pct")
        .map(|(_, o)| *o)
        .unwrap_or(0.0);
    println!(
        "overhead at 1% sampling: {:+.2}% qps vs tracing disabled (budget <= 2%)",
        at_1pct * 100.0
    );
    let meta: Vec<(String, Value)> =
        std::iter::once(("overhead_budget_at_1pct".to_string(), Value::F64(0.02)))
            .chain(
                overheads
                    .into_iter()
                    .map(|(n, o)| (format!("overhead_{n}"), Value::F64(o))),
            )
            .collect();
    write_json_with_meta("ext_trace_overhead", &rows, false, meta);
    let _ = std::fs::remove_file(&archive);
}
