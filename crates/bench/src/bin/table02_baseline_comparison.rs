//! Table 2: average precision/recall of PrintQueue versus HashPipe and
//! FlowRadar under the UW, WS, and DM traces.
//!
//! Shape to reproduce: PrintQueue wins on every trace; the gap is largest
//! on UW (paper: 0.684/0.634 vs ~0.39/0.34); HashPipe and FlowRadar score
//! similarly to each other because both are fixed-interval collectors whose
//! prorated estimates mis-scale short query intervals.

use pq_bench::eval::{eval_async, eval_baseline, overall};
use pq_bench::harness::{run, RunConfig};
use pq_bench::report::{f3, write_json, CommonArgs, Table};
use pq_bench::victims::sample_victims;
use pq_core::params::TimeWindowConfig;
use pq_packet::NanosExt;
use pq_trace::workload::{Workload, WorkloadKind};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    trace: &'static str,
    system: &'static str,
    precision: f64,
    recall: f64,
}

fn main() {
    let args = CommonArgs::parse();
    let duration = if args.quick {
        30u64.millis()
    } else {
        120u64.millis()
    };
    let per_bucket_n = if args.quick { 25 } else { 100 };
    let mut rows = Vec::new();
    let mut table = Table::new(vec![
        "trace",
        "PrintQueue P/R",
        "HashPipe P/R",
        "FlowRadar P/R",
    ]);

    for kind in [WorkloadKind::Uw, WorkloadKind::Ws, WorkloadKind::Dm] {
        let (m0, alpha, k, t) = kind.paper_params();
        let tw = TimeWindowConfig::new(m0, alpha, k, t);
        let d = if kind == WorkloadKind::Uw { 110 } else { 1200 };
        let trace = Workload::paper_testbed(kind, duration, args.seed).generate();
        eprintln!(
            "[table02] {}: {} packets, {} flows",
            kind.label(),
            trace.packets(),
            trace.flows.len()
        );
        let mut out = run(&RunConfig::new(tw, d).with_baselines(), &trace);
        let victims = sample_victims(&out.truth, per_bucket_n, args.seed);

        let pq = overall(&eval_async(&mut out, &victims));
        let baselines = out.baselines.as_ref().expect("baselines attached");
        let hp = overall(&eval_baseline(&out, &baselines.hp_periods, &victims));
        let fr = overall(&eval_baseline(&out, &baselines.fr_periods, &victims));

        table.row(vec![
            kind.label().to_string(),
            format!("{}/{}", f3(pq.precision), f3(pq.recall)),
            format!("{}/{}", f3(hp.precision), f3(hp.recall)),
            format!("{}/{}", f3(fr.precision), f3(fr.recall)),
        ]);
        for (system, pr) in [("PrintQueue", pq), ("HashPipe", hp), ("FlowRadar", fr)] {
            rows.push(Row {
                trace: kind.label(),
                system,
                precision: pr.precision,
                recall: pr.recall,
            });
        }
    }
    table.print("Table 2 — average precision/recall vs baselines");
    println!(
        "\npaper reference: UW 0.684/0.634 vs 0.396/0.341 (HP) and 0.391/0.350 (FR);\n\
         WS 0.909/0.864 vs 0.801/0.582, 0.763/0.582; DM 0.977/0.948 vs 0.838/0.671 (both)"
    );
    write_json("table02_baseline_comparison", &rows);
}
