//! Extension experiment (not a paper figure): ConQuest versus PrintQueue on
//! the reverse-lookup task.
//!
//! §8 of the paper argues ConQuest "does not permit the reverse lookup:
//! given a victim, determine the culprits in its queuing" — its snapshots
//! rotate after roughly one queue-drain time, so any victim whose query
//! lands further in the past gets nothing. This binary quantifies that:
//! both systems run over the same UW trace; victims are diagnosed with
//! growing *query lag* (how long after the victim's dequeue the query
//! executes). PrintQueue's checkpoints answer at any lag; ConQuest's
//! snapshot horizon cuts off almost immediately.

use pq_baselines::ConQuest;
use pq_bench::harness::{run, RunConfig};
use pq_bench::report::{f3, write_json, CommonArgs, Table};
use pq_bench::victims::sample_victims;
use pq_core::metrics::{self, precision_recall};
use pq_core::params::TimeWindowConfig;
use pq_core::snapshot::QueryInterval;
use pq_packet::{FlowId, FlowKey, NanosExt};
use pq_trace::workload::{Workload, WorkloadKind};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    lag_us: u64,
    system: &'static str,
    precision: f64,
    recall: f64,
    answerable_pct: f64,
}

fn main() {
    let args = CommonArgs::parse();
    let duration = if args.quick {
        30u64.millis()
    } else {
        100u64.millis()
    };
    let per_bucket_n = if args.quick { 15 } else { 40 };

    let tw = TimeWindowConfig::UW;
    let trace = Workload::paper_testbed(WorkloadKind::Uw, duration, args.seed).generate();
    eprintln!("[ext_conquest] UW: {} packets", trace.packets());

    // PrintQueue run (the harness owns it).
    let out = run(&RunConfig::new(tw, 110), &trace);
    // Rebuilding ConQuest state per victim is O(packets), so keep the
    // victim set small for this extension demo.
    let mut victims = sample_victims(&out.truth, per_bucket_n, args.seed);
    victims.truncate(30);

    // ConQuest run: replay the *telemetry* through a fresh ConQuest at
    // enqueue order (same arrival stream). Snapshot window: ~1/4 of a deep
    // queue's drain time (20k cells × 80 B at 10 Gbps ≈ 1.3 ms → 320 µs).
    let keys: Vec<FlowKey> = trace.flows.iter().map(|(_, k)| *k).collect();
    let candidates: Vec<(FlowId, FlowKey)> = trace.flows.iter().map(|(i, k)| (i, *k)).collect();

    let mut table = Table::new(vec!["query lag", "PQ P/R", "CQ P/R", "CQ answerable"]);
    let mut rows = Vec::new();
    // Query lags: how long after the victim's dequeue the diagnosis runs.
    for lag in [
        0u64,
        500.micros(),
        2u64.millis(),
        10u64.millis(),
        50u64.millis(),
    ] {
        // PrintQueue: checkpoints make lag irrelevant as long as snapshots
        // exist (they cover the whole run).
        let mut pq_p = Vec::new();
        let mut pq_r = Vec::new();
        let mut cq_p = Vec::new();
        let mut cq_r = Vec::new();
        let mut answerable = 0usize;
        for v in &victims {
            let interval =
                QueryInterval::new(v.record.meta.enq_timestamp, v.record.deq_timestamp());
            let truth = metrics::to_float_counts(&out.truth.direct_culprits(
                interval.from,
                interval.to,
                v.record.seqno,
            ));
            let est = out.printqueue.analysis().query_time_windows(0, interval);
            let pr = precision_recall(&est.counts, &truth);
            pq_p.push(pr.precision);
            pq_r.push(pr.recall);

            // ConQuest: rebuild its state as of (victim deq + lag) by
            // replaying arrivals up to that instant, then reverse-query.
            // (Replaying per victim is slow; sample fewer victims here.)
            let query_at = v.record.deq_timestamp() + lag;
            let mut conquest = ConQuest::paper_typical(320_000);
            for a in &trace.arrivals {
                if a.pkt.arrival > query_at {
                    break;
                }
                conquest.on_enqueue(&keys[a.pkt.flow.0 as usize], a.pkt.len, a.pkt.arrival);
            }
            let cq_bytes = conquest.reverse_query(&candidates, interval.from, interval.to);
            // Convert byte estimates to packet counts (UW mean ≈ 105 B).
            let cq_counts: std::collections::HashMap<FlowId, f64> = cq_bytes
                .iter()
                .map(|(f, b)| (*f, *b as f64 / 105.0))
                .collect();
            if !cq_counts.is_empty() {
                answerable += 1;
            }
            let pr = precision_recall(&cq_counts, &truth);
            cq_p.push(pr.precision);
            cq_r.push(pr.recall);
        }
        let row = Row {
            lag_us: lag / 1_000,
            system: "both",
            precision: metrics::mean(&cq_p),
            recall: metrics::mean(&cq_r),
            answerable_pct: answerable as f64 / victims.len() as f64 * 100.0,
        };
        table.row(vec![
            format!("{} µs", lag / 1_000),
            format!("{}/{}", f3(metrics::mean(&pq_p)), f3(metrics::mean(&pq_r))),
            format!("{}/{}", f3(metrics::mean(&cq_p)), f3(metrics::mean(&cq_r))),
            format!("{:.0}%", row.answerable_pct),
        ]);
        rows.push(row);
    }
    table.print("Extension — reverse-lookup vs query lag: PrintQueue vs ConQuest (UW)");
    println!(
        "\nConQuest's snapshots rotate within ~{:.2} ms, so victim queries lagging\n\
         beyond that return nothing — the §8 limitation PrintQueue removes.",
        ConQuest::paper_typical(320_000).history_horizon() as f64 / 1e6
    );
    write_json("ext_conquest", &rows);
}
