//! Figure 14: (a) the ratio of linear (per-packet) storage to PrintQueue's
//! exponential storage as the covered duration grows, for α ∈ {1, 2, 3};
//! (b) data-plane SRAM utilisation across (k, T) parameter choices.
//!
//! Shape to reproduce: (a) the ratio grows with duration, reaching orders
//! of magnitude (the paper: up to three); (b) SRAM scales linearly in T and
//! geometrically in k, staying a moderate share of the budget throughout.

use pq_bench::report::{write_json, CommonArgs, Table};
use pq_core::params::TimeWindowConfig;
use pq_core::resources::{exponential_aged_bytes, linear_storage_bytes, ResourceModel};
use serde::Serialize;

#[derive(Serialize)]
struct RatioRow {
    alpha: u8,
    duration_ns: u64,
    ratio: f64,
}

#[derive(Serialize)]
struct SramRow {
    k: u8,
    t: u8,
    sram_bytes: u64,
    utilization_pct: f64,
}

fn main() {
    let _args = CommonArgs::parse();

    // (a) linear vs exponential, UW packet rate, NetSight-sized (~40 B)
    // per-packet postcards for the linear systems.
    let pps = 9.1e6;
    let record_bytes = 40;
    let mut ratio_rows = Vec::new();
    let mut table_a = Table::new(vec!["duration(ns)", "alpha=1", "alpha=2", "alpha=3"]);
    for exp in 18..=22u32 {
        let duration = 1u64 << exp;
        let mut cells = vec![format!("2^{exp}")];
        for alpha in 1..=3u8 {
            // T chosen large enough that the set period covers 2^22 ns.
            let tw = TimeWindowConfig::new(6, alpha, 12, 5);
            let linear = linear_storage_bytes(duration, pps, record_bytes);
            let expo = exponential_aged_bytes(&tw, duration);
            let ratio = linear / expo;
            cells.push(format!("{ratio:.1}"));
            ratio_rows.push(RatioRow {
                alpha,
                duration_ns: duration,
                ratio,
            });
        }
        table_a.row(cells);
    }
    table_a.print("Figure 14(a) — linear : exponential storage ratio");

    // (b) SRAM across (k, T): k ∈ {9..12} × T=5, then k=12 × T ∈ {2..5}.
    let mut sram_rows = Vec::new();
    let mut table_b = Table::new(vec!["k_T", "SRAM (KiB)", "utilization %"]);
    let mut push = |k: u8, t: u8, table: &mut Table| {
        let tw = TimeWindowConfig::new(6, 1, k, t);
        let model = ResourceModel::new(&tw, 1, 0);
        table.row(vec![
            format!("{k}_{t}"),
            format!("{}", model.tw_sram_bytes / 1024),
            format!("{:.2}", model.sram_utilization_pct()),
        ]);
        sram_rows.push(SramRow {
            k,
            t,
            sram_bytes: model.tw_sram_bytes,
            utilization_pct: model.sram_utilization_pct(),
        });
    };
    for k in 9..=12u8 {
        push(k, 5, &mut table_b);
    }
    for t in (2..=4u8).rev() {
        push(12, t, &mut table_b);
    }
    table_b.print("Figure 14(b) — time-window SRAM across (k, T)");

    write_json("fig14a_storage_ratio", &ratio_rows);
    write_json("fig14b_sram", &sram_rows);
}
