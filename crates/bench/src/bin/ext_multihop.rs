//! Extension experiment (not a paper figure): per-hop delay attribution
//! along a switch chain.
//!
//! The paper's §1 motivates congestion regimes with "the cascading nature
//! of queuing delays"; its deployment model is strictly per-switch. This
//! binary runs the WS workload through a 3-hop chain whose middle hop is
//! the bottleneck and shows that (a) per-hop PrintQueue instances localize
//! where the delay accrues, and (b) the bottleneck's egress *pacing*
//! suppresses queueing at the next hop — diagnosis needs to run at the
//! right switch, which per-switch deployment makes possible.

use pq_bench::report::{f3, write_json, CommonArgs, Table};
use pq_core::culprits::GroundTruth;
use pq_core::metrics::{self, precision_recall};
use pq_core::params::TimeWindowConfig;
use pq_core::printqueue::{PrintQueue, PrintQueueConfig};
use pq_core::snapshot::QueryInterval;
use pq_packet::NanosExt;
use pq_switch::topology::DepartureTap;
use pq_switch::{QueueHooks, Switch, SwitchConfig, TelemetrySink};
use pq_trace::workload::{Workload, WorkloadKind};
use serde::Serialize;

#[derive(Serialize)]
struct HopRow {
    hop: usize,
    rate_gbps: f64,
    max_depth_cells: u32,
    mean_delay_us: f64,
    victim_precision: f64,
    victim_recall: f64,
}

fn main() {
    let args = CommonArgs::parse();
    let duration = if args.quick {
        20u64.millis()
    } else {
        60u64.millis()
    };
    let trace = Workload::paper_testbed(WorkloadKind::Ws, duration, args.seed).generate();
    eprintln!("[ext_multihop] WS: {} packets", trace.packets());

    // 3 hops: 40 G → 10 G (bottleneck) → 40 G, 5 µs links.
    let rates = [40.0f64, 10.0, 40.0];
    let tw = TimeWindowConfig::WS_DM;
    let mut stream = trace.arrivals.clone();
    let mut rows = Vec::new();
    let mut table = Table::new(vec![
        "hop",
        "rate",
        "max depth",
        "mean delay µs",
        "victim P/R",
    ]);
    for (hop, rate) in rates.iter().enumerate() {
        let mut sw = Switch::new(SwitchConfig::single_port(*rate, 32_768));
        let mut pq_config = PrintQueueConfig::single_port(tw, 1200);
        pq_config.control.poll_period = 2u64.millis();
        let mut pq = PrintQueue::new(pq_config);
        let mut sink = TelemetrySink::new();
        let mut tap = DepartureTap::new(0, 0, 5_000);
        {
            let mut hooks: Vec<&mut dyn QueueHooks> = vec![&mut tap, &mut pq, &mut sink];
            sw.run(stream, &mut hooks, 2u64.millis());
        }
        stream = tap.into_arrivals();

        // Diagnose this hop's most-delayed packet against this hop's own
        // ground truth.
        let truth = GroundTruth::new(&sink.records, 80);
        let (pr, delay_us) = match sink.records.iter().max_by_key(|r| r.meta.deq_timedelta) {
            Some(victim) if victim.meta.deq_timedelta > 0 => {
                let interval =
                    QueryInterval::new(victim.meta.enq_timestamp, victim.deq_timestamp());
                let est = pq.analysis().query_time_windows(0, interval);
                let gt = metrics::to_float_counts(&truth.direct_culprits(
                    interval.from,
                    interval.to,
                    victim.seqno,
                ));
                (
                    precision_recall(&est.counts, &gt),
                    f64::from(victim.meta.deq_timedelta) / 1e3,
                )
            }
            _ => (Default::default(), 0.0),
        };
        let stats = sw.port_stats(0);
        table.row(vec![
            hop.to_string(),
            format!("{rate} G"),
            stats.max_depth_cells.to_string(),
            format!("{:.1}", stats.mean_queue_delay() / 1e3),
            format!("{}/{}", f3(pr.precision), f3(pr.recall)),
        ]);
        rows.push(HopRow {
            hop,
            rate_gbps: *rate,
            max_depth_cells: stats.max_depth_cells,
            mean_delay_us: stats.mean_queue_delay() / 1e3,
            victim_precision: pr.precision,
            victim_recall: pr.recall,
        });
        let _ = delay_us;
    }
    table.print("Extension — per-hop delay attribution along a 3-hop chain (WS)");
    println!(
        "\nthe 10 G middle hop absorbs the queueing; its egress pacing keeps the\n\
         downstream 40 G hop almost empty — per-switch PrintQueue localizes the\n\
         cascade to the switch that actually delayed the traffic."
    );
    write_json("ext_multihop", &rows);
}
