//! Figure 16: the queue-monitor case study (§7.2).
//!
//! A 9 Gbps background TCP flow shares a 10 Gbps port with a short 4 Gbps
//! burst of 10,000 datagrams; a late 0.5 Gbps TCP flow then suffers the
//! queueing the burst left behind. We diagnose one of the new flow's
//! packets with all three culprit queries.
//!
//! Shape to reproduce (Figure 16(b)): direct culprits are dominated by the
//! background flow (the burst left long ago); indirect culprits are also
//! mostly background (by volume); only the *original* culprits give the
//! burst a share comparable to the background (the paper's 5597 : 6096).

use pq_bench::harness::{run, RunConfig};
use pq_bench::report::{write_json, CommonArgs, Table};
use pq_core::params::TimeWindowConfig;
use pq_core::snapshot::QueryInterval;
use pq_packet::{FlowId, NanosExt};
use pq_trace::scenario::case_study_fig16;
use serde::Serialize;
use std::collections::HashMap;

#[derive(Serialize)]
struct Proportion {
    culprit_type: &'static str,
    source: &'static str,
    burst_pct: f64,
    background_pct: f64,
    new_tcp_pct: f64,
}

fn proportions(counts: &HashMap<FlowId, f64>, roles: &[(FlowId, &'static str); 3]) -> [f64; 3] {
    let total: f64 = counts.values().sum();
    let mut out = [0.0; 3];
    if total == 0.0 {
        return out;
    }
    for (i, (flow, _)) in roles.iter().enumerate() {
        out[i] = counts.get(flow).copied().unwrap_or(0.0) / total * 100.0;
    }
    out
}

fn to_f64(counts: &HashMap<FlowId, u64>) -> HashMap<FlowId, f64> {
    counts.iter().map(|(f, n)| (*f, *n as f64)).collect()
}

fn main() {
    let args = CommonArgs::parse();
    let duration = if args.quick {
        60u64.millis()
    } else {
        150u64.millis()
    };
    let cs = case_study_fig16(duration, args.seed);
    eprintln!(
        "[fig16] {} packets; burst at {:.1} ms, new TCP at {:.1} ms",
        cs.trace.packets(),
        cs.burst_start as f64 / 1e6,
        cs.new_tcp_start as f64 / 1e6
    );

    // WS/DM-style parameters (MTU traffic); poll every 2 ms so queue-monitor
    // snapshots exist throughout the congestion.
    let tw = TimeWindowConfig::WS_DM;
    let mut config = RunConfig::new(tw, 200); // burst datagrams are 250 B → d = 200 ns
    config.max_depth_cells = 40_000;
    config.poll_period = Some(2u64.millis());
    let mut out = run(&config, &cs.trace);

    // The victim: the first new-TCP packet that experienced heavy queueing.
    let victim = out
        .truth
        .records()
        .iter()
        .filter(|r| r.flow == cs.roles.new_tcp)
        .max_by_key(|r| r.meta.deq_timedelta)
        .copied()
        .expect("new TCP flow transmitted packets");
    let t1 = victim.meta.enq_timestamp;
    let t2 = victim.deq_timestamp();
    eprintln!(
        "[fig16] victim enq {:.2} ms, queueing {:.2} ms, depth {} cells",
        t1 as f64 / 1e6,
        (t2 - t1) as f64 / 1e6,
        victim.meta.enq_qdepth
    );

    // Queue depth series (Figure 16(a)).
    let series = out.truth.depth_series(0, duration, 500_000);
    let peak = series.iter().map(|(_, d)| *d).max().unwrap_or(0);
    let burst_span = 10_000u64 * 500; // 10k datagrams at 4 Gbps, 250 B each
    let queueing_span = {
        let above: Vec<&(u64, u32)> = series.iter().filter(|(_, d)| *d > 100).collect();
        match (above.first(), above.last()) {
            (Some(first), Some(last)) => last.0 - first.0,
            _ => 0,
        }
    };
    println!("\n== Figure 16(a) — queue depth over time ==");
    println!("peak depth: {peak} cells; congestion span ≈ {:.1} ms (burst itself {:.1} ms, ratio {:.1}x)",
        queueing_span as f64 / 1e6, burst_span as f64 / 1e6,
        queueing_span as f64 / burst_span as f64);
    for (t, d) in series.iter().step_by(10) {
        let bars = (d / 1_000) as usize;
        println!(
            "{:>7.1} ms |{}{}",
            *t as f64 / 1e6,
            "#".repeat(bars),
            if *d > 0 && bars == 0 { "." } else { "" }
        );
    }

    let roles = [
        (cs.roles.burst, "burst"),
        (cs.roles.background, "background"),
        (cs.roles.new_tcp, "new TCP"),
    ];

    // Ground-truth report for the victim.
    let gt = out.truth.report(&victim);

    // PrintQueue queries.
    let direct_est = out
        .printqueue
        .analysis_mut()
        .query_time_windows(0, QueryInterval::new(t1, t2));
    let indirect_est = out
        .printqueue
        .analysis_mut()
        .query_time_windows(0, QueryInterval::new(gt.regime_start, t1.saturating_sub(1)));
    let qm_snapshot = out
        .printqueue
        .analysis()
        .query_queue_monitor(0, t2)
        .expect("queue-monitor checkpoint");
    let original_est: HashMap<FlowId, f64> = qm_snapshot
        .culprit_counts()
        .iter()
        .map(|(f, n)| (*f, *n as f64))
        .collect();

    let mut rows = Vec::new();
    let mut table = Table::new(vec![
        "culprits",
        "source",
        "burst %",
        "background %",
        "new TCP %",
    ]);
    let sets: [(&'static str, &'static str, HashMap<FlowId, f64>); 6] = [
        ("direct", "PrintQueue", direct_est.estimates.counts),
        ("direct", "ground truth", to_f64(&gt.direct)),
        ("indirect", "PrintQueue", indirect_est.estimates.counts),
        ("indirect", "ground truth", to_f64(&gt.indirect)),
        ("original", "PrintQueue", original_est),
        ("original", "ground truth", to_f64(&gt.original)),
    ];
    for (culprit_type, source, counts) in sets {
        let p = proportions(&counts, &roles);
        table.row(vec![
            culprit_type.to_string(),
            source.to_string(),
            format!("{:.1}", p[0]),
            format!("{:.1}", p[1]),
            format!("{:.1}", p[2]),
        ]);
        rows.push(Proportion {
            culprit_type,
            source,
            burst_pct: p[0],
            background_pct: p[1],
            new_tcp_pct: p[2],
        });
    }
    table.print("Figure 16(b) — culprit proportions for the victim");

    // Buildup narrative: which depth band each flow founded.
    println!("\nqueue-monitor buildup ranges (who raised which levels):");
    let mut ranges: Vec<_> = qm_snapshot.buildup_ranges().into_iter().collect();
    ranges.sort_by_key(|(_, (lo, _))| *lo);
    for (flow, (lo, hi)) in ranges {
        let name = roles
            .iter()
            .find(|(f, _)| *f == flow)
            .map(|(_, n)| *n)
            .unwrap_or("other");
        println!("  {name:<10} levels {lo:>6} – {hi:>6} cells");
    }
    println!(
        "\npaper reference: original culprits show burst ≈ background (5597:6096)\n\
         while direct culprits contain no burst packets at all"
    );
    write_json("fig16_case_study", &rows);
}
