//! Figure 11: PrintQueue versus the baselines under the UW trace with
//! varying time-window parameters: (α=2,k=12,T=4), (α=2,k=12,T=5), and
//! (α=3,k=12,T=4). Median accuracy per queue-depth bucket.
//!
//! Shape to reproduce: PrintQueue outperforms the baselines at larger
//! query intervals for every parameter set; its small-interval accuracy
//! drops as α (or T) grows, because the deepest windows become very coarse
//! (§7.1: with α=3 a short interval may be estimated from just four cells).

use pq_bench::eval::{eval_async, eval_baseline, per_bucket};
use pq_bench::harness::{run, RunConfig};
use pq_bench::report::{f3, write_json, CommonArgs, Table};
use pq_bench::victims::{sample_victims, DEPTH_BUCKETS};
use pq_core::params::TimeWindowConfig;
use pq_packet::NanosExt;
use pq_trace::workload::{Workload, WorkloadKind};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    config: String,
    bucket: &'static str,
    system: &'static str,
    median_precision: f64,
    median_recall: f64,
}

fn main() {
    let args = CommonArgs::parse();
    let duration = if args.quick {
        30u64.millis()
    } else {
        120u64.millis()
    };
    let per_bucket_n = if args.quick { 25 } else { 100 };
    let trace = Workload::paper_testbed(WorkloadKind::Uw, duration, args.seed).generate();
    eprintln!("[fig11] UW: {} packets", trace.packets());

    let configs = [
        TimeWindowConfig::new(6, 2, 12, 4),
        TimeWindowConfig::new(6, 2, 12, 5),
        TimeWindowConfig::new(6, 3, 12, 4),
    ];
    let mut rows = Vec::new();
    for tw in configs {
        let mut out = run(&RunConfig::new(tw, 110).with_baselines(), &trace);
        let victims = sample_victims(&out.truth, per_bucket_n, args.seed);
        let pq = per_bucket(&eval_async(&mut out, &victims));
        let baselines = out.baselines.as_ref().expect("baselines attached");
        let hp = per_bucket(&eval_baseline(&out, &baselines.hp_periods, &victims));
        let fr = per_bucket(&eval_baseline(&out, &baselines.fr_periods, &victims));

        let mut table = Table::new(vec!["depth(1e3)", "PQ P/R", "HP P/R", "FR P/R"]);
        for (b, bucket) in DEPTH_BUCKETS.iter().enumerate() {
            table.row(vec![
                bucket.label.to_string(),
                format!("{}/{}", f3(pq[b].median_precision), f3(pq[b].median_recall)),
                format!("{}/{}", f3(hp[b].median_precision), f3(hp[b].median_recall)),
                format!("{}/{}", f3(fr[b].median_precision), f3(fr[b].median_recall)),
            ]);
            for (system, stats) in [
                ("PrintQueue", &pq[b]),
                ("HashPipe", &hp[b]),
                ("FlowRadar", &fr[b]),
            ] {
                rows.push(Row {
                    config: tw.label(),
                    bucket: bucket.label,
                    system,
                    median_precision: stats.median_precision,
                    median_recall: stats.median_recall,
                });
            }
        }
        table.print(&format!(
            "Figure 11 — median accuracy, UW trace, α={} k={} T={}",
            tw.alpha, tw.k, tw.t
        ));
    }
    write_json("fig11_parameter_sweep", &rows);
}
