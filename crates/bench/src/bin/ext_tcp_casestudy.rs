//! Extension experiment: the §7.2 case study with a *closed-loop* TCP
//! background instead of constant-bit-rate replay.
//!
//! The paper's testbed background is live TCP limited to ~9 Gbps. TCP's
//! additive increase refills whatever queue headroom appears, so the
//! standing queue the burst created persists far longer than the burst
//! itself (the paper: 76×). Our open-loop fig16 run drains in ~5× the
//! burst duration because CBR never reacts; this binary quantifies how much
//! closer a reactive AIMD background gets, and checks that the queue
//! monitor still implicates the burst either way.

use pq_bench::report::{write_json, CommonArgs, Table};
use pq_core::culprits::GroundTruth;
use pq_core::params::TimeWindowConfig;
use pq_core::printqueue::{PrintQueue, PrintQueueConfig};
use pq_packet::ipv4::Address;
use pq_packet::time::tx_delay_ns;
use pq_packet::{FlowId, FlowKey, FlowTable, NanosExt, SimPacket};
use pq_switch::{Arrival, QueueHooks, Switch, SwitchConfig, TelemetrySink};
use pq_trace::closed_loop::{run_closed_loop, AimdConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    background: &'static str,
    burst_span_ms: f64,
    congestion_span_ms: f64,
    ratio: f64,
    qm_burst_share_pct: f64,
}

fn burst_arrivals(flow: FlowId, start: u64) -> Vec<Arrival> {
    // 10,000 × 250 B datagrams at 4 Gbps (≈ 5 ms), as in fig16.
    let gap = tx_delay_ns(250, 4.0);
    (0..10_000u64)
        .map(|i| Arrival::new(SimPacket::new(flow, 250, start + i * gap), 0))
        .collect()
}

fn congestion_span(truth: &GroundTruth, duration: u64) -> f64 {
    let series = truth.depth_series(0, duration, 250_000);
    let busy: Vec<&(u64, u32)> = series.iter().filter(|(_, d)| *d > 200).collect();
    match (busy.first(), busy.last()) {
        (Some(first), Some(last)) => (last.0 - first.0) as f64 / 1e6,
        _ => 0.0,
    }
}

fn main() {
    let args = CommonArgs::parse();
    let duration = if args.quick {
        80u64.millis()
    } else {
        200u64.millis()
    };

    let mut flows = FlowTable::new();
    let background = flows.intern(FlowKey::tcp(
        Address::new(10, 0, 0, 1),
        33333,
        Address::new(10, 0, 1, 1),
        5001,
    ));
    let burst = flows.intern(FlowKey::udp(
        Address::new(10, 0, 0, 2),
        44444,
        Address::new(10, 0, 1, 1),
        9999,
    ));

    let tw = TimeWindowConfig::WS_DM;
    let burst_start = duration / 10;
    let burst_span_ms = (10_000 * tx_delay_ns(250, 4.0)) as f64 / 1e6;
    let mut rows = Vec::new();
    let mut table = Table::new(vec![
        "background",
        "burst span",
        "congestion span",
        "ratio",
        "QM burst share",
    ]);

    for (label, closed_loop) in [
        ("CBR 9 Gbps (open loop)", false),
        ("AIMD TCP (closed loop)", true),
    ] {
        let mut pq_config = PrintQueueConfig::single_port(tw, 200);
        pq_config.control.poll_period = 2u64.millis();
        let mut pq = PrintQueue::new(pq_config);
        let mut sink = TelemetrySink::new();
        let mut sw = Switch::new(SwitchConfig::single_port(10.0, 32_768));

        if closed_loop {
            // TCP background: deep window cap ≈ standing-queue behaviour;
            // the burst is co-injected open loop.
            let mut config = AimdConfig::bulk(background, 0);
            config.ack_delay = 50_000;
            config.max_cwnd = 4_096.0;
            let mut hooks: Vec<&mut dyn QueueHooks> = vec![&mut pq];
            run_closed_loop(
                &mut sw,
                vec![config],
                burst_arrivals(burst, burst_start),
                duration,
                &mut sink,
                &mut hooks,
                2u64.millis(),
            );
        } else {
            use rand::rngs::SmallRng;
            use rand::SeedableRng;
            let mut rng = SmallRng::seed_from_u64(args.seed);
            let mut arrivals = Vec::new();
            pq_trace::scenario::cbr_stream(
                background,
                1500,
                9.0,
                0,
                duration,
                120,
                0,
                &mut rng,
                &mut arrivals,
            );
            arrivals.extend(burst_arrivals(burst, burst_start));
            arrivals.sort_by_key(|a| a.pkt.arrival);
            let mut hooks: Vec<&mut dyn QueueHooks> = vec![&mut pq, &mut sink];
            sw.run(arrivals, &mut hooks, 2u64.millis());
        }

        let truth = GroundTruth::new(&sink.records, 80);
        let span_ms = congestion_span(&truth, duration);

        // Queue monitor's burst share shortly after the burst ends.
        let probe_at = burst_start + 10u64.millis();
        let share = pq
            .analysis()
            .query_queue_monitor(0, probe_at)
            .map(|snap| {
                let counts = snap.culprit_counts();
                let b = counts.get(&burst).copied().unwrap_or(0) as f64;
                let total: u64 = counts.values().sum();
                if total == 0 {
                    0.0
                } else {
                    b / total as f64 * 100.0
                }
            })
            .unwrap_or(0.0);

        table.row(vec![
            label.to_string(),
            format!("{burst_span_ms:.1} ms"),
            format!("{span_ms:.1} ms"),
            format!("{:.1}x", span_ms / burst_span_ms),
            format!("{share:.0}%"),
        ]);
        rows.push(Row {
            background: label,
            burst_span_ms,
            congestion_span_ms: span_ms,
            ratio: span_ms / burst_span_ms,
            qm_burst_share_pct: share,
        });
    }
    table.print("Extension — §7.2 case study with reactive (TCP) background");
    println!(
        "\nAIMD refills the headroom the drain opens, so the burst-built queue\n\
         persists (paper: 76x with live TCP); CBR lets it drain monotonically.\n\
         Either way the queue monitor implicates the burst."
    );
    write_json("ext_tcp_casestudy", &rows);
}
