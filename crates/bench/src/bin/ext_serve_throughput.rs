//! Extension experiment: pq-serve query throughput under concurrency.
//!
//! Spills a checkpoint archive, serves it with the pq-serve daemon, and
//! drives it with concurrent clients issuing replay queries over a small
//! rotating set of intervals. Three scenarios:
//!
//! * `cache_on`  — default worker pool with the shared LRU decode cache:
//!   repeated intervals are answered from decoded segments;
//! * `cache_off` — same workload with the cache disabled, so every query
//!   re-reads and re-decodes its segments;
//! * `shedding`  — one slow worker and a tiny queue under double the
//!   client load: admission control must answer the overflow with
//!   explicit `Busy` frames while the admitted remainder completes.
//!
//! Reported per scenario: achieved qps, p50/p99 request latency, and the
//! ok/busy split. The observed cache hit-rate and shed-rate are stamped
//! into the `meta` block of `results/ext_serve_throughput.json`, since
//! they qualify every row in the file.

use pq_bench::report::{write_json_with_meta, CommonArgs, Table};
use pq_core::control::{AnalysisProgram, ControlConfig};
use pq_core::params::TimeWindowConfig;
use pq_packet::FlowId;
use pq_serve::{Client, ClientError, Request, ServeConfig, Server, Sources};
use pq_store::{SegmentPolicy, SharedStoreWriter, StoreWriter};
use pq_telemetry::{parse_prometheus, Telemetry};
use serde::{Serialize, Value};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const POLL_PERIOD: u64 = 4_096;
const PORT: u16 = 0;

#[derive(Serialize)]
struct Row {
    scenario: String,
    clients: usize,
    workers: usize,
    requests: usize,
    ok: usize,
    busy: usize,
    wall_ms: f64,
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
}

fn tw() -> TimeWindowConfig {
    TimeWindowConfig::new(6, 1, 10, 3)
}

/// Spill `n_checkpoints` polls of synthetic traffic into a `.pqa` file.
fn build_archive(n_checkpoints: u64, path: &PathBuf) {
    let writer = StoreWriter::new(Vec::new(), tw(), SegmentPolicy::default()).unwrap();
    let handle = SharedStoreWriter::new(writer);
    let mut ap = AnalysisProgram::new(
        tw(),
        ControlConfig {
            poll_period: POLL_PERIOD,
            max_snapshots: n_checkpoints as usize + 8,
        },
        &[PORT],
        64,
        1,
        110,
    );
    ap.set_spill(Box::new(handle.clone()));
    let mut t = 0u64;
    for i in 0..n_checkpoints {
        for p in 0..50u64 {
            let flow = FlowId(((i * 7 + p) % 96) as u32);
            ap.record_dequeue(PORT, flow, t + p * (POLL_PERIOD / 64));
        }
        t += POLL_PERIOD;
        ap.on_tick(t);
    }
    handle.with(|w| w.set_health(PORT, ap.health())).unwrap();
    std::fs::write(path, handle.finish().unwrap()).unwrap();
}

/// The rotating query mix: `k` narrow intervals spread over the archive.
fn intervals(n_checkpoints: u64, k: u64) -> Vec<(u64, u64)> {
    let span = n_checkpoints * POLL_PERIOD;
    (0..k)
        .map(|i| {
            let from = (span * i) / k;
            (from, from + 4 * POLL_PERIOD)
        })
        .collect()
}

struct Outcome {
    ok: usize,
    busy: usize,
    wall_ms: f64,
    latencies_ms: Vec<f64>,
    cache_hit_rate: f64,
    shed_total: f64,
}

/// Run `clients` threads of `per_client` replay queries each against a
/// freshly bound server, then read the server's own metrics before
/// shutting it down.
fn run_scenario(
    archive: &PathBuf,
    config: ServeConfig,
    clients: usize,
    per_client: usize,
    mix: &[(u64, u64)],
) -> Outcome {
    let plane = Telemetry::new();
    let server = Server::bind(
        ("127.0.0.1", 0),
        Sources {
            live: None,
            archive: Some(archive.clone()),
            rtt: Vec::new(),
        },
        config,
        &plane,
    )
    .unwrap();
    let handle = server.spawn().unwrap();
    let addr: SocketAddr = handle.addr();

    let start = Instant::now();
    let threads: Vec<_> = (0..clients)
        .map(|c| {
            let mix = mix.to_vec();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut ok = 0usize;
                let mut busy = 0usize;
                let mut latencies = Vec::with_capacity(per_client);
                for r in 0..per_client {
                    let (from, to) = mix[(c + r) % mix.len()];
                    let t0 = Instant::now();
                    match client.query(Request::Replay {
                        port: PORT,
                        from,
                        to,
                        d: 110,
                    }) {
                        Ok(res) => {
                            assert!(!res.estimates.counts.is_empty());
                            latencies.push(t0.elapsed().as_secs_f64() * 1e3);
                            ok += 1;
                        }
                        Err(ClientError::Busy { retry_after_ms }) => {
                            busy += 1;
                            std::thread::sleep(Duration::from_millis(u64::from(retry_after_ms)));
                        }
                        Err(e) => panic!("query failed: {e}"),
                    }
                }
                (ok, busy, latencies)
            })
        })
        .collect();
    let mut ok = 0;
    let mut busy = 0;
    let mut latencies_ms = Vec::new();
    for t in threads {
        let (o, b, l) = t.join().unwrap();
        ok += o;
        busy += b;
        latencies_ms.extend(l);
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;

    let mut probe = Client::connect(addr).unwrap();
    let metrics = parse_prometheus(&probe.metrics().unwrap()).unwrap();
    let sample = |name: &str| {
        metrics
            .iter()
            .find(|m| m.name == name)
            .map(|m| m.value)
            .unwrap_or(0.0)
    };
    let hits = sample("pq_serve_cache_hit_total");
    let misses = sample("pq_serve_cache_miss_total");
    let cache_hit_rate = if hits + misses > 0.0 {
        hits / (hits + misses)
    } else {
        0.0
    };
    let shed_total = sample("pq_serve_shed_total");
    drop(probe);
    handle.shutdown().unwrap();
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    Outcome {
        ok,
        busy,
        wall_ms,
        latencies_ms,
        cache_hit_rate,
        shed_total,
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn main() {
    let args = CommonArgs::parse();
    let (n_checkpoints, clients, per_client) = if args.quick {
        (512u64, 4usize, 40usize)
    } else {
        (2_048, 8, 120)
    };
    let mix = intervals(n_checkpoints, 8);
    let archive = std::env::temp_dir().join(format!(
        "pq_ext_serve_throughput_{}.pqa",
        std::process::id()
    ));
    eprintln!(
        "[ext_serve_throughput] spilling {n_checkpoints} checkpoints, \
         {clients} clients x {per_client} queries"
    );
    build_archive(n_checkpoints, &archive);

    let mut rows = Vec::new();
    let mut table = Table::new(vec![
        "scenario", "clients", "workers", "ok", "busy", "qps", "p50 ms", "p99 ms",
    ]);
    let mut push = |name: &str, workers: usize, n_clients: usize, out: &Outcome| {
        let requests = n_clients * per_client;
        let qps = out.ok as f64 / (out.wall_ms / 1e3);
        let p50 = percentile(&out.latencies_ms, 0.50);
        let p99 = percentile(&out.latencies_ms, 0.99);
        table.row(vec![
            name.to_string(),
            format!("{n_clients}"),
            format!("{workers}"),
            format!("{}", out.ok),
            format!("{}", out.busy),
            format!("{qps:.0}"),
            format!("{p50:.3}"),
            format!("{p99:.3}"),
        ]);
        rows.push(Row {
            scenario: name.to_string(),
            clients: n_clients,
            workers,
            requests,
            ok: out.ok,
            busy: out.busy,
            wall_ms: out.wall_ms,
            qps,
            p50_ms: p50,
            p99_ms: p99,
        });
    };

    let cache_on = run_scenario(&archive, ServeConfig::default(), clients, per_client, &mix);
    push(
        "cache_on",
        ServeConfig::default().workers,
        clients,
        &cache_on,
    );

    let cache_off = run_scenario(
        &archive,
        ServeConfig {
            cache_bytes: 0,
            ..ServeConfig::default()
        },
        clients,
        per_client,
        &mix,
    );
    push(
        "cache_off",
        ServeConfig::default().workers,
        clients,
        &cache_off,
    );

    let shed_clients = clients * 2;
    let shedding = run_scenario(
        &archive,
        ServeConfig {
            workers: 1,
            queue_cap: 2,
            work_delay: Duration::from_millis(1),
            ..ServeConfig::default()
        },
        shed_clients,
        per_client,
        &mix,
    );
    push("shedding", 1, shed_clients, &shedding);

    let shed_attempts = (shed_clients * per_client) as f64;
    let shed_rate = shedding.busy as f64 / shed_attempts;
    assert!(
        shedding.busy > 0,
        "the overload scenario must shed at least once"
    );
    assert_eq!(
        shedding.busy as f64, shedding.shed_total,
        "every Busy answer must be counted by pq_serve_shed_total"
    );

    table.print("Extension — pq-serve throughput: cache on/off and shedding");
    println!(
        "cache hit-rate {:.1}% (on) vs {:.1}% (off); shed-rate {:.1}% under overload",
        cache_on.cache_hit_rate * 100.0,
        cache_off.cache_hit_rate * 100.0,
        shed_rate * 100.0
    );
    write_json_with_meta(
        "ext_serve_throughput",
        &rows,
        false,
        vec![
            (
                "cache_hit_rate".to_string(),
                Value::F64(cache_on.cache_hit_rate),
            ),
            ("shed_rate".to_string(), Value::F64(shed_rate)),
        ],
    );
    let _ = std::fs::remove_file(&archive);
}
