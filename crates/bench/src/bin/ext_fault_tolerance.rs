//! Extension experiment: diagnosis accuracy under control-plane faults.
//!
//! The paper assumes the analysis program freezes and reads every register
//! set at least once per t_set (§6.2). This binary breaks that assumption
//! on purpose: it sweeps the per-read failure probability, lets the
//! retry/backoff machinery fight back, and measures what survives — direct
//! culprit precision/recall across victims, the fraction of queries the
//! control plane itself flags as degraded, and the health counters
//! (retries, coverage gaps, lost history).

use pq_bench::eval::{victim_truth, QueryAccuracy};
use pq_bench::harness::{run, RunConfig};
use pq_bench::report::{write_json, CommonArgs, Table};
use pq_bench::sweep::{sweep_seeds, Aggregate};
use pq_bench::victims::sample_victims;
use pq_core::faults::{FaultConfig, FaultProfile, LatencyModel};
use pq_core::metrics::{self, ControlHealth};
use pq_core::params::TimeWindowConfig;
use pq_core::snapshot::QueryInterval;
use pq_packet::NanosExt;
use pq_trace::workload::{Workload, WorkloadKind};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    read_failure_prob: f64,
    precision_mean: f64,
    precision_std: f64,
    recall_mean: f64,
    recall_std: f64,
    degraded_query_frac: f64,
    polls_attempted: u64,
    polls_failed: u64,
    polls_retried: u64,
    checkpoints_dropped: u64,
    coverage_gaps: u64,
    gap_ms: f64,
    backoff_ceiling_hits: u64,
    seeds: usize,
}

struct SeedOutcome {
    precision: f64,
    recall: f64,
    degraded_frac: f64,
    health: ControlHealth,
}

fn run_one(rate: f64, seed: u64, duration: u64, per_bucket: usize) -> SeedOutcome {
    // Small windows (t_set ≈ 459 µs) so a run spans ~100 set periods and
    // the once-per-t_set poll cadence is genuinely load-bearing: a failed
    // poll whose retry lands a full period later is a real coverage gap.
    let tw = TimeWindowConfig::new(6, 1, 10, 3);
    let trace = Workload::paper_testbed(WorkloadKind::Uw, duration, seed).generate();
    let mut config = RunConfig::new(tw, 110);
    if rate > 0.0 {
        let profile = FaultProfile {
            read_failure_prob: rate,
            // A small fixed read latency keeps the spare-copy occupancy
            // path exercised without dominating the sweep variable.
            read_latency: LatencyModel::Fixed(2_000),
            ..FaultProfile::none()
        };
        config = config.with_faults(FaultConfig::new(seed ^ 0x5eed_f417).with_base(profile));
    }
    let mut out = run(&config, &trace);
    let victims = sample_victims(&out.truth, per_bucket, seed);
    let mut accs = Vec::with_capacity(victims.len());
    let mut degraded = 0usize;
    for v in &victims {
        let truth = victim_truth(&out, v);
        let interval = QueryInterval::new(v.record.meta.enq_timestamp, v.record.deq_timestamp());
        let est = out
            .printqueue
            .analysis_mut()
            .query_time_windows(0, interval);
        if est.degraded {
            degraded += 1;
        }
        accs.push(QueryAccuracy {
            bucket: v.bucket,
            pr: metrics::precision_recall(&est.counts, &truth),
        });
    }
    let ps: Vec<f64> = accs.iter().map(|a| a.pr.precision).collect();
    let rs: Vec<f64> = accs.iter().map(|a| a.pr.recall).collect();
    SeedOutcome {
        precision: metrics::mean(&ps),
        recall: metrics::mean(&rs),
        degraded_frac: if victims.is_empty() {
            0.0
        } else {
            degraded as f64 / victims.len() as f64
        },
        health: out.printqueue.analysis().health(),
    }
}

fn main() {
    let args = CommonArgs::parse();
    let (duration, n_seeds, per_bucket) = if args.quick {
        (20u64.millis(), 3usize, 10usize)
    } else {
        (60u64.millis(), 6, 30)
    };
    let rates: &[f64] = if args.quick {
        &[0.0, 0.1, 0.2, 0.5]
    } else {
        &[0.0, 0.05, 0.1, 0.2, 0.35, 0.5]
    };
    let seeds: Vec<u64> = (args.seed..args.seed + n_seeds as u64).collect();
    let workers = std::thread::available_parallelism().map_or(2, |n| n.get().min(8));
    eprintln!(
        "[ext_fault_tolerance] UW × {n_seeds} seeds × {} ms × {} failure rates, {workers} workers",
        duration / 1_000_000,
        rates.len()
    );

    let mut rows = Vec::new();
    let mut table = Table::new(vec![
        "p(fail)",
        "precision",
        "recall",
        "degraded",
        "retries",
        "gaps",
        "lost ms",
    ]);
    for &rate in rates {
        let per_seed = sweep_seeds(&seeds, workers, |seed| {
            run_one(rate, seed, duration, per_bucket)
        });
        let p = Aggregate::of(&per_seed.iter().map(|s| s.precision).collect::<Vec<_>>());
        let r = Aggregate::of(&per_seed.iter().map(|s| s.recall).collect::<Vec<_>>());
        let degraded_frac =
            per_seed.iter().map(|s| s.degraded_frac).sum::<f64>() / per_seed.len().max(1) as f64;
        let mut health = ControlHealth::default();
        for s in &per_seed {
            health.merge(&s.health);
        }
        let gap_ms = health.gap_ns as f64 / 1e6;
        table.row(vec![
            format!("{rate:.2}"),
            p.display(),
            r.display(),
            format!("{:.0}%", degraded_frac * 100.0),
            format!("{}", health.polls_retried),
            format!("{}", health.coverage_gaps),
            format!("{gap_ms:.2}"),
        ]);
        rows.push(Row {
            read_failure_prob: rate,
            precision_mean: p.mean,
            precision_std: p.std_dev,
            recall_mean: r.mean,
            recall_std: r.std_dev,
            degraded_query_frac: degraded_frac,
            polls_attempted: health.polls_attempted,
            polls_failed: health.polls_failed,
            polls_retried: health.polls_retried,
            checkpoints_dropped: health.checkpoints_dropped,
            coverage_gaps: health.coverage_gaps,
            gap_ms,
            backoff_ceiling_hits: health.backoff_ceiling_hits,
            seeds: seeds.len(),
        });
    }
    table.print("Extension — diagnosis accuracy vs. control-plane read-failure probability (UW)");
    write_json("ext_fault_tolerance", &rows);
}
