//! Extension experiment: per-packet cost of the observability plane.
//!
//! Replays the same workload through the switch + PrintQueue stack in
//! three modes — no telemetry attached, telemetry attached with span
//! tracing disabled (the production default), and fully on — and reports
//! the per-packet wall time of each. The headline acceptance number is
//! the *attached-but-disabled* overhead: registering the plane must cost
//! under 2% per packet, because the registry handles are pre-resolved
//! atomics and the span path is a single relaxed load when tracing is
//! off. Rounds are interleaved (one rep of each mode per round) so clock
//! drift and cache warmth hit all modes equally.

use pq_bench::report::{write_json_with, CommonArgs, Table};
use pq_core::params::TimeWindowConfig;
use pq_core::printqueue::{PrintQueue, PrintQueueConfig};
use pq_switch::{QueueHooks, Switch, SwitchConfig};
use pq_telemetry::Telemetry;
use pq_trace::workload::{GeneratedTrace, Workload, WorkloadKind};
use serde::Serialize;
use std::time::Instant;

const MIN_PKT_TX_DELAY: u64 = 110;

#[derive(Clone, Copy, PartialEq, Debug)]
enum Mode {
    /// Seed behavior: no telemetry plane anywhere.
    Detached,
    /// Plane attached everywhere, span tracing off (the default).
    AttachedOff,
    /// Plane attached, span tracing on.
    AttachedOn,
}

fn tw() -> TimeWindowConfig {
    // The paper's WS/DM data-plane configuration (§7.1).
    TimeWindowConfig::new(6, 1, 10, 3)
}

/// One full replay; returns wall nanoseconds per packet.
fn run_once(trace: &GeneratedTrace, mode: Mode) -> f64 {
    let tw = tw();
    let mut pq = PrintQueue::new(PrintQueueConfig::single_port(tw, MIN_PKT_TX_DELAY));
    let mut sw = Switch::new(SwitchConfig::single_port(10.0, 32_768));
    // No spill store here: checkpoint spilling is archive work that the
    // detached mode never does either — attaching it would charge the
    // codec's encode cost to the telemetry plane.
    if mode != Mode::Detached {
        let plane = Telemetry::new();
        plane.set_tracing(mode == Mode::AttachedOn);
        pq.set_telemetry(&plane);
        sw.set_telemetry(&plane);
    }
    let start = Instant::now();
    {
        let mut hooks: Vec<&mut dyn QueueHooks> = vec![&mut pq];
        sw.run(trace.arrivals.iter().copied(), &mut hooks, tw.set_period());
    }
    let elapsed_ns = start.elapsed().as_nanos() as f64;
    elapsed_ns / trace.packets() as f64
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

#[derive(Serialize)]
struct Results {
    packets: u64,
    reps: usize,
    detached_ns_per_pkt: f64,
    attached_off_ns_per_pkt: f64,
    attached_on_ns_per_pkt: f64,
    off_overhead_pct: f64,
    on_overhead_pct: f64,
    off_within_2pct: bool,
}

fn main() {
    let args = CommonArgs::parse();
    let (duration_ms, reps): (u64, usize) = if args.quick { (5, 3) } else { (20, 7) };
    let trace =
        Workload::paper_testbed(WorkloadKind::Ws, duration_ms * 1_000_000, args.seed).generate();
    eprintln!(
        "[ext_telemetry_overhead] {} packets, median of {reps} interleaved reps",
        trace.packets()
    );

    // Warmup rep of each mode (first-touch page faults, branch training).
    for mode in [Mode::Detached, Mode::AttachedOff, Mode::AttachedOn] {
        run_once(&trace, mode);
    }
    let mut detached = Vec::with_capacity(reps);
    let mut off = Vec::with_capacity(reps);
    let mut on = Vec::with_capacity(reps);
    for _ in 0..reps {
        detached.push(run_once(&trace, Mode::Detached));
        off.push(run_once(&trace, Mode::AttachedOff));
        on.push(run_once(&trace, Mode::AttachedOn));
    }
    let detached_ns = median(&mut detached);
    let off_ns = median(&mut off);
    let on_ns = median(&mut on);
    let off_pct = (off_ns / detached_ns - 1.0) * 100.0;
    let on_pct = (on_ns / detached_ns - 1.0) * 100.0;

    let mut table = Table::new(vec!["mode", "ns/pkt", "overhead"]);
    table.row(vec![
        "detached".to_string(),
        format!("{detached_ns:.1}"),
        "-".to_string(),
    ]);
    table.row(vec![
        "attached, tracing off".to_string(),
        format!("{off_ns:.1}"),
        format!("{off_pct:+.2}%"),
    ]);
    table.row(vec![
        "attached, tracing on".to_string(),
        format!("{on_ns:.1}"),
        format!("{on_pct:+.2}%"),
    ]);
    table.print("Extension — observability plane per-packet overhead");
    let results = Results {
        packets: trace.packets() as u64,
        reps,
        detached_ns_per_pkt: detached_ns,
        attached_off_ns_per_pkt: off_ns,
        attached_on_ns_per_pkt: on_ns,
        off_overhead_pct: off_pct,
        on_overhead_pct: on_pct,
        off_within_2pct: off_pct < 2.0,
    };
    // This bench deliberately runs with telemetry attached, so the meta
    // stamp must not claim the plane was off.
    write_json_with("ext_telemetry_overhead", &results, false);
    if !results.off_within_2pct {
        eprintln!("WARNING: disabled-telemetry overhead {off_pct:.2}% exceeds the 2% budget");
    }
}
