//! Extension experiment: cross-seed stability of the Table 2 headline.
//!
//! One trace is one draw from a heavy-tailed process; this binary re-runs
//! the PrintQueue-vs-baselines comparison across several seeds in parallel
//! and reports mean ± std for each system, confirming the accuracy gap is
//! not a single-trace artifact.

use pq_bench::eval::{eval_async, eval_baseline, overall};
use pq_bench::harness::{run, RunConfig};
use pq_bench::report::{write_json, CommonArgs, Table};
use pq_bench::sweep::{sweep_seeds, Aggregate};
use pq_bench::victims::sample_victims;
use pq_core::params::TimeWindowConfig;
use pq_packet::NanosExt;
use pq_trace::workload::{Workload, WorkloadKind};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    system: &'static str,
    precision_mean: f64,
    precision_std: f64,
    recall_mean: f64,
    recall_std: f64,
    seeds: usize,
}

fn main() {
    let args = CommonArgs::parse();
    let (duration, n_seeds, per_bucket) = if args.quick {
        (20u64.millis(), 4usize, 15usize)
    } else {
        (60u64.millis(), 8, 40)
    };
    let seeds: Vec<u64> = (args.seed..args.seed + n_seeds as u64).collect();
    eprintln!(
        "[ext_seed_sweep] UW × {n_seeds} seeds × {} ms, {} workers",
        duration / 1_000_000,
        std::thread::available_parallelism().map_or(2, |n| n.get().min(8))
    );

    let workers = std::thread::available_parallelism().map_or(2, |n| n.get().min(8));
    let tw = TimeWindowConfig::UW;
    // (pq_p, pq_r, hp_p, hp_r, fr_p, fr_r) per seed.
    let per_seed = sweep_seeds(&seeds, workers, |seed| {
        let trace = Workload::paper_testbed(WorkloadKind::Uw, duration, seed).generate();
        let mut out = run(&RunConfig::new(tw, 110).with_baselines(), &trace);
        let victims = sample_victims(&out.truth, per_bucket, seed);
        let pq = overall(&eval_async(&mut out, &victims));
        let b = out.baselines.as_ref().expect("baselines attached");
        let hp = overall(&eval_baseline(&out, &b.hp_periods, &victims));
        let fr = overall(&eval_baseline(&out, &b.fr_periods, &victims));
        [
            pq.precision,
            pq.recall,
            hp.precision,
            hp.recall,
            fr.precision,
            fr.recall,
        ]
    });

    let col = |i: usize| -> Vec<f64> { per_seed.iter().map(|r| r[i]).collect() };
    let systems: [(&'static str, usize); 3] =
        [("PrintQueue", 0), ("HashPipe", 2), ("FlowRadar", 4)];
    let mut table = Table::new(vec!["system", "precision", "recall"]);
    let mut rows = Vec::new();
    for (name, base) in systems {
        let p = Aggregate::of(&col(base));
        let r = Aggregate::of(&col(base + 1));
        table.row(vec![name.to_string(), p.display(), r.display()]);
        rows.push(Row {
            system: name,
            precision_mean: p.mean,
            precision_std: p.std_dev,
            recall_mean: r.mean,
            recall_std: r.std_dev,
            seeds: seeds.len(),
        });
    }
    table.print(&format!(
        "Extension — Table 2 across {} seeds (UW, mean ± std)",
        seeds.len()
    ));
    write_json("ext_seed_sweep", &rows);
}
