//! Baseline data-plane update costs, for context next to `per_packet.rs`.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use pq_baselines::{FlowRadar, HashPipe, LinearStore};
use pq_packet::ipv4::Address;
use pq_packet::{FlowId, FlowKey};

fn keys(n: u16) -> Vec<FlowKey> {
    (0..n)
        .map(|i| {
            FlowKey::tcp(
                Address::new(10, (i / 250) as u8, (i % 250) as u8, 1),
                1024 + i,
                Address::new(10, 200, 0, 1),
                80,
            )
        })
        .collect()
}

fn bench_baselines(c: &mut Criterion) {
    let keys = keys(2048);
    let mut group = c.benchmark_group("baseline_record");
    group.throughput(Throughput::Elements(1));

    let mut hp = HashPipe::new(5, 4096);
    let mut i = 0usize;
    group.bench_function("hashpipe", |b| {
        b.iter(|| {
            i = (i + 1) % keys.len();
            hp.record(black_box(FlowId(i as u32)), black_box(&keys[i]));
        })
    });

    let mut fr = FlowRadar::paper_parity();
    let mut j = 0usize;
    group.bench_function("flowradar", |b| {
        b.iter(|| {
            j = (j + 1) % keys.len();
            fr.record(black_box(FlowId(j as u32)), black_box(&keys[j]));
        })
    });

    let mut linear = LinearStore::new();
    let mut ts = 0u64;
    group.bench_function("linear_store", |b| {
        b.iter(|| {
            ts += 110;
            linear.record(black_box(FlowId((ts % 2048) as u32)), black_box(ts));
        })
    });
    group.finish();

    // FlowRadar decode cost, the control-plane side.
    let mut group = c.benchmark_group("flowradar_decode");
    let mut fr = FlowRadar::paper_parity();
    for (i, key) in keys.iter().take(900).enumerate() {
        for _ in 0..3 {
            fr.record(FlowId(i as u32), key);
        }
    }
    group.bench_function("decode_900_flows", |b| b.iter(|| black_box(fr.decode())));
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
