//! Analysis-program query throughput.
//!
//! §7.1: "Our Python analysis program front end can execute ~100 queries
//! per second." This bench measures the Rust analysis program's query rate
//! against a realistic checkpoint store (the reproduction is typically
//! several orders of magnitude faster — recorded in EXPERIMENTS.md).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use pq_core::control::{AnalysisProgram, ControlConfig};
use pq_core::params::TimeWindowConfig;
use pq_core::snapshot::QueryInterval;
use pq_packet::FlowId;

/// Build an analysis program with several populated checkpoints.
fn populated_program(tw: TimeWindowConfig) -> AnalysisProgram {
    let mut ap = AnalysisProgram::new(
        tw,
        ControlConfig::per_set_period(&tw, 64),
        &[0],
        32 * 1024,
        1,
        110,
    );
    let set_period = tw.set_period();
    let mut ts = 0u64;
    for poll in 1..=6u64 {
        while ts < poll * set_period {
            ap.record_dequeue(0, FlowId((ts % 2048) as u32), ts);
            ts += 110;
        }
        ap.on_tick(poll * set_period);
    }
    ap
}

fn bench_queries(c: &mut Criterion) {
    let tw = TimeWindowConfig::UW;
    let ap = populated_program(tw);
    let set_period = tw.set_period();

    let mut group = c.benchmark_group("analysis_queries");
    group.throughput(Throughput::Elements(1));

    // A microburst-scale victim interval (~100 µs) in recent history.
    group.bench_function("short_interval", |b| {
        let from = 5 * set_period + 1_000_000;
        b.iter(|| black_box(ap.query_time_windows(0, QueryInterval::new(from, from + 100_000))))
    });

    // A deep-queue victim interval (~1.3 ms).
    group.bench_function("long_interval", |b| {
        let from = 4 * set_period + 500_000;
        b.iter(|| black_box(ap.query_time_windows(0, QueryInterval::new(from, from + 1_300_000))))
    });

    // A whole-regime indirect-culprit query spanning checkpoints.
    group.bench_function("regime_interval", |b| {
        b.iter(|| {
            black_box(ap.query_time_windows(0, QueryInterval::new(set_period, 4 * set_period)))
        })
    });

    // Queue-monitor original-culprit query.
    group.bench_function("queue_monitor", |b| {
        b.iter(|| {
            let snap = ap.query_queue_monitor(0, 3 * set_period).unwrap();
            black_box(snap.original_culprits())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
