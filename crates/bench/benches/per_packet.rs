//! Per-packet data-plane hot path micro-benchmarks.
//!
//! On the Tofino the per-packet cost is fixed by the pipeline (time windows
//! need 4 preparation stages + 2 per window; the queue monitor 6, §7). In
//! software the analogous number is nanoseconds per update; these benches
//! establish that the simulator sustains the packet rates the experiments
//! need (UW pushes ~12 Mpps through the hot path).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use pq_core::params::TimeWindowConfig;
use pq_core::queue_monitor::QueueMonitor;
use pq_core::time_windows::TimeWindowSet;
use pq_packet::FlowId;

fn bench_time_windows(c: &mut Criterion) {
    let mut group = c.benchmark_group("time_windows_record");
    group.throughput(Throughput::Elements(1));
    for (label, tw) in [
        ("uw_2_12_4", TimeWindowConfig::UW),
        ("wsdm_1_12_4", TimeWindowConfig::WS_DM),
        ("deep_2_12_8", TimeWindowConfig::new(6, 2, 12, 8)),
    ] {
        let mut set = TimeWindowSet::new(tw);
        let mut ts = 0u64;
        group.bench_function(label, |b| {
            b.iter(|| {
                ts += 110;
                set.record(black_box(FlowId((ts % 4096) as u32)), black_box(ts));
            })
        });
    }
    group.finish();
}

fn bench_queue_monitor(c: &mut Criterion) {
    let mut group = c.benchmark_group("queue_monitor");
    group.throughput(Throughput::Elements(1));
    let mut qm = QueueMonitor::new(32 * 1024, 1);
    let mut depth = 0u32;
    let mut up = true;
    group.bench_function("enqueue_dequeue_cycle", |b| {
        b.iter(|| {
            if up {
                depth += 2;
                qm.on_enqueue(black_box(FlowId(depth % 97)), black_box(depth), 0);
                if depth > 20_000 {
                    up = false;
                }
            } else {
                depth -= 2;
                qm.on_dequeue(black_box(FlowId(depth % 97)), black_box(depth), 0);
                if depth < 2 {
                    up = true;
                }
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_time_windows, bench_queue_monitor);
criterion_main!(benches);
