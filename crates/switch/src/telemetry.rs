//! Registry instrumentation for the switch.
//!
//! [`SwitchTelemetry`] is resolved once when a [`crate::Switch`] is handed
//! a [`Telemetry`] plane: every per-port counter, gauge, and histogram
//! handle is looked up at install time, so the per-packet path touches
//! only pre-resolved `Arc`-backed atomics — no map lookups, no locks, no
//! allocation. An uninstrumented switch (the default) pays a single
//! `Option` check per event.

use pq_telemetry::{names, Counter, Gauge, Histogram, Telemetry};

/// Pre-resolved metric handles for one egress port.
pub(crate) struct PortInstruments {
    pub enqueued: Counter,
    pub dequeued: Counter,
    pub dropped: Counter,
    pub tx_bytes: Counter,
    pub residence_ns: Histogram,
    pub max_depth_cells: Gauge,
}

/// Everything the switch needs to record into a telemetry plane.
pub(crate) struct SwitchTelemetry {
    pub plane: Telemetry,
    pub ports: Vec<PortInstruments>,
}

impl SwitchTelemetry {
    /// Resolve handles for `num_ports` ports, labelled `port="<i>"`.
    pub fn new(plane: &Telemetry, num_ports: usize) -> SwitchTelemetry {
        let reg = plane.registry();
        let ports = (0..num_ports)
            .map(|i| {
                let port = i.to_string();
                let labels: &[(&str, &str)] = &[("port", &port)];
                PortInstruments {
                    enqueued: reg.counter(names::SWITCH_ENQUEUED, labels),
                    dequeued: reg.counter(names::SWITCH_DEQUEUED, labels),
                    dropped: reg.counter(names::SWITCH_DROPPED, labels),
                    tx_bytes: reg.counter(names::SWITCH_TX_BYTES, labels),
                    residence_ns: reg.histogram(names::SWITCH_RESIDENCE_NS, labels),
                    max_depth_cells: reg.gauge(names::SWITCH_MAX_DEPTH_CELLS, labels),
                }
            })
            .collect();
        SwitchTelemetry {
            plane: plane.clone(),
            ports,
        }
    }

    /// Carry counts accumulated before installation into the registry so
    /// registry totals always equal [`crate::PortStats`] totals, however
    /// late the plane is attached.
    pub fn seed(&self, port: usize, stats: &crate::stats::PortStats) {
        let inst = &self.ports[port];
        inst.enqueued.add(stats.enqueued);
        inst.dequeued.add(stats.dequeued);
        inst.dropped.add(stats.dropped);
        inst.tx_bytes.add(stats.tx_bytes);
        inst.max_depth_cells
            .set_max(u64::from(stats.max_depth_cells));
    }
}
