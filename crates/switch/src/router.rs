//! Ingress forwarding: a match-action table from flow to egress port.
//!
//! The experiments usually pre-address packets (the trace generator plays
//! ingress), but byte-level pipelines — pcap imports, the examples that
//! parse real frames — need the switch to *decide* the egress port. This is
//! the L3/ECMP-ish ingress stage: exact-match on the 5-tuple, then
//! longest-prefix-style match on the destination address, then an optional
//! hash-spread default group (ECMP), then drop.

use pq_packet::{FlowId, FlowKey};
use std::collections::HashMap;

/// Forwarding decision sources, in match priority order.
#[derive(Debug, Clone)]
pub struct Router {
    /// Exact 5-tuple entries.
    by_flow: HashMap<FlowKey, u16>,
    /// Destination /24 entries (first three octets).
    by_dst_net: HashMap<[u8; 3], u16>,
    /// ECMP group used when nothing matches (empty = drop).
    default_group: Vec<u16>,
}

impl Router {
    /// A router that drops everything unmatched.
    pub fn new() -> Router {
        Router {
            by_flow: HashMap::new(),
            by_dst_net: HashMap::new(),
            default_group: Vec::new(),
        }
    }

    /// A router that sends everything unmatched to one port.
    pub fn with_default(port: u16) -> Router {
        Router {
            by_flow: HashMap::new(),
            by_dst_net: HashMap::new(),
            default_group: vec![port],
        }
    }

    /// Install an exact 5-tuple route.
    pub fn add_flow_route(&mut self, key: FlowKey, port: u16) {
        self.by_flow.insert(key, port);
    }

    /// Install a destination /24 route.
    pub fn add_dst_net_route(&mut self, net: [u8; 3], port: u16) {
        self.by_dst_net.insert(net, port);
    }

    /// Set the ECMP default group (hash-spread across these ports).
    pub fn set_default_group(&mut self, ports: Vec<u16>) {
        self.default_group = ports;
    }

    /// Route a packet by its tuple. `None` = drop at ingress.
    pub fn route(&self, key: &FlowKey) -> Option<u16> {
        if let Some(port) = self.by_flow.get(key) {
            return Some(*port);
        }
        if let Some(port) = self.by_dst_net.get(&[key.dst[0], key.dst[1], key.dst[2]]) {
            return Some(*port);
        }
        if self.default_group.is_empty() {
            return None;
        }
        // ECMP: flow-signature hash keeps a flow on one path.
        let idx = key.signature() as usize % self.default_group.len();
        Some(self.default_group[idx])
    }

    /// Number of installed exact routes.
    pub fn flow_routes(&self) -> usize {
        self.by_flow.len()
    }
}

impl Default for Router {
    fn default() -> Self {
        Router::new()
    }
}

/// A routed arrival stream: resolve ports for interned flows via a
/// resolver closure (usually `FlowTable::resolve`). Returns the routed
/// arrivals and how many were dropped at ingress.
pub fn route_arrivals<F>(
    arrivals: impl IntoIterator<Item = crate::Arrival>,
    router: &Router,
    resolve: F,
) -> (Vec<crate::Arrival>, usize)
where
    F: Fn(FlowId) -> Option<FlowKey>,
{
    let mut routed = Vec::new();
    let mut dropped = 0usize;
    for mut a in arrivals {
        match resolve(a.pkt.flow).and_then(|key| router.route(&key)) {
            Some(port) => {
                a.port = port;
                routed.push(a);
            }
            None => dropped += 1,
        }
    }
    (routed, dropped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pq_packet::ipv4::Address;

    fn key(dst_last: u8, sport: u16) -> FlowKey {
        FlowKey::tcp(
            Address::new(10, 0, 0, 1),
            sport,
            Address::new(10, 200, 7, dst_last),
            80,
        )
    }

    #[test]
    fn exact_match_wins_over_net_and_default() {
        let mut r = Router::with_default(9);
        r.add_dst_net_route([10, 200, 7], 5);
        r.add_flow_route(key(1, 1000), 3);
        assert_eq!(r.route(&key(1, 1000)), Some(3)); // exact
        assert_eq!(r.route(&key(1, 1001)), Some(5)); // /24
        assert_eq!(
            r.route(&FlowKey::tcp(
                Address::new(10, 0, 0, 1),
                1,
                Address::new(1, 2, 3, 4),
                80
            )),
            Some(9) // default
        );
    }

    #[test]
    fn no_default_means_drop() {
        let r = Router::new();
        assert_eq!(r.route(&key(1, 1)), None);
    }

    #[test]
    fn ecmp_is_flow_sticky_and_spreads() {
        let mut r = Router::new();
        r.set_default_group(vec![0, 1, 2, 3]);
        let mut used = std::collections::HashSet::new();
        for sport in 0..64u16 {
            let k = key(1, sport);
            let first = r.route(&k).unwrap();
            // Stickiness: same flow always gets the same port.
            for _ in 0..3 {
                assert_eq!(r.route(&k), Some(first));
            }
            used.insert(first);
        }
        assert!(used.len() >= 3, "ECMP barely spread: {used:?}");
    }

    #[test]
    fn route_arrivals_drops_unroutable() {
        use pq_packet::{FlowTable, SimPacket};
        let mut table = FlowTable::new();
        let routable = table.intern(key(1, 1));
        let unroutable = table.intern(FlowKey::tcp(
            Address::new(10, 0, 0, 2),
            2,
            Address::new(99, 99, 99, 99),
            80,
        ));
        let mut r = Router::new();
        r.add_dst_net_route([10, 200, 7], 4);
        let arrivals = vec![
            crate::Arrival::new(SimPacket::new(routable, 100, 0), 0),
            crate::Arrival::new(SimPacket::new(unroutable, 100, 1), 0),
        ];
        let (routed, dropped) = route_arrivals(arrivals, &r, |id| table.resolve(id).copied());
        assert_eq!(routed.len(), 1);
        assert_eq!(routed[0].port, 4);
        assert_eq!(dropped, 1);
    }
}
