//! Packet schedulers for egress ports.
//!
//! PrintQueue's definitions of direct/indirect culprits (§2 of the paper) are
//! "independent of the packet scheduling algorithm", and its time windows
//! index on dequeue timestamps only, so they work under non-FIFO policies.
//! To test that claim this crate provides three schedulers:
//!
//! * [`Fifo`] — single first-in-first-out queue (the default everywhere the
//!   paper's quantitative evaluation runs),
//! * [`StrictPriority`] — N FIFO queues, lowest queue index always wins; the
//!   motivating example of Figure 1 (a low-priority victim starved by
//!   high-priority traffic),
//! * [`Drr`] — deficit round-robin over N queues, a common data-center
//!   fair-queueing building block.

use pq_packet::SimPacket;
use std::collections::VecDeque;

/// Which scheduler an egress port runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// One FIFO queue.
    Fifo,
    /// `n` FIFO queues, queue 0 has absolute priority over queue 1, etc.
    /// Packets map to queues by their `priority` field (clamped to `n - 1`).
    StrictPriority { queues: u8 },
    /// Deficit round-robin over `queues` queues with per-round `quantum`
    /// bytes per queue.
    Drr { queues: u8, quantum: u32 },
}

impl SchedulerKind {
    /// Instantiate the scheduler state.
    pub fn build(self) -> Box<dyn Scheduler> {
        match self {
            SchedulerKind::Fifo => Box::new(Fifo::new()),
            SchedulerKind::StrictPriority { queues } => {
                Box::new(StrictPriority::new(queues.max(1)))
            }
            SchedulerKind::Drr { queues, quantum } => {
                Box::new(Drr::new(queues.max(1), quantum.max(1)))
            }
        }
    }
}

/// The queue discipline behind one egress port.
///
/// Depth accounting (cells, tail drop) lives in the traffic manager; the
/// scheduler only orders packets. Multi-queue disciplines additionally
/// expose which of their internal queues a packet maps to, so the traffic
/// manager can maintain per-queue depths (the paper tracks "multiple
/// queues ... individually", §5).
pub trait Scheduler: std::fmt::Debug {
    /// Admit a packet.
    fn enqueue(&mut self, pkt: SimPacket);
    /// Select and remove the next packet to transmit.
    fn dequeue(&mut self) -> Option<SimPacket>;
    /// Total queued packets.
    fn len(&self) -> usize;
    /// True when no packets are queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Number of internal queues.
    fn num_queues(&self) -> u8 {
        1
    }
    /// Which internal queue `pkt` maps to (0 for single-queue disciplines).
    fn queue_for(&self, _pkt: &SimPacket) -> u8 {
        0
    }
}

/// Single FIFO queue.
#[derive(Debug, Default)]
pub struct Fifo {
    queue: VecDeque<SimPacket>,
}

impl Fifo {
    /// Create an empty FIFO.
    pub fn new() -> Fifo {
        Fifo::default()
    }
}

impl Scheduler for Fifo {
    fn enqueue(&mut self, pkt: SimPacket) {
        self.queue.push_back(pkt);
    }

    fn dequeue(&mut self) -> Option<SimPacket> {
        self.queue.pop_front()
    }

    fn len(&self) -> usize {
        self.queue.len()
    }
}

/// Strict-priority scheduling over multiple FIFO queues.
#[derive(Debug)]
pub struct StrictPriority {
    queues: Vec<VecDeque<SimPacket>>,
}

impl StrictPriority {
    /// Create with `n` priority levels (0 = highest).
    pub fn new(n: u8) -> StrictPriority {
        StrictPriority {
            queues: (0..n).map(|_| VecDeque::new()).collect(),
        }
    }

    fn clamp_queue(&self, priority: u8) -> usize {
        usize::from(priority).min(self.queues.len() - 1)
    }
}

impl Scheduler for StrictPriority {
    fn enqueue(&mut self, pkt: SimPacket) {
        let q = self.clamp_queue(pkt.priority);
        self.queues[q].push_back(pkt);
    }

    fn dequeue(&mut self) -> Option<SimPacket> {
        self.queues.iter_mut().find_map(|q| q.pop_front())
    }

    fn len(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    fn num_queues(&self) -> u8 {
        self.queues.len() as u8
    }

    fn queue_for(&self, pkt: &SimPacket) -> u8 {
        self.clamp_queue(pkt.priority) as u8
    }
}

/// Deficit round-robin.
#[derive(Debug)]
pub struct Drr {
    queues: Vec<VecDeque<SimPacket>>,
    deficits: Vec<u64>,
    quantum: u32,
    /// Queue the round-robin pointer currently rests on.
    current: usize,
}

impl Drr {
    /// Create with `n` queues and `quantum` bytes added per visit.
    pub fn new(n: u8, quantum: u32) -> Drr {
        Drr {
            queues: (0..n).map(|_| VecDeque::new()).collect(),
            deficits: vec![0; usize::from(n)],
            quantum,
            current: 0,
        }
    }

    fn clamp_queue(&self, priority: u8) -> usize {
        usize::from(priority).min(self.queues.len() - 1)
    }
}

impl Scheduler for Drr {
    fn enqueue(&mut self, pkt: SimPacket) {
        let q = self.clamp_queue(pkt.priority);
        self.queues[q].push_back(pkt);
    }

    fn dequeue(&mut self) -> Option<SimPacket> {
        if self.len() == 0 {
            return None;
        }
        // Each full sweep adds a quantum to every backlogged queue, so a
        // head packet of L bytes becomes sendable within ⌈L/quantum⌉
        // sweeps; the bound below is a defensive cap, not the expectation.
        let max_iters = self.queues.len()
            * (2 + usize::try_from(u32::MAX / self.quantum.max(1))
                .unwrap_or(usize::MAX)
                .min(1 << 20));
        for _ in 0..max_iters {
            let q = self.current;
            if let Some(head) = self.queues[q].front() {
                if self.deficits[q] >= u64::from(head.len) {
                    self.deficits[q] -= u64::from(head.len);
                    let pkt = self.queues[q].pop_front();
                    if self.queues[q].is_empty() {
                        // An empty queue forfeits its deficit (standard DRR).
                        self.deficits[q] = 0;
                        self.current = (q + 1) % self.queues.len();
                    }
                    return pkt;
                }
                // Head too large: top up and move on.
                self.deficits[q] += u64::from(self.quantum);
            }
            self.current = (q + 1) % self.queues.len();
        }
        // Quantum ≥ 1 guarantees progress; unreachable with queued packets.
        unreachable!("DRR failed to make progress");
    }

    fn len(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    fn num_queues(&self) -> u8 {
        self.queues.len() as u8
    }

    fn queue_for(&self, pkt: &SimPacket) -> u8 {
        self.clamp_queue(pkt.priority) as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pq_packet::FlowId;

    fn pkt(flow: u32, len: u32, priority: u8) -> SimPacket {
        SimPacket::new(FlowId(flow), len, 0).with_priority(priority)
    }

    #[test]
    fn fifo_preserves_order() {
        let mut s = Fifo::new();
        s.enqueue(pkt(1, 100, 0));
        s.enqueue(pkt(2, 100, 0));
        s.enqueue(pkt(3, 100, 0));
        let order: Vec<u32> = std::iter::from_fn(|| s.dequeue())
            .map(|p| p.flow.0)
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn strict_priority_starves_low() {
        let mut s = StrictPriority::new(2);
        s.enqueue(pkt(10, 100, 1)); // low priority first in
        s.enqueue(pkt(20, 100, 0));
        s.enqueue(pkt(21, 100, 0));
        assert_eq!(s.dequeue().unwrap().flow.0, 20);
        assert_eq!(s.dequeue().unwrap().flow.0, 21);
        assert_eq!(s.dequeue().unwrap().flow.0, 10);
        assert!(s.dequeue().is_none());
    }

    #[test]
    fn strict_priority_clamps_out_of_range() {
        let mut s = StrictPriority::new(2);
        s.enqueue(pkt(1, 100, 7)); // priority 7 clamps to queue 1
        assert_eq!(s.len(), 1);
        assert_eq!(s.dequeue().unwrap().flow.0, 1);
    }

    #[test]
    fn drr_interleaves_equal_weights() {
        let mut s = Drr::new(2, 1000);
        for i in 0..4 {
            s.enqueue(pkt(i, 500, 0));
            s.enqueue(pkt(100 + i, 500, 1));
        }
        let order: Vec<u32> = std::iter::from_fn(|| s.dequeue())
            .map(|p| p.flow.0)
            .collect();
        // Equal quanta and equal sizes → fair interleave: each round sends
        // two packets per queue (quantum 1000, packet 500).
        let q0_sent: Vec<usize> = order
            .iter()
            .enumerate()
            .filter(|(_, f)| **f < 100)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(order.len(), 8);
        // Queue 0's packets must not all come first: fairness interleaves.
        assert!(
            *q0_sent.last().unwrap() > 3,
            "DRR did not interleave: {order:?}"
        );
    }

    #[test]
    fn drr_respects_byte_fairness() {
        // Queue 0 sends 1500 B packets, queue 1 sends 500 B packets. With
        // equal quanta, queue 1 should send ~3x as many packets.
        let mut s = Drr::new(2, 1500);
        for i in 0..10 {
            s.enqueue(pkt(i, 1500, 0));
        }
        for i in 0..30 {
            s.enqueue(pkt(1000 + i, 500, 1));
        }
        let first12: Vec<u32> = (0..12).map(|_| s.dequeue().unwrap().flow.0).collect();
        let q0 = first12.iter().filter(|f| **f < 1000).count();
        let q1 = first12.len() - q0;
        assert!(
            (2..=4).contains(&(q1 / q0.max(1))),
            "byte fairness violated: q0={q0}, q1={q1}"
        );
    }

    #[test]
    fn drr_drains_completely() {
        let mut s = Drr::new(3, 100);
        for i in 0..50 {
            s.enqueue(pkt(i, 1500, (i % 3) as u8));
        }
        let mut count = 0;
        while s.dequeue().is_some() {
            count += 1;
        }
        assert_eq!(count, 50);
        assert!(s.is_empty());
    }

    #[test]
    fn kind_builds_expected_variant() {
        assert_eq!(SchedulerKind::Fifo.build().len(), 0);
        let mut sp = SchedulerKind::StrictPriority { queues: 0 }.build();
        sp.enqueue(pkt(1, 64, 0)); // queues clamped to at least 1
        assert_eq!(sp.len(), 1);
    }
}
