//! Per-interval throughput metering — the counter-polling telemetry that
//! complements [`crate::depth_sampler`].
//!
//! Switches expose per-port byte/packet counters; operators poll them to
//! build utilization series. This hook does the same: it accumulates bytes
//! and packets between control-plane ticks and emits one reading per
//! interval for its watched port.

use crate::hooks::QueueHooks;
use pq_packet::{Nanos, SimPacket};
use serde::{Deserialize, Serialize};

/// One polling interval's reading.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RateSample {
    /// End of the interval (the tick instant).
    pub at: Nanos,
    /// Bytes transmitted during the interval.
    pub bytes: u64,
    /// Packets transmitted during the interval.
    pub packets: u64,
    /// Mean rate over the interval in Gbps (0 for the first, unbounded
    /// interval).
    pub gbps: f64,
}

/// Meters one egress port's transmit rate per tick interval.
#[derive(Debug)]
pub struct RateMeter {
    /// Watched port.
    pub port: u16,
    /// Completed interval readings, in time order.
    pub samples: Vec<RateSample>,
    bytes_acc: u64,
    packets_acc: u64,
    last_tick: Option<Nanos>,
}

impl RateMeter {
    /// Watch `port`.
    pub fn new(port: u16) -> RateMeter {
        RateMeter {
            port,
            samples: Vec::new(),
            bytes_acc: 0,
            packets_acc: 0,
            last_tick: None,
        }
    }

    /// Peak interval rate observed, Gbps.
    pub fn peak_gbps(&self) -> f64 {
        self.samples.iter().map(|s| s.gbps).fold(0.0, f64::max)
    }

    /// Mean rate across all completed intervals, weighted by duration
    /// (equivalently: total bytes over total metered time).
    pub fn mean_gbps(&self) -> f64 {
        let (Some(first), Some(last)) = (self.samples.first(), self.samples.last()) else {
            return 0.0;
        };
        let total_bytes: u64 = self.samples.iter().skip(1).map(|s| s.bytes).sum();
        let span = last.at.saturating_sub(first.at);
        if span == 0 {
            0.0
        } else {
            total_bytes as f64 * 8.0 / span as f64
        }
    }
}

impl QueueHooks for RateMeter {
    fn on_dequeue(&mut self, pkt: &SimPacket, port: u16, _depth_after: u32, _now: Nanos) {
        if port == self.port {
            self.bytes_acc += u64::from(pkt.len);
            self.packets_acc += 1;
        }
    }

    fn on_tick(&mut self, now: Nanos) {
        let gbps = match self.last_tick {
            Some(prev) if now > prev => self.bytes_acc as f64 * 8.0 / (now - prev) as f64,
            _ => 0.0,
        };
        self.samples.push(RateSample {
            at: now,
            bytes: self.bytes_acc,
            packets: self.packets_acc,
            gbps,
        });
        self.bytes_acc = 0;
        self.packets_acc = 0;
        self.last_tick = Some(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::switch::{Arrival, Switch, SwitchConfig};
    use pq_packet::FlowId;

    #[test]
    fn meters_line_rate_under_saturation() {
        let mut sw = Switch::new(SwitchConfig::single_port(10.0, 32_768));
        let mut meter = RateMeter::new(0);
        // Saturating: arrivals at 2x line rate for 2 ms.
        let arrivals: Vec<Arrival> = (0..3_000u64)
            .map(|i| Arrival::new(SimPacket::new(FlowId(0), 1500, i * 600), 0))
            .collect();
        {
            let mut hooks: Vec<&mut dyn QueueHooks> = vec![&mut meter];
            sw.run(arrivals, &mut hooks, 200_000);
        }
        assert!(meter.samples.len() > 5);
        // During the saturated stretch the port runs at ~10 Gbps.
        assert!(
            (9.5..=10.2).contains(&meter.peak_gbps()),
            "peak {}",
            meter.peak_gbps()
        );
        let total_pkts: u64 = meter.samples.iter().map(|s| s.packets).sum();
        assert_eq!(total_pkts, 3_000);
    }

    #[test]
    fn idle_intervals_read_zero() {
        let mut sw = Switch::new(SwitchConfig::single_port(10.0, 1_000));
        let mut meter = RateMeter::new(0);
        {
            let mut hooks: Vec<&mut dyn QueueHooks> = vec![&mut meter];
            // One packet at t=0, then silence until 1 ms.
            sw.inject(
                Arrival::new(SimPacket::new(FlowId(0), 1500, 0), 0),
                &mut hooks,
            );
            sw.drain_until(1_000_000, &mut hooks);
            meter.on_tick(500_000);
            meter.on_tick(1_000_000);
        }
        assert_eq!(meter.samples[0].packets, 1);
        assert_eq!(meter.samples[1].packets, 0);
        assert_eq!(meter.samples[1].gbps, 0.0);
    }

    #[test]
    fn port_filtering() {
        let mut meter = RateMeter::new(5);
        let pkt = SimPacket::new(FlowId(0), 1000, 0);
        meter.on_dequeue(&pkt, 4, 0, 10);
        meter.on_dequeue(&pkt, 5, 0, 20);
        meter.on_tick(100);
        assert_eq!(meter.samples[0].bytes, 1000);
    }
}
