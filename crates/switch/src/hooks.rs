//! Hook points where data-plane programs and measurement sinks attach.
//!
//! The switch invokes hooks at the three queue-state transitions PrintQueue
//! cares about, plus a periodic tick that models the control-plane CPU
//! getting scheduled:
//!
//! * **enqueue** — the traffic manager admitted a packet; the queue depth
//!   grew. The queue monitor records depth increases here.
//! * **dequeue** — a packet left the queue and is traversing the egress
//!   pipeline with its final metadata (Table 1 of the paper) attached. Time
//!   windows index packets here, by dequeue timestamp.
//! * **drop** — tail drop. No PrintQueue structure updates (a dropped packet
//!   never occupied the queue), but sinks may count it.
//! * **tick** — fires every `tick_period` of simulated time; the PrintQueue
//!   analysis program performs its periodic register polling here.

use pq_packet::{FlowId, Nanos, PacketMeta, SimPacket};
use serde::{Deserialize, Serialize};

/// A queue state transition reported to hooks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueEvent {
    /// Packet admitted; `depth_after` includes the packet's own cells.
    Enqueue,
    /// Packet departed; `depth_after` excludes it.
    Dequeue,
    /// Packet tail-dropped; depth unchanged.
    Drop,
}

/// A data-plane program or measurement sink attached to the switch.
///
/// All methods default to no-ops so implementors override only what they
/// observe.
pub trait QueueHooks {
    /// A packet was admitted to `port`'s queue at `now`.
    /// `depth_after` is the queue depth in buffer cells including the packet.
    fn on_enqueue(&mut self, _pkt: &SimPacket, _port: u16, _depth_after: u32, _now: Nanos) {}

    /// A packet left `port`'s queue at `now` and is in the egress pipeline;
    /// `pkt.meta` carries the final Table-1 metadata. `depth_after` is the
    /// remaining queue depth in cells.
    fn on_dequeue(&mut self, _pkt: &SimPacket, _port: u16, _depth_after: u32, _now: Nanos) {}

    /// A packet was tail-dropped at `port`.
    fn on_drop(&mut self, _pkt: &SimPacket, _port: u16, _now: Nanos) {}

    /// Periodic control-plane tick.
    fn on_tick(&mut self, _now: Nanos) {}
}

/// One ground-truth record, equivalent to the telemetry header the paper's
/// testbed switch inserts into every packet and the DPDK receiver logs
/// (§7.1). The evaluation derives "which packets dequeued during the victim's
/// queueing" from exactly these fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TelemetryRecord {
    /// Interned flow the packet belongs to.
    pub flow: FlowId,
    /// Egress port.
    pub port: u16,
    /// Wire length in bytes.
    pub len: u32,
    /// Monotonic packet sequence number (disambiguates timestamp ties).
    pub seqno: u64,
    /// Queueing metadata (enqueue/dequeue timestamps, enqueue depth).
    pub meta: PacketMeta,
}

impl TelemetryRecord {
    /// Dequeue timestamp.
    pub fn deq_timestamp(&self) -> Nanos {
        self.meta.deq_timestamp()
    }
}

/// Collects [`TelemetryRecord`]s for every dequeued packet, and counts drops.
///
/// This is the stand-in for the paper's DPDK receiver: it exists purely to
/// compute ground truth for the evaluation and is not part of a deployment.
#[derive(Debug, Default)]
pub struct TelemetrySink {
    /// Ground-truth records in dequeue order.
    pub records: Vec<TelemetryRecord>,
    /// Number of tail drops observed.
    pub drops: u64,
}

impl TelemetrySink {
    /// Create an empty sink.
    pub fn new() -> TelemetrySink {
        TelemetrySink::default()
    }

    /// Records whose dequeue timestamp falls inside `[from, to]`.
    pub fn dequeued_between(
        &self,
        from: Nanos,
        to: Nanos,
    ) -> impl Iterator<Item = &TelemetryRecord> {
        self.records
            .iter()
            .filter(move |r| (from..=to).contains(&r.deq_timestamp()))
    }
}

impl QueueHooks for TelemetrySink {
    fn on_dequeue(&mut self, pkt: &SimPacket, port: u16, _depth_after: u32, _now: Nanos) {
        self.records.push(TelemetryRecord {
            flow: pkt.flow,
            port,
            len: pkt.len,
            seqno: pkt.seqno,
            meta: pkt.meta,
        });
    }

    fn on_drop(&mut self, _pkt: &SimPacket, _port: u16, _now: Nanos) {
        self.drops += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(flow: u32, enq: Nanos, delta: u32) -> TelemetryRecord {
        TelemetryRecord {
            flow: FlowId(flow),
            port: 0,
            len: 100,
            seqno: 0,
            meta: PacketMeta {
                egress_port: 0,
                enq_timestamp: enq,
                deq_timedelta: delta,
                enq_qdepth: 1,
                queue: 0,
            },
        }
    }

    #[test]
    fn sink_records_dequeues_and_drops() {
        let mut sink = TelemetrySink::new();
        let pkt = SimPacket::new(FlowId(1), 100, 0);
        sink.on_dequeue(&pkt, 3, 0, 10);
        sink.on_drop(&pkt, 3, 11);
        assert_eq!(sink.records.len(), 1);
        assert_eq!(sink.records[0].port, 3);
        assert_eq!(sink.drops, 1);
    }

    #[test]
    fn dequeued_between_is_inclusive() {
        let mut sink = TelemetrySink::new();
        sink.records.push(record(1, 100, 50)); // deq at 150
        sink.records.push(record(2, 100, 100)); // deq at 200
        sink.records.push(record(3, 100, 150)); // deq at 250
        let flows: Vec<u32> = sink.dequeued_between(150, 200).map(|r| r.flow.0).collect();
        assert_eq!(flows, vec![1, 2]);
    }
}
