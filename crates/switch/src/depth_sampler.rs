//! Periodic queue-depth sampling — the telemetry behind depth-over-time
//! plots such as the paper's Figure 16(a).
//!
//! Real deployments poll queue depth counters (or stream them via INT);
//! this hook samples each watched port's depth on the control-plane tick
//! and keeps a bounded series. Unlike the ground-truth oracle, it observes
//! exactly what a switch's counters expose, at poll granularity.

use crate::hooks::QueueHooks;
use pq_packet::{Nanos, SimPacket};
use serde::{Deserialize, Serialize};

/// One (time, depth) observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DepthSample {
    pub at: Nanos,
    pub depth_cells: u32,
}

/// Samples one port's depth whenever the tick fires.
///
/// Depth is tracked incrementally from enqueue/dequeue deltas (the hook
/// never peeks inside the switch), so it stays accurate between ticks and
/// costs O(1) per packet.
#[derive(Debug)]
pub struct DepthSampler {
    /// Watched port.
    pub port: u16,
    /// Collected samples, in time order.
    pub samples: Vec<DepthSample>,
    /// Peak depth ever observed (at packet granularity, not just ticks).
    pub peak_cells: u32,
    current_cells: i64,
    cell_bytes: u32,
    max_samples: usize,
}

impl DepthSampler {
    /// Watch `port`, with the switch's buffer-cell size, keeping at most
    /// `max_samples` samples (oldest dropped first).
    pub fn new(port: u16, cell_bytes: u32, max_samples: usize) -> DepthSampler {
        assert!(cell_bytes > 0 && max_samples > 0);
        DepthSampler {
            port,
            samples: Vec::new(),
            peak_cells: 0,
            current_cells: 0,
            cell_bytes,
            max_samples,
        }
    }

    fn cells(&self, len: u32) -> i64 {
        i64::from(len.div_ceil(self.cell_bytes))
    }

    /// Depth right now, in cells.
    pub fn current_depth(&self) -> u32 {
        self.current_cells.max(0) as u32
    }

    /// The sample closest in time to `at`.
    pub fn nearest(&self, at: Nanos) -> Option<DepthSample> {
        self.samples
            .iter()
            .min_by_key(|s| s.at.abs_diff(at))
            .copied()
    }

    /// The latest sample at or before `at` whose depth was zero — a
    /// deployment-side estimate of when the current congestion regime
    /// began (the ground-truth oracle computes this exactly from telemetry;
    /// operators only have counter samples).
    pub fn last_idle_before(&self, at: Nanos) -> Option<Nanos> {
        self.samples
            .iter()
            .filter(|s| s.at <= at && s.depth_cells == 0)
            .map(|s| s.at)
            .next_back()
    }

    /// Longest contiguous run of samples with depth above `threshold`,
    /// returned as (start, end) times.
    pub fn longest_busy_span(&self, threshold: u32) -> Option<(Nanos, Nanos)> {
        let mut best: Option<(Nanos, Nanos)> = None;
        let mut run_start: Option<Nanos> = None;
        for s in &self.samples {
            if s.depth_cells > threshold {
                run_start.get_or_insert(s.at);
                let start = run_start.unwrap();
                if best.is_none_or(|(bs, be)| s.at - start > be - bs) {
                    best = Some((start, s.at));
                }
            } else {
                run_start = None;
            }
        }
        best
    }
}

impl QueueHooks for DepthSampler {
    fn on_enqueue(&mut self, pkt: &SimPacket, port: u16, _depth_after: u32, _now: Nanos) {
        if port == self.port {
            self.current_cells += self.cells(pkt.len);
            self.peak_cells = self.peak_cells.max(self.current_depth());
        }
    }

    fn on_dequeue(&mut self, pkt: &SimPacket, port: u16, _depth_after: u32, _now: Nanos) {
        if port == self.port {
            self.current_cells -= self.cells(pkt.len);
        }
    }

    fn on_tick(&mut self, now: Nanos) {
        if self.samples.len() == self.max_samples {
            self.samples.remove(0);
        }
        self.samples.push(DepthSample {
            at: now,
            depth_cells: self.current_depth(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::switch::{Arrival, Switch, SwitchConfig};
    use pq_packet::FlowId;

    #[test]
    fn sampler_tracks_burst_and_drain() {
        let mut sw = Switch::new(SwitchConfig::single_port(10.0, 32_768));
        let mut sampler = DepthSampler::new(0, 80, 1024);
        // 100 MTU packets in 10 µs (burst), drains over ~120 µs.
        let arrivals: Vec<Arrival> = (0..100u64)
            .map(|i| Arrival::new(SimPacket::new(FlowId(0), 1500, i * 100), 0))
            .collect();
        {
            let mut hooks: Vec<&mut dyn QueueHooks> = vec![&mut sampler];
            sw.run(arrivals, &mut hooks, 10_000);
        }
        assert!(sampler.peak_cells > 80 * 19, "peak {}", sampler.peak_cells);
        // Final sample: drained.
        assert_eq!(sampler.samples.last().unwrap().depth_cells, 0);
        // Depth rose then fell.
        let max_sample = sampler.samples.iter().map(|s| s.depth_cells).max().unwrap();
        assert!(max_sample > 1000);
        let busy = sampler.longest_busy_span(100).expect("busy span");
        assert!(busy.1 > busy.0);
    }

    #[test]
    fn sampler_is_port_selective() {
        use crate::tm::PortConfig;
        let config = SwitchConfig {
            ports: vec![PortConfig::default(); 2],
            cell_bytes: 80,
        };
        let mut sw = Switch::new(config);
        let mut sampler = DepthSampler::new(1, 80, 64);
        let arrivals = vec![
            Arrival::new(SimPacket::new(FlowId(0), 1500, 0), 0),
            Arrival::new(SimPacket::new(FlowId(1), 1500, 1), 1),
        ];
        {
            let mut hooks: Vec<&mut dyn QueueHooks> = vec![&mut sampler];
            sw.run(arrivals, &mut hooks, 500);
        }
        // Only port 1's single packet was ever counted.
        assert_eq!(sampler.peak_cells, 19);
    }

    #[test]
    fn sample_ring_is_bounded() {
        let mut sampler = DepthSampler::new(0, 80, 4);
        for t in 0..10u64 {
            sampler.on_tick(t * 100);
        }
        assert_eq!(sampler.samples.len(), 4);
        assert_eq!(sampler.samples[0].at, 600);
    }

    #[test]
    fn nearest_picks_closest_sample() {
        let mut sampler = DepthSampler::new(0, 80, 16);
        sampler.on_tick(100);
        sampler.on_tick(200);
        assert_eq!(sampler.nearest(140).unwrap().at, 100);
        assert_eq!(sampler.nearest(160).unwrap().at, 200);
        assert!(DepthSampler::new(0, 80, 4).nearest(0).is_none());
    }
}

#[cfg(test)]
mod regime_tests {
    use super::*;

    #[test]
    fn last_idle_before_finds_the_regime_start() {
        let mut s = DepthSampler::new(0, 80, 64);
        // Samples: idle at 100 and 200, busy at 300-500, idle at 600.
        for (t, d) in [
            (100u64, 0u32),
            (200, 0),
            (300, 50),
            (400, 80),
            (500, 20),
            (600, 0),
        ] {
            s.samples.push(DepthSample {
                at: t,
                depth_cells: d,
            });
        }
        assert_eq!(s.last_idle_before(450), Some(200));
        assert_eq!(s.last_idle_before(150), Some(100));
        assert_eq!(s.last_idle_before(700), Some(600));
        assert_eq!(s.last_idle_before(50), None);
    }
}
