//! Stateful register arrays with match-action-stage access discipline.
//!
//! A Tofino match-action stage can perform exactly one read-modify-write on
//! one index of a register array per packet. PrintQueue's data structures
//! (Algorithm 1, the queue monitor) are built under that constraint, and an
//! implementation that quietly did two dependent accesses per packet would
//! be unimplementable on the hardware. [`RegisterArray`] therefore tracks,
//! in debug builds, how many data-plane accesses each packet performs and
//! asserts the single-access rule; the control plane uses separate bulk-read
//! methods that model PCIe polling instead.

use serde::{Deserialize, Serialize};

/// A register array holding `len` cells of `T`.
///
/// `T` is `Copy + Default`; `T::default()` is the reset value the driver
/// writes when the control plane clears the array.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegisterArray<T: Copy + Default> {
    cells: Vec<T>,
    /// Debug-only guard: set once a data-plane access happens for the
    /// current packet, cleared by [`RegisterArray::begin_packet`].
    #[serde(skip)]
    accessed_this_packet: bool,
    /// When true (the default), the single-access discipline is enforced in
    /// debug builds.
    #[serde(skip, default = "default_true")]
    enforce_discipline: bool,
}

fn default_true() -> bool {
    true
}

impl<T: Copy + Default> RegisterArray<T> {
    /// Allocate an array of `len` default-valued cells.
    pub fn new(len: usize) -> RegisterArray<T> {
        RegisterArray {
            cells: vec![T::default(); len],
            accessed_this_packet: false,
            enforce_discipline: true,
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when the array has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Disable the single-access assertion (for structures that model
    /// multiple physical arrays behind one logical type).
    pub fn without_discipline(mut self) -> Self {
        self.enforce_discipline = false;
        self
    }

    /// Mark the start of a new packet's pipeline traversal, re-arming the
    /// single-access assertion.
    pub fn begin_packet(&mut self) {
        self.accessed_this_packet = false;
    }

    fn note_access(&mut self) {
        if self.enforce_discipline {
            debug_assert!(
                !self.accessed_this_packet,
                "register array accessed twice by one packet — \
                 not implementable in a single match-action stage"
            );
        }
        self.accessed_this_packet = true;
    }

    /// Data-plane read-modify-write of one cell. Returns whatever the
    /// closure returns (the value carried forward in packet metadata).
    pub fn rmw<R>(&mut self, index: usize, f: impl FnOnce(&mut T) -> R) -> R {
        self.note_access();
        f(&mut self.cells[index])
    }

    /// Data-plane read of one cell (counts as the stage's single access).
    pub fn read(&mut self, index: usize) -> T {
        self.note_access();
        self.cells[index]
    }

    /// Data-plane blind write of one cell (counts as the single access).
    pub fn write(&mut self, index: usize, value: T) {
        self.note_access();
        self.cells[index] = value;
    }

    /// Control-plane bulk read (PCIe poll). Does not count against the
    /// per-packet discipline.
    pub fn snapshot(&self) -> Vec<T> {
        self.cells.clone()
    }

    /// Control-plane view without copying.
    pub fn as_slice(&self) -> &[T] {
        &self.cells
    }

    /// Control-plane reset of every cell to the default value.
    pub fn clear(&mut self) {
        for cell in &mut self.cells {
            *cell = T::default();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmw_reads_and_writes() {
        let mut reg: RegisterArray<u32> = RegisterArray::new(4);
        reg.begin_packet();
        let old = reg.rmw(2, |cell| {
            let old = *cell;
            *cell = 7;
            old
        });
        assert_eq!(old, 0);
        assert_eq!(reg.as_slice(), &[0, 0, 7, 0]);
    }

    #[test]
    fn snapshot_is_independent_copy() {
        let mut reg: RegisterArray<u32> = RegisterArray::new(2);
        reg.begin_packet();
        reg.write(0, 5);
        let snap = reg.snapshot();
        reg.begin_packet();
        reg.write(0, 9);
        assert_eq!(snap, vec![5, 0]);
        assert_eq!(reg.as_slice(), &[9, 0]);
    }

    #[test]
    fn clear_resets_to_default() {
        let mut reg: RegisterArray<u32> = RegisterArray::new(3);
        reg.begin_packet();
        reg.write(1, 42);
        reg.clear();
        assert_eq!(reg.as_slice(), &[0, 0, 0]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "accessed twice")]
    fn double_access_panics_in_debug() {
        let mut reg: RegisterArray<u32> = RegisterArray::new(2);
        reg.begin_packet();
        reg.write(0, 1);
        reg.write(1, 2); // second access for the same packet
    }

    #[test]
    fn begin_packet_rearms() {
        let mut reg: RegisterArray<u32> = RegisterArray::new(2);
        reg.begin_packet();
        reg.write(0, 1);
        reg.begin_packet();
        reg.write(1, 2); // new packet, allowed
        assert_eq!(reg.as_slice(), &[1, 2]);
    }

    #[test]
    fn without_discipline_allows_multiple_accesses() {
        let mut reg: RegisterArray<u32> = RegisterArray::new(2).without_discipline();
        reg.begin_packet();
        reg.write(0, 1);
        reg.write(1, 2);
        assert_eq!(reg.as_slice(), &[1, 2]);
    }
}
