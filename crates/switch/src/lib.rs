//! Discrete-event programmable-switch simulator — the substrate PrintQueue
//! runs on in this reproduction.
//!
//! The paper implements PrintQueue on an Intel Tofino ASIC. PrintQueue's
//! algorithms consume exactly four pieces of intrinsic metadata (Table 1 of
//! the paper): the egress port, the enqueue timestamp, the time spent in the
//! queue, and the queue depth at enqueue. This crate produces those fields
//! with the same semantics the Tofino traffic manager would:
//!
//! * a nanosecond event clock ([`pq_packet::Nanos`]),
//! * per-egress-port queues with tail-drop and configurable scheduling
//!   ([`scheduler`]: FIFO, strict priority, deficit round-robin — the paper
//!   claims its structures are "compatible with non-FIFO queuing policies"
//!   and we test that claim),
//! * line-rate serialization: a port transmits one packet every
//!   `len * 8 / rate` nanoseconds when backlogged ([`tm`]),
//! * stateful register arrays with single-access-per-packet discipline
//!   mirroring what a match-action stage can do ([`registers`]), and
//! * hook points where data-plane programs attach ([`hooks`]): on enqueue,
//!   on dequeue (the egress pipeline), on drop, and on a periodic tick used
//!   by control planes.
//!
//! The [`Switch`] type owns the event calendar and drives a sorted stream of
//! [`Arrival`]s through the ports, invoking hooks as queue state changes. A
//! built-in [`hooks::TelemetrySink`] records the ground-truth per-packet
//! records the paper's evaluation collects with DPDK at the receiver (§7.1).

pub mod depth_sampler;
pub mod event;
pub mod hooks;
pub mod rate_meter;
pub mod registers;
pub mod router;
pub mod scheduler;
pub mod stats;
pub mod switch;
mod telemetry;
pub mod tm;
pub mod topology;

pub use depth_sampler::{DepthSample, DepthSampler};
pub use hooks::{QueueEvent, QueueHooks, TelemetryRecord, TelemetrySink};
pub use rate_meter::{RateMeter, RateSample};
pub use registers::RegisterArray;
pub use router::Router;
pub use scheduler::SchedulerKind;
pub use stats::PortStats;
pub use switch::{Arrival, PortConfig, Switch, SwitchConfig};
