//! The switch: event loop tying arrivals, ports, and hooks together.

use crate::event::{Calendar, Event};
use crate::hooks::QueueHooks;
use crate::stats::PortStats;
use crate::telemetry::SwitchTelemetry;
use crate::tm::{EnqueueOutcome, Port};
use pq_packet::{Nanos, SimPacket};
use pq_telemetry::{names, Telemetry};

pub use crate::tm::PortConfig;

/// A packet arriving at the switch, already routed to an egress port by the
/// ingress pipeline (the trace generator plays the role of ingress routing;
/// see `pq_packet::packet::parse_frame` for the byte-level parser used in
/// examples).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// The packet descriptor; `pkt.arrival` is its arrival time.
    pub pkt: SimPacket,
    /// Destination egress port index.
    pub port: u16,
}

impl Arrival {
    /// Convenience constructor.
    pub fn new(pkt: SimPacket, port: u16) -> Arrival {
        Arrival { pkt, port }
    }
}

/// Whole-switch configuration.
#[derive(Debug, Clone)]
pub struct SwitchConfig {
    /// One entry per egress port.
    pub ports: Vec<PortConfig>,
    /// Buffer allocation granularity in bytes (80 B on Tofino).
    pub cell_bytes: u32,
}

impl Default for SwitchConfig {
    fn default() -> Self {
        SwitchConfig {
            ports: vec![PortConfig::default()],
            cell_bytes: 80,
        }
    }
}

impl SwitchConfig {
    /// A single-port switch at `rate_gbps` with the given buffer depth.
    pub fn single_port(rate_gbps: f64, max_depth_cells: u32) -> SwitchConfig {
        SwitchConfig {
            ports: vec![PortConfig {
                rate_gbps,
                max_depth_cells,
                ..PortConfig::default()
            }],
            cell_bytes: 80,
        }
    }
}

/// The simulated switch.
///
/// Drive it with [`Switch::run`], which consumes a time-sorted arrival
/// stream and invokes the supplied hooks at every queue transition. Hooks
/// are passed per-run (rather than owned) so callers keep full access to
/// their data-plane programs and sinks afterwards.
pub struct Switch {
    config: SwitchConfig,
    ports: Vec<Port>,
    calendar: Calendar,
    now: Nanos,
    next_seqno: u64,
    telemetry: Option<SwitchTelemetry>,
}

impl Switch {
    /// Build a switch from its configuration.
    pub fn new(config: SwitchConfig) -> Switch {
        let ports = config.ports.iter().map(|p| Port::new(*p)).collect();
        Switch {
            ports,
            config,
            calendar: Calendar::new(),
            now: 0,
            next_seqno: 0,
            telemetry: None,
        }
    }

    /// Attach a telemetry plane: per-port counters, the residence
    /// histogram, and (when tracing is enabled on the plane)
    /// enqueue→dequeue residence spans. Metric handles are resolved here,
    /// once; counts accumulated before attachment are carried over so
    /// registry totals always match [`PortStats`].
    pub fn set_telemetry(&mut self, plane: &Telemetry) {
        let tel = SwitchTelemetry::new(plane, self.ports.len());
        for (i, port) in self.ports.iter().enumerate() {
            tel.seed(i, &port.stats);
        }
        self.telemetry = Some(tel);
    }

    /// Current simulation time.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Counters for one port.
    pub fn port_stats(&self, port: u16) -> &PortStats {
        &self.ports[usize::from(port)].stats
    }

    /// Current queue depth of one port, in buffer cells.
    pub fn port_depth_cells(&self, port: u16) -> u32 {
        self.ports[usize::from(port)].depth_cells()
    }

    /// Inject one packet at the current simulation time (used by
    /// fine-grained tests; `run` is the usual driver).
    pub fn inject(&mut self, arrival: Arrival, hooks: &mut [&mut dyn QueueHooks]) {
        debug_assert!(arrival.pkt.arrival >= self.now, "arrival in the past");
        self.now = arrival.pkt.arrival;
        self.handle_arrival(arrival, hooks);
    }

    fn handle_arrival(&mut self, arrival: Arrival, hooks: &mut [&mut dyn QueueHooks]) {
        let Arrival { mut pkt, port } = arrival;
        pkt.seqno = self.next_seqno;
        self.next_seqno += 1;
        pkt.meta.egress_port = port;
        let cell_bytes = self.config.cell_bytes;
        let p = &mut self.ports[usize::from(port)];
        match p.enqueue(&mut pkt, cell_bytes, self.now) {
            EnqueueOutcome::Stored { depth_after } => {
                if let Some(tel) = &self.telemetry {
                    let inst = &tel.ports[usize::from(port)];
                    inst.enqueued.inc();
                    inst.max_depth_cells
                        .set_max(u64::from(self.ports[usize::from(port)].depth_cells()));
                }
                for hook in hooks.iter_mut() {
                    hook.on_enqueue(&pkt, port, depth_after, self.now);
                }
                self.maybe_start_tx(port, hooks);
            }
            EnqueueOutcome::Dropped => {
                if let Some(tel) = &self.telemetry {
                    tel.ports[usize::from(port)].dropped.inc();
                }
                for hook in hooks.iter_mut() {
                    hook.on_drop(&pkt, port, self.now);
                }
            }
        }
    }

    fn maybe_start_tx(&mut self, port: u16, hooks: &mut [&mut dyn QueueHooks]) {
        let cell_bytes = self.config.cell_bytes;
        let p = &mut self.ports[usize::from(port)];
        if !p.can_start_tx() {
            return;
        }
        if let Some((pkt, done_at)) = p.start_tx(cell_bytes, self.now) {
            // Hooks observe the departing packet's own queue (equals the
            // port depth on FIFO ports).
            let depth_after = p.queue_depth_cells(pkt.meta.queue);
            if let Some(tel) = &self.telemetry {
                let inst = &tel.ports[usize::from(port)];
                inst.dequeued.inc();
                inst.tx_bytes.add(u64::from(pkt.len));
                inst.residence_ns.record(u64::from(pkt.meta.deq_timedelta));
                if tel.plane.tracing_enabled() {
                    tel.plane.spans().record(
                        names::SPAN_RESIDENCE,
                        pkt.meta.enq_timestamp,
                        pkt.meta.deq_timestamp(),
                        u32::from(port),
                    );
                }
            }
            for hook in hooks.iter_mut() {
                hook.on_dequeue(&pkt, port, depth_after, self.now);
            }
            self.calendar.schedule(done_at, Event::TxComplete { port });
        }
    }

    fn handle_event(&mut self, event: Event, hooks: &mut [&mut dyn QueueHooks]) {
        match event {
            Event::TxComplete { port } => {
                self.ports[usize::from(port)].tx_complete();
                self.maybe_start_tx(port, hooks);
            }
        }
    }

    /// Process all pending internal events up to and including `until`,
    /// advancing the clock. Used to drain queues after the arrival stream
    /// ends.
    pub fn drain_until(&mut self, until: Nanos, hooks: &mut [&mut dyn QueueHooks]) {
        while let Some(t) = self.calendar.peek_time() {
            if t > until {
                break;
            }
            let (t, event) = self.calendar.pop().expect("peeked event vanished");
            self.now = t;
            self.handle_event(event, hooks);
        }
        self.now = self.now.max(until);
    }

    /// Run the switch over a time-sorted arrival stream.
    ///
    /// * `arrivals` — packets in non-decreasing `pkt.arrival` order.
    /// * `hooks` — data-plane programs and sinks to notify.
    /// * `tick_period` — if non-zero, every hook receives
    ///   [`QueueHooks::on_tick`] each period of simulated time (the
    ///   control-plane poll loop).
    ///
    /// After the last arrival the switch drains every queue to completion.
    /// Ties are resolved as real hardware would: a transmission completing
    /// at time *t* frees the serializer before an arrival at *t* is
    /// processed.
    pub fn run<I>(&mut self, arrivals: I, hooks: &mut [&mut dyn QueueHooks], tick_period: Nanos)
    where
        I: IntoIterator<Item = Arrival>,
    {
        // One scope per run, not per packet: the guard is a single
        // relaxed load when profiling is off, but a per-packet guard
        // would still dominate the ~100ns forwarding loop when on.
        pq_prof::scope!("switch/run");
        let mut arrivals = arrivals.into_iter().peekable();
        let mut next_tick = if tick_period == 0 {
            Nanos::MAX
        } else {
            self.now + tick_period
        };

        loop {
            let next_arrival = arrivals.peek().map(|a| a.pkt.arrival);
            let next_event = self.calendar.peek_time();
            // Ticks exist only to service pending work; once arrivals and
            // internal events are exhausted the run ends (a final tick fires
            // so control planes see the closing state).
            let Some(work_t) = [next_arrival, next_event].into_iter().flatten().min() else {
                if tick_period != 0 {
                    self.now = self.now.max(next_tick);
                    for hook in hooks.iter_mut() {
                        hook.on_tick(self.now);
                    }
                }
                break;
            };
            let t = work_t.min(next_tick);

            // Ticks fire first at their deadline, then internal events
            // (transmissions complete), then arrivals — so an arrival at
            // time t sees the queue state after departures at t.
            if next_tick <= t {
                self.now = self.now.max(next_tick);
                for hook in hooks.iter_mut() {
                    hook.on_tick(self.now);
                }
                next_tick += tick_period;
                continue;
            }
            if next_event == Some(t) {
                let (et, event) = self.calendar.pop().expect("peeked event vanished");
                self.now = et;
                self.handle_event(event, hooks);
                continue;
            }
            // Must be an arrival.
            let arrival = arrivals.next().expect("peeked arrival vanished");
            self.now = arrival.pkt.arrival;
            self.handle_arrival(arrival, hooks);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::TelemetrySink;
    use crate::scheduler::SchedulerKind;
    use pq_packet::FlowId;

    fn arrivals_back_to_back(n: u64, len: u32, gap: Nanos) -> Vec<Arrival> {
        (0..n)
            .map(|i| Arrival::new(SimPacket::new(FlowId(i as u32 % 4), len, i * gap), 0))
            .collect()
    }

    #[test]
    fn uncongested_packets_see_empty_queue() {
        // 1500 B at 10 Gbps takes 1200 ns; arrivals every 2000 ns never queue.
        let mut sw = Switch::new(SwitchConfig::single_port(10.0, 1000));
        let mut sink = TelemetrySink::new();
        sw.run(arrivals_back_to_back(10, 1500, 2000), &mut [&mut sink], 0);
        assert_eq!(sink.records.len(), 10);
        for r in &sink.records {
            assert_eq!(r.meta.deq_timedelta, 0, "packet queued unexpectedly");
            // Depth at enqueue = its own 19 cells.
            assert_eq!(r.meta.enq_qdepth, 19);
        }
    }

    #[test]
    fn burst_builds_queue_and_delays_grow() {
        // All 10 packets arrive at t=0..9 ns; each takes 1200 ns to send.
        let mut sw = Switch::new(SwitchConfig::single_port(10.0, 1000));
        let mut sink = TelemetrySink::new();
        sw.run(arrivals_back_to_back(10, 1500, 1), &mut [&mut sink], 0);
        assert_eq!(sink.records.len(), 10);
        let deltas: Vec<u32> = sink.records.iter().map(|r| r.meta.deq_timedelta).collect();
        // FIFO: delays strictly increase across the burst.
        for w in deltas.windows(2) {
            assert!(w[1] > w[0], "delays not increasing: {deltas:?}");
        }
        // Last packet waited for ~9 transmissions.
        assert!(deltas[9] >= 9 * 1200 - 9);
    }

    #[test]
    fn taildrop_fires_when_buffer_full() {
        // Buffer of 19 cells fits exactly one 1500 B packet.
        let mut sw = Switch::new(SwitchConfig::single_port(10.0, 19));
        let mut sink = TelemetrySink::new();
        // Two packets at t=0 and t=1: the first dequeues immediately at t=0
        // (depth drops), so only one more can be admitted at t=1... but the
        // first *starts transmitting* at 0, leaving the queue empty, so the
        // second is admitted too. A third at t=2 while the second occupies
        // the whole buffer is dropped.
        let arrivals = vec![
            Arrival::new(SimPacket::new(FlowId(0), 1500, 0), 0),
            Arrival::new(SimPacket::new(FlowId(1), 1500, 1), 0),
            Arrival::new(SimPacket::new(FlowId(2), 1500, 2), 0),
        ];
        sw.run(arrivals, &mut [&mut sink], 0);
        assert_eq!(sink.drops, 1);
        assert_eq!(sink.records.len(), 2);
        assert_eq!(sw.port_stats(0).dropped, 1);
    }

    #[test]
    fn queue_fully_drains_after_run() {
        let mut sw = Switch::new(SwitchConfig::single_port(10.0, 10_000));
        let mut sink = TelemetrySink::new();
        sw.run(arrivals_back_to_back(100, 1500, 10), &mut [&mut sink], 0);
        assert_eq!(sink.records.len(), 100);
        assert_eq!(sw.port_depth_cells(0), 0);
        assert_eq!(sw.port_stats(0).dequeued, 100);
    }

    #[test]
    fn dequeue_order_is_timestamp_sorted_for_fifo() {
        let mut sw = Switch::new(SwitchConfig::single_port(10.0, 10_000));
        let mut sink = TelemetrySink::new();
        sw.run(arrivals_back_to_back(50, 800, 100), &mut [&mut sink], 0);
        let deqs: Vec<Nanos> = sink.records.iter().map(|r| r.deq_timestamp()).collect();
        let mut sorted = deqs.clone();
        sorted.sort_unstable();
        assert_eq!(deqs, sorted);
    }

    #[test]
    fn ticks_fire_at_period() {
        struct TickCounter {
            ticks: Vec<Nanos>,
        }
        impl QueueHooks for TickCounter {
            fn on_tick(&mut self, now: Nanos) {
                self.ticks.push(now);
            }
        }
        let mut sw = Switch::new(SwitchConfig::single_port(10.0, 1000));
        let mut counter = TickCounter { ticks: Vec::new() };
        let mut sink = TelemetrySink::new();
        // Arrivals spanning 10_000 ns, ticks every 2_500 ns.
        {
            let mut hooks: Vec<&mut dyn QueueHooks> = vec![&mut counter, &mut sink];
            sw.run(arrivals_back_to_back(6, 1500, 2000), &mut hooks, 2_500);
        }
        assert!(counter.ticks.starts_with(&[2_500, 5_000, 7_500, 10_000]));
    }

    #[test]
    fn telemetry_counters_mirror_port_stats() {
        let plane = Telemetry::new();
        let mut sw = Switch::new(SwitchConfig::single_port(10.0, 19));
        sw.set_telemetry(&plane);
        let mut sink = TelemetrySink::new();
        let arrivals = vec![
            Arrival::new(SimPacket::new(FlowId(0), 1500, 0), 0),
            Arrival::new(SimPacket::new(FlowId(1), 1500, 1), 0),
            Arrival::new(SimPacket::new(FlowId(2), 1500, 2), 0),
        ];
        sw.run(arrivals, &mut [&mut sink], 0);
        let stats = *sw.port_stats(0);
        let snap = plane.snapshot();
        let port = [("port", "0")];
        assert_eq!(
            snap.counter(names::SWITCH_ENQUEUED, &port),
            Some(stats.enqueued)
        );
        assert_eq!(
            snap.counter(names::SWITCH_DEQUEUED, &port),
            Some(stats.dequeued)
        );
        assert_eq!(
            snap.counter(names::SWITCH_DROPPED, &port),
            Some(stats.dropped)
        );
        assert_eq!(
            snap.counter(names::SWITCH_TX_BYTES, &port),
            Some(stats.tx_bytes)
        );
        let residence = snap.histogram(names::SWITCH_RESIDENCE_NS, &port).unwrap();
        assert_eq!(residence.count, stats.dequeued);
        assert_eq!(residence.sum, stats.total_queue_delay);
    }

    #[test]
    fn residence_spans_recorded_when_tracing() {
        let plane = Telemetry::new();
        plane.set_tracing(true);
        let mut sw = Switch::new(SwitchConfig::single_port(10.0, 10_000));
        sw.set_telemetry(&plane);
        let mut sink = TelemetrySink::new();
        sw.run(arrivals_back_to_back(5, 1500, 1), &mut [&mut sink], 0);
        let spans = plane.spans().snapshot();
        let residence: Vec<_> = spans
            .iter()
            .filter(|s| s.name == names::SPAN_RESIDENCE)
            .collect();
        assert_eq!(residence.len(), 5);
        for s in residence {
            assert!(s.end >= s.start);
        }
    }

    #[test]
    fn late_attach_seeds_existing_counts() {
        let mut sw = Switch::new(SwitchConfig::single_port(10.0, 10_000));
        let mut sink = TelemetrySink::new();
        sw.run(arrivals_back_to_back(10, 1500, 2000), &mut [&mut sink], 0);
        let plane = Telemetry::new();
        sw.set_telemetry(&plane);
        assert_eq!(
            plane
                .snapshot()
                .counter(names::SWITCH_ENQUEUED, &[("port", "0")]),
            Some(10)
        );
    }

    #[test]
    fn strict_priority_victim_waits() {
        // One low-priority packet enqueued behind a stream of high-priority
        // packets keeps losing the scheduling race — the Figure 1 scenario.
        let mut config = SwitchConfig::single_port(10.0, 100_000);
        config.ports[0].scheduler = SchedulerKind::StrictPriority { queues: 2 };
        let mut sw = Switch::new(config);
        let mut sink = TelemetrySink::new();
        // High-priority packets arriving every 600 ns keep the port busy
        // (each takes 1200 ns to serialize — 2x oversubscribed).
        let mut arrivals: Vec<Arrival> = (0..20u64)
            .map(|i| Arrival::new(SimPacket::new(FlowId(1), 1500, i * 600).with_priority(0), 0))
            .collect();
        // The victim arrives at t=100, while the first high-priority packet
        // is already serializing and more keep coming.
        arrivals.push(Arrival::new(
            SimPacket::new(FlowId(99), 1500, 100).with_priority(1),
            0,
        ));
        arrivals.sort_by_key(|a| a.pkt.arrival);
        sw.run(arrivals, &mut [&mut sink], 0);
        let victim = sink
            .records
            .iter()
            .find(|r| r.flow == FlowId(99))
            .expect("victim transmitted");
        // Every high-priority packet dequeues before the victim: the
        // high-priority queue never goes empty while the victim waits.
        let victim_deq = victim.deq_timestamp();
        let before_victim = sink
            .records
            .iter()
            .filter(|r| r.flow == FlowId(1) && r.deq_timestamp() < victim_deq)
            .count();
        assert_eq!(before_victim, 20, "victim was not starved");
        assert!(victim.meta.deq_timedelta > 20 * 1000);
    }
}
