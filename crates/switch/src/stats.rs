//! Per-port counters.

use pq_packet::Nanos;
use serde::{Deserialize, Serialize};

/// Counters maintained by the traffic manager for one egress port.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PortStats {
    /// Packets admitted to the queue.
    pub enqueued: u64,
    /// Packets transmitted.
    pub dequeued: u64,
    /// Packets tail-dropped.
    pub dropped: u64,
    /// Bytes transmitted.
    pub tx_bytes: u64,
    /// Highest queue depth (in buffer cells) ever observed.
    pub max_depth_cells: u32,
    /// Sum of per-packet queueing delays, for mean-delay reporting.
    pub total_queue_delay: Nanos,
}

impl PortStats {
    /// Mean queueing delay over all transmitted packets, in nanoseconds.
    pub fn mean_queue_delay(&self) -> f64 {
        if self.dequeued == 0 {
            0.0
        } else {
            self.total_queue_delay as f64 / self.dequeued as f64
        }
    }

    /// Offered-load drop rate: drops / (drops + enqueued).
    pub fn drop_rate(&self) -> f64 {
        let offered = self.dropped + self.enqueued;
        if offered == 0 {
            0.0
        } else {
            self.dropped as f64 / offered as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_delay_guards_divide_by_zero() {
        let stats = PortStats::default();
        assert_eq!(stats.mean_queue_delay(), 0.0);
    }

    #[test]
    fn mean_delay_and_drop_rate() {
        let stats = PortStats {
            enqueued: 90,
            dequeued: 4,
            dropped: 10,
            tx_bytes: 400,
            max_depth_cells: 7,
            total_queue_delay: 1000,
        };
        assert_eq!(stats.mean_queue_delay(), 250.0);
        assert!((stats.drop_rate() - 0.1).abs() < 1e-12);
    }
}
