//! The traffic manager: per-port queue state between ingress and egress.
//!
//! Queue depth is accounted in *buffer cells* of `cell_bytes` each (80 B on
//! Tofino), matching the granularity of the paper's `enq_qdepth` metadata
//! and the index of the queue monitor ("maximum length of the queue divided
//! by the buffer allocation granularity", §5). A packet of length `len`
//! occupies `ceil(len / cell_bytes)` cells.

use crate::scheduler::{Scheduler, SchedulerKind};
use crate::stats::PortStats;
use pq_packet::{time::tx_delay_ns, Nanos, SimPacket};

/// Static configuration of one egress port.
#[derive(Debug, Clone, Copy)]
pub struct PortConfig {
    /// Line rate in Gbps.
    pub rate_gbps: f64,
    /// Tail-drop threshold in buffer cells.
    pub max_depth_cells: u32,
    /// Queue discipline.
    pub scheduler: SchedulerKind,
}

impl Default for PortConfig {
    fn default() -> Self {
        // A 10 Gbps port with a deep (2 MB-ish at 80 B cells) buffer, the
        // regime the paper's evaluation explores (queue depths above 20k
        // cells appear in Figure 9).
        PortConfig {
            rate_gbps: 10.0,
            max_depth_cells: 32_768,
            scheduler: SchedulerKind::Fifo,
        }
    }
}

/// The outcome of offering a packet to a port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnqueueOutcome {
    /// Admitted; the contained value is the depth (cells) after insertion.
    Stored { depth_after: u32 },
    /// Tail-dropped.
    Dropped,
}

/// Runtime state of one egress port.
pub struct Port {
    config: PortConfig,
    scheduler: Box<dyn Scheduler>,
    /// Current total depth in buffer cells (all queues; tail drop operates
    /// on this shared-buffer figure).
    depth_cells: u32,
    /// Per-queue depths in buffer cells (length = scheduler queue count).
    queue_depths: Vec<u32>,
    /// True while the serializer is busy transmitting a packet.
    transmitting: bool,
    /// Counters.
    pub stats: PortStats,
}

impl std::fmt::Debug for Port {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Port")
            .field("depth_cells", &self.depth_cells)
            .field("transmitting", &self.transmitting)
            .field("stats", &self.stats)
            .finish()
    }
}

impl Port {
    /// Create a port from its configuration.
    pub fn new(config: PortConfig) -> Port {
        let scheduler = config.scheduler.build();
        let queue_depths = vec![0; usize::from(scheduler.num_queues())];
        Port {
            scheduler,
            config,
            depth_cells: 0,
            queue_depths,
            transmitting: false,
            stats: PortStats::default(),
        }
    }

    /// The port's configuration.
    pub fn config(&self) -> &PortConfig {
        &self.config
    }

    /// Current total port depth in buffer cells (all queues).
    pub fn depth_cells(&self) -> u32 {
        self.depth_cells
    }

    /// Current depth of one internal queue.
    pub fn queue_depth_cells(&self, queue: u8) -> u32 {
        self.queue_depths
            .get(usize::from(queue))
            .copied()
            .unwrap_or(0)
    }

    /// Number of internal queues (1 for FIFO).
    pub fn num_queues(&self) -> u8 {
        self.scheduler.num_queues()
    }

    /// Number of cells `len` bytes occupy at this switch's granularity.
    pub fn cells_for(len: u32, cell_bytes: u32) -> u32 {
        len.div_ceil(cell_bytes)
    }

    /// Offer a packet to the queue at time `now`. On admission the packet's
    /// Table-1 metadata (`enq_timestamp`, `enq_qdepth`, `queue`) is stamped
    /// in place, so the caller's copy matches what the scheduler stored and
    /// enqueue hooks observe the final metadata.
    pub fn enqueue(&mut self, pkt: &mut SimPacket, cell_bytes: u32, now: Nanos) -> EnqueueOutcome {
        let cells = Self::cells_for(pkt.len, cell_bytes);
        if self.depth_cells + cells > self.config.max_depth_cells {
            self.stats.dropped += 1;
            return EnqueueOutcome::Dropped;
        }
        self.depth_cells += cells;
        self.stats.enqueued += 1;
        self.stats.max_depth_cells = self.stats.max_depth_cells.max(self.depth_cells);
        let queue = self.scheduler.queue_for(pkt);
        self.queue_depths[usize::from(queue)] += cells;
        pkt.meta.enq_timestamp = now;
        pkt.meta.enq_qdepth = self.queue_depths[usize::from(queue)];
        pkt.meta.queue = queue;
        self.scheduler.enqueue(*pkt);
        EnqueueOutcome::Stored {
            depth_after: self.queue_depths[usize::from(queue)],
        }
    }

    /// True when the serializer is idle and a transmission can start.
    pub fn can_start_tx(&self) -> bool {
        !self.transmitting && !self.scheduler.is_empty()
    }

    /// Begin transmitting the next scheduled packet at `now`.
    ///
    /// The packet *dequeues* at the start of serialization: its
    /// `deq_timedelta` is stamped, the depth drops, and the caller gets the
    /// packet (to run the egress pipeline) plus the time the serializer will
    /// be busy until.
    pub fn start_tx(&mut self, cell_bytes: u32, now: Nanos) -> Option<(SimPacket, Nanos)> {
        if self.transmitting {
            return None;
        }
        let mut pkt = self.scheduler.dequeue()?;
        let cells = Self::cells_for(pkt.len, cell_bytes);
        debug_assert!(self.depth_cells >= cells, "queue depth underflow");
        self.depth_cells -= cells;
        let qd = &mut self.queue_depths[usize::from(pkt.meta.queue)];
        debug_assert!(*qd >= cells, "per-queue depth underflow");
        *qd -= cells;
        pkt.meta.deq_timedelta = (now - pkt.meta.enq_timestamp) as u32;
        self.stats.dequeued += 1;
        self.stats.tx_bytes += u64::from(pkt.len);
        self.stats.total_queue_delay += Nanos::from(pkt.meta.deq_timedelta);
        self.transmitting = true;
        let done_at = now + tx_delay_ns(pkt.len, self.config.rate_gbps);
        Some((pkt, done_at))
    }

    /// The serializer finished its packet; the port may start another.
    pub fn tx_complete(&mut self) {
        debug_assert!(self.transmitting, "tx_complete on idle port");
        self.transmitting = false;
    }

    /// Number of queued packets (not cells).
    pub fn queued_packets(&self) -> usize {
        self.scheduler.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pq_packet::FlowId;

    const CELL: u32 = 80;

    fn port() -> Port {
        Port::new(PortConfig {
            rate_gbps: 10.0,
            max_depth_cells: 4,
            scheduler: SchedulerKind::Fifo,
        })
    }

    fn pkt(flow: u32, len: u32) -> SimPacket {
        SimPacket::new(FlowId(flow), len, 0)
    }

    #[test]
    fn cells_round_up() {
        assert_eq!(Port::cells_for(1, CELL), 1);
        assert_eq!(Port::cells_for(80, CELL), 1);
        assert_eq!(Port::cells_for(81, CELL), 2);
        assert_eq!(Port::cells_for(1500, CELL), 19);
    }

    #[test]
    fn enqueue_stamps_metadata() {
        let mut p = port();
        match p.enqueue(&mut pkt(1, 100), CELL, 500) {
            EnqueueOutcome::Stored { depth_after } => assert_eq!(depth_after, 2),
            other => panic!("unexpected {other:?}"),
        }
        let (sent, _) = p.start_tx(CELL, 700).unwrap();
        assert_eq!(sent.meta.enq_timestamp, 500);
        assert_eq!(sent.meta.enq_qdepth, 2);
        assert_eq!(sent.meta.deq_timedelta, 200);
    }

    #[test]
    fn tail_drop_at_threshold() {
        let mut p = port(); // 4-cell limit
        assert!(matches!(
            p.enqueue(&mut pkt(1, 240), CELL, 0), // 3 cells
            EnqueueOutcome::Stored { .. }
        ));
        assert_eq!(
            p.enqueue(&mut pkt(2, 160), CELL, 0),
            EnqueueOutcome::Dropped
        ); // 2 cells > 1 free
        assert!(matches!(
            p.enqueue(&mut pkt(3, 80), CELL, 0), // exactly fits
            EnqueueOutcome::Stored { depth_after: 4 }
        ));
        assert_eq!(p.stats.dropped, 1);
        assert_eq!(p.stats.enqueued, 2);
    }

    #[test]
    fn depth_falls_at_tx_start() {
        let mut p = port();
        p.enqueue(&mut pkt(1, 80), CELL, 0);
        p.enqueue(&mut pkt(2, 80), CELL, 0);
        assert_eq!(p.depth_cells(), 2);
        let (_, done) = p.start_tx(CELL, 10).unwrap();
        assert_eq!(p.depth_cells(), 1);
        // 80 B at 10 Gbps = 64 ns.
        assert_eq!(done, 74);
        // Serializer busy: no second tx until completion.
        assert!(p.start_tx(CELL, 20).is_none());
        p.tx_complete();
        assert!(p.can_start_tx());
    }

    #[test]
    fn stats_accumulate() {
        let mut p = port();
        p.enqueue(&mut pkt(1, 80), CELL, 0);
        let (_, done) = p.start_tx(CELL, 100).unwrap();
        p.tx_complete();
        assert_eq!(p.stats.dequeued, 1);
        assert_eq!(p.stats.tx_bytes, 80);
        assert_eq!(p.stats.total_queue_delay, 100);
        assert_eq!(p.stats.max_depth_cells, 1);
        assert!(done > 100);
    }
}
