//! Multi-hop composition: chain switches into a feed-forward topology.
//!
//! The paper's §1 motivation notes "the cascading nature of queuing delays"
//! — congestion at one switch shapes the arrival process of the next. Since
//! each [`crate::Switch`] run is a deterministic function from an arrival
//! stream to a departure stream, feed-forward topologies compose by running
//! hops in order: hop N's departures (plus link propagation delay) become
//! hop N+1's arrivals.
//!
//! This intentionally supports DAG-shaped (feed-forward) topologies only;
//! cycles would need co-simulation of all switches in one event loop, which
//! PrintQueue — a strictly per-switch system — never requires.

use crate::hooks::QueueHooks;
use crate::switch::{Arrival, Switch};
use pq_packet::{Nanos, SimPacket};

/// Captures a port's departures as a future arrival stream.
///
/// Attach as a hook; afterwards [`DepartureTap::into_arrivals`] yields the
/// packets that left `from_port`, re-addressed to `to_port` on the next
/// switch and delayed by the link's propagation latency.
#[derive(Debug)]
pub struct DepartureTap {
    /// Which egress port to tap.
    pub from_port: u16,
    /// Ingress re-address on the next hop.
    pub to_port: u16,
    /// Link propagation + serialization-start offset in nanoseconds.
    pub link_delay: Nanos,
    departures: Vec<(Nanos, SimPacket)>,
}

impl DepartureTap {
    /// Tap `from_port`, delivering into `to_port` after `link_delay`.
    pub fn new(from_port: u16, to_port: u16, link_delay: Nanos) -> DepartureTap {
        DepartureTap {
            from_port,
            to_port,
            link_delay,
            departures: Vec::new(),
        }
    }

    /// Number of captured departures.
    pub fn len(&self) -> usize {
        self.departures.len()
    }

    /// True when nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.departures.is_empty()
    }

    /// Convert the captured departures into the next hop's arrival stream.
    ///
    /// Each packet arrives downstream when its *last bit* clears the link:
    /// dequeue time + link delay. Queueing metadata is reset — the next
    /// switch stamps its own (per-hop metadata is exactly what the paper's
    /// per-switch deployment model implies).
    pub fn into_arrivals(self) -> Vec<Arrival> {
        let mut arrivals: Vec<Arrival> = self
            .departures
            .into_iter()
            .map(|(deq_at, pkt)| {
                let mut fresh = SimPacket::new(pkt.flow, pkt.len, deq_at + self.link_delay);
                fresh.priority = pkt.priority;
                Arrival::new(fresh, self.to_port)
            })
            .collect();
        arrivals.sort_by_key(|a| a.pkt.arrival);
        arrivals
    }
}

impl QueueHooks for DepartureTap {
    fn on_dequeue(&mut self, pkt: &SimPacket, port: u16, _depth_after: u32, now: Nanos) {
        if port == self.from_port {
            self.departures.push((now, *pkt));
        }
    }
}

/// Run a linear chain of switches over `arrivals`, tapping port
/// `tap_port` of each hop into port `tap_port` of the next with
/// `link_delay` between hops. Extra hooks are attached at every hop.
///
/// Returns the per-hop switches for stats inspection.
pub fn run_chain(
    mut switches: Vec<Switch>,
    arrivals: Vec<Arrival>,
    tap_port: u16,
    link_delay: Nanos,
    tick_period: Nanos,
    mut per_hop_hooks: Vec<Vec<&mut dyn QueueHooks>>,
) -> Vec<Switch> {
    assert_eq!(
        switches.len(),
        per_hop_hooks.len(),
        "one hook set per hop (may be empty)"
    );
    let mut stream = arrivals;
    for (hop, sw) in switches.iter_mut().enumerate() {
        let mut tap = DepartureTap::new(tap_port, tap_port, link_delay);
        {
            let hooks = &mut per_hop_hooks[hop];
            let mut all: Vec<&mut dyn QueueHooks> = Vec::with_capacity(hooks.len() + 1);
            all.push(&mut tap);
            for h in hooks.iter_mut() {
                all.push(&mut **h);
            }
            sw.run(stream, &mut all, tick_period);
        }
        stream = tap.into_arrivals();
    }
    switches
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::switch::SwitchConfig;
    use pq_packet::FlowId;

    fn burst(n: u64, len: u32, gap: Nanos) -> Vec<Arrival> {
        (0..n)
            .map(|i| Arrival::new(SimPacket::new(FlowId((i % 3) as u32), len, i * gap), 0))
            .collect()
    }

    #[test]
    fn tap_captures_and_readdresses() {
        let mut sw = Switch::new(SwitchConfig::single_port(10.0, 10_000));
        let mut tap = DepartureTap::new(0, 0, 1_000);
        sw.run(burst(10, 1500, 2_000), &mut [&mut tap], 0);
        assert_eq!(tap.len(), 10);
        let arrivals = tap.into_arrivals();
        // Downstream arrivals are sorted and offset by the link delay.
        assert!(arrivals
            .windows(2)
            .all(|w| w[0].pkt.arrival <= w[1].pkt.arrival));
        assert!(arrivals[0].pkt.arrival >= 1_000);
        // Metadata was reset for the next hop.
        assert_eq!(arrivals[0].pkt.meta.enq_qdepth, 0);
    }

    #[test]
    fn upstream_bottleneck_paces_downstream() {
        // Hop 1 is a 10 Gbps bottleneck fed by a dense burst; hop 2 is
        // identical. Because hop 1 spaces packets out to line rate, hop 2
        // sees an already-paced stream and builds (almost) no queue — the
        // cascade *shapes* traffic.
        let switches = vec![
            Switch::new(SwitchConfig::single_port(10.0, 32_768)),
            Switch::new(SwitchConfig::single_port(10.0, 32_768)),
        ];
        // 500 packets arriving every 200 ns (6x oversubscribed).
        let out = run_chain(
            switches,
            burst(500, 1500, 200),
            0,
            5_000,
            0,
            vec![Vec::new(), Vec::new()],
        );
        let hop1 = out[0].port_stats(0);
        let hop2 = out[1].port_stats(0);
        assert_eq!(hop1.dequeued, 500);
        assert_eq!(hop2.dequeued, 500);
        assert!(
            hop1.max_depth_cells > 50 * 19,
            "hop 1 should congest: {}",
            hop1.max_depth_cells
        );
        assert!(
            hop2.max_depth_cells <= 2 * 19,
            "hop 2 should stay nearly empty: {}",
            hop2.max_depth_cells
        );
    }

    #[test]
    fn downstream_bottleneck_congests_second_hop() {
        // Hop 1 at 40 Gbps barely queues; hop 2 at 10 Gbps takes the hit.
        let switches = vec![
            Switch::new(SwitchConfig::single_port(40.0, 32_768)),
            Switch::new(SwitchConfig::single_port(10.0, 32_768)),
        ];
        let out = run_chain(
            switches,
            burst(500, 1500, 400), // 30 Gbps offered
            0,
            5_000,
            0,
            vec![Vec::new(), Vec::new()],
        );
        assert!(out[0].port_stats(0).max_depth_cells < 20 * 19);
        assert!(out[1].port_stats(0).max_depth_cells > 100 * 19);
    }
}
