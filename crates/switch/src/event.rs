//! The event calendar driving the discrete-event simulation.
//!
//! Only one kind of internal event exists: a port finishing the transmission
//! of a packet ([`Event::TxComplete`]). Packet arrivals come from the sorted
//! input stream and periodic control-plane ticks are synthesized by the run
//! loop, so the calendar stays tiny and allocation-light.

use pq_packet::Nanos;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An internal simulator event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// Port `port` finishes serializing its current packet at the scheduled
    /// time and can begin the next transmission.
    TxComplete { port: u16 },
}

/// A scheduled event with a deterministic tie-break.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Scheduled {
    at: Nanos,
    /// Monotonic insertion counter so simultaneous events fire in the order
    /// they were scheduled, keeping runs reproducible.
    seq: u64,
    event: Event,
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is on top.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered event calendar.
#[derive(Debug, Default)]
pub struct Calendar {
    heap: BinaryHeap<Scheduled>,
    next_seq: u64,
}

impl Calendar {
    /// Create an empty calendar.
    pub fn new() -> Calendar {
        Calendar::default()
    }

    /// Schedule `event` at absolute time `at`.
    pub fn schedule(&mut self, at: Nanos, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Nanos> {
        self.heap.peek().map(|s| s.at)
    }

    /// Pop the earliest pending event.
    pub fn pop(&mut self) -> Option<(Nanos, Event)> {
        self.heap.pop().map(|s| (s.at, s.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut cal = Calendar::new();
        cal.schedule(30, Event::TxComplete { port: 3 });
        cal.schedule(10, Event::TxComplete { port: 1 });
        cal.schedule(20, Event::TxComplete { port: 2 });
        let order: Vec<Nanos> = std::iter::from_fn(|| cal.pop()).map(|(t, _)| t).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn simultaneous_events_fire_in_schedule_order() {
        let mut cal = Calendar::new();
        cal.schedule(5, Event::TxComplete { port: 9 });
        cal.schedule(5, Event::TxComplete { port: 1 });
        let (_, first) = cal.pop().unwrap();
        let (_, second) = cal.pop().unwrap();
        assert_eq!(first, Event::TxComplete { port: 9 });
        assert_eq!(second, Event::TxComplete { port: 1 });
    }

    #[test]
    fn peek_matches_pop() {
        let mut cal = Calendar::new();
        assert_eq!(cal.peek_time(), None);
        cal.schedule(42, Event::TxComplete { port: 0 });
        assert_eq!(cal.peek_time(), Some(42));
        assert_eq!(cal.pop().unwrap().0, 42);
        assert!(cal.is_empty());
    }
}
