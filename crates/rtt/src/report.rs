//! Mergeable, wire-encodable RTT reports.
//!
//! A report is the unit that leaves the data plane: everything one port's
//! RTT table measured over `[min_t, max_t]` — per-flow histograms, the
//! port-wide aggregate, degradation counters, and a bounded list of
//! timestamped samples for standing queries.
//!
//! **Canonical form.** Flows are sorted by id and unique; samples are
//! sorted by `(t_ns, flow, rtt_ns)` and clipped to the *first*
//! [`MERGE_SAMPLE_CAP`] in that order. Keeping the smallest-`cap` elements
//! of a sorted union is associative and commutative (an element beyond the
//! cap of a sub-merge is beyond the cap of any super-merge), which is what
//! makes routed scatter-gather answers bit-identical to a single-daemon
//! oracle regardless of merge order. Clipping sets a `clipped` flag that
//! ORs across merges, so degradation is never silent.
//!
//! The byte codec here is used both as the `.pqa` RTT-segment body
//! (segment kind 1) and inside serve's wire frames.

use crate::hist::{RttHist, NUM_BUCKETS};
use crate::table::{FlowRttTable, RttSample, TableCounters};
use pq_packet::Nanos;

/// Samples a report retains after merge; beyond this, clipped (flagged).
pub const MERGE_SAMPLE_CAP: usize = 65_536;

/// Codec version for encoded reports.
pub const REPORT_VERSION: u8 = 1;

/// Hard decode ceilings so a hostile body cannot force huge allocations.
const MAX_FLOWS_DECODE: u64 = 1 << 20;
const MAX_SAMPLES_DECODE: u64 = MERGE_SAMPLE_CAP as u64;

/// One flow's merged RTT histogram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlowRtt {
    /// Interned flow id.
    pub flow: u32,
    /// The flow's RTT histogram.
    pub hist: RttHist,
}

/// Everything one port's RTT table measured over a time span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RttReport {
    /// Egress port the measurements belong to.
    pub port: u16,
    /// Earliest sim time covered.
    pub min_t: Nanos,
    /// Latest sim time covered.
    pub max_t: Nanos,
    /// Port-wide histogram over all samples.
    pub agg: RttHist,
    /// Per-flow histograms, sorted by flow id, unique.
    pub flows: Vec<FlowRtt>,
    /// Degradation counters from the data-plane table.
    pub counters: TableCounters,
    /// True when the sample list was clipped by a merge.
    pub clipped: bool,
    /// Timestamped samples, sorted by `(t_ns, flow, rtt_ns)`.
    pub samples: Vec<RttSample>,
}

impl RttReport {
    /// An empty report for `port`.
    pub fn empty(port: u16) -> RttReport {
        RttReport {
            port,
            min_t: Nanos::MAX,
            max_t: 0,
            agg: RttHist::new(),
            flows: Vec::new(),
            counters: TableCounters::default(),
            clipped: false,
            samples: Vec::new(),
        }
    }

    /// Snapshot a table into a report covering `[min_t, max_t]`.
    pub fn from_table(port: u16, min_t: Nanos, max_t: Nanos, table: &FlowRttTable) -> RttReport {
        let mut agg = RttHist::new();
        let flows: Vec<FlowRtt> = table
            .flow_hists()
            .into_iter()
            .map(|(flow, hist)| {
                agg.merge(&hist);
                FlowRtt { flow, hist }
            })
            .collect();
        let mut samples = table.samples().to_vec();
        samples.sort_unstable();
        let clipped = samples.len() > MERGE_SAMPLE_CAP;
        samples.truncate(MERGE_SAMPLE_CAP);
        RttReport {
            port,
            min_t,
            max_t,
            agg,
            flows,
            counters: *table.counters(),
            clipped,
            samples,
        }
    }

    /// Total samples across the report.
    pub fn sample_count(&self) -> u64 {
        self.agg.count
    }

    /// True when any bounded-memory loss occurred anywhere in the lineage.
    pub fn degraded(&self) -> bool {
        self.counters.degraded() || self.clipped
    }

    /// Keep only the `max` slowest flows (by mean RTT, ties broken by
    /// flow id ascending), returning how many were dropped. `max == 0`
    /// keeps everything. The survivors stay sorted by flow id, so the
    /// result is still canonical; the port-wide aggregate and sample
    /// list are untouched — truncation caps the per-flow listing, not
    /// the measurement. This is a terminal, presentation-layer step:
    /// whoever answers the client applies it *after* every merge, which
    /// is what keeps routed scatter-gather answers bit-identical to a
    /// single daemon's.
    pub fn truncate_flows(&mut self, max: usize) -> usize {
        if max == 0 || self.flows.len() <= max {
            return 0;
        }
        let dropped = self.flows.len() - max;
        // Exact mean comparison via cross-multiplication — no float
        // rounding, so the selection is deterministic everywhere.
        self.flows.sort_by(|a, b| {
            let lhs = u128::from(b.hist.sum) * u128::from(a.hist.count.max(1));
            let rhs = u128::from(a.hist.sum) * u128::from(b.hist.count.max(1));
            lhs.cmp(&rhs).then(a.flow.cmp(&b.flow))
        });
        self.flows.truncate(max);
        self.flows.sort_by_key(|f| f.flow);
        dropped
    }

    /// Fold `other` in. Associative and commutative over canonical-form
    /// reports; the port must match.
    pub fn merge(&mut self, other: &RttReport) {
        debug_assert_eq!(self.port, other.port, "merging reports across ports");
        self.min_t = self.min_t.min(other.min_t);
        self.max_t = self.max_t.max(other.max_t);
        self.agg.merge(&other.agg);
        // Merge-join the sorted flow lists.
        let mut merged = Vec::with_capacity(self.flows.len() + other.flows.len());
        let (mut i, mut j) = (0, 0);
        while i < self.flows.len() || j < other.flows.len() {
            let take_self = match (self.flows.get(i), other.flows.get(j)) {
                (Some(a), Some(b)) => {
                    if a.flow == b.flow {
                        let mut hist = a.hist.clone();
                        hist.merge(&b.hist);
                        merged.push(FlowRtt { flow: a.flow, hist });
                        i += 1;
                        j += 1;
                        continue;
                    }
                    a.flow < b.flow
                }
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if take_self {
                merged.push(self.flows[i].clone());
                i += 1;
            } else {
                merged.push(other.flows[j].clone());
                j += 1;
            }
        }
        self.flows = merged;
        self.counters.seq_samples += other.counters.seq_samples;
        self.counters.spin_edges += other.counters.spin_edges;
        self.counters.collisions += other.counters.collisions;
        self.counters.evictions += other.counters.evictions;
        self.counters.sample_drops += other.counters.sample_drops;
        self.clipped |= other.clipped;
        let mut samples = Vec::with_capacity(self.samples.len() + other.samples.len());
        samples.extend_from_slice(&self.samples);
        samples.extend_from_slice(&other.samples);
        samples.sort_unstable();
        if samples.len() > MERGE_SAMPLE_CAP {
            samples.truncate(MERGE_SAMPLE_CAP);
            self.clipped = true;
        }
        self.samples = samples;
    }

    /// Encode to the canonical byte form (segment body / wire payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.flows.len() * 32 + self.samples.len() * 6);
        out.push(REPORT_VERSION);
        put_varint(&mut out, self.port as u64);
        put_varint(&mut out, self.min_t);
        put_varint(&mut out, self.max_t);
        put_varint(&mut out, self.counters.seq_samples);
        put_varint(&mut out, self.counters.spin_edges);
        put_varint(&mut out, self.counters.collisions);
        put_varint(&mut out, self.counters.evictions);
        put_varint(&mut out, self.counters.sample_drops);
        out.push(self.clipped as u8);
        put_hist(&mut out, &self.agg);
        put_varint(&mut out, self.flows.len() as u64);
        for f in &self.flows {
            put_varint(&mut out, f.flow as u64);
            put_hist(&mut out, &f.hist);
        }
        put_varint(&mut out, self.samples.len() as u64);
        let mut prev_t = 0u64;
        for s in &self.samples {
            put_varint(&mut out, s.t_ns - prev_t);
            put_varint(&mut out, s.flow as u64);
            put_varint(&mut out, s.rtt_ns);
            prev_t = s.t_ns;
        }
        out
    }

    /// Decode a canonical byte form, rejecting malformed or hostile input.
    pub fn decode(bytes: &[u8]) -> Result<RttReport, CodecError> {
        let mut cur = bytes;
        let version = get_u8(&mut cur)?;
        if version != REPORT_VERSION {
            return Err(CodecError("unsupported rtt report version"));
        }
        let port = get_varint(&mut cur)?;
        if port > u16::MAX as u64 {
            return Err(CodecError("port out of range"));
        }
        let min_t = get_varint(&mut cur)?;
        let max_t = get_varint(&mut cur)?;
        let counters = TableCounters {
            seq_samples: get_varint(&mut cur)?,
            spin_edges: get_varint(&mut cur)?,
            collisions: get_varint(&mut cur)?,
            evictions: get_varint(&mut cur)?,
            sample_drops: get_varint(&mut cur)?,
        };
        let flags = get_u8(&mut cur)?;
        if flags > 1 {
            return Err(CodecError("unknown rtt report flags"));
        }
        let agg = get_hist(&mut cur)?;
        let n_flows = get_varint(&mut cur)?;
        if n_flows > MAX_FLOWS_DECODE {
            return Err(CodecError("rtt flow count exceeds decode budget"));
        }
        let mut flows = Vec::with_capacity(n_flows as usize);
        let mut prev_flow: Option<u64> = None;
        for _ in 0..n_flows {
            let flow = get_varint(&mut cur)?;
            if flow > u32::MAX as u64 {
                return Err(CodecError("flow id out of range"));
            }
            if let Some(p) = prev_flow {
                if flow <= p {
                    return Err(CodecError("rtt flows not sorted unique"));
                }
            }
            prev_flow = Some(flow);
            flows.push(FlowRtt {
                flow: flow as u32,
                hist: get_hist(&mut cur)?,
            });
        }
        let n_samples = get_varint(&mut cur)?;
        if n_samples > MAX_SAMPLES_DECODE {
            return Err(CodecError("rtt sample count exceeds decode budget"));
        }
        let mut samples = Vec::with_capacity(n_samples as usize);
        let mut prev_t = 0u64;
        for _ in 0..n_samples {
            let dt = get_varint(&mut cur)?;
            let t_ns = prev_t
                .checked_add(dt)
                .ok_or(CodecError("sample time overflow"))?;
            let flow = get_varint(&mut cur)?;
            if flow > u32::MAX as u64 {
                return Err(CodecError("sample flow id out of range"));
            }
            let rtt_ns = get_varint(&mut cur)?;
            samples.push(RttSample {
                t_ns,
                flow: flow as u32,
                rtt_ns,
            });
            prev_t = t_ns;
        }
        if !cur.is_empty() {
            return Err(CodecError("trailing bytes after rtt report"));
        }
        Ok(RttReport {
            port: port as u16,
            min_t,
            max_t,
            agg,
            flows,
            counters,
            clipped: flags == 1,
            samples,
        })
    }
}

/// Decode failure with a static reason.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CodecError(pub &'static str);

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rtt codec: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

// ---- primitive codec -----------------------------------------------------

/// LEB128-encode `v`.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// LEB128-decode from the front of `cur`, advancing it.
pub fn get_varint(cur: &mut &[u8]) -> Result<u64, CodecError> {
    let mut v = 0u64;
    for shift in (0..64).step_by(7) {
        let byte = get_u8(cur)?;
        v |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            if shift == 63 && byte > 1 {
                return Err(CodecError("varint overflows u64"));
            }
            return Ok(v);
        }
    }
    Err(CodecError("varint too long"))
}

fn get_u8(cur: &mut &[u8]) -> Result<u8, CodecError> {
    let (&b, rest) = cur
        .split_first()
        .ok_or(CodecError("truncated rtt report"))?;
    *cur = rest;
    Ok(b)
}

/// Encode a histogram: moments, then only the non-empty buckets.
pub fn put_hist(out: &mut Vec<u8>, h: &RttHist) {
    put_varint(out, h.count);
    if h.count == 0 {
        return;
    }
    put_varint(out, h.sum);
    put_varint(out, h.min);
    put_varint(out, h.max);
    let nonzero = h.buckets.iter().filter(|&&n| n > 0).count() as u64;
    put_varint(out, nonzero);
    for (idx, &n) in h.buckets.iter().enumerate() {
        if n > 0 {
            out.push(idx as u8);
            put_varint(out, n);
        }
    }
}

/// Decode a histogram, validating internal consistency.
pub fn get_hist(cur: &mut &[u8]) -> Result<RttHist, CodecError> {
    let count = get_varint(cur)?;
    let mut h = RttHist::new();
    h.count = count;
    if count == 0 {
        return Ok(h);
    }
    h.sum = get_varint(cur)?;
    h.min = get_varint(cur)?;
    h.max = get_varint(cur)?;
    if h.min > h.max {
        return Err(CodecError("hist min above max"));
    }
    let nonzero = get_varint(cur)?;
    if nonzero > NUM_BUCKETS as u64 {
        return Err(CodecError("hist bucket count out of range"));
    }
    let mut total = 0u64;
    let mut prev: Option<u8> = None;
    for _ in 0..nonzero {
        let idx = get_u8(cur)?;
        if idx as usize >= NUM_BUCKETS {
            return Err(CodecError("hist bucket index out of range"));
        }
        if let Some(p) = prev {
            if idx <= p {
                return Err(CodecError("hist buckets not sorted unique"));
            }
        }
        prev = Some(idx);
        let n = get_varint(cur)?;
        if n == 0 {
            return Err(CodecError("hist empty bucket encoded"));
        }
        total = total
            .checked_add(n)
            .ok_or(CodecError("hist bucket overflow"))?;
        h.buckets[idx as usize] = n;
    }
    if total != count {
        return Err(CodecError("hist bucket sum mismatches count"));
    }
    Ok(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::{Dir, ObsKind, RttObs};
    use crate::table::{FlowRttTable, TableConfig};

    fn sample_report(port: u16, seed: u64) -> RttReport {
        let mut t = FlowRttTable::new(TableConfig::default());
        for i in 0..20u64 {
            let flow = ((seed + i) % 5) as u32;
            let send = seed * 1000 + i * 100;
            t.observe(
                &RttObs {
                    flow,
                    dir: Dir::ToServer,
                    kind: ObsKind::Data { expect_ack: i },
                },
                send,
            );
            t.observe(
                &RttObs {
                    flow,
                    dir: Dir::ToClient,
                    kind: ObsKind::Ack { ack: i },
                },
                send + 50 + seed * 7 + i,
            );
        }
        RttReport::from_table(port, seed * 1000, seed * 1000 + 3000, &t)
    }

    #[test]
    fn encode_decode_round_trips() {
        let r = sample_report(3, 2);
        let bytes = r.encode();
        let back = RttReport::decode(&bytes).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn empty_report_round_trips() {
        let r = RttReport::empty(9);
        let back = RttReport::decode(&r.encode()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn decode_rejects_truncation_at_every_cut() {
        let bytes = sample_report(1, 5).encode();
        for cut in 0..bytes.len() {
            assert!(
                RttReport::decode(&bytes[..cut]).is_err(),
                "decode accepted truncation at {cut}"
            );
        }
    }

    #[test]
    fn decode_rejects_trailing_bytes() {
        let mut bytes = sample_report(1, 5).encode();
        bytes.push(0);
        assert!(RttReport::decode(&bytes).is_err());
    }

    #[test]
    fn decode_rejects_inflated_counts() {
        let r = sample_report(1, 5);
        let mut bytes = Vec::new();
        bytes.push(REPORT_VERSION);
        put_varint(&mut bytes, r.port as u64);
        put_varint(&mut bytes, r.min_t);
        put_varint(&mut bytes, r.max_t);
        for _ in 0..5 {
            put_varint(&mut bytes, 0);
        }
        bytes.push(0);
        put_hist(&mut bytes, &r.agg);
        put_varint(&mut bytes, MAX_FLOWS_DECODE + 1); // hostile flow count
        assert!(RttReport::decode(&bytes).is_err());
    }

    #[test]
    fn merge_combines_flows_and_counters() {
        let mut a = sample_report(2, 1);
        let b = sample_report(2, 9);
        let n = a.sample_count() + b.sample_count();
        a.merge(&b);
        assert_eq!(a.sample_count(), n);
        assert!(a.flows.windows(2).all(|w| w[0].flow < w[1].flow));
        assert!(a.samples.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(a.min_t, 1000);
        assert_eq!(a.max_t, 12_000);
    }

    #[test]
    fn truncate_keeps_slowest_flows_in_canonical_order() {
        let mut r = RttReport::empty(7);
        // Means: flow 1 → 100, flow 2 → 900, flow 3 → 500, flow 4 → 900
        // (tie with flow 2, broken toward the lower flow id).
        for (flow, rtts) in [
            (1u32, vec![100u64]),
            (2, vec![800, 1000]),
            (3, vec![500]),
            (4, vec![900]),
        ] {
            let mut hist = RttHist::new();
            for v in rtts {
                hist.record(v);
            }
            r.flows.push(FlowRtt { flow, hist });
        }
        assert_eq!(r.clone().truncate_flows(0), 0);
        assert_eq!(r.clone().truncate_flows(4), 0);
        let dropped = r.truncate_flows(2);
        assert_eq!(dropped, 2);
        assert_eq!(
            r.flows.iter().map(|f| f.flow).collect::<Vec<_>>(),
            vec![2, 4]
        );
    }

    #[test]
    fn merge_identity_is_empty() {
        let mut a = sample_report(4, 3);
        let before = a.clone();
        a.merge(&RttReport::empty(4));
        assert_eq!(a, before);
    }
}
