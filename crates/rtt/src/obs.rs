//! Transport-layer observations the RTT engines consume.
//!
//! The simulator's `SimPacket` deliberately carries no transport payload —
//! queues only care about bytes. RTT measurement needs sequence numbers,
//! ACKs, and spin bits, so the workload generator emits a side table of
//! [`RttObs`] records and stamps each packet's `seqno` with its index. The
//! switch hook resolves `seqno → RttObs` at enqueue time, exactly where a
//! hardware parser would extract the same header fields.

/// Direction of a packet relative to the flow's client.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize)]
pub enum Dir {
    /// Client → server (data packets, spin-carrying short-header packets).
    ToServer,
    /// Server → client (ACKs).
    ToClient,
}

/// The transport fields one packet exposes to the measurement engines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ObsKind {
    /// TCP-style data (or SYN) carrying bytes through `expect_ack - 1`;
    /// the matching ACK closes the RTT sample.
    Data {
        /// Cumulative ACK number that acknowledges this packet.
        expect_ack: u64,
    },
    /// TCP-style cumulative ACK.
    Ack {
        /// ACK number carried.
        ack: u64,
    },
    /// QUIC-style short-header packet exposing the spin bit.
    Spin {
        /// Packet number (monotone at the sender; reordering observed).
        pkt_num: u64,
        /// Spin-bit value.
        spin: bool,
    },
}

/// One packet's observation record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RttObs {
    /// Interned flow id the packet belongs to.
    pub flow: u32,
    /// Direction relative to the client.
    pub dir: Dir,
    /// Transport fields exposed.
    pub kind: ObsKind,
}
