//! # pq-rtt — passive RTT diagnosis in the data plane
//!
//! PrintQueue attributes latency to *queues*; this crate attributes it to
//! *paths*. Two measurement engines run inside the switch pipeline next to
//! the time-window registers:
//!
//! * **Per-flow RTT histograms** (the P4TG RTT-monitoring enhancement):
//!   hash-indexed flow slots pair SYN/ACK and data/ACK timestamps by
//!   sequence match and accumulate log-scale histograms under a fixed
//!   memory budget, with collisions and evictions accounted rather than
//!   hidden.
//! * **QUIC spin-bit edge detection** (Kunze et al., Tofino): a passive
//!   observer times the spin-bit flips of QUIC-like flows, rejecting
//!   reordered packets by packet number so samples are never negative.
//!
//! Everything the engines measure leaves the data plane as an
//! [`RttReport`] — canonical, byte-encodable, and associatively mergeable,
//! so archived segments, live tables, and routed shards all compose into
//! one answer. The [`quic`] module generates the ground-truth workload
//! (configurable RTT, jitter, loss, reordering) that the
//! `ext_rtt_precision` experiment grades the engines against.

pub mod hist;
pub mod hook;
pub mod obs;
pub mod quic;
pub mod report;
pub mod table;

pub use hist::{RttHist, NUM_BUCKETS};
pub use hook::RttHook;
pub use obs::{Dir, ObsKind, RttObs};
pub use quic::{FlowTruth, RttTrace, RttWorkload};
pub use report::{CodecError, FlowRtt, RttReport, MERGE_SAMPLE_CAP, REPORT_VERSION};
pub use table::{FlowRttTable, RttSample, TableConfig, TableCounters};

/// The `.pqa` segment kind RTT report bodies are spilled under.
pub const RTT_SEGMENT_KIND: u64 = 1;

#[cfg(test)]
mod proptests {
    use crate::obs::{Dir, ObsKind, RttObs};
    use crate::report::{FlowRtt, RttReport};
    use crate::table::{FlowRttTable, RttSample, TableConfig};
    use crate::RttHist;
    use proptest::prelude::*;

    fn arb_hist() -> impl Strategy<Value = RttHist> {
        prop::collection::vec(0u64..3_000_000, 1..40).prop_map(|vs| {
            let mut h = RttHist::new();
            for v in vs {
                h.record(v);
            }
            h
        })
    }

    fn arb_report(port: u16) -> impl Strategy<Value = RttReport> {
        (
            prop::collection::vec((0u32..12, arb_hist()), 0..6),
            prop::collection::vec((0u64..1_000_000, 0u32..12, 0u64..3_000_000), 0..30),
            0u64..4,
            0u64..4,
        )
            .prop_map(move |(flows, raw_samples, collisions, evictions)| {
                let mut agg = RttHist::new();
                // Canonicalize: sorted by flow id, duplicates merged.
                let mut sorted = flows;
                sorted.sort_by_key(|(flow, _)| *flow);
                let mut flows: Vec<FlowRtt> = Vec::new();
                for (flow, hist) in sorted {
                    agg.merge(&hist);
                    match flows.last_mut() {
                        Some(last) if last.flow == flow => last.hist.merge(&hist),
                        _ => flows.push(FlowRtt { flow, hist }),
                    }
                }
                let mut samples: Vec<RttSample> = raw_samples
                    .into_iter()
                    .map(|(t_ns, flow, rtt_ns)| RttSample { t_ns, flow, rtt_ns })
                    .collect();
                samples.sort_unstable();
                let mut r = RttReport::empty(port);
                r.min_t = 0;
                r.max_t = 1_000_000;
                r.agg = agg;
                r.flows = flows;
                r.counters.collisions = collisions;
                r.counters.evictions = evictions;
                r.samples = samples;
                r
            })
    }

    proptest! {
        /// Merge is commutative over canonical reports.
        #[test]
        fn merge_is_commutative(a in arb_report(4), b in arb_report(4)) {
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            prop_assert_eq!(&ab, &ba);
            // …and bit-identical once encoded.
            prop_assert_eq!(ab.encode(), ba.encode());
        }

        /// Merge is associative over canonical reports.
        #[test]
        fn merge_is_associative(a in arb_report(4), b in arb_report(4), c in arb_report(4)) {
            let mut left = a.clone();
            left.merge(&b);
            left.merge(&c);
            let mut bc = b.clone();
            bc.merge(&c);
            let mut right = a.clone();
            right.merge(&bc);
            prop_assert_eq!(&left, &right);
            prop_assert_eq!(left.encode(), right.encode());
        }

        /// Any canonical report survives an encode/decode round trip
        /// bit-identically.
        #[test]
        fn report_codec_round_trips(r in arb_report(2)) {
            let bytes = r.encode();
            let back = RttReport::decode(&bytes).unwrap();
            prop_assert_eq!(&back, &r);
            prop_assert_eq!(back.encode(), bytes);
        }

        /// Spin-bit edge detection never emits a negative (wrapped) RTT
        /// sample, no matter how packet numbers and spin values are
        /// reordered within a bounded window.
        #[test]
        fn spin_samples_never_negative(
            // (pkt_num, spin) pairs delivered with bounded displacement.
            pkts in prop::collection::vec((0u64..64, any::<bool>()), 1..200),
            base_gap in 1_000u64..100_000,
        ) {
            let mut t = FlowRttTable::new(TableConfig::default());
            for (i, (pkt_num, spin)) in pkts.iter().enumerate() {
                // Monotone observation clock; arbitrary pkt_num order
                // models arbitrary reordering severity.
                let now = i as u64 * base_gap;
                t.observe(
                    &RttObs { flow: 1, dir: Dir::ToServer, kind: ObsKind::Spin { pkt_num: *pkt_num, spin: *spin } },
                    now,
                );
            }
            // All samples must be plausible forward durations: bounded by
            // the total observed time span. A wrapped negative would be
            // astronomically larger.
            let span = pkts.len() as u64 * base_gap;
            for s in t.samples() {
                prop_assert!(s.rtt_ns <= span, "sample {} exceeds span {}", s.rtt_ns, span);
            }
        }

        /// Sequence-match samples are exactly the send→ack gap even under
        /// interleaving across flows.
        #[test]
        fn seq_samples_match_gaps(
            gaps in prop::collection::vec((0u32..8, 1_000u64..500_000), 1..50),
        ) {
            let mut t = FlowRttTable::new(TableConfig::default());
            let mut now = 0u64;
            let mut expected: Vec<(u32, u64)> = Vec::new();
            for (i, (flow, gap)) in gaps.iter().enumerate() {
                let seq = i as u64 + 1;
                t.observe(
                    &RttObs { flow: *flow, dir: Dir::ToServer, kind: ObsKind::Data { expect_ack: seq } },
                    now,
                );
                t.observe(
                    &RttObs { flow: *flow, dir: Dir::ToClient, kind: ObsKind::Ack { ack: seq } },
                    now + gap,
                );
                expected.push((*flow, *gap));
                now += 600_000; // past any gap, so pendings never collide
            }
            let got: Vec<(u32, u64)> =
                t.samples().iter().map(|s| (s.flow, s.rtt_ns)).collect();
            prop_assert_eq!(got, expected);
        }
    }
}
