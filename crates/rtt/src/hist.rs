//! Bounded-memory log-scale RTT histogram.
//!
//! The data-plane budget for a flow slot is fixed: 64 power-of-two buckets
//! plus exact `count`/`sum`/`min`/`max` moments. The moments make the mean
//! exact (the per-flow RTT point estimate the precision experiment grades),
//! while the buckets answer quantile queries with at most one-octave
//! resolution error — the same trade P4TG's histogram enhancement makes on
//! real hardware, where per-flow sample lists are unaffordable.
//!
//! Merge is a plain element-wise sum (plus min/max folds), so partial
//! histograms composed across segments, epochs, or shards commute and
//! associate — the property the router's scatter-gather relies on.

/// Number of log2 buckets per histogram.
pub const NUM_BUCKETS: usize = 64;

/// A mergeable log2-bucketed histogram of RTT samples in nanoseconds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RttHist {
    /// Samples recorded.
    pub count: u64,
    /// Exact sum of all samples (mean = `sum / count`).
    pub sum: u64,
    /// Smallest sample, `u64::MAX` when empty.
    pub min: u64,
    /// Largest sample, `0` when empty.
    pub max: u64,
    /// Log2 buckets: bucket 0 holds 0, bucket `i` holds `[2^(i-1), 2^i)`.
    pub buckets: [u64; NUM_BUCKETS],
}

impl Default for RttHist {
    fn default() -> RttHist {
        RttHist::new()
    }
}

impl RttHist {
    /// An empty histogram.
    pub fn new() -> RttHist {
        RttHist {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; NUM_BUCKETS],
        }
    }

    /// Bucket index for a sample: 0 for 0, otherwise one plus the position
    /// of the highest set bit, clamped to the last bucket.
    pub fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            ((64 - v.leading_zeros()) as usize).min(NUM_BUCKETS - 1)
        }
    }

    /// Inclusive upper bound of a bucket — the value `quantile` reports.
    pub fn bucket_bound(idx: usize) -> u64 {
        if idx == 0 {
            0
        } else if idx >= NUM_BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << idx) - 1
        }
    }

    /// Record one RTT sample.
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[Self::bucket_of(v)] += 1;
    }

    /// Fold another histogram in. Element-wise, so merge order never
    /// changes the result.
    pub fn merge(&mut self, other: &RttHist) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += *o;
        }
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact mean of the recorded samples, 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Upper bound of the bucket holding the `q`-quantile sample
    /// (`0.0 ≤ q ≤ 1.0`), clamped to the exact observed `max`. Returns 0
    /// when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_bound(idx).min(self.max);
            }
        }
        self.max
    }

    /// Median bucket bound.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th-percentile bucket bound.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_the_u64_range() {
        assert_eq!(RttHist::bucket_of(0), 0);
        assert_eq!(RttHist::bucket_of(1), 1);
        assert_eq!(RttHist::bucket_of(2), 2);
        assert_eq!(RttHist::bucket_of(3), 2);
        assert_eq!(RttHist::bucket_of(4), 3);
        assert_eq!(RttHist::bucket_of(u64::MAX), NUM_BUCKETS - 1);
        for v in [0u64, 1, 2, 3, 7, 8, 1_000_000, u64::MAX / 2] {
            let idx = RttHist::bucket_of(v);
            assert!(v <= RttHist::bucket_bound(idx), "v={v} idx={idx}");
            if idx > 0 {
                assert!(v > RttHist::bucket_bound(idx - 1), "v={v} idx={idx}");
            }
        }
    }

    #[test]
    fn moments_are_exact() {
        let mut h = RttHist::new();
        for v in [100u64, 200, 300, 400] {
            h.record(v);
        }
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 1000);
        assert_eq!(h.mean(), 250);
        assert_eq!(h.min, 100);
        assert_eq!(h.max, 400);
    }

    #[test]
    fn quantile_reports_a_covering_bound() {
        let mut h = RttHist::new();
        for v in 1..=1000u64 {
            h.record(v * 1000); // 1µs .. 1ms
        }
        let p50 = h.p50();
        // True median is 500_500 ns; the bound must cover it within one
        // octave.
        assert!(p50 >= 500_500, "p50 bound {p50} below true median");
        assert!(
            p50 < 2 * 524_288,
            "p50 bound {p50} more than one octave out"
        );
        assert!(h.p99() <= h.max);
        assert_eq!(
            h.quantile(0.0),
            RttHist::bucket_bound(RttHist::bucket_of(1000))
        );
    }

    #[test]
    fn empty_histogram_is_inert() {
        let h = RttHist::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), 0);
        assert_eq!(h.quantile(0.5), 0);
        let mut a = RttHist::new();
        a.record(7);
        let before = a.clone();
        a.merge(&h);
        assert_eq!(a, before);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut a = RttHist::new();
        let mut b = RttHist::new();
        let mut whole = RttHist::new();
        for (i, v) in [5u64, 9, 130, 4096, 77, 0, 1].iter().enumerate() {
            if i % 2 == 0 {
                a.record(*v);
            } else {
                b.record(*v);
            }
            whole.record(*v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }
}
