//! The switch-pipeline attachment point for RTT measurement.
//!
//! [`RttHook`] implements `pq_switch::QueueHooks` and runs alongside the
//! time-window registers: every enqueue resolves the packet's `seqno`
//! against the workload's observation table and feeds the per-port
//! [`FlowRttTable`]. Measurement happens at enqueue — the same pipeline
//! stage where hardware would parse the transport header — so RTT and
//! queue-depth diagnosis share one clock.

use crate::obs::RttObs;
use crate::report::RttReport;
use crate::table::{FlowRttTable, TableConfig};
use pq_packet::{Nanos, SimPacket};
use pq_switch::QueueHooks;
use pq_telemetry::{names, Telemetry};
use std::collections::BTreeMap;

/// Per-port measurement state.
struct PortState {
    table: FlowRttTable,
    min_t: Nanos,
    max_t: Nanos,
    emitted_samples: u64,
}

/// A queue hook that measures per-flow RTT on every port it observes.
pub struct RttHook<'a> {
    obs: &'a [RttObs],
    config: TableConfig,
    ports: BTreeMap<u16, PortState>,
    telemetry: Option<Telemetry>,
}

impl<'a> RttHook<'a> {
    /// Build a hook over the workload's observation table.
    pub fn new(obs: &'a [RttObs], config: TableConfig) -> RttHook<'a> {
        RttHook {
            obs,
            config,
            ports: BTreeMap::new(),
            telemetry: None,
        }
    }

    /// Attach a telemetry plane; `pq_rtt_*` series are recorded per port,
    /// with the flow id stamped as each sample's exemplar so a watch
    /// alert on an RTT quantile points straight at the offending flow.
    pub fn set_telemetry(&mut self, plane: &Telemetry) {
        self.telemetry = Some(plane.clone());
    }

    /// Snapshot one report per observed port, sorted by port.
    pub fn reports(&self) -> Vec<RttReport> {
        self.ports
            .iter()
            .map(|(port, st)| RttReport::from_table(*port, st.min_t, st.max_t, &st.table))
            .collect()
    }

    fn publish(&mut self, port: u16) {
        let Some(tel) = &self.telemetry else { return };
        let st = self.ports.get_mut(&port).expect("port state exists");
        let port_label = port.to_string();
        let labels = [("port", port_label.as_str())];
        let reg = tel.registry();
        let hist = reg.histogram(names::RTT_SAMPLE_NS, &labels);
        let samples = st.table.samples();
        let new = &samples[st.emitted_samples as usize..];
        for s in new {
            hist.record_exemplar(s.rtt_ns, s.flow as u128);
        }
        reg.counter(names::RTT_SAMPLES, &labels)
            .add(new.len() as u64);
        st.emitted_samples = samples.len() as u64;
        let c = st.table.counters();
        reg.gauge(names::RTT_COLLISIONS, &labels).set(c.collisions);
        reg.gauge(names::RTT_EVICTIONS, &labels).set(c.evictions);
        reg.gauge(names::RTT_SAMPLE_DROPS, &labels)
            .set(c.sample_drops);
    }
}

impl QueueHooks for RttHook<'_> {
    fn on_enqueue(&mut self, pkt: &SimPacket, port: u16, _depth_after: u32, now: Nanos) {
        let Some(obs) = self.obs.get(pkt.seqno as usize) else {
            return; // packet outside the observed workload
        };
        if obs.flow != pkt.flow.0 {
            return; // stale seqno stamp; not ours
        }
        let config = self.config;
        let st = self.ports.entry(port).or_insert_with(|| PortState {
            table: FlowRttTable::new(config),
            min_t: now,
            max_t: now,
            emitted_samples: 0,
        });
        st.min_t = st.min_t.min(now);
        st.max_t = st.max_t.max(now);
        st.table.observe(obs, now);
        if self.telemetry.is_some() {
            self.publish(port);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quic::RttWorkload;
    use pq_switch::{Switch, SwitchConfig};

    fn run_workload(cfg: &RttWorkload) -> Vec<RttReport> {
        let trace = cfg.generate();
        let mut sw = Switch::new(SwitchConfig {
            ports: (0..cfg.ports)
                .map(|_| pq_switch::PortConfig {
                    rate_gbps: 100.0,
                    ..Default::default()
                })
                .collect(),
            ..Default::default()
        });
        let mut hook = RttHook::new(&trace.obs, TableConfig::default());
        {
            let mut hooks: Vec<&mut dyn QueueHooks> = vec![&mut hook];
            sw.run(trace.arrivals.iter().cloned(), &mut hooks, 1_000_000);
        }
        hook.reports()
    }

    #[test]
    fn workload_through_switch_measures_every_port() {
        let cfg = RttWorkload {
            flows: 32,
            pkts_per_flow: 64,
            ports: 2,
            ..Default::default()
        };
        let reports = run_workload(&cfg);
        assert_eq!(reports.len(), 2);
        for r in &reports {
            assert!(r.sample_count() > 0, "port {} has no samples", r.port);
            assert!(r.max_t > r.min_t);
        }
    }

    #[test]
    fn estimates_track_ground_truth() {
        let cfg = RttWorkload {
            flows: 32,
            pkts_per_flow: 128,
            ports: 1,
            loss: 0.0,
            reorder: 0.0,
            ..Default::default()
        };
        let trace = cfg.generate();
        let reports = run_workload(&cfg);
        let r = &reports[0];
        let mut graded = 0;
        for t in &trace.truth {
            let Some(f) = r.flows.iter().find(|f| f.flow == t.flow) else {
                continue;
            };
            if f.hist.count < 8 {
                continue; // slow spin flows yield few edges in a short run
            }
            let est = f.hist.mean() as f64;
            let err = (est - t.rtt_ns as f64).abs() / t.rtt_ns as f64;
            assert!(
                err < 0.10,
                "flow {} est {} truth {} err {err}",
                t.flow,
                est,
                t.rtt_ns
            );
            graded += 1;
        }
        assert!(graded >= 12, "only {graded} flows graded");
    }

    #[test]
    fn telemetry_series_appear_with_exemplars() {
        let cfg = RttWorkload {
            flows: 8,
            pkts_per_flow: 32,
            ports: 1,
            ..Default::default()
        };
        let trace = cfg.generate();
        let tel = Telemetry::default();
        let mut sw = Switch::new(SwitchConfig::default());
        let mut hook = RttHook::new(&trace.obs, TableConfig::default());
        hook.set_telemetry(&tel);
        {
            let mut hooks: Vec<&mut dyn QueueHooks> = vec![&mut hook];
            sw.run(trace.arrivals.iter().cloned(), &mut hooks, 1_000_000);
        }
        let snap = tel.registry().snapshot();
        let total = snap.counter_sum(names::RTT_SAMPLES);
        assert!(total > 0);
        let hist = snap
            .histogram(names::RTT_SAMPLE_NS, &[("port", "0")])
            .unwrap();
        assert_eq!(hist.count, total);
        assert!(hist.worst_exemplar().is_some());
    }
}
