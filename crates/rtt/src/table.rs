//! Hash-indexed per-flow RTT measurement table.
//!
//! This is the register-budget-shaped core of the subsystem: a fixed array
//! of flow slots, each holding one flow's RTT state — a bounded list of
//! outstanding sequence-match timestamps (SYN/ACK and data/ACK pairing, the
//! P4TG style), the QUIC spin-bit edge state, and a log-scale histogram.
//! Nothing here allocates per packet.
//!
//! Memory is the scarce resource, so contention is accounted rather than
//! hidden: a packet whose flow hashes onto a slot owned by a *live* other
//! flow is a **collision** (the sample is lost); a slot whose owner has
//! gone idle past the staleness threshold is **evicted** to the finished
//! list and the slot rebound. Both counters surface in reports as
//! `degraded`, exactly like eviction accounting in the space-saving top-k.

use crate::hist::RttHist;
use crate::obs::{Dir, ObsKind, RttObs};
use pq_packet::Nanos;

/// Sizing and staleness knobs for one [`FlowRttTable`].
#[derive(Clone, Copy, Debug)]
pub struct TableConfig {
    /// Number of flow slots (the memory budget).
    pub slots: usize,
    /// Outstanding sequence-match timestamps kept per slot.
    pub pending: usize,
    /// Idle time after which a slot's owner may be evicted.
    pub stale_after_ns: Nanos,
    /// Timestamped samples retained for streaming (beyond this they are
    /// still histogrammed, but the sample list is clipped).
    pub sample_cap: usize,
}

impl Default for TableConfig {
    fn default() -> TableConfig {
        TableConfig {
            slots: 2048,
            pending: 4,
            stale_after_ns: 10_000_000, // 10 ms of sim time
            sample_cap: 65_536,
        }
    }
}

/// One outstanding data/SYN timestamp awaiting its ACK.
#[derive(Clone, Copy, Debug)]
struct Pending {
    expect_ack: u64,
    sent_at: Nanos,
}

/// QUIC spin-bit edge-detector state for one flow.
///
/// Only packets that *advance* the largest packet number are eligible to
/// flip the spin observation — a reordered packet carries a stale spin
/// value and must not fake an edge. Because eligibility requires
/// `pkt_num > largest` and switch time is monotone, every emitted sample
/// is `now - last_edge ≥ 0` by construction.
#[derive(Clone, Copy, Debug, Default)]
struct SpinState {
    largest_pkt_num: u64,
    spin: bool,
    seen_any: bool,
    last_edge: Option<Nanos>,
}

/// One flow slot.
#[derive(Clone, Debug)]
struct Slot {
    /// Owning flow id (`u32::MAX` = free).
    tag: u32,
    last_seen: Nanos,
    pending: Vec<Pending>,
    spin: SpinState,
    hist: RttHist,
}

impl Slot {
    fn free() -> Slot {
        Slot {
            tag: u32::MAX,
            last_seen: 0,
            pending: Vec::new(),
            spin: SpinState::default(),
            hist: RttHist::new(),
        }
    }

    fn rebind(&mut self, tag: u32, now: Nanos) {
        self.tag = tag;
        self.last_seen = now;
        self.pending.clear();
        self.spin = SpinState::default();
        self.hist = RttHist::new();
    }
}

/// A timestamped RTT sample, the unit fed to standing queries.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, serde::Serialize)]
pub struct RttSample {
    /// Sim time the sample completed (ACK or spin edge observed).
    pub t_ns: Nanos,
    /// Flow the sample belongs to.
    pub flow: u32,
    /// Measured round-trip time.
    pub rtt_ns: u64,
}

/// Counters describing how much the table had to degrade.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TableCounters {
    /// Samples produced by sequence-match pairing.
    pub seq_samples: u64,
    /// Samples produced by spin-bit edges.
    pub spin_edges: u64,
    /// Packets lost to a slot owned by another live flow.
    pub collisions: u64,
    /// Idle incumbents displaced to make room for a new flow.
    pub evictions: u64,
    /// Samples or timestamps dropped to bounded state (pending overflow,
    /// finished-list overflow, sample-list clip).
    pub sample_drops: u64,
}

impl TableCounters {
    /// True when any bounded-memory loss occurred.
    pub fn degraded(&self) -> bool {
        self.collisions > 0 || self.evictions > 0 || self.sample_drops > 0
    }
}

/// The fixed-budget per-flow RTT table.
pub struct FlowRttTable {
    config: TableConfig,
    slots: Vec<Slot>,
    /// Histograms of evicted incumbents, so their measurements survive
    /// slot reuse. Bounded by `config.slots`; beyond that, dropped.
    finished: Vec<(u32, RttHist)>,
    samples: Vec<RttSample>,
    counters: TableCounters,
}

impl FlowRttTable {
    /// Build a table with the given budget.
    pub fn new(config: TableConfig) -> FlowRttTable {
        let slots = config.slots.max(1);
        FlowRttTable {
            config: TableConfig { slots, ..config },
            slots: vec![Slot::free(); slots],
            finished: Vec::new(),
            samples: Vec::new(),
            counters: TableCounters::default(),
        }
    }

    fn slot_index(&self, flow: u32) -> usize {
        // Fibonacci hashing: cheap, stateless, good spread for dense ids.
        let h = (flow as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 32) as usize % self.config.slots
    }

    /// Claim the slot for `flow`, applying collision/eviction policy.
    /// Returns `None` when the packet's sample must be dropped.
    fn claim(&mut self, flow: u32, now: Nanos) -> Option<usize> {
        let idx = self.slot_index(flow);
        let stale = self.config.stale_after_ns;
        let slot = &mut self.slots[idx];
        if slot.tag == flow {
            slot.last_seen = now;
            return Some(idx);
        }
        if slot.tag == u32::MAX {
            slot.rebind(flow, now);
            return Some(idx);
        }
        if now.saturating_sub(slot.last_seen) > stale {
            // Evict the idle incumbent, preserving its histogram.
            let old_tag = slot.tag;
            let old_hist = std::mem::take(&mut slot.hist);
            slot.rebind(flow, now);
            self.counters.evictions += 1;
            if !old_hist.is_empty() {
                if self.finished.len() < self.config.slots {
                    self.finished.push((old_tag, old_hist));
                } else {
                    self.counters.sample_drops += old_hist.count;
                }
            }
            return Some(idx);
        }
        self.counters.collisions += 1;
        None
    }

    fn emit(&mut self, idx: usize, flow: u32, now: Nanos, rtt: u64) {
        self.slots[idx].hist.record(rtt);
        if self.samples.len() < self.config.sample_cap {
            self.samples.push(RttSample {
                t_ns: now,
                flow,
                rtt_ns: rtt,
            });
        } else {
            self.counters.sample_drops += 1;
        }
    }

    /// Feed one observed packet through the measurement engines.
    pub fn observe(&mut self, obs: &RttObs, now: Nanos) {
        let Some(idx) = self.claim(obs.flow, now) else {
            return;
        };
        match obs.kind {
            ObsKind::Data { expect_ack } => {
                if obs.dir != Dir::ToServer {
                    return;
                }
                let pending = &mut self.slots[idx].pending;
                if pending.len() >= self.config.pending.max(1) {
                    // Oldest timestamp gives way; its ACK will find nothing.
                    pending.remove(0);
                    self.counters.sample_drops += 1;
                }
                pending.push(Pending {
                    expect_ack,
                    sent_at: now,
                });
            }
            ObsKind::Ack { ack } => {
                if obs.dir != Dir::ToClient {
                    return;
                }
                let pending = &mut self.slots[idx].pending;
                if let Some(pos) = pending.iter().position(|p| p.expect_ack == ack) {
                    let sent_at = pending.remove(pos).sent_at;
                    let rtt = now.saturating_sub(sent_at);
                    self.counters.seq_samples += 1;
                    self.emit(idx, obs.flow, now, rtt);
                }
            }
            ObsKind::Spin { pkt_num, spin } => {
                if obs.dir != Dir::ToServer {
                    return;
                }
                let st = &mut self.slots[idx].spin;
                if st.seen_any && pkt_num <= st.largest_pkt_num {
                    return; // reordered: stale spin value, never an edge
                }
                let flipped = st.seen_any && spin != st.spin;
                let prev_edge = st.last_edge;
                st.largest_pkt_num = pkt_num;
                st.spin = spin;
                st.seen_any = true;
                if flipped {
                    st.last_edge = Some(now);
                    if let Some(edge) = prev_edge {
                        let rtt = now.saturating_sub(edge);
                        self.counters.spin_edges += 1;
                        self.emit(idx, obs.flow, now, rtt);
                    }
                }
            }
        }
    }

    /// Degradation counters so far.
    pub fn counters(&self) -> &TableCounters {
        &self.counters
    }

    /// Timestamped samples collected so far (bounded by `sample_cap`).
    pub fn samples(&self) -> &[RttSample] {
        &self.samples
    }

    /// Drain per-flow histograms: live slots plus evicted incumbents,
    /// merged by flow id. The table itself is left untouched.
    pub fn flow_hists(&self) -> Vec<(u32, RttHist)> {
        let mut out: Vec<(u32, RttHist)> = Vec::new();
        for slot in &self.slots {
            if slot.tag != u32::MAX && !slot.hist.is_empty() {
                out.push((slot.tag, slot.hist.clone()));
            }
        }
        for (tag, hist) in &self.finished {
            out.push((*tag, hist.clone()));
        }
        out.sort_by_key(|(tag, _)| *tag);
        // Merge duplicates (a flow evicted and later re-admitted).
        let mut merged: Vec<(u32, RttHist)> = Vec::new();
        for (tag, hist) in out {
            match merged.last_mut() {
                Some((last, acc)) if *last == tag => acc.merge(&hist),
                _ => merged.push((tag, hist)),
            }
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::{Dir, ObsKind, RttObs};

    fn data(flow: u32, expect_ack: u64) -> RttObs {
        RttObs {
            flow,
            dir: Dir::ToServer,
            kind: ObsKind::Data { expect_ack },
        }
    }

    fn ack(flow: u32, ack: u64) -> RttObs {
        RttObs {
            flow,
            dir: Dir::ToClient,
            kind: ObsKind::Ack { ack },
        }
    }

    fn spin(flow: u32, pkt_num: u64, spin: bool) -> RttObs {
        RttObs {
            flow,
            dir: Dir::ToServer,
            kind: ObsKind::Spin { pkt_num, spin },
        }
    }

    #[test]
    fn seq_match_measures_the_gap() {
        let mut t = FlowRttTable::new(TableConfig::default());
        t.observe(&data(7, 1500), 1_000);
        t.observe(&ack(7, 1500), 101_000);
        assert_eq!(t.counters().seq_samples, 1);
        let hists = t.flow_hists();
        assert_eq!(hists.len(), 1);
        assert_eq!(hists[0].0, 7);
        assert_eq!(hists[0].1.max, 100_000);
        assert_eq!(
            t.samples(),
            &[RttSample {
                t_ns: 101_000,
                flow: 7,
                rtt_ns: 100_000
            }]
        );
    }

    #[test]
    fn unmatched_ack_is_ignored() {
        let mut t = FlowRttTable::new(TableConfig::default());
        t.observe(&data(7, 1500), 1_000);
        t.observe(&ack(7, 9_999), 2_000);
        assert_eq!(t.counters().seq_samples, 0);
    }

    #[test]
    fn spin_edges_measure_flip_to_flip() {
        let mut t = FlowRttTable::new(TableConfig::default());
        t.observe(&spin(3, 1, false), 0);
        t.observe(&spin(3, 2, true), 50_000); // first edge arms
        t.observe(&spin(3, 3, true), 60_000);
        t.observe(&spin(3, 4, false), 150_000); // second edge samples
        assert_eq!(t.counters().spin_edges, 1);
        assert_eq!(t.flow_hists()[0].1.max, 100_000);
    }

    #[test]
    fn reordered_spin_packet_is_not_an_edge() {
        let mut t = FlowRttTable::new(TableConfig::default());
        t.observe(&spin(3, 5, true), 100);
        t.observe(&spin(3, 2, false), 200); // late, stale spin: ignored
        assert_eq!(t.counters().spin_edges, 0);
        t.observe(&spin(3, 6, false), 300); // genuine edge arms
        t.observe(&spin(3, 7, true), 400);
        assert_eq!(t.counters().spin_edges, 1);
    }

    #[test]
    fn live_collision_counts_and_drops() {
        let cfg = TableConfig {
            slots: 1,
            ..TableConfig::default()
        };
        let mut t = FlowRttTable::new(cfg);
        t.observe(&data(1, 100), 0);
        t.observe(&data(2, 100), 10); // flow 2 collides with live flow 1
        assert_eq!(t.counters().collisions, 1);
        assert!(t.counters().degraded());
    }

    #[test]
    fn stale_incumbent_is_evicted_and_preserved() {
        let cfg = TableConfig {
            slots: 1,
            ..TableConfig::default()
        };
        let mut t = FlowRttTable::new(cfg);
        t.observe(&data(1, 100), 0);
        t.observe(&ack(1, 100), 5_000);
        // Past the staleness threshold flow 2 takes the slot.
        t.observe(&data(2, 64), 20_000_000);
        t.observe(&ack(2, 64), 20_001_000);
        assert_eq!(t.counters().evictions, 1);
        let hists = t.flow_hists();
        assert_eq!(
            hists.iter().map(|(f, _)| *f).collect::<Vec<_>>(),
            vec![1, 2]
        );
        assert_eq!(hists[0].1.count, 1); // flow 1's sample survived eviction
    }

    #[test]
    fn pending_overflow_drops_oldest() {
        let cfg = TableConfig {
            pending: 2,
            ..TableConfig::default()
        };
        let mut t = FlowRttTable::new(cfg);
        t.observe(&data(1, 10), 0);
        t.observe(&data(1, 20), 1);
        t.observe(&data(1, 30), 2); // displaces expect_ack=10
        t.observe(&ack(1, 10), 3);
        assert_eq!(t.counters().seq_samples, 0);
        assert_eq!(t.counters().sample_drops, 1);
        t.observe(&ack(1, 30), 4);
        assert_eq!(t.counters().seq_samples, 1);
    }
}
