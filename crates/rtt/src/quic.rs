//! QUIC-like bidirectional workload generator with known RTT ground truth.
//!
//! Two flavours of flow share one trace:
//!
//! * **seq flows** — TCP-style: the client sends data packets with
//!   cumulative sequence numbers; the server's ACK for each returns after
//!   the flow's true RTT (± jitter, + reordering delay, or never when
//!   lost). SYN/ACK pairing is the degenerate first data/ACK pair.
//! * **spin flows** — QUIC-style: short-header packets expose a spin bit
//!   that flips once per true RTT, with monotone packet numbers so the
//!   detector can reject reordered packets.
//!
//! Every flow's true base RTT is recorded in [`FlowTruth`], which is what
//! the `ext_rtt_precision` experiment grades estimates against. Loss
//! removes the returning ACK (or the spin packet itself); reordering adds
//! a positive delivery delay to a random subset, which both perturbs
//! seq-match samples and presents stale spin values out of order.

use crate::obs::{Dir, ObsKind, RttObs};
use pq_packet::ipv4::Address;
use pq_packet::{FlowId, FlowKey, FlowTable, Nanos, SimPacket};
use pq_switch::Arrival;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration for one generated RTT workload.
#[derive(Clone, Debug, serde::Serialize)]
pub struct RttWorkload {
    /// Number of bidirectional flows.
    pub flows: u32,
    /// Egress ports; flow `f` observes on port `f % ports`.
    pub ports: u16,
    /// Client packets per flow.
    pub pkts_per_flow: u32,
    /// Gap between a flow's consecutive client packets (ns).
    pub send_interval_ns: Nanos,
    /// True base RTT is drawn uniformly from this range (ns).
    pub rtt_min_ns: u64,
    /// Upper end of the base-RTT range (ns).
    pub rtt_max_ns: u64,
    /// Symmetric per-sample jitter as a fraction of the base RTT.
    pub jitter_frac: f64,
    /// Probability a returning ACK (seq) or a packet (spin) is lost.
    pub loss: f64,
    /// Probability a delivery is delayed out of order.
    pub reorder: f64,
    /// Maximum extra delay a reordered delivery suffers (ns).
    pub reorder_max_ns: Nanos,
    /// Fraction of flows that are spin flows (flow 0 is always a seq
    /// flow so the planted slow flow yields deterministic samples).
    pub spin_fraction: f64,
    /// Plant flow 0 with this base RTT (the "slow peer" to find).
    pub slow_rtt_ns: Option<u64>,
    /// Client data packet length (bytes).
    pub pkt_len: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RttWorkload {
    fn default() -> RttWorkload {
        RttWorkload {
            flows: 256,
            ports: 2,
            pkts_per_flow: 192,
            send_interval_ns: 10_000, // 10 µs
            rtt_min_ns: 200_000,      // 200 µs
            rtt_max_ns: 2_000_000,    // 2 ms
            jitter_frac: 0.05,
            loss: 0.01,
            reorder: 0.01,
            reorder_max_ns: 50_000,
            spin_fraction: 0.5,
            slow_rtt_ns: None,
            pkt_len: 1500,
            seed: 7,
        }
    }
}

/// Ground truth for one generated flow.
#[derive(Clone, Copy, Debug, serde::Serialize)]
pub struct FlowTruth {
    /// Interned flow id (matches `RttObs::flow`).
    pub flow: u32,
    /// Port the flow observes on.
    pub port: u16,
    /// True base RTT.
    pub rtt_ns: u64,
    /// True when this is a spin (QUIC-like) flow.
    pub spin: bool,
}

/// A generated workload: switch arrivals, the transport side table, and
/// per-flow ground truth.
pub struct RttTrace {
    /// Time-ordered switch arrivals; `pkt.seqno` indexes `obs`.
    pub arrivals: Vec<Arrival>,
    /// Transport observation per generated packet.
    pub obs: Vec<RttObs>,
    /// Ground truth per flow, indexed by flow id.
    pub truth: Vec<FlowTruth>,
    /// Interned flow identities.
    pub flows: FlowTable,
}

/// Acknowledgement packet length on the return path.
const ACK_LEN: u32 = 64;

impl RttWorkload {
    /// Generate the workload deterministically from `seed`.
    pub fn generate(&self) -> RttTrace {
        assert!(self.flows > 0, "rtt workload needs at least one flow");
        assert!(self.ports > 0, "rtt workload needs at least one port");
        assert!(self.rtt_min_ns > 0 && self.rtt_min_ns <= self.rtt_max_ns);
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut flow_table = FlowTable::new();
        let mut truth = Vec::with_capacity(self.flows as usize);
        let mut obs: Vec<RttObs> = Vec::new();
        let mut events: Vec<(Nanos, u16, u32, RttObs)> = Vec::new();

        for f in 0..self.flows {
            let key = FlowKey::tcp(
                Address([10, (f >> 16) as u8, (f >> 8) as u8, f as u8]),
                40_000 + (f % 20_000) as u16,
                Address([10, 99, 0, 1]),
                443,
            );
            let id: FlowId = flow_table.intern(key);
            let flow = id.0;
            let port = (f % self.ports as u32) as u16;
            let base_rtt = match (f, self.slow_rtt_ns) {
                (0, Some(slow)) => slow,
                _ => rng.gen_range(self.rtt_min_ns..=self.rtt_max_ns),
            };
            // Flow 0 stays a seq flow so the planted slow peer produces
            // deterministic seq-match samples.
            let spin_flow = f != 0 && rng.gen_bool(self.spin_fraction.clamp(0.0, 1.0));
            truth.push(FlowTruth {
                flow,
                port,
                rtt_ns: base_rtt,
                spin: spin_flow,
            });
            let start: Nanos = rng.gen_range(0..=self.send_interval_ns);

            // Spin flows stream at the send interval; seq flows pace one
            // measured packet per RTT (stop-and-wait probing — a bounded
            // pending list cannot track a whole in-flight window, and one
            // sample per RTT is what data-plane seq-match affords).
            let seq_gap = base_rtt + self.send_interval_ns;
            for i in 0..self.pkts_per_flow as u64 {
                let t_send = if spin_flow {
                    start + i * self.send_interval_ns
                } else {
                    start + i * seq_gap
                };
                if spin_flow {
                    // Spin value flips once per true RTT.
                    let spin = ((t_send - start) / base_rtt) % 2 == 1;
                    if rng.gen_bool(self.loss) {
                        continue; // packet lost before the observer
                    }
                    let mut t_obs = t_send;
                    if rng.gen_bool(self.reorder) {
                        t_obs += rng.gen_range(0..=self.reorder_max_ns);
                    }
                    events.push((
                        t_obs,
                        port,
                        self.pkt_len,
                        RttObs {
                            flow,
                            dir: Dir::ToServer,
                            kind: ObsKind::Spin { pkt_num: i, spin },
                        },
                    ));
                } else {
                    let expect_ack = (i + 1) * self.pkt_len as u64;
                    events.push((
                        t_send,
                        port,
                        self.pkt_len,
                        RttObs {
                            flow,
                            dir: Dir::ToServer,
                            kind: ObsKind::Data { expect_ack },
                        },
                    ));
                    if rng.gen_bool(self.loss) {
                        continue; // data or its ACK lost downstream
                    }
                    let jitter = 1.0 + self.jitter_frac * rng.gen_range(-1.0..=1.0);
                    let mut rtt = (base_rtt as f64 * jitter).max(1.0) as u64;
                    if rng.gen_bool(self.reorder) {
                        rtt += rng.gen_range(0..=self.reorder_max_ns);
                    }
                    events.push((
                        t_send + rtt,
                        port,
                        ACK_LEN,
                        RttObs {
                            flow,
                            dir: Dir::ToClient,
                            kind: ObsKind::Ack { ack: expect_ack },
                        },
                    ));
                }
            }
        }

        // Stamp observation indices, then order arrivals by time (the
        // switch consumes a time-sorted stream).
        events.sort_by_key(|(t, port, _, o)| (*t, *port, o.flow));
        let mut arrivals = Vec::with_capacity(events.len());
        for (t, port, len, o) in events {
            let idx = obs.len() as u64;
            obs.push(o);
            let mut pkt = SimPacket::new(FlowId(o.flow), len, t);
            pkt.seqno = idx;
            arrivals.push(Arrival::new(pkt, port));
        }
        RttTrace {
            arrivals,
            obs,
            truth,
            flows: flow_table,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = RttWorkload {
            flows: 16,
            pkts_per_flow: 32,
            ..RttWorkload::default()
        };
        let a = cfg.generate();
        let b = cfg.generate();
        assert_eq!(a.obs, b.obs);
        assert_eq!(a.arrivals.len(), b.arrivals.len());
        for (x, y) in a.arrivals.iter().zip(&b.arrivals) {
            assert_eq!(x.pkt.arrival, y.pkt.arrival);
            assert_eq!(x.pkt.seqno, y.pkt.seqno);
        }
    }

    #[test]
    fn arrivals_are_time_sorted_and_stamped() {
        let cfg = RttWorkload {
            flows: 8,
            pkts_per_flow: 16,
            ..RttWorkload::default()
        };
        let trace = cfg.generate();
        assert!(trace
            .arrivals
            .windows(2)
            .all(|w| w[0].pkt.arrival <= w[1].pkt.arrival));
        for a in &trace.arrivals {
            let o = &trace.obs[a.pkt.seqno as usize];
            assert_eq!(o.flow, a.pkt.flow.0);
        }
    }

    #[test]
    fn planted_slow_flow_is_flow_zero_seq() {
        let cfg = RttWorkload {
            flows: 8,
            slow_rtt_ns: Some(30_000_000),
            ..RttWorkload::default()
        };
        let trace = cfg.generate();
        assert_eq!(trace.truth[0].rtt_ns, 30_000_000);
        assert!(!trace.truth[0].spin);
    }

    #[test]
    fn truth_covers_every_flow_and_port() {
        let cfg = RttWorkload {
            flows: 10,
            ports: 3,
            ..RttWorkload::default()
        };
        let trace = cfg.generate();
        assert_eq!(trace.truth.len(), 10);
        for (i, t) in trace.truth.iter().enumerate() {
            assert_eq!(t.flow, i as u32);
            assert_eq!(t.port, (i % 3) as u16);
            assert!(t.rtt_ns >= cfg.rtt_min_ns && t.rtt_ns <= cfg.rtt_max_ns);
        }
    }
}
