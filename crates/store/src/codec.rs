//! Checkpoint ⇄ bytes: the sparse, delta-compressed body encoding of a
//! `.pqa` segment.
//!
//! The encoding leans on two structural facts of PrintQueue register
//! state:
//!
//! * time-window cells are *mostly empty* outside congestion epochs, and
//!   an empty cell has exactly one canonical form
//!   ([`Cell::EMPTY`]: flow = `FlowId::NONE`, cycle = `u64::MAX`), so
//!   windows are stored as sorted occupied-index runs;
//! * a queue-monitor half is empty iff `seq == 0` (with the canonical
//!   `FlowId::NONE` flow), so the sparse stack is stored the same way.
//!
//! Monotone quantities (freeze times, cell indices, cycle IDs, stack
//! sequence numbers) are delta-coded with zigzag varints. Deltas use
//! *wrapping* arithmetic so every `u64` value — including the
//! `u64::MAX` sentinels — round-trips losslessly.
//!
//! Decoding never trusts a length from the wire: counts are bounded by
//! the structure they index into, and bulk allocations are charged
//! against a [`DecodeBudget`] so an adversarial header cannot balloon
//! memory.

use crate::format::invalid;
use crate::varint;
use pq_core::control::Checkpoint;
use pq_core::params::TimeWindowConfig;
use pq_core::queue_monitor::{Entry, Half, QueueMonitorSnapshot};
use pq_core::snapshot::{QueryInterval, TimeWindowSnapshot};
use pq_core::time_windows::Cell;
use pq_packet::FlowId;
use std::io;

const FLAG_ON_DEMAND: u8 = 1 << 0;
const FLAG_TRIGGER: u8 = 1 << 1;
const FLAG_FILTERED: u8 = 1 << 2;
const HALF_INC: u8 = 1 << 0;
const HALF_DEC: u8 = 1 << 1;

/// Queue monitors per checkpoint are small (one per egress queue); cap
/// the count so a corrupt body cannot spin the decoder.
const MAX_MONITORS: usize = 1024;

/// Allocation budget for decoding untrusted bodies.
///
/// Every bulk allocation (window cell arrays, monitor entry arrays) is
/// charged here *before* the memory is reserved; exceeding the budget is
/// an `InvalidData` error, not an OOM. The default (64 MiB) comfortably
/// fits any configuration the simulator produces (a maxed-out k = 24,
/// T = 4 snapshot is ~1 GiB and is rejected — real deployments keep
/// k ≤ 16 per §4.1's SRAM budget).
#[derive(Debug, Clone, Copy)]
pub struct DecodeBudget {
    remaining: u64,
}

impl DecodeBudget {
    /// Budget with `bytes` of allocation headroom.
    pub fn new(bytes: u64) -> DecodeBudget {
        DecodeBudget { remaining: bytes }
    }

    /// Charge `bytes`; fails once the budget is exhausted.
    pub fn charge(&mut self, bytes: u64) -> io::Result<()> {
        if bytes > self.remaining {
            return Err(invalid("decode allocation budget exhausted"));
        }
        self.remaining -= bytes;
        Ok(())
    }
}

impl Default for DecodeBudget {
    fn default() -> Self {
        DecodeBudget::new(64 << 20)
    }
}

/// Shared encoder/decoder state: the freeze-time delta chain within one
/// segment body.
#[derive(Debug, Clone, Copy, Default)]
pub struct CodecState {
    prev_frozen: Option<u64>,
}

fn write_delta_u64(out: &mut Vec<u8>, prev: &mut Option<u64>, value: u64) -> io::Result<()> {
    match *prev {
        None => varint::write_u64(out, value)?,
        Some(p) => varint::write_i64(out, value.wrapping_sub(p) as i64)?,
    }
    *prev = Some(value);
    Ok(())
}

fn read_delta_u64(cursor: &mut &[u8], prev: &mut Option<u64>) -> io::Result<u64> {
    let value = match *prev {
        None => varint::read_u64(cursor)?,
        Some(p) => p.wrapping_add(varint::read_i64(cursor)? as u64),
    };
    *prev = Some(value);
    Ok(value)
}

/// Append one checkpoint to `out`.
///
/// Fails with `InvalidInput` if the checkpoint's window configuration
/// disagrees with the store's file header — a `.pqa` file holds exactly
/// one register geometry.
pub fn encode_checkpoint(
    out: &mut Vec<u8>,
    tw: &TimeWindowConfig,
    state: &mut CodecState,
    cp: &Checkpoint,
) -> io::Result<()> {
    if cp.windows.config() != tw {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "checkpoint window config differs from store header",
        ));
    }
    write_delta_u64(out, &mut state.prev_frozen, cp.frozen_at)?;

    let mut flags = 0u8;
    if cp.on_demand {
        flags |= FLAG_ON_DEMAND;
    }
    if cp.trigger.is_some() {
        flags |= FLAG_TRIGGER;
    }
    if cp.windows.is_filtered() {
        flags |= FLAG_FILTERED;
    }
    out.push(flags);
    if let Some(trigger) = cp.trigger {
        varint::write_u64(out, trigger.from)?;
        varint::write_u64(out, trigger.to.saturating_sub(trigger.from))?;
    }

    for w in 0..tw.t {
        let cells = cp.windows.window(w);
        let occupied = cells.iter().filter(|c| **c != Cell::EMPTY).count();
        varint::write_u64(out, occupied as u64)?;
        let mut prev_idx: Option<u64> = None;
        let mut prev_cycle: Option<u64> = None;
        for (idx, cell) in cells.iter().enumerate() {
            if *cell == Cell::EMPTY {
                continue;
            }
            // Indices are emitted ascending, so deltas are strictly
            // positive after the first.
            write_delta_u64(out, &mut prev_idx, idx as u64)?;
            varint::write_u64(out, u64::from(cell.flow.0))?;
            write_delta_u64(out, &mut prev_cycle, cell.cycle)?;
        }
    }

    varint::write_u64(out, cp.queue_monitors.len() as u64)?;
    let mut prev_seq: Option<u64> = None;
    for monitor in &cp.queue_monitors {
        varint::write_u64(out, monitor.entries.len() as u64)?;
        varint::write_u64(out, u64::from(monitor.top))?;
        let occupied = monitor
            .entries
            .iter()
            .filter(|e| **e != Entry::default())
            .count();
        varint::write_u64(out, occupied as u64)?;
        let mut prev_idx: Option<u64> = None;
        for (idx, entry) in monitor.entries.iter().enumerate() {
            if *entry == Entry::default() {
                continue;
            }
            write_delta_u64(out, &mut prev_idx, idx as u64)?;
            let mut halves = 0u8;
            if entry.inc != Half::default() {
                halves |= HALF_INC;
            }
            if entry.dec != Half::default() {
                halves |= HALF_DEC;
            }
            out.push(halves);
            for half in [&entry.inc, &entry.dec] {
                if *half == Half::default() {
                    continue;
                }
                varint::write_u64(out, u64::from(half.flow.0))?;
                write_delta_u64(out, &mut prev_seq, half.seq)?;
            }
        }
    }
    Ok(())
}

fn read_flow(cursor: &mut &[u8]) -> io::Result<FlowId> {
    let raw = varint::read_u64(cursor)?;
    if raw > u64::from(u32::MAX) {
        return Err(invalid("flow id out of u32 range"));
    }
    Ok(FlowId(raw as u32))
}

fn read_flags_byte(cursor: &mut &[u8]) -> io::Result<u8> {
    let Some((&byte, rest)) = cursor.split_first() else {
        return Err(invalid("truncated flags byte"));
    };
    *cursor = rest;
    Ok(byte)
}

/// Decode one checkpoint from the cursor.
pub fn decode_checkpoint(
    cursor: &mut &[u8],
    tw: &TimeWindowConfig,
    state: &mut CodecState,
    budget: &mut DecodeBudget,
) -> io::Result<Checkpoint> {
    let frozen_at = read_delta_u64(cursor, &mut state.prev_frozen)?;
    let flags = read_flags_byte(cursor)?;
    if flags & !(FLAG_ON_DEMAND | FLAG_TRIGGER | FLAG_FILTERED) != 0 {
        return Err(invalid("unknown checkpoint flags"));
    }
    let trigger = if flags & FLAG_TRIGGER != 0 {
        let from = varint::read_u64(cursor)?;
        let len = varint::read_u64(cursor)?;
        Some(QueryInterval::new(from, from.saturating_add(len)))
    } else {
        None
    };

    let cells = tw.cells();
    let t = usize::from(tw.t);
    budget.charge((t as u64) * (cells as u64) * std::mem::size_of::<Cell>() as u64)?;
    let mut windows = Vec::with_capacity(t);
    for _ in 0..t {
        let mut window = vec![Cell::EMPTY; cells];
        let occupied = varint::read_len(cursor, cells)?;
        let mut prev_idx: Option<u64> = None;
        let mut prev_cycle: Option<u64> = None;
        let mut last_idx: Option<usize> = None;
        for _ in 0..occupied {
            let idx = read_delta_u64(cursor, &mut prev_idx)?;
            if idx >= cells as u64 || last_idx.is_some_and(|l| idx as usize <= l) {
                return Err(invalid("cell index out of order or out of range"));
            }
            last_idx = Some(idx as usize);
            let flow = read_flow(cursor)?;
            let cycle = read_delta_u64(cursor, &mut prev_cycle)?;
            window[idx as usize] = Cell { flow, cycle };
        }
        windows.push(window);
    }
    let windows = TimeWindowSnapshot::from_parts(*tw, windows, flags & FLAG_FILTERED != 0);

    let n_monitors = varint::read_len(cursor, MAX_MONITORS)?;
    let mut queue_monitors = Vec::with_capacity(n_monitors);
    let mut prev_seq: Option<u64> = None;
    for _ in 0..n_monitors {
        // A monitor entry costs at least one wire byte when occupied, but
        // the array length itself is untrusted — charge it up front.
        let n_entries = varint::read_len(cursor, u32::MAX as usize)?;
        budget.charge(n_entries as u64 * std::mem::size_of::<Entry>() as u64)?;
        let top = varint::read_len(cursor, u32::MAX as usize)? as u32;
        if n_entries > 0 && u64::from(top) >= n_entries as u64 {
            return Err(invalid("queue-monitor top beyond entry array"));
        }
        let mut entries = vec![Entry::default(); n_entries];
        let occupied = varint::read_len(cursor, n_entries)?;
        let mut prev_idx: Option<u64> = None;
        let mut last_idx: Option<usize> = None;
        for _ in 0..occupied {
            let idx = read_delta_u64(cursor, &mut prev_idx)?;
            if idx >= n_entries as u64 || last_idx.is_some_and(|l| idx as usize <= l) {
                return Err(invalid("monitor entry index out of order or out of range"));
            }
            last_idx = Some(idx as usize);
            let halves = read_flags_byte(cursor)?;
            if halves & !(HALF_INC | HALF_DEC) != 0 || halves == 0 {
                return Err(invalid("invalid monitor half flags"));
            }
            let mut entry = Entry::default();
            if halves & HALF_INC != 0 {
                entry.inc = Half {
                    flow: read_flow(cursor)?,
                    seq: read_delta_u64(cursor, &mut prev_seq)?,
                };
            }
            if halves & HALF_DEC != 0 {
                entry.dec = Half {
                    flow: read_flow(cursor)?,
                    seq: read_delta_u64(cursor, &mut prev_seq)?,
                };
            }
            entries[idx as usize] = entry;
        }
        queue_monitors.push(QueueMonitorSnapshot { entries, top });
    }

    Ok(Checkpoint {
        frozen_at,
        on_demand: flags & FLAG_ON_DEMAND != 0,
        trigger,
        windows,
        queue_monitors,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_checkpoint(tw: &TimeWindowConfig, frozen_at: u64) -> Checkpoint {
        let cells = tw.cells();
        let mut windows = vec![vec![Cell::EMPTY; cells]; usize::from(tw.t)];
        windows[0][1] = Cell {
            flow: FlowId(42),
            cycle: 7,
        };
        windows[0][cells - 1] = Cell {
            flow: FlowId(9),
            cycle: 8,
        };
        windows[1][0] = Cell {
            flow: FlowId(1),
            cycle: 0,
        };
        let mut entries = vec![Entry::default(); 8];
        entries[0] = Entry {
            inc: Half {
                flow: FlowId(42),
                seq: 3,
            },
            dec: Half::default(),
        };
        entries[5] = Entry {
            inc: Half {
                flow: FlowId(7),
                seq: 10,
            },
            dec: Half {
                flow: FlowId(8),
                seq: 11,
            },
        };
        Checkpoint {
            frozen_at,
            on_demand: frozen_at.is_multiple_of(2),
            trigger: frozen_at
                .is_multiple_of(2)
                .then(|| QueryInterval::new(5, frozen_at)),
            windows: TimeWindowSnapshot::from_parts(*tw, windows, false),
            queue_monitors: vec![QueueMonitorSnapshot { entries, top: 5 }],
        }
    }

    #[test]
    fn roundtrip_sequence() {
        let tw = TimeWindowConfig::new(4, 2, 4, 3);
        let cps: Vec<_> = [100u64, 250, 260, 1000]
            .iter()
            .map(|&t| sample_checkpoint(&tw, t))
            .collect();
        let mut buf = Vec::new();
        let mut enc = CodecState::default();
        for cp in &cps {
            encode_checkpoint(&mut buf, &tw, &mut enc, cp).unwrap();
        }
        let mut cursor = buf.as_slice();
        let mut dec = CodecState::default();
        let mut budget = DecodeBudget::default();
        for cp in &cps {
            let back = decode_checkpoint(&mut cursor, &tw, &mut dec, &mut budget).unwrap();
            assert_eq!(back.frozen_at, cp.frozen_at);
            assert_eq!(back.on_demand, cp.on_demand);
            assert_eq!(back.trigger, cp.trigger);
            assert_eq!(back.queue_monitors, cp.queue_monitors);
            for w in 0..tw.t {
                assert_eq!(back.windows.window(w), cp.windows.window(w));
            }
        }
        assert!(cursor.is_empty());
    }

    #[test]
    fn sentinel_values_roundtrip() {
        // Wrapping deltas must survive u64::MAX cycles and huge seqs.
        let tw = TimeWindowConfig::new(4, 2, 2, 2);
        let mut windows = vec![vec![Cell::EMPTY; tw.cells()]; 2];
        windows[0][0] = Cell {
            flow: FlowId(0),
            cycle: u64::MAX - 1,
        };
        windows[0][1] = Cell {
            flow: FlowId(u32::MAX - 1),
            cycle: 0,
        };
        let cp = Checkpoint {
            frozen_at: u64::MAX / 2,
            on_demand: false,
            trigger: None,
            windows: TimeWindowSnapshot::from_parts(tw, windows, true),
            queue_monitors: vec![],
        };
        let mut buf = Vec::new();
        let mut enc = CodecState::default();
        encode_checkpoint(&mut buf, &tw, &mut enc, &cp).unwrap();
        let mut cursor = buf.as_slice();
        let back = decode_checkpoint(
            &mut cursor,
            &tw,
            &mut CodecState::default(),
            &mut DecodeBudget::default(),
        )
        .unwrap();
        assert_eq!(back.windows.window(0), cp.windows.window(0));
        assert!(back.windows.is_filtered());
    }

    #[test]
    fn truncation_and_garbage_never_panic() {
        let tw = TimeWindowConfig::new(4, 2, 4, 3);
        let cp = sample_checkpoint(&tw, 500);
        let mut buf = Vec::new();
        encode_checkpoint(&mut buf, &tw, &mut CodecState::default(), &cp).unwrap();
        for cut in 0..buf.len() {
            let mut cursor = &buf[..cut];
            let _ = decode_checkpoint(
                &mut cursor,
                &tw,
                &mut CodecState::default(),
                &mut DecodeBudget::default(),
            );
        }
        for i in 0..buf.len() {
            let mut flipped = buf.clone();
            flipped[i] ^= 0x40;
            let mut cursor = flipped.as_slice();
            let _ = decode_checkpoint(
                &mut cursor,
                &tw,
                &mut CodecState::default(),
                &mut DecodeBudget::default(),
            );
        }
    }

    #[test]
    fn budget_bounds_allocation() {
        let tw = TimeWindowConfig::new(4, 2, 12, 4);
        let cp = Checkpoint {
            frozen_at: 1,
            on_demand: false,
            trigger: None,
            windows: TimeWindowSnapshot::from_parts(
                tw,
                vec![vec![Cell::EMPTY; tw.cells()]; 4],
                false,
            ),
            queue_monitors: vec![],
        };
        let mut buf = Vec::new();
        encode_checkpoint(&mut buf, &tw, &mut CodecState::default(), &cp).unwrap();
        let mut cursor = buf.as_slice();
        let mut tiny = DecodeBudget::new(1024);
        let err =
            decode_checkpoint(&mut cursor, &tw, &mut CodecState::default(), &mut tiny).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn config_mismatch_rejected_on_encode() {
        let tw = TimeWindowConfig::new(4, 2, 4, 3);
        let other = TimeWindowConfig::new(4, 2, 5, 3);
        let cp = sample_checkpoint(&tw, 10);
        let mut buf = Vec::new();
        let err = encode_checkpoint(&mut buf, &other, &mut CodecState::default(), &cp).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }
}
