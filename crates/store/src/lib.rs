//! pq-store: a segmented, indexed, crash-tolerant binary telemetry store
//! for PrintQueue checkpoint archives.
//!
//! PrintQueue's control plane freezes and polls the data-plane registers
//! continuously (§6.1–6.2); over a long run the checkpoint stream is far
//! too large to keep in RAM or to re-parse from JSON at query time. This
//! crate gives the analysis pipeline a durable home for that stream:
//!
//! * **`.pqa` format** ([`format`](mod@format)) — an append-only file of sealed
//!   segments, each CRC-32-protected and self-describing, closed by a
//!   trailer index (see the format module docs for the byte layout);
//! * **codec** ([`codec`]) — sparse, delta-compressed checkpoint bodies
//!   exploiting the mostly-empty register geometry, with allocation
//!   budgeting against adversarial input;
//! * **writer** ([`StoreWriter`]) — streaming, bounded-RAM appends with
//!   segment rotation and optional retention; [`SharedStoreWriter`]
//!   plugs into the analysis program's
//!   [`CheckpointSink`](pq_core::control::CheckpointSink) spill hook so
//!   checkpoints hit disk as they are polled;
//! * **reader** ([`StoreReader`]) — trailer-index fast path with
//!   forward-scan crash recovery; time-range queries decode only the
//!   segments whose checkpoint chains overlap the interval, and corrupt
//!   segments degrade to [`CoverageGap`](pq_core::control::CoverageGap)s
//!   instead of failing the file;
//! * **migration** ([`json`]) — magic-byte auto-detection and lossless
//!   conversion between the historical JSON `CheckpointArchive` format
//!   and `.pqa`, in both directions;
//! * **replication** ([`replication`]) — CRC-verified seal-and-ship of a
//!   sealed archive to a replica peer with atomic publish, plus a
//!   segment-level audit that proves two replicas equivalent, backing
//!   the scale-out query tier's any-owner-can-answer contract.

pub mod codec;
pub mod crc;
pub mod format;
pub mod json;
pub mod reader;
pub mod replication;
pub mod varint;
pub mod writer;

pub use codec::DecodeBudget;
pub use format::{PortMeta, SegmentMeta, KIND_CHECKPOINTS, KIND_RTT, KNOWN_KINDS};
pub use json::{
    archives_from_json, archives_to_json, archives_to_pqa, format_for_path, read_archives,
    write_archives, ArchiveFormat,
};
pub use reader::{QueryStats, Recovery, SegmentCache, SegmentKey, StoreReader};
pub use replication::{ship_archive, verify_replica, ReplicaDivergence, ShipReport};
pub use writer::{SegmentPolicy, SharedStoreWriter, StoreWriter};
