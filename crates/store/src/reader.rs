//! `.pqa` reader: trailer-index fast path, forward-scan crash recovery,
//! pruned time-range queries, and archive reconstruction.
//!
//! Opening a store parses the 9-byte header and then tries the trailer
//! index (written by a clean [`finish`](crate::StoreWriter::finish)). If
//! the trailer is missing, torn, or fails its CRC — the crash case — the
//! reader falls back to a forward scan of the segment chain, recovering
//! every segment whose framing and body CRC check out. A segment that
//! fails its CRC is *skipped*, and the span it covered is surfaced as a
//! [`CoverageGap`] on that port's queries (PR 1's degraded-query
//! machinery), so corruption costs exactly the damaged segment and is
//! never silent.
//!
//! Queries decode only the segments whose checkpoint chains can overlap
//! the interval (see [`SegmentMeta::overlaps_query`]); everything else is
//! pruned via index metadata without touching the segment bytes. The
//! §6.3 slicing chain is re-seeded from each segment's stored
//! `prev_periodic`, which keeps pruned results bit-identical to a full
//! in-RAM replay.

use crate::codec::{decode_checkpoint, CodecState, DecodeBudget};
use crate::crc::crc32;
use crate::format::{self, invalid, PortMeta, SegmentMeta};
use crate::varint;
use pq_core::coefficient::Coefficients;
use pq_core::control::{Checkpoint, CoverageGap, QueryResult};
use pq_core::export::CheckpointArchive;
use pq_core::params::TimeWindowConfig;
use pq_core::snapshot::{FlowEstimates, QueryInterval};
use pq_telemetry::{names, Counter, Histogram, Telemetry};
use std::io::{self, Read, Seek, SeekFrom};
use std::sync::Arc;
use std::time::Instant;

/// Identity of one sealed segment's decoded contents.
///
/// Segments are immutable once sealed, so `(offset, body CRC, count)`
/// uniquely identifies the decode result *within one archive*; a cache
/// shared across archives must add its own archive id to the key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SegmentKey {
    /// Absolute file offset of the segment magic.
    pub offset: u64,
    /// CRC-32 of the segment body.
    pub body_crc: u32,
    /// Checkpoints in the segment.
    pub count: u64,
}

impl SegmentKey {
    /// The cache key for a segment index entry.
    pub fn of(meta: &SegmentMeta) -> SegmentKey {
        SegmentKey {
            offset: meta.offset,
            body_crc: meta.body_crc,
            count: meta.count,
        }
    }
}

/// A pluggable store for decoded segments, consulted by
/// [`StoreReader::query_cached`] before paying the decode cost.
///
/// Decoded checkpoints are handed around as `Arc<[Checkpoint]>` so a hit
/// costs one refcount bump, never a deep clone. Implementations own their
/// eviction policy (the serving layer uses a byte-bounded LRU); the
/// reader only ever calls `get` then, on a miss that decodes cleanly,
/// `insert`. Corrupt segments are never inserted — they surface as
/// [`CoverageGap`]s exactly as on the uncached path.
pub trait SegmentCache {
    /// Look up a previously decoded segment.
    fn get(&mut self, key: SegmentKey) -> Option<Arc<[Checkpoint]>>;

    /// Offer a freshly decoded segment for caching.
    fn insert(&mut self, key: SegmentKey, checkpoints: Arc<[Checkpoint]>);
}

/// How the reader located its segment metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recovery {
    /// Clean file: the trailer index was present and valid.
    Index,
    /// The trailer was missing or corrupt; segments were recovered by a
    /// forward scan.
    Scan,
}

/// Pre-resolved registry handles for reader-side metrics, plus the plane
/// itself for replay-query span tracing.
struct ReaderInstruments {
    plane: Telemetry,
    segments_decoded: Counter,
    checkpoints_decoded: Counter,
    replay_query_ns: Histogram,
}

impl ReaderInstruments {
    fn resolve(plane: &Telemetry) -> ReaderInstruments {
        let reg = plane.registry();
        ReaderInstruments {
            segments_decoded: reg.counter(names::STORE_SEGMENTS_DECODED, &[]),
            checkpoints_decoded: reg.counter(names::STORE_CHECKPOINTS_DECODED, &[]),
            replay_query_ns: reg.histogram(names::STORE_REPLAY_QUERY_NS, &[]),
            plane: plane.clone(),
        }
    }
}

/// Per-call accounting for the most recent
/// [`query_cached`](StoreReader::query_cached), letting callers tag
/// trace spans with how the segments were actually sourced.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Segments the query's interval selected.
    pub segments: u64,
    /// Of those, how many were served from the decoded-segment cache.
    pub from_cache: u64,
    /// How many were decoded from disk (misses that decoded cleanly).
    pub decoded: u64,
    /// Wall-clock nanoseconds spent inside segment decode.
    pub decode_ns: u64,
}

impl QueryStats {
    /// `hit` / `miss` / `mixed` / `none` — the cache-disposition tag a
    /// trace span carries.
    pub fn cache_tag(&self) -> &'static str {
        match (self.from_cache, self.decoded) {
            (0, 0) => "none",
            (_, 0) => "hit",
            (0, _) => "miss",
            _ => "mixed",
        }
    }
}

/// A reader over a seekable `.pqa` source.
pub struct StoreReader<R: Read + Seek> {
    src: R,
    tw: TimeWindowConfig,
    segments: Vec<SegmentMeta>,
    ports: Vec<(u16, PortMeta)>,
    /// Spans lost to CRC-failing or torn segments, discovered at open
    /// (scan) or lazily at decode (index path).
    corrupt: Vec<(u16, CoverageGap)>,
    /// Spans covered by segments whose kind this build does not know.
    /// Distinct from `corrupt`: the bytes are intact, the *codec* is from
    /// the future. Skip-and-surface, never a decode failure.
    unknown_kind: Vec<(u16, CoverageGap)>,
    recovery: Recovery,
    /// Whether the scan hit unparseable bytes before end of file.
    tail_torn: bool,
    budget_bytes: u64,
    telemetry: Option<ReaderInstruments>,
    last_stats: QueryStats,
}

impl<R: Read + Seek> StoreReader<R> {
    /// Open a store, validating the header and locating segments via the
    /// trailer index or, failing that, a forward scan.
    pub fn open(mut src: R) -> io::Result<StoreReader<R>> {
        let mut header = [0u8; format::HEADER_LEN as usize];
        src.seek(SeekFrom::Start(0))?;
        src.read_exact(&mut header)?;
        let tw = format::read_header(&header)?;
        let file_len = src.seek(SeekFrom::End(0))?;

        let mut reader = StoreReader {
            src,
            tw,
            segments: Vec::new(),
            ports: Vec::new(),
            corrupt: Vec::new(),
            unknown_kind: Vec::new(),
            recovery: Recovery::Index,
            tail_torn: false,
            budget_bytes: 64 << 20,
            telemetry: None,
            last_stats: QueryStats::default(),
        };
        match reader.try_trailer(file_len)? {
            Some((segments, ports)) => {
                reader.segments = segments;
                reader.ports = ports;
            }
            None => {
                reader.recovery = Recovery::Scan;
                reader.scan(file_len)?;
            }
        }
        // Segments from the future: skip, and surface the span they cover
        // as a distinct unknown-kind gap so queries degrade instead of
        // failing (or silently missing data).
        for s in &reader.segments {
            if !format::KNOWN_KINDS.contains(&s.kind) {
                reader.unknown_kind.push((
                    s.port,
                    CoverageGap {
                        from: s.prev_periodic.map_or(s.min_t, |p| p.saturating_add(1)),
                        to: s.max_t,
                    },
                ));
            }
        }
        Ok(reader)
    }

    /// Cap (in bytes) on decoded-checkpoint allocations per segment;
    /// adversarial inputs that claim more fail with `InvalidData`. The
    /// cap is per segment, not per call, so legitimately large archives
    /// (many segments) decode in full while a single corrupt length
    /// prefix can never trigger an oversized allocation.
    pub fn set_decode_budget(&mut self, bytes: u64) {
        self.budget_bytes = bytes;
    }

    /// Attach a telemetry plane: decoded segments/checkpoints are counted,
    /// replay-query wall-clock latency goes into a histogram, and (when
    /// tracing is enabled) each [`query`](Self::query) emits a
    /// `replay_query` span covering the queried sim-time interval.
    pub fn set_telemetry(&mut self, plane: &Telemetry) {
        self.telemetry = Some(ReaderInstruments::resolve(plane));
    }

    /// The window geometry of the stored checkpoints.
    pub fn tw_config(&self) -> &TimeWindowConfig {
        &self.tw
    }

    /// How segment metadata was located.
    pub fn recovery(&self) -> Recovery {
        self.recovery
    }

    /// True when a scan recovery stopped at unparseable trailing bytes.
    pub fn tail_torn(&self) -> bool {
        self.tail_torn
    }

    /// Spans covered by segments whose kind this build does not know,
    /// per port. A non-empty list means the archive was written by a
    /// newer binary; the data is intact on disk but unreadable here, so
    /// overlapping queries come back degraded with these gaps — the
    /// *reason* stays distinct from corruption (see
    /// [`tail_torn`](Self::tail_torn) and CRC gaps).
    pub fn unknown_kind_gaps(&self) -> &[(u16, CoverageGap)] {
        &self.unknown_kind
    }

    /// Segment index entries, in file order.
    pub fn segments(&self) -> &[SegmentMeta] {
        &self.segments
    }

    /// Ports present in the store, ascending.
    pub fn ports(&self) -> Vec<u16> {
        let mut ports: Vec<u16> = self
            .ports
            .iter()
            .map(|(p, _)| *p)
            .chain(self.segments.iter().map(|s| s.port))
            .collect();
        ports.sort_unstable();
        ports.dedup();
        ports
    }

    /// Total checkpoints indexed for `port` (without decoding anything).
    pub fn checkpoint_count(&self, port: u16) -> u64 {
        self.segments
            .iter()
            .filter(|s| s.port == port && s.kind == format::KIND_CHECKPOINTS)
            .map(|s| s.count)
            .sum()
    }

    /// Index entries for `port`'s raw segments of the given kind (e.g.
    /// [`format::KIND_RTT`]), in file order.
    pub fn raw_segments(&self, port: u16, kind: u64) -> Vec<SegmentMeta> {
        self.segments
            .iter()
            .filter(|s| s.port == port && s.kind == kind)
            .copied()
            .collect()
    }

    /// Read one segment's body bytes, verifying framing and CRC but not
    /// decoding — the caller owns the kind's codec.
    pub fn read_raw_body(&mut self, meta: &SegmentMeta) -> io::Result<Vec<u8>> {
        self.src.seek(SeekFrom::Start(meta.offset))?;
        let mut frame = vec![0u8; meta.len as usize];
        self.src.read_exact(&mut frame)?;
        let mut cursor = frame.as_slice();
        if varint::read_bytes(&mut cursor, 4)? != format::SEGMENT_MAGIC.as_slice() {
            return Err(invalid("segment magic mismatch"));
        }
        let hdr_len = varint::read_len(&mut cursor, format::MAX_SEGHDR_LEN)?;
        let _hdr = varint::read_bytes(&mut cursor, hdr_len)?;
        let remaining = cursor.len();
        let body_len = varint::read_len(&mut cursor, remaining)?;
        if cursor.len() != body_len + 4 {
            return Err(invalid("segment framing length mismatch"));
        }
        let body = &cursor[..body_len];
        let stored_crc = u32::from_le_bytes(cursor[body_len..].try_into().unwrap());
        if crc32(body) != stored_crc {
            return Err(invalid("segment body CRC mismatch"));
        }
        if let Some(t) = &self.telemetry {
            t.segments_decoded.inc();
        }
        Ok(body.to_vec())
    }

    fn port_meta(&self, port: u16) -> PortMeta {
        self.ports
            .iter()
            .find(|(p, _)| *p == port)
            .map(|(_, m)| m.clone())
            .unwrap_or_default()
    }

    /// Trailer fast path: `Ok(None)` means "fall back to scan".
    fn try_trailer(&mut self, file_len: u64) -> io::Result<Option<format::StoreIndex>> {
        let min_len = format::HEADER_LEN + format::TRAILER_FIXED + 4;
        if file_len < min_len {
            return Ok(None);
        }
        let mut tail = [0u8; 12];
        self.src.seek(SeekFrom::Start(file_len - 12))?;
        self.src.read_exact(&mut tail)?;
        if tail[8..12] != format::END_MAGIC {
            return Ok(None);
        }
        let index_len = u64::from_le_bytes(tail[..8].try_into().unwrap());
        if index_len > file_len - min_len {
            return Ok(None);
        }
        let trailer_start = file_len - 12 - 4 - index_len - 4;
        self.src.seek(SeekFrom::Start(trailer_start))?;
        let mut buf = vec![0u8; (4 + index_len + 4) as usize];
        self.src.read_exact(&mut buf)?;
        if buf[..4] != format::TRAILER_MAGIC {
            return Ok(None);
        }
        let index = &buf[4..4 + index_len as usize];
        let stored_crc = u32::from_le_bytes(buf[4 + index_len as usize..].try_into().unwrap());
        if crc32(index) != stored_crc {
            return Ok(None);
        }
        let Ok((segments, ports)) = format::read_index(index) else {
            return Ok(None);
        };
        // Reject indexes pointing outside the file (torn rewrite).
        for s in &segments {
            if s.offset < format::HEADER_LEN
                || s.len < 8
                || s.offset.saturating_add(s.len) > trailer_start
            {
                return Ok(None);
            }
        }
        Ok(Some((segments, ports)))
    }

    /// Forward scan from the first segment: recover every frame whose
    /// header parses; CRC failures become per-port gaps.
    fn scan(&mut self, file_len: u64) -> io::Result<()> {
        let mut pos = format::HEADER_LEN;
        while pos + 4 <= file_len {
            self.src.seek(SeekFrom::Start(pos))?;
            let mut magic = [0u8; 4];
            self.src.read_exact(&mut magic)?;
            if magic == format::TRAILER_MAGIC {
                // A trailer start we already failed to validate: segments
                // end here.
                break;
            }
            if magic != format::SEGMENT_MAGIC {
                self.tail_torn = true;
                break;
            }
            // Peek enough for the header varints.
            let peek_len = ((file_len - pos - 4) as usize).min(format::MAX_SEGHDR_LEN + 24);
            let mut peek = vec![0u8; peek_len];
            self.src.read_exact(&mut peek)?;
            let mut cursor = peek.as_slice();
            let parsed = (|| -> io::Result<(SegmentMeta, u64, u64)> {
                let hdr_len = varint::read_len(&mut cursor, format::MAX_SEGHDR_LEN)?;
                let hdr = varint::read_bytes(&mut cursor, hdr_len)?;
                let meta = SegmentMeta::read_seg_header_delimited(hdr)?;
                let body_len = varint::read_u64(&mut cursor)?;
                let consumed = 4 + (peek_len - cursor.len()) as u64;
                Ok((meta, body_len, consumed))
            })();
            let Ok((mut meta, body_len, consumed)) = parsed else {
                self.tail_torn = true;
                break;
            };
            let frame_len = consumed + body_len + 4;
            if pos + frame_len > file_len {
                // Torn tail: header is intact (metadata tells us what was
                // lost), body never made it to disk.
                self.corrupt.push((
                    meta.port,
                    CoverageGap {
                        from: meta.prev_periodic.map_or(0, |p| p.saturating_add(1)),
                        to: meta.max_t,
                    },
                ));
                self.tail_torn = true;
                break;
            }
            self.src.seek(SeekFrom::Start(pos + consumed))?;
            let mut body = vec![0u8; body_len as usize];
            self.src.read_exact(&mut body)?;
            let mut crc_bytes = [0u8; 4];
            self.src.read_exact(&mut crc_bytes)?;
            let stored_crc = u32::from_le_bytes(crc_bytes);
            meta.offset = pos;
            meta.len = frame_len;
            meta.body_crc = stored_crc;
            if crc32(&body) == stored_crc {
                self.segments.push(meta);
            } else {
                self.corrupt.push((
                    meta.port,
                    CoverageGap {
                        from: meta.prev_periodic.map_or(0, |p| p.saturating_add(1)),
                        to: meta.max_t,
                    },
                ));
            }
            pos += frame_len;
        }
        // Reconstruct per-port chain ends from the recovered segments (the
        // trailer that would normally carry them is gone). Raw segments
        // carry no periodic chain, so only checkpoint segments contribute.
        for s in &self.segments {
            if s.kind != format::KIND_CHECKPOINTS {
                continue;
            }
            match self.ports.iter_mut().find(|(p, _)| *p == s.port) {
                Some((_, meta)) => meta.last_periodic = s.last_periodic,
                None => self.ports.push((
                    s.port,
                    PortMeta {
                        last_periodic: s.last_periodic,
                        ..PortMeta::default()
                    },
                )),
            }
        }
        Ok(())
    }

    /// Decode one segment's checkpoints, verifying framing and CRC. The
    /// decode budget is fresh per segment (see [`Self::set_decode_budget`]).
    fn decode_segment(&mut self, meta: &SegmentMeta) -> io::Result<Vec<Checkpoint>> {
        pq_prof::scope!("store/segment_decode");
        let mut budget = DecodeBudget::new(self.budget_bytes);
        self.src.seek(SeekFrom::Start(meta.offset))?;
        let mut frame = vec![0u8; meta.len as usize];
        self.src.read_exact(&mut frame)?;
        let mut cursor = frame.as_slice();
        if varint::read_bytes(&mut cursor, 4)? != format::SEGMENT_MAGIC.as_slice() {
            return Err(invalid("segment magic mismatch"));
        }
        let hdr_len = varint::read_len(&mut cursor, format::MAX_SEGHDR_LEN)?;
        let _hdr = varint::read_bytes(&mut cursor, hdr_len)?;
        let remaining = cursor.len();
        let body_len = varint::read_len(&mut cursor, remaining)?;
        if cursor.len() != body_len + 4 {
            return Err(invalid("segment framing length mismatch"));
        }
        let body = &cursor[..body_len];
        let stored_crc = u32::from_le_bytes(cursor[body_len..].try_into().unwrap());
        if crc32(body) != stored_crc {
            return Err(invalid("segment body CRC mismatch"));
        }
        // Each checkpoint is ≥ 2 bytes on the wire; a count claiming more
        // is framing corruption.
        if meta.count > (body_len as u64) / 2 + 1 {
            return Err(invalid("segment count inconsistent with body size"));
        }
        let mut cps = Vec::with_capacity(meta.count as usize);
        let mut state = CodecState::default();
        let mut body_cursor = body;
        for _ in 0..meta.count {
            cps.push(decode_checkpoint(
                &mut body_cursor,
                &self.tw,
                &mut state,
                &mut budget,
            )?);
        }
        if !body_cursor.is_empty() {
            return Err(invalid("trailing bytes after last checkpoint"));
        }
        if let Some(t) = &self.telemetry {
            t.segments_decoded.inc();
            t.checkpoints_decoded.add(cps.len() as u64);
        }
        Ok(cps)
    }

    /// Decode everything stored for `port` into a [`CheckpointArchive`]
    /// (the JSON-compatible in-RAM form). Corrupt segments are skipped and
    /// appended to the archive's gap list.
    pub fn read_port(&mut self, port: u16) -> io::Result<CheckpointArchive> {
        let metas: Vec<SegmentMeta> = self
            .segments
            .iter()
            .filter(|s| s.port == port && s.kind == format::KIND_CHECKPOINTS)
            .copied()
            .collect();
        let mut checkpoints = Vec::new();
        let meta_info = self.port_meta(port);
        let mut gaps = meta_info.gaps.clone();
        for m in &metas {
            match self.decode_segment(m) {
                Ok(cps) => checkpoints.extend(cps),
                Err(_) => gaps.push(CoverageGap {
                    from: m.prev_periodic.map_or(0, |p| p.saturating_add(1)),
                    to: m.max_t,
                }),
            }
        }
        gaps.extend(
            self.corrupt
                .iter()
                .filter(|(p, _)| *p == port)
                .map(|(_, g)| *g),
        );
        gaps.extend(
            self.unknown_kind
                .iter()
                .filter(|(p, _)| *p == port)
                .map(|(_, g)| *g),
        );
        Ok(CheckpointArchive {
            version: 1,
            tw_config: self.tw,
            port,
            checkpoints,
            gaps,
            health: meta_info.health,
        })
    }

    /// Decode every port into archives (ascending port order).
    pub fn read_all(&mut self) -> io::Result<Vec<CheckpointArchive>> {
        self.ports()
            .into_iter()
            .map(|p| self.read_port(p))
            .collect()
    }

    /// Run a §6.3 time-range query for `port`, decoding only segments
    /// whose checkpoint chains can overlap `interval`.
    ///
    /// Results are bit-identical to querying the full in-RAM checkpoint
    /// sequence: the per-checkpoint slice chain is re-seeded from each
    /// segment's stored `prev_periodic`, and the open-ended tail gap uses
    /// the port's recorded end-of-chain.
    pub fn query(
        &mut self,
        port: u16,
        interval: QueryInterval,
        coeffs: &Coefficients,
    ) -> io::Result<QueryResult> {
        self.query_cached(port, interval, coeffs, None)
    }

    /// [`query`](Self::query) with an optional decoded-segment cache.
    ///
    /// Every segment the query needs is first looked up in `cache`; a miss
    /// decodes from disk (the per-segment [`DecodeBudget`] still applies)
    /// and offers the result back via [`SegmentCache::insert`]. Results are
    /// bit-identical with and without a cache: decoded checkpoints are
    /// immutable, and the merge order over segments is unchanged.
    pub fn query_cached(
        &mut self,
        port: u16,
        interval: QueryInterval,
        coeffs: &Coefficients,
        mut cache: Option<&mut dyn SegmentCache>,
    ) -> io::Result<QueryResult> {
        let started = Instant::now();
        let metas: Vec<SegmentMeta> = self
            .segments
            .iter()
            .filter(|s| {
                s.port == port
                    && s.kind == format::KIND_CHECKPOINTS
                    && s.overlaps_query(interval.from, interval.to)
            })
            .copied()
            .collect();
        let mut stats = QueryStats {
            segments: metas.len() as u64,
            ..QueryStats::default()
        };
        let meta_info = self.port_meta(port);
        let mut estimates = FlowEstimates::default();
        let mut corrupt_gaps: Vec<CoverageGap> = Vec::new();
        let mut prev_frozen_at: Option<u64> = None;
        for m in &metas {
            let cached = cache.as_mut().and_then(|c| c.get(SegmentKey::of(m)));
            let cps: Arc<[Checkpoint]> = match cached {
                Some(cps) => {
                    stats.from_cache += 1;
                    cps
                }
                None => {
                    let decode_started = Instant::now();
                    let decoded = self.decode_segment(m);
                    stats.decode_ns = stats.decode_ns.saturating_add(
                        u64::try_from(decode_started.elapsed().as_nanos()).unwrap_or(u64::MAX),
                    );
                    match decoded {
                        Ok(cps) => {
                            stats.decoded += 1;
                            let cps: Arc<[Checkpoint]> = cps.into();
                            if let Some(c) = cache.as_mut() {
                                c.insert(SegmentKey::of(m), Arc::clone(&cps));
                            }
                            cps
                        }
                        Err(_) => {
                            corrupt_gaps.push(CoverageGap {
                                from: m.prev_periodic.map_or(0, |p| p.saturating_add(1)),
                                to: m.max_t,
                            });
                            continue;
                        }
                    }
                }
            };
            // Re-seed the slice chain from the segment header so skipped
            // (pruned or corrupt) predecessors don't shift the clamping.
            prev_frozen_at = m.prev_periodic.or(prev_frozen_at);
            for cp in cps.iter() {
                let slice_from = interval.from.max(prev_frozen_at.map_or(0, |t| t + 1));
                let slice_to = interval.to.min(cp.frozen_at);
                if !cp.on_demand {
                    prev_frozen_at = Some(cp.frozen_at);
                }
                if slice_from > slice_to || cp.on_demand {
                    continue;
                }
                let est = cp
                    .windows
                    .query(QueryInterval::new(slice_from, slice_to), coeffs);
                estimates.merge(&est);
            }
        }
        let mut gaps: Vec<CoverageGap> = meta_info
            .gaps
            .iter()
            .filter(|g| g.overlaps(interval))
            .copied()
            .collect();
        gaps.extend(
            self.corrupt
                .iter()
                .filter(|(p, g)| *p == port && g.overlaps(interval))
                .map(|(_, g)| *g),
        );
        gaps.extend(corrupt_gaps.iter().filter(|g| g.overlaps(interval)));
        gaps.extend(
            self.unknown_kind
                .iter()
                .filter(|(p, g)| *p == port && g.overlaps(interval))
                .map(|(_, g)| *g),
        );
        let t_set = self.tw.set_period();
        let last = meta_info.last_periodic.unwrap_or(0);
        if interval.to > last.saturating_add(t_set) {
            gaps.push(CoverageGap {
                from: last,
                to: interval.to,
            });
        }
        if let Some(t) = &self.telemetry {
            t.replay_query_ns
                .record(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));
            if t.plane.tracing_enabled() {
                // The span covers the queried sim-time interval, not wall
                // clock — the trace timeline is sim time throughout.
                t.plane.spans().record(
                    names::SPAN_REPLAY_QUERY,
                    interval.from,
                    interval.to,
                    u32::from(port),
                );
            }
        }
        self.last_stats = stats;
        Ok(QueryResult {
            degraded: !gaps.is_empty(),
            estimates,
            gaps,
        })
    }

    /// Accounting for the most recent [`query_cached`](Self::query_cached)
    /// call (zeroed until the first query).
    pub fn last_query_stats(&self) -> QueryStats {
        self.last_stats
    }
}
