//! Streaming `.pqa` writer: buffers checkpoints per port, seals bounded
//! segments, and emits the trailer index at finish.
//!
//! The writer is the bounded-RAM half of the store: at most one *open*
//! segment per port lives in memory (capped by
//! [`SegmentPolicy::max_segment_bytes`]); everything sealed is already on
//! disk. This is what lets a long-running control plane spill checkpoints
//! continuously instead of accumulating a whole run in its snapshot ring.
//!
//! [`SharedStoreWriter`] adapts the writer to the
//! [`CheckpointSink`] spill hook of the
//! analysis program while the caller keeps a handle to `finish()` the
//! file afterwards.

use crate::codec::{encode_checkpoint, CodecState};
use crate::crc::crc32;
use crate::format::{self, PortMeta, SegmentMeta};
use crate::varint;
use pq_core::control::{Checkpoint, CheckpointSink, CoverageGap};
use pq_core::metrics::ControlHealth;
use pq_core::params::TimeWindowConfig;
use pq_packet::Nanos;
use pq_telemetry::{names, Counter, Histogram, Telemetry};
use std::collections::BTreeMap;
use std::io::{self, Write};
use std::sync::Arc;

/// Segment rotation and retention knobs.
#[derive(Debug, Clone, Copy)]
pub struct SegmentPolicy {
    /// Seal a segment once it holds this many checkpoints.
    pub checkpoints_per_segment: usize,
    /// Seal a segment once its encoded body reaches this size.
    pub max_segment_bytes: usize,
    /// Keep only the newest N sealed segments per port in the index;
    /// older spans are dropped from the index and recorded as coverage
    /// gaps (`None` = unbounded retention).
    pub retain_segments_per_port: Option<usize>,
}

impl Default for SegmentPolicy {
    fn default() -> Self {
        SegmentPolicy {
            checkpoints_per_segment: 64,
            max_segment_bytes: 4 << 20,
            retain_segments_per_port: None,
        }
    }
}

struct OpenSegment {
    body: Vec<u8>,
    state: CodecState,
    count: u64,
    min_t: Nanos,
    max_t: Nanos,
    prev_periodic: Option<Nanos>,
}

#[derive(Default)]
struct PortState {
    open: Option<OpenSegment>,
    /// Chain value: last periodic freeze time written for this port.
    chain: Option<Nanos>,
    meta: PortMeta,
}

/// Pre-resolved registry handles for writer-side metrics, plus the plane
/// itself for segment-flush span tracing.
struct WriterInstruments {
    plane: Telemetry,
    checkpoints_written: Counter,
    segments_sealed: Counter,
    bytes_written: Counter,
    segment_bytes: Histogram,
}

impl WriterInstruments {
    fn resolve(plane: &Telemetry) -> WriterInstruments {
        let reg = plane.registry();
        WriterInstruments {
            checkpoints_written: reg.counter(names::STORE_CHECKPOINTS_WRITTEN, &[]),
            segments_sealed: reg.counter(names::STORE_SEGMENTS_SEALED, &[]),
            bytes_written: reg.counter(names::STORE_BYTES_WRITTEN, &[]),
            segment_bytes: reg.histogram(names::STORE_SEGMENT_BYTES, &[]),
            plane: plane.clone(),
        }
    }
}

/// Streaming writer for a `.pqa` archive.
pub struct StoreWriter<W: Write> {
    out: W,
    pos: u64,
    tw: TimeWindowConfig,
    policy: SegmentPolicy,
    segments: Vec<SegmentMeta>,
    ports: BTreeMap<u16, PortState>,
    telemetry: Option<WriterInstruments>,
}

impl<W: Write> StoreWriter<W> {
    /// Write the file header and return a writer for `tw`-shaped
    /// checkpoints.
    pub fn new(
        mut out: W,
        tw: TimeWindowConfig,
        policy: SegmentPolicy,
    ) -> io::Result<StoreWriter<W>> {
        format::check_tw_config(&tw).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("bad store config: {e}"),
            )
        })?;
        format::write_header(&mut out, &tw)?;
        Ok(StoreWriter {
            out,
            pos: format::HEADER_LEN,
            tw,
            policy,
            segments: Vec::new(),
            ports: BTreeMap::new(),
            telemetry: None,
        })
    }

    /// Attach a telemetry plane: appended checkpoints, sealed segments,
    /// and written bytes are counted, segment sizes go into a histogram,
    /// and (when tracing is enabled) each sealed segment emits a
    /// `segment_flush` span covering the sim-time range of the checkpoints
    /// inside it.
    pub fn set_telemetry(&mut self, plane: &Telemetry) {
        self.telemetry = Some(WriterInstruments::resolve(plane));
    }

    /// The window geometry this store holds.
    pub fn tw_config(&self) -> &TimeWindowConfig {
        &self.tw
    }

    /// Sealed segments so far (for introspection/tests).
    pub fn sealed_segments(&self) -> usize {
        self.segments.len()
    }

    /// Append a checkpoint for `port`, sealing the port's open segment if
    /// the rotation policy says so.
    pub fn push(&mut self, port: u16, cp: &Checkpoint) -> io::Result<()> {
        let tw = self.tw;
        let policy = self.policy;
        let state = self.ports.entry(port).or_default();
        let chain = state.chain;
        let open = state.open.get_or_insert_with(|| OpenSegment {
            body: Vec::new(),
            state: CodecState::default(),
            count: 0,
            min_t: cp.frozen_at,
            max_t: cp.frozen_at,
            prev_periodic: chain,
        });
        encode_checkpoint(&mut open.body, &tw, &mut open.state, cp)?;
        if let Some(t) = &self.telemetry {
            t.checkpoints_written.inc();
        }
        open.count += 1;
        open.min_t = open.min_t.min(cp.frozen_at);
        open.max_t = open.max_t.max(cp.frozen_at);
        if !cp.on_demand {
            state.chain = Some(cp.frozen_at);
        }
        if open.count as usize >= policy.checkpoints_per_segment
            || open.body.len() >= policy.max_segment_bytes
        {
            self.seal(port)?;
        }
        Ok(())
    }

    /// Append a raw segment of the given `kind` (e.g. an encoded RTT
    /// report under [`format::KIND_RTT`]). The port's open checkpoint
    /// segment is sealed first so file order tracks append order. Raw
    /// segments sit outside the checkpoint chain (`prev_periodic` /
    /// `last_periodic` are none) and never participate in checkpoint
    /// queries; `count` is informational (e.g. samples in the body).
    pub fn push_raw(
        &mut self,
        port: u16,
        kind: u64,
        count: u64,
        min_t: Nanos,
        max_t: Nanos,
        body: &[u8],
    ) -> io::Result<()> {
        self.seal(port)?;
        self.ports.entry(port).or_default();
        let mut meta = SegmentMeta {
            offset: self.pos,
            len: 0,
            port,
            count,
            min_t,
            max_t,
            prev_periodic: None,
            last_periodic: None,
            body_crc: crc32(body),
            kind,
        };
        let mut frame = Vec::with_capacity(body.len() + 64);
        frame.extend_from_slice(&format::SEGMENT_MAGIC);
        let mut hdr = Vec::new();
        meta.write_seg_header(&mut hdr)?;
        varint::write_u64(&mut frame, hdr.len() as u64)?;
        frame.extend_from_slice(&hdr);
        varint::write_u64(&mut frame, body.len() as u64)?;
        frame.extend_from_slice(body);
        frame.extend_from_slice(&meta.body_crc.to_le_bytes());
        meta.len = frame.len() as u64;
        self.out.write_all(&frame)?;
        self.pos += meta.len;
        if let Some(t) = &self.telemetry {
            t.segments_sealed.inc();
            t.bytes_written.add(meta.len);
            t.segment_bytes.record(meta.len);
            if t.plane.tracing_enabled() {
                t.plane
                    .spans()
                    .record(names::SPAN_SEGMENT_FLUSH, min_t, max_t, u32::from(port));
            }
        }
        self.segments.push(meta);
        Ok(())
    }

    /// Record a coverage gap for `port` (carried in the trailer).
    pub fn push_gap(&mut self, port: u16, gap: CoverageGap) {
        self.ports.entry(port).or_default().meta.gaps.push(gap);
    }

    /// Record the control-plane health counters for `port`.
    pub fn set_health(&mut self, port: u16, health: ControlHealth) {
        self.ports.entry(port).or_default().meta.health = health;
    }

    /// Seal `port`'s open segment (no-op when nothing is buffered).
    pub fn seal(&mut self, port: u16) -> io::Result<()> {
        pq_prof::scope!("store/segment_encode");
        let Some(state) = self.ports.get_mut(&port) else {
            return Ok(());
        };
        let Some(open) = state.open.take() else {
            return Ok(());
        };
        let mut meta = SegmentMeta {
            offset: self.pos,
            len: 0,
            port,
            count: open.count,
            min_t: open.min_t,
            max_t: open.max_t,
            prev_periodic: open.prev_periodic,
            last_periodic: state.chain,
            body_crc: crc32(&open.body),
            kind: format::KIND_CHECKPOINTS,
        };
        // Frame the whole segment in one buffer so a crash tears at most
        // the tail of a single write burst.
        let mut frame = Vec::with_capacity(open.body.len() + 64);
        frame.extend_from_slice(&format::SEGMENT_MAGIC);
        let mut hdr = Vec::new();
        meta.write_seg_header(&mut hdr)?;
        varint::write_u64(&mut frame, hdr.len() as u64)?;
        frame.extend_from_slice(&hdr);
        varint::write_u64(&mut frame, open.body.len() as u64)?;
        frame.extend_from_slice(&open.body);
        frame.extend_from_slice(&meta.body_crc.to_le_bytes());
        meta.len = frame.len() as u64;
        self.out.write_all(&frame)?;
        self.pos += meta.len;
        if let Some(t) = &self.telemetry {
            t.segments_sealed.inc();
            t.bytes_written.add(meta.len);
            t.segment_bytes.record(meta.len);
            if t.plane.tracing_enabled() {
                // The span covers the sim-time range the segment holds.
                t.plane.spans().record(
                    names::SPAN_SEGMENT_FLUSH,
                    open.min_t,
                    open.max_t,
                    u32::from(port),
                );
            }
        }
        self.segments.push(meta);
        Ok(())
    }

    fn apply_retention(&mut self) {
        let Some(retain) = self.policy.retain_segments_per_port else {
            return;
        };
        let mut kept = Vec::with_capacity(self.segments.len());
        let mut per_port: BTreeMap<u16, usize> = BTreeMap::new();
        for s in &self.segments {
            if s.kind == format::KIND_CHECKPOINTS {
                *per_port.entry(s.port).or_default() += 1;
            }
        }
        let mut seen: BTreeMap<u16, usize> = BTreeMap::new();
        for s in self.segments.drain(..) {
            if s.kind != format::KIND_CHECKPOINTS {
                // Retention bounds the checkpoint chain; raw segments
                // (RTT reports and future kinds) are kept as written.
                kept.push(s);
                continue;
            }
            let idx = seen.entry(s.port).or_default();
            *idx += 1;
            let total = per_port[&s.port];
            if total - *idx < retain {
                kept.push(s);
            } else {
                // Dropped from the index: the span it covered becomes a
                // recorded gap so queries over it degrade instead of
                // silently missing data.
                let from = s.prev_periodic.map_or(0, |p| p.saturating_add(1));
                let state = self.ports.entry(s.port).or_default();
                state.meta.gaps.push(CoverageGap { from, to: s.max_t });
            }
        }
        self.segments = kept;
    }

    /// Seal everything, write the trailer index, flush, and hand back the
    /// underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        let ports: Vec<u16> = self.ports.keys().copied().collect();
        for port in ports {
            self.seal(port)?;
        }
        self.apply_retention();
        for state in self.ports.values_mut() {
            state.meta.last_periodic = state.chain;
        }
        let port_refs: Vec<(u16, &PortMeta)> =
            self.ports.iter().map(|(p, s)| (*p, &s.meta)).collect();
        let mut index = Vec::new();
        format::write_index(&mut index, &self.segments, &port_refs)?;
        let crc = crc32(&index);
        self.out.write_all(&format::TRAILER_MAGIC)?;
        self.out.write_all(&index)?;
        self.out.write_all(&crc.to_le_bytes())?;
        self.out.write_all(&(index.len() as u64).to_le_bytes())?;
        self.out.write_all(&format::END_MAGIC)?;
        self.out.flush()?;
        Ok(self.out)
    }
}

/// A clonable, `'static`, thread-safe handle to a [`StoreWriter`] usable
/// as the analysis program's [`CheckpointSink`] while the caller retains
/// the ability to [`finish`](SharedStoreWriter::finish) the file.
///
/// The interior mutex is pq-prof's instrumented facade under the name
/// `store_writer`, so every checkpoint append publishes its wait/hold
/// time as `pq_lock_wait_ns{lock="store_writer"}` — the contention
/// evidence the ROADMAP "remove the `Arc<Mutex>` store writer" item
/// needs before and after. Poisoning (a writer thread panicking mid-
/// append) is recovered rather than propagated; the segment CRCs guard
/// the file itself.
pub struct SharedStoreWriter<W: Write> {
    inner: Arc<pq_prof::PqMutex<Option<StoreWriter<W>>>>,
}

impl<W: Write> Clone for SharedStoreWriter<W> {
    fn clone(&self) -> Self {
        SharedStoreWriter {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<W: Write> SharedStoreWriter<W> {
    /// Wrap a writer for sharing.
    pub fn new(writer: StoreWriter<W>) -> SharedStoreWriter<W> {
        SharedStoreWriter {
            inner: Arc::new(pq_prof::PqMutex::new("store_writer", Some(writer))),
        }
    }

    fn closed() -> io::Error {
        io::Error::other("store writer already finished")
    }

    /// Run `f` against the writer (errors once finished).
    pub fn with<R>(&self, f: impl FnOnce(&mut StoreWriter<W>) -> R) -> io::Result<R> {
        match self.inner.lock().as_mut() {
            Some(w) => Ok(f(w)),
            None => Err(Self::closed()),
        }
    }

    /// Finish the store, consuming the shared writer's interior.
    pub fn finish(&self) -> io::Result<W> {
        match self.inner.lock().take() {
            Some(w) => w.finish(),
            None => Err(Self::closed()),
        }
    }
}

impl<W: Write + Send + 'static> CheckpointSink for SharedStoreWriter<W> {
    fn on_checkpoint(&mut self, port: u16, cp: &Checkpoint) -> io::Result<()> {
        self.with(|w| w.push(port, cp))?
    }

    fn on_gap(&mut self, port: u16, gap: CoverageGap) -> io::Result<()> {
        self.with(|w| w.push_gap(port, gap))
    }
}
