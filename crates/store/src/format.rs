//! The `.pqa` on-disk layout: magic numbers, file header, segment metadata,
//! and the trailer index.
//!
//! ```text
//! FILE    := HEADER SEGMENT* [TRAILER]
//! HEADER  := "PQAR" | version u8 (= 1) | m0 u8 | alpha u8 | k u8 | t u8
//! SEGMENT := "PQSG" | hdr_len varint | SEGHDR | body_len varint | body
//!            | crc32(body) u32-LE
//! SEGHDR  := port varint | count varint | min_t varint | max_t varint
//!            | prev_periodic varint (0 = none, else value+1)
//!            | last_periodic varint (0 = none, else value+1)
//! TRAILER := "PQIX" | index bytes | crc32(index) u32-LE
//!            | index_len u64-LE | "PQEN"
//! ```
//!
//! Everything after the fixed 9-byte header is append-only. A segment is
//! written in one `write` burst at seal time, so its header metadata
//! (span, count, chain seed) is always complete even when the *body* is
//! torn by a crash. The trailer is written once by
//! [`StoreWriter::finish`](crate::StoreWriter::finish); a reader that
//! finds it missing or corrupt falls back to a forward scan of the
//! segment chain (see [`StoreReader`](crate::StoreReader)).
//!
//! The `prev_periodic` seed is what makes time-range pruning exact: §6.3
//! query slicing clamps each checkpoint's contribution to
//! `(previous periodic freeze, freeze]`, so a reader that skips whole
//! segments must know the chain value at the first decoded checkpoint.

use crate::varint;
use pq_core::control::CoverageGap;
use pq_core::metrics::ControlHealth;
use pq_core::params::TimeWindowConfig;
use pq_packet::Nanos;
use std::io::{self, Write};

/// File magic: "PQAR" (PrintQueue ARchive).
pub const FILE_MAGIC: [u8; 4] = *b"PQAR";
/// Segment magic.
pub const SEGMENT_MAGIC: [u8; 4] = *b"PQSG";
/// Trailer-index magic.
pub const TRAILER_MAGIC: [u8; 4] = *b"PQIX";
/// End-of-file magic (after the trailer length).
pub const END_MAGIC: [u8; 4] = *b"PQEN";
/// Format version.
pub const VERSION: u8 = 1;
/// Fixed file-header size in bytes.
pub const HEADER_LEN: u64 = 9;
/// Fixed tail size: crc32 (4) + index_len (8) + END_MAGIC (4).
pub const TRAILER_FIXED: u64 = 16;
/// Upper bound on an encoded segment header (sanity cap for scans).
pub const MAX_SEGHDR_LEN: usize = 256;

pub(crate) fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Validate a [`TimeWindowConfig`] decoded from untrusted bytes without
/// panicking (the library's own `validate` asserts).
pub fn check_tw_config(tw: &TimeWindowConfig) -> io::Result<()> {
    if tw.t < 1 || tw.alpha < 1 || tw.k < 1 || tw.k > 24 {
        return Err(invalid("time-window parameters out of range"));
    }
    let max_shift =
        u32::from(tw.m0) + u32::from(tw.alpha) * (u32::from(tw.t) - 1) + u32::from(tw.k);
    if max_shift >= 63 {
        return Err(invalid("time-window periods overflow u64"));
    }
    Ok(())
}

/// Write the 9-byte file header.
pub fn write_header<W: Write>(w: &mut W, tw: &TimeWindowConfig) -> io::Result<()> {
    w.write_all(&FILE_MAGIC)?;
    w.write_all(&[VERSION, tw.m0, tw.alpha, tw.k, tw.t])
}

/// Parse and validate the 9-byte file header.
pub fn read_header(bytes: &[u8]) -> io::Result<TimeWindowConfig> {
    if bytes.len() < HEADER_LEN as usize || bytes[..4] != FILE_MAGIC {
        return Err(invalid("not a .pqa archive (bad magic)"));
    }
    if bytes[4] != VERSION {
        return Err(invalid(format!("unsupported .pqa version {}", bytes[4])));
    }
    let tw = TimeWindowConfig {
        m0: bytes[5],
        alpha: bytes[6],
        k: bytes[7],
        t: bytes[8],
    };
    check_tw_config(&tw)?;
    Ok(tw)
}

/// Index entry describing one sealed segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentMeta {
    /// Absolute file offset of the segment magic.
    pub offset: u64,
    /// Total on-disk length (magic through trailing CRC).
    pub len: u64,
    /// Port the segment's checkpoints belong to.
    pub port: u16,
    /// Checkpoints in the segment.
    pub count: u64,
    /// Earliest checkpoint freeze time.
    pub min_t: Nanos,
    /// Latest checkpoint freeze time.
    pub max_t: Nanos,
    /// §6.3 chain seed: the last *periodic* freeze time before this
    /// segment's first checkpoint (`None` at the head of a port's chain).
    pub prev_periodic: Option<Nanos>,
    /// The last periodic freeze time at segment seal (chain value after).
    pub last_periodic: Option<Nanos>,
    /// CRC-32 of the segment body.
    pub body_crc: u32,
}

fn write_opt_nanos<W: Write>(w: &mut W, v: Option<Nanos>) -> io::Result<()> {
    // 0 = none; the +1 shift keeps t = 0 representable.
    varint::write_u64(w, v.map_or(0, |t| t.saturating_add(1)))
}

fn read_opt_nanos(cursor: &mut &[u8]) -> io::Result<Option<Nanos>> {
    Ok(match varint::read_u64(cursor)? {
        0 => None,
        v => Some(v - 1),
    })
}

impl SegmentMeta {
    /// Encode the in-segment header (everything but offset/len/crc, which
    /// frame the segment physically).
    pub fn write_seg_header<W: Write>(&self, w: &mut W) -> io::Result<()> {
        varint::write_u64(w, u64::from(self.port))?;
        varint::write_u64(w, self.count)?;
        varint::write_u64(w, self.min_t)?;
        varint::write_u64(w, self.max_t)?;
        write_opt_nanos(w, self.prev_periodic)?;
        write_opt_nanos(w, self.last_periodic)
    }

    /// Decode an in-segment header; `offset`/`len`/`body_crc` are filled by
    /// the caller from the physical framing.
    pub fn read_seg_header(cursor: &mut &[u8]) -> io::Result<SegmentMeta> {
        let port = varint::read_len(cursor, u16::MAX as usize)? as u16;
        let count = varint::read_u64(cursor)?;
        let min_t = varint::read_u64(cursor)?;
        let max_t = varint::read_u64(cursor)?;
        let prev_periodic = read_opt_nanos(cursor)?;
        let last_periodic = read_opt_nanos(cursor)?;
        Ok(SegmentMeta {
            offset: 0,
            len: 0,
            port,
            count,
            min_t,
            max_t,
            prev_periodic,
            last_periodic,
            body_crc: 0,
        })
    }

    /// Does the segment's checkpoint chain possibly contribute to a query
    /// over `[from, to]`? (See the module docs on the chain seed.)
    pub fn overlaps_query(&self, from: Nanos, to: Nanos) -> bool {
        self.max_t >= from && self.prev_periodic.is_none_or(|p| p <= to)
    }
}

/// Per-port metadata carried in the trailer: the recorded coverage gaps,
/// the control-plane health counters at capture, and the end of the
/// periodic chain.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PortMeta {
    /// Coverage gaps recorded by the control plane, oldest first.
    pub gaps: Vec<CoverageGap>,
    /// Health counters at capture time.
    pub health: ControlHealth,
    /// Last periodic freeze time stored for the port.
    pub last_periodic: Option<Nanos>,
}

const HEALTH_FIELDS: usize = 11;

fn health_fields(h: &ControlHealth) -> [u64; HEALTH_FIELDS] {
    [
        h.polls_attempted,
        h.polls_failed,
        h.polls_retried,
        h.polls_stalled,
        h.checkpoints_stored,
        h.checkpoints_dropped,
        h.coverage_gaps,
        h.gap_ns,
        h.backoff_ceiling_hits,
        h.dp_triggers_rejected,
        h.spill_errors,
    ]
}

fn health_from_fields(f: [u64; HEALTH_FIELDS]) -> ControlHealth {
    ControlHealth {
        polls_attempted: f[0],
        polls_failed: f[1],
        polls_retried: f[2],
        polls_stalled: f[3],
        checkpoints_stored: f[4],
        checkpoints_dropped: f[5],
        coverage_gaps: f[6],
        gap_ns: f[7],
        backoff_ceiling_hits: f[8],
        dp_triggers_rejected: f[9],
        spill_errors: f[10],
    }
}

/// Encode the trailer index body (segment table + per-port metadata).
pub fn write_index<W: Write>(
    w: &mut W,
    segments: &[SegmentMeta],
    ports: &[(u16, &PortMeta)],
) -> io::Result<()> {
    varint::write_u64(w, segments.len() as u64)?;
    for s in segments {
        varint::write_u64(w, s.offset)?;
        varint::write_u64(w, s.len)?;
        varint::write_u64(w, u64::from(s.body_crc))?;
        s.write_seg_header(w)?;
    }
    varint::write_u64(w, ports.len() as u64)?;
    for (port, meta) in ports {
        varint::write_u64(w, u64::from(*port))?;
        write_opt_nanos(w, meta.last_periodic)?;
        varint::write_u64(w, meta.gaps.len() as u64)?;
        for g in &meta.gaps {
            varint::write_u64(w, g.from)?;
            varint::write_u64(w, g.to.saturating_sub(g.from))?;
        }
        for field in health_fields(&meta.health) {
            varint::write_u64(w, field)?;
        }
    }
    Ok(())
}

/// A decoded trailer index: every segment's metadata plus per-port
/// bookkeeping (gaps, health, end-of-chain).
pub type StoreIndex = (Vec<SegmentMeta>, Vec<(u16, PortMeta)>);

/// Decode the trailer index body. Counts are validated against the byte
/// budget of the index itself, so a corrupted length can never trigger an
/// outsized allocation.
pub fn read_index(mut cursor: &[u8]) -> io::Result<StoreIndex> {
    let cursor = &mut cursor;
    // Each segment entry takes ≥ 9 bytes, each gap ≥ 2; cap counts by what
    // the index could physically hold.
    let n_segments = varint::read_len(cursor, cursor.len() / 8 + 1)?;
    let mut segments = Vec::with_capacity(n_segments.min(4096));
    for _ in 0..n_segments {
        let offset = varint::read_u64(cursor)?;
        let len = varint::read_u64(cursor)?;
        let body_crc = varint::read_u64(cursor)?;
        if body_crc > u64::from(u32::MAX) {
            return Err(invalid("index crc out of range"));
        }
        let mut meta = SegmentMeta::read_seg_header(cursor)?;
        meta.offset = offset;
        meta.len = len;
        meta.body_crc = body_crc as u32;
        segments.push(meta);
    }
    let n_ports = varint::read_len(cursor, cursor.len() + 1)?;
    let mut ports = Vec::with_capacity(n_ports.min(4096));
    for _ in 0..n_ports {
        let port = varint::read_len(cursor, u16::MAX as usize)? as u16;
        let last_periodic = read_opt_nanos(cursor)?;
        let n_gaps = varint::read_len(cursor, cursor.len() / 2 + 1)?;
        let mut gaps = Vec::with_capacity(n_gaps.min(4096));
        for _ in 0..n_gaps {
            let from = varint::read_u64(cursor)?;
            let len = varint::read_u64(cursor)?;
            gaps.push(CoverageGap {
                from,
                to: from.saturating_add(len),
            });
        }
        let mut fields = [0u64; HEALTH_FIELDS];
        for f in &mut fields {
            *f = varint::read_u64(cursor)?;
        }
        ports.push((
            port,
            PortMeta {
                gaps,
                health: health_from_fields(fields),
                last_periodic,
            },
        ));
    }
    Ok((segments, ports))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let tw = TimeWindowConfig::new(6, 2, 12, 4);
        let mut buf = Vec::new();
        write_header(&mut buf, &tw).unwrap();
        assert_eq!(buf.len() as u64, HEADER_LEN);
        assert_eq!(read_header(&buf).unwrap(), tw);
    }

    #[test]
    fn header_rejects_garbage() {
        assert!(read_header(b"PQARx").is_err());
        assert!(read_header(b"JSON{\"version\":1}").is_err());
        // Valid magic, absurd k.
        assert!(read_header(&[b'P', b'Q', b'A', b'R', 1, 6, 2, 60, 4]).is_err());
    }

    #[test]
    fn index_roundtrip() {
        let segments = vec![
            SegmentMeta {
                offset: 9,
                len: 100,
                port: 0,
                count: 3,
                min_t: 10,
                max_t: 400,
                prev_periodic: None,
                last_periodic: Some(400),
                body_crc: 0xdead_beef,
            },
            SegmentMeta {
                offset: 109,
                len: 80,
                port: 1,
                count: 2,
                min_t: 50,
                max_t: 300,
                prev_periodic: Some(0),
                last_periodic: Some(300),
                body_crc: 7,
            },
        ];
        let meta = PortMeta {
            gaps: vec![CoverageGap { from: 5, to: 25 }],
            health: ControlHealth {
                polls_attempted: 9,
                checkpoints_stored: 5,
                ..ControlHealth::default()
            },
            last_periodic: Some(400),
        };
        let mut buf = Vec::new();
        write_index(&mut buf, &segments, &[(0, &meta)]).unwrap();
        let (segs, ports) = read_index(&buf).unwrap();
        assert_eq!(segs, segments);
        assert_eq!(ports.len(), 1);
        assert_eq!(ports[0].0, 0);
        assert_eq!(ports[0].1, meta);
    }

    #[test]
    fn query_overlap_uses_chain_seed() {
        let seg = SegmentMeta {
            offset: 0,
            len: 0,
            port: 0,
            count: 1,
            min_t: 200,
            max_t: 300,
            prev_periodic: Some(100),
            last_periodic: Some(300),
            body_crc: 0,
        };
        // A query ending before the chain seed cannot touch this segment…
        assert!(!seg.overlaps_query(0, 99));
        // …but one ending inside (prev_periodic, max_t] can, and so can one
        // starting below max_t.
        assert!(seg.overlaps_query(0, 100));
        assert!(seg.overlaps_query(250, 260));
        assert!(seg.overlaps_query(300, 900));
        assert!(!seg.overlaps_query(301, 900));
    }
}
