//! The `.pqa` on-disk layout: magic numbers, file header, segment metadata,
//! and the trailer index.
//!
//! ```text
//! FILE    := HEADER SEGMENT* [TRAILER]
//! HEADER  := "PQAR" | version u8 (= 1) | m0 u8 | alpha u8 | k u8 | t u8
//! SEGMENT := "PQSG" | hdr_len varint | SEGHDR | body_len varint | body
//!            | crc32(body) u32-LE
//! SEGHDR  := port varint | count varint | min_t varint | max_t varint
//!            | prev_periodic varint (0 = none, else value+1)
//!            | last_periodic varint (0 = none, else value+1)
//!            | [kind varint]          (absent = 0 = checkpoints)
//! TRAILER := "PQIX" | index bytes | crc32(index) u32-LE
//!            | index_len u64-LE | "PQEN"
//! ```
//!
//! **Segment kinds.** `kind` selects the body codec: 0 is the original
//! checkpoint stream, 1 is an RTT report (`pq-rtt`), and anything else
//! belongs to a future writer. The field rides in two back-compatible
//! places: as an optional trailing varint inside the length-delimited
//! SEGHDR (readers that stop after `last_periodic` simply ignore it), and
//! as an optional kinds array appended after the per-port section of the
//! trailer index (old readers never look past the ports they parsed).
//! Kind-0-only archives encode byte-identically to the pre-kind format.
//! A reader encountering a kind it does not know **skips the segment and
//! surfaces its span as a coverage gap with a distinct unknown-kind
//! reason** (see `StoreReader::unknown_kind_gaps`) — never a decode
//! failure — so old binaries degrade gracefully on new archives.
//!
//! Everything after the fixed 9-byte header is append-only. A segment is
//! written in one `write` burst at seal time, so its header metadata
//! (span, count, chain seed) is always complete even when the *body* is
//! torn by a crash. The trailer is written once by
//! [`StoreWriter::finish`](crate::StoreWriter::finish); a reader that
//! finds it missing or corrupt falls back to a forward scan of the
//! segment chain (see [`StoreReader`](crate::StoreReader)).
//!
//! The `prev_periodic` seed is what makes time-range pruning exact: §6.3
//! query slicing clamps each checkpoint's contribution to
//! `(previous periodic freeze, freeze]`, so a reader that skips whole
//! segments must know the chain value at the first decoded checkpoint.

use crate::varint;
use pq_core::control::CoverageGap;
use pq_core::metrics::ControlHealth;
use pq_core::params::TimeWindowConfig;
use pq_packet::Nanos;
use std::io::{self, Write};

/// File magic: "PQAR" (PrintQueue ARchive).
pub const FILE_MAGIC: [u8; 4] = *b"PQAR";
/// Segment magic.
pub const SEGMENT_MAGIC: [u8; 4] = *b"PQSG";
/// Trailer-index magic.
pub const TRAILER_MAGIC: [u8; 4] = *b"PQIX";
/// End-of-file magic (after the trailer length).
pub const END_MAGIC: [u8; 4] = *b"PQEN";
/// Format version.
pub const VERSION: u8 = 1;
/// Fixed file-header size in bytes.
pub const HEADER_LEN: u64 = 9;
/// Fixed tail size: crc32 (4) + index_len (8) + END_MAGIC (4).
pub const TRAILER_FIXED: u64 = 16;
/// Upper bound on an encoded segment header (sanity cap for scans).
pub const MAX_SEGHDR_LEN: usize = 256;
/// Segment kind 0: the original delta-coded checkpoint stream.
pub const KIND_CHECKPOINTS: u64 = 0;
/// Segment kind 1: an encoded `pq-rtt` RTT report.
pub const KIND_RTT: u64 = 1;
/// Kinds this build knows how to interpret (or deliberately skip).
/// Anything else is surfaced as an unknown-kind coverage gap.
pub const KNOWN_KINDS: [u64; 2] = [KIND_CHECKPOINTS, KIND_RTT];

pub(crate) fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Validate a [`TimeWindowConfig`] decoded from untrusted bytes without
/// panicking (the library's own `validate` asserts).
pub fn check_tw_config(tw: &TimeWindowConfig) -> io::Result<()> {
    if tw.t < 1 || tw.alpha < 1 || tw.k < 1 || tw.k > 24 {
        return Err(invalid("time-window parameters out of range"));
    }
    let max_shift =
        u32::from(tw.m0) + u32::from(tw.alpha) * (u32::from(tw.t) - 1) + u32::from(tw.k);
    if max_shift >= 63 {
        return Err(invalid("time-window periods overflow u64"));
    }
    Ok(())
}

/// Write the 9-byte file header.
pub fn write_header<W: Write>(w: &mut W, tw: &TimeWindowConfig) -> io::Result<()> {
    w.write_all(&FILE_MAGIC)?;
    w.write_all(&[VERSION, tw.m0, tw.alpha, tw.k, tw.t])
}

/// Parse and validate the 9-byte file header.
pub fn read_header(bytes: &[u8]) -> io::Result<TimeWindowConfig> {
    if bytes.len() < HEADER_LEN as usize || bytes[..4] != FILE_MAGIC {
        return Err(invalid("not a .pqa archive (bad magic)"));
    }
    if bytes[4] != VERSION {
        return Err(invalid(format!("unsupported .pqa version {}", bytes[4])));
    }
    let tw = TimeWindowConfig {
        m0: bytes[5],
        alpha: bytes[6],
        k: bytes[7],
        t: bytes[8],
    };
    check_tw_config(&tw)?;
    Ok(tw)
}

/// Index entry describing one sealed segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentMeta {
    /// Absolute file offset of the segment magic.
    pub offset: u64,
    /// Total on-disk length (magic through trailing CRC).
    pub len: u64,
    /// Port the segment's checkpoints belong to.
    pub port: u16,
    /// Checkpoints in the segment.
    pub count: u64,
    /// Earliest checkpoint freeze time.
    pub min_t: Nanos,
    /// Latest checkpoint freeze time.
    pub max_t: Nanos,
    /// §6.3 chain seed: the last *periodic* freeze time before this
    /// segment's first checkpoint (`None` at the head of a port's chain).
    pub prev_periodic: Option<Nanos>,
    /// The last periodic freeze time at segment seal (chain value after).
    pub last_periodic: Option<Nanos>,
    /// CRC-32 of the segment body.
    pub body_crc: u32,
    /// Body codec selector (see [`KIND_CHECKPOINTS`], [`KIND_RTT`]).
    pub kind: u64,
}

fn write_opt_nanos<W: Write>(w: &mut W, v: Option<Nanos>) -> io::Result<()> {
    // 0 = none; the +1 shift keeps t = 0 representable.
    varint::write_u64(w, v.map_or(0, |t| t.saturating_add(1)))
}

fn read_opt_nanos(cursor: &mut &[u8]) -> io::Result<Option<Nanos>> {
    Ok(match varint::read_u64(cursor)? {
        0 => None,
        v => Some(v - 1),
    })
}

impl SegmentMeta {
    /// Encode the in-segment header (everything but offset/len/crc, which
    /// frame the segment physically).
    pub fn write_seg_header<W: Write>(&self, w: &mut W) -> io::Result<()> {
        varint::write_u64(w, u64::from(self.port))?;
        varint::write_u64(w, self.count)?;
        varint::write_u64(w, self.min_t)?;
        varint::write_u64(w, self.max_t)?;
        write_opt_nanos(w, self.prev_periodic)?;
        write_opt_nanos(w, self.last_periodic)?;
        if self.kind != KIND_CHECKPOINTS {
            // Only non-default kinds are written, so kind-0 archives stay
            // byte-identical to the pre-kind format.
            varint::write_u64(w, self.kind)?;
        }
        Ok(())
    }

    /// Decode an in-segment header; `offset`/`len`/`body_crc` are filled by
    /// the caller from the physical framing. This form reads only the base
    /// fields (for inline index parsing, where no length delimits the
    /// header); use [`read_seg_header_delimited`](Self::read_seg_header_delimited)
    /// when the header slice is known.
    pub fn read_seg_header(cursor: &mut &[u8]) -> io::Result<SegmentMeta> {
        let port = varint::read_len(cursor, u16::MAX as usize)? as u16;
        let count = varint::read_u64(cursor)?;
        let min_t = varint::read_u64(cursor)?;
        let max_t = varint::read_u64(cursor)?;
        let prev_periodic = read_opt_nanos(cursor)?;
        let last_periodic = read_opt_nanos(cursor)?;
        Ok(SegmentMeta {
            offset: 0,
            len: 0,
            port,
            count,
            min_t,
            max_t,
            prev_periodic,
            last_periodic,
            body_crc: 0,
            kind: KIND_CHECKPOINTS,
        })
    }

    /// Decode a length-delimited header slice, including the optional
    /// trailing kind (absent = checkpoints).
    pub fn read_seg_header_delimited(mut hdr: &[u8]) -> io::Result<SegmentMeta> {
        let cursor = &mut hdr;
        let mut meta = Self::read_seg_header(cursor)?;
        if !cursor.is_empty() {
            meta.kind = varint::read_u64(cursor)?;
        }
        Ok(meta)
    }

    /// Does the segment's checkpoint chain possibly contribute to a query
    /// over `[from, to]`? (See the module docs on the chain seed.)
    pub fn overlaps_query(&self, from: Nanos, to: Nanos) -> bool {
        self.max_t >= from && self.prev_periodic.is_none_or(|p| p <= to)
    }
}

/// Per-port metadata carried in the trailer: the recorded coverage gaps,
/// the control-plane health counters at capture, and the end of the
/// periodic chain.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PortMeta {
    /// Coverage gaps recorded by the control plane, oldest first.
    pub gaps: Vec<CoverageGap>,
    /// Health counters at capture time.
    pub health: ControlHealth,
    /// Last periodic freeze time stored for the port.
    pub last_periodic: Option<Nanos>,
}

const HEALTH_FIELDS: usize = 11;

fn health_fields(h: &ControlHealth) -> [u64; HEALTH_FIELDS] {
    [
        h.polls_attempted,
        h.polls_failed,
        h.polls_retried,
        h.polls_stalled,
        h.checkpoints_stored,
        h.checkpoints_dropped,
        h.coverage_gaps,
        h.gap_ns,
        h.backoff_ceiling_hits,
        h.dp_triggers_rejected,
        h.spill_errors,
    ]
}

fn health_from_fields(f: [u64; HEALTH_FIELDS]) -> ControlHealth {
    ControlHealth {
        polls_attempted: f[0],
        polls_failed: f[1],
        polls_retried: f[2],
        polls_stalled: f[3],
        checkpoints_stored: f[4],
        checkpoints_dropped: f[5],
        coverage_gaps: f[6],
        gap_ns: f[7],
        backoff_ceiling_hits: f[8],
        dp_triggers_rejected: f[9],
        spill_errors: f[10],
    }
}

/// Encode the trailer index body (segment table + per-port metadata).
pub fn write_index<W: Write>(
    w: &mut W,
    segments: &[SegmentMeta],
    ports: &[(u16, &PortMeta)],
) -> io::Result<()> {
    varint::write_u64(w, segments.len() as u64)?;
    for s in segments {
        varint::write_u64(w, s.offset)?;
        varint::write_u64(w, s.len)?;
        varint::write_u64(w, u64::from(s.body_crc))?;
        // Base header only — index entries are parsed inline (no length
        // delimiter), so the kind must not trail here; it rides in the
        // kinds array after the ports section instead.
        SegmentMeta {
            kind: KIND_CHECKPOINTS,
            ..*s
        }
        .write_seg_header(w)?;
    }
    varint::write_u64(w, ports.len() as u64)?;
    for (port, meta) in ports {
        varint::write_u64(w, u64::from(*port))?;
        write_opt_nanos(w, meta.last_periodic)?;
        varint::write_u64(w, meta.gaps.len() as u64)?;
        for g in &meta.gaps {
            varint::write_u64(w, g.from)?;
            varint::write_u64(w, g.to.saturating_sub(g.from))?;
        }
        for field in health_fields(&meta.health) {
            varint::write_u64(w, field)?;
        }
    }
    // Segment kinds ride after the ports section, where pre-kind readers
    // never look. Only written when some kind is non-default, so
    // kind-0-only archives stay byte-identical to the old format.
    if segments.iter().any(|s| s.kind != KIND_CHECKPOINTS) {
        varint::write_u64(w, segments.len() as u64)?;
        for s in segments {
            varint::write_u64(w, s.kind)?;
        }
    }
    Ok(())
}

/// A decoded trailer index: every segment's metadata plus per-port
/// bookkeeping (gaps, health, end-of-chain).
pub type StoreIndex = (Vec<SegmentMeta>, Vec<(u16, PortMeta)>);

/// Decode the trailer index body. Counts are validated against the byte
/// budget of the index itself, so a corrupted length can never trigger an
/// outsized allocation.
pub fn read_index(mut cursor: &[u8]) -> io::Result<StoreIndex> {
    let cursor = &mut cursor;
    // Each segment entry takes ≥ 9 bytes, each gap ≥ 2; cap counts by what
    // the index could physically hold.
    let n_segments = varint::read_len(cursor, cursor.len() / 8 + 1)?;
    let mut segments = Vec::with_capacity(n_segments.min(4096));
    for _ in 0..n_segments {
        let offset = varint::read_u64(cursor)?;
        let len = varint::read_u64(cursor)?;
        let body_crc = varint::read_u64(cursor)?;
        if body_crc > u64::from(u32::MAX) {
            return Err(invalid("index crc out of range"));
        }
        let mut meta = SegmentMeta::read_seg_header(cursor)?;
        meta.offset = offset;
        meta.len = len;
        meta.body_crc = body_crc as u32;
        segments.push(meta);
    }
    let n_ports = varint::read_len(cursor, cursor.len() + 1)?;
    let mut ports = Vec::with_capacity(n_ports.min(4096));
    for _ in 0..n_ports {
        let port = varint::read_len(cursor, u16::MAX as usize)? as u16;
        let last_periodic = read_opt_nanos(cursor)?;
        let n_gaps = varint::read_len(cursor, cursor.len() / 2 + 1)?;
        let mut gaps = Vec::with_capacity(n_gaps.min(4096));
        for _ in 0..n_gaps {
            let from = varint::read_u64(cursor)?;
            let len = varint::read_u64(cursor)?;
            gaps.push(CoverageGap {
                from,
                to: from.saturating_add(len),
            });
        }
        let mut fields = [0u64; HEALTH_FIELDS];
        for f in &mut fields {
            *f = varint::read_u64(cursor)?;
        }
        ports.push((
            port,
            PortMeta {
                gaps,
                health: health_from_fields(fields),
                last_periodic,
            },
        ));
    }
    // Optional trailing kinds array (absent in pre-kind archives = all 0).
    if !cursor.is_empty() {
        let n_kinds = varint::read_len(cursor, cursor.len() + 1)?;
        if n_kinds != segments.len() {
            return Err(invalid("index kinds array mismatches segment count"));
        }
        for s in &mut segments {
            s.kind = varint::read_u64(cursor)?;
        }
    }
    Ok((segments, ports))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let tw = TimeWindowConfig::new(6, 2, 12, 4);
        let mut buf = Vec::new();
        write_header(&mut buf, &tw).unwrap();
        assert_eq!(buf.len() as u64, HEADER_LEN);
        assert_eq!(read_header(&buf).unwrap(), tw);
    }

    #[test]
    fn header_rejects_garbage() {
        assert!(read_header(b"PQARx").is_err());
        assert!(read_header(b"JSON{\"version\":1}").is_err());
        // Valid magic, absurd k.
        assert!(read_header(&[b'P', b'Q', b'A', b'R', 1, 6, 2, 60, 4]).is_err());
    }

    #[test]
    fn index_roundtrip() {
        let segments = vec![
            SegmentMeta {
                offset: 9,
                len: 100,
                port: 0,
                count: 3,
                min_t: 10,
                max_t: 400,
                prev_periodic: None,
                last_periodic: Some(400),
                body_crc: 0xdead_beef,
                kind: KIND_CHECKPOINTS,
            },
            SegmentMeta {
                offset: 109,
                len: 80,
                port: 1,
                count: 2,
                min_t: 50,
                max_t: 300,
                prev_periodic: Some(0),
                last_periodic: Some(300),
                body_crc: 7,
                kind: KIND_CHECKPOINTS,
            },
        ];
        let meta = PortMeta {
            gaps: vec![CoverageGap { from: 5, to: 25 }],
            health: ControlHealth {
                polls_attempted: 9,
                checkpoints_stored: 5,
                ..ControlHealth::default()
            },
            last_periodic: Some(400),
        };
        let mut buf = Vec::new();
        write_index(&mut buf, &segments, &[(0, &meta)]).unwrap();
        let (segs, ports) = read_index(&buf).unwrap();
        assert_eq!(segs, segments);
        assert_eq!(ports.len(), 1);
        assert_eq!(ports[0].0, 0);
        assert_eq!(ports[0].1, meta);
    }

    #[test]
    fn index_roundtrip_preserves_kinds() {
        let base = SegmentMeta {
            offset: 9,
            len: 50,
            port: 2,
            count: 0,
            min_t: 10,
            max_t: 90,
            prev_periodic: None,
            last_periodic: None,
            body_crc: 1,
            kind: KIND_CHECKPOINTS,
        };
        let segments = vec![
            base,
            SegmentMeta {
                offset: 59,
                kind: KIND_RTT,
                ..base
            },
            SegmentMeta {
                offset: 109,
                kind: 7,
                ..base
            }, // future kind
        ];
        let mut buf = Vec::new();
        write_index(&mut buf, &segments, &[]).unwrap();
        let (segs, _) = read_index(&buf).unwrap();
        assert_eq!(segs, segments);
    }

    #[test]
    fn kind_zero_index_is_byte_identical_to_pre_kind_format() {
        let seg = SegmentMeta {
            offset: 9,
            len: 50,
            port: 2,
            count: 3,
            min_t: 10,
            max_t: 90,
            prev_periodic: None,
            last_periodic: Some(90),
            body_crc: 1,
            kind: KIND_CHECKPOINTS,
        };
        let mut buf = Vec::new();
        write_index(&mut buf, &[seg], &[]).unwrap();
        // No kinds array: the bytes end right after the (empty) ports
        // section, exactly as the pre-kind writer laid them out.
        let mut expect = Vec::new();
        varint::write_u64(&mut expect, 1).unwrap();
        varint::write_u64(&mut expect, seg.offset).unwrap();
        varint::write_u64(&mut expect, seg.len).unwrap();
        varint::write_u64(&mut expect, u64::from(seg.body_crc)).unwrap();
        seg.write_seg_header(&mut expect).unwrap();
        varint::write_u64(&mut expect, 0).unwrap();
        assert_eq!(buf, expect);
    }

    #[test]
    fn delimited_seg_header_reads_optional_kind() {
        let seg = SegmentMeta {
            offset: 0,
            len: 0,
            port: 4,
            count: 0,
            min_t: 5,
            max_t: 6,
            prev_periodic: None,
            last_periodic: None,
            body_crc: 0,
            kind: KIND_RTT,
        };
        let mut hdr = Vec::new();
        seg.write_seg_header(&mut hdr).unwrap();
        let meta = SegmentMeta::read_seg_header_delimited(&hdr).unwrap();
        assert_eq!(meta.kind, KIND_RTT);
        // A pre-kind reader parsing the same slice stops after the base
        // fields and sees a checkpoint segment — the ignored trailing
        // varint is what keeps the format forward-compatible.
        let mut cursor = hdr.as_slice();
        let old = SegmentMeta::read_seg_header(&mut cursor).unwrap();
        assert_eq!(old.kind, KIND_CHECKPOINTS);
        assert!(!cursor.is_empty());
    }

    #[test]
    fn query_overlap_uses_chain_seed() {
        let seg = SegmentMeta {
            offset: 0,
            len: 0,
            port: 0,
            count: 1,
            min_t: 200,
            max_t: 300,
            prev_periodic: Some(100),
            last_periodic: Some(300),
            body_crc: 0,
            kind: KIND_CHECKPOINTS,
        };
        // A query ending before the chain seed cannot touch this segment…
        assert!(!seg.overlaps_query(0, 99));
        // …but one ending inside (prev_periodic, max_t] can, and so can one
        // starting below max_t.
        assert!(seg.overlaps_query(0, 100));
        assert!(seg.overlaps_query(250, 260));
        assert!(seg.overlaps_query(300, 900));
        assert!(!seg.overlaps_query(301, 900));
    }
}
