//! Format detection and JSON ⇄ `.pqa` migration.
//!
//! Pre-existing archives are JSON (`CheckpointArchive` from `pq-core`),
//! either a single object (one port, the historical format) or an array
//! (multi-port). Everything here sniffs the leading bytes — `"PQAR"` for
//! binary, `{`/`[` for JSON — so tools never need a format flag to
//! *read*, only to *write*.

use crate::format::FILE_MAGIC;
use crate::reader::StoreReader;
use crate::writer::{SegmentPolicy, StoreWriter};
use pq_core::export::CheckpointArchive;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// The two archive encodings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArchiveFormat {
    /// `CheckpointArchive` JSON (object or array).
    Json,
    /// Segmented binary `.pqa`.
    Pqa,
}

impl ArchiveFormat {
    /// Sniff a format from leading bytes.
    pub fn sniff(head: &[u8]) -> io::Result<ArchiveFormat> {
        if head.starts_with(&FILE_MAGIC) {
            return Ok(ArchiveFormat::Pqa);
        }
        match head.iter().find(|b| !b.is_ascii_whitespace()) {
            Some(b'{') | Some(b'[') => Ok(ArchiveFormat::Json),
            _ => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "unrecognized archive format (neither PQAR magic nor JSON)",
            )),
        }
    }

    /// Sniff a file on disk.
    pub fn detect(path: &Path) -> io::Result<ArchiveFormat> {
        let mut head = [0u8; 16];
        let mut file = File::open(path)?;
        let n = file.read(&mut head)?;
        ArchiveFormat::sniff(&head[..n])
    }
}

/// Parse JSON archive text: a single object (historical single-port
/// format) or an array of archives.
pub fn archives_from_json(text: &str) -> io::Result<Vec<CheckpointArchive>> {
    let archives: Vec<CheckpointArchive> = if text.trim_start().starts_with('[') {
        serde_json::from_str(text).map_err(io::Error::other)?
    } else {
        vec![serde_json::from_str(text).map_err(io::Error::other)?]
    };
    for a in &archives {
        if a.version != 1 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "unsupported archive version",
            ));
        }
    }
    Ok(archives)
}

/// Serialize archives as JSON: a bare object for one port (byte-compatible
/// with pre-store archives), an array for several.
pub fn archives_to_json<W: Write>(mut w: W, archives: &[CheckpointArchive]) -> io::Result<()> {
    match archives {
        [single] => single.write_json(w),
        many => serde_json::to_writer(&mut w, many).map_err(io::Error::other),
    }
}

/// Write archives as a `.pqa` store. All archives must share one window
/// configuration (a store holds a single register geometry).
pub fn archives_to_pqa<W: Write>(
    out: W,
    archives: &[CheckpointArchive],
    policy: SegmentPolicy,
) -> io::Result<W> {
    let Some(first) = archives.first() else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "no archives to write",
        ));
    };
    let mut writer = StoreWriter::new(out, first.tw_config, policy)?;
    for archive in archives {
        if archive.tw_config != first.tw_config {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "archives disagree on window configuration",
            ));
        }
        for cp in &archive.checkpoints {
            writer.push(archive.port, cp)?;
        }
        for gap in &archive.gaps {
            writer.push_gap(archive.port, *gap);
        }
        writer.set_health(archive.port, archive.health);
    }
    writer.finish()
}

/// Load archives from `path` in either format, auto-detected.
pub fn read_archives(path: &Path) -> io::Result<Vec<CheckpointArchive>> {
    match ArchiveFormat::detect(path)? {
        ArchiveFormat::Json => {
            let mut text = String::new();
            File::open(path)?.read_to_string(&mut text)?;
            archives_from_json(&text)
        }
        ArchiveFormat::Pqa => {
            let mut reader = StoreReader::open(BufReader::new(File::open(path)?))?;
            reader.read_all()
        }
    }
}

/// Write archives to `path` in `format`.
pub fn write_archives(
    path: &Path,
    archives: &[CheckpointArchive],
    format: ArchiveFormat,
    policy: SegmentPolicy,
) -> io::Result<()> {
    let file = File::create(path)?;
    match format {
        ArchiveFormat::Json => {
            let mut w = BufWriter::new(file);
            archives_to_json(&mut w, archives)?;
            w.flush()
        }
        ArchiveFormat::Pqa => archives_to_pqa(BufWriter::new(file), archives, policy)?.flush(),
    }
}

/// Pick a write format from a path extension (`.pqa` → binary, else
/// JSON), for tools where the user named an output file but no format.
pub fn format_for_path(path: &Path) -> ArchiveFormat {
    match path.extension().and_then(|e| e.to_str()) {
        Some(ext) if ext.eq_ignore_ascii_case("pqa") => ArchiveFormat::Pqa,
        _ => ArchiveFormat::Json,
    }
}
