//! LEB128 varints and zigzag deltas — the primitive encoding of `.pqa`
//! segment bodies.
//!
//! All decoders take `&mut &[u8]` cursors and fail with `InvalidData`
//! instead of panicking: segment bodies are untrusted (torn writes, bit
//! rot), so every length and every continuation bit is validated against
//! the remaining input.

use std::io::{self, Write};

/// Append `value` as an unsigned LEB128 varint.
pub fn write_u64<W: Write>(w: &mut W, mut value: u64) -> io::Result<()> {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

/// Append `value` zigzag-mapped (small magnitudes of either sign stay
/// small on the wire).
pub fn write_i64<W: Write>(w: &mut W, value: i64) -> io::Result<()> {
    write_u64(w, zigzag(value))
}

/// Zigzag map: 0, -1, 1, -2, … → 0, 1, 2, 3, …
pub fn zigzag(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// Inverse zigzag map.
pub fn unzigzag(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

fn truncated() -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, "truncated varint")
}

/// Decode an unsigned LEB128 varint, advancing the cursor.
pub fn read_u64(cursor: &mut &[u8]) -> io::Result<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let Some((&byte, rest)) = cursor.split_first() else {
            return Err(truncated());
        };
        *cursor = rest;
        if shift == 63 && byte > 1 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "varint overflows u64",
            ));
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift > 63 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "varint longer than 10 bytes",
            ));
        }
    }
}

/// Decode a zigzag varint, advancing the cursor.
pub fn read_i64(cursor: &mut &[u8]) -> io::Result<i64> {
    read_u64(cursor).map(unzigzag)
}

/// Decode a varint and narrow it to `usize`, rejecting values above `max`
/// (the allocation guard for untrusted counts).
pub fn read_len(cursor: &mut &[u8], max: usize) -> io::Result<usize> {
    let value = read_u64(cursor)?;
    if value > max as u64 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("length {value} exceeds bound {max}"),
        ));
    }
    Ok(value as usize)
}

/// Consume exactly `n` bytes from the cursor.
pub fn read_bytes<'a>(cursor: &mut &'a [u8], n: usize) -> io::Result<&'a [u8]> {
    if cursor.len() < n {
        return Err(truncated());
    }
    let (head, rest) = cursor.split_at(n);
    *cursor = rest;
    Ok(head)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_roundtrip_edges() {
        for v in [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            write_u64(&mut buf, v).unwrap();
            let mut cursor = buf.as_slice();
            assert_eq!(read_u64(&mut cursor).unwrap(), v);
            assert!(cursor.is_empty());
        }
    }

    #[test]
    fn i64_roundtrip_edges() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            let mut buf = Vec::new();
            write_i64(&mut buf, v).unwrap();
            let mut cursor = buf.as_slice();
            assert_eq!(read_i64(&mut cursor).unwrap(), v);
        }
    }

    #[test]
    fn truncated_and_overlong_rejected() {
        let mut cursor: &[u8] = &[0x80];
        assert!(read_u64(&mut cursor).is_err());
        let eleven = [0x80u8; 10];
        let mut cursor: &[u8] = &eleven;
        assert!(read_u64(&mut cursor).is_err());
        // 10-byte varint with payload bits above bit 63.
        let mut cursor: &[u8] = &[0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x02];
        assert!(read_u64(&mut cursor).is_err());
    }

    #[test]
    fn len_guard_rejects_oversized() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 1_000_000).unwrap();
        let mut cursor = buf.as_slice();
        assert!(read_len(&mut cursor, 4096).is_err());
    }
}
