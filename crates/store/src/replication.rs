//! Archive replication: seal-and-ship a `.pqa` file to a replica peer.
//!
//! The scale-out query tier (`pq-router`) assumes every owner of a shard
//! holds the *same* data, so any single owner can answer a query
//! bit-identically and a killed backend costs availability, never
//! answers. This module is the shipping half of that contract: a backend
//! seals its archive locally (the `StoreWriter` already guarantees a
//! crash-consistent file) and ships it to its replica peer with every
//! segment CRC-verified en route — a replica is published only after the
//! full file has decoded cleanly, and the publish itself is atomic
//! (write-to-temp, then rename), so a reader never observes a torn
//! replica.
//!
//! [`verify_replica`] is the audit half: it compares two archives at the
//! segment level (window geometry, per-segment port/count/CRC/time
//! bounds) and reports the first divergence, so a fleet check can prove
//! replica equivalence without decoding checkpoint bodies.

use crate::format::SegmentMeta;
use crate::reader::StoreReader;
use std::fs;
use std::io::{self, Cursor};
use std::path::Path;

/// What [`ship_archive`] moved, for logs and telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShipReport {
    /// Segments carried by the shipped archive.
    pub segments: usize,
    /// Ports represented in the shipped archive.
    pub ports: usize,
    /// Total bytes written to the replica.
    pub bytes: u64,
    /// Checkpoints decoded (and therefore CRC-verified) during the ship.
    pub checkpoints: u64,
}

/// Ship `src` to `dst`, verifying every segment before publishing.
///
/// The source is fully decoded first — every segment's body CRC is
/// checked by the decode path — and only then written to `dst` via a
/// temporary file and an atomic rename. A crash mid-ship leaves either
/// the old replica or a `.tmp` leftover, never a half-written `.pqa`.
pub fn ship_archive(src: &Path, dst: &Path) -> io::Result<ShipReport> {
    let bytes = fs::read(src)?;
    let mut reader = StoreReader::open(Cursor::new(bytes.as_slice()))?;
    if reader.tail_torn() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "refusing to ship an archive with a torn tail",
        ));
    }
    let mut checkpoints = 0u64;
    let ports = reader.ports();
    for &port in &ports {
        // CRC-verified decode of every segment. `read_port` degrades a
        // corrupt segment into a gap instead of failing, so compare the
        // decoded count against what the index claims: any shortfall
        // means corruption, and a corrupt source must not ship.
        let expect = reader.checkpoint_count(port);
        let decoded = reader.read_port(port)?.checkpoints.len() as u64;
        if decoded < expect {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("port {port}: decoded {decoded} of {expect} indexed checkpoints"),
            ));
        }
        checkpoints += decoded;
    }
    // Raw (non-checkpoint) segments aren't touched by `read_port`; verify
    // their body CRCs explicitly so an RTT spill can't ship corrupted.
    let raw: Vec<SegmentMeta> = reader
        .segments()
        .iter()
        .filter(|s| s.kind != crate::format::KIND_CHECKPOINTS)
        .copied()
        .collect();
    for m in &raw {
        reader.read_raw_body(m).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "port {} kind-{} segment failed verification: {e}",
                    m.port, m.kind
                ),
            )
        })?;
    }
    let report = ShipReport {
        segments: reader.segments().len(),
        ports: ports.len(),
        bytes: bytes.len() as u64,
        checkpoints,
    };
    let tmp = dst.with_extension("pqa.tmp");
    fs::write(&tmp, &bytes)?;
    fs::rename(&tmp, dst)?;
    Ok(report)
}

/// Why two archives are not equivalent replicas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplicaDivergence {
    /// The window geometries differ; queries would use different
    /// coefficients.
    Config,
    /// Different segment counts.
    SegmentCount { left: usize, right: usize },
    /// A segment pair differs (port, count, body CRC, or time bounds);
    /// the index is into the offset-ordered segment list.
    Segment { index: usize },
}

impl std::fmt::Display for ReplicaDivergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplicaDivergence::Config => write!(f, "time-window configs differ"),
            ReplicaDivergence::SegmentCount { left, right } => {
                write!(f, "segment counts differ: {left} vs {right}")
            }
            ReplicaDivergence::Segment { index } => {
                write!(f, "segment {index} differs (port/kind/count/crc/bounds)")
            }
        }
    }
}

/// Compare two archives at the segment level: same window geometry and,
/// segment by segment in offset order, the same port, checkpoint count,
/// body CRC, and time bounds. Returns `Ok(None)` for equivalent replicas
/// or the first divergence found. Checkpoint bodies are not decoded —
/// the CRCs already bind them.
pub fn verify_replica(a: &Path, b: &Path) -> io::Result<Option<ReplicaDivergence>> {
    let left = StoreReader::open(Cursor::new(fs::read(a)?))?;
    let right = StoreReader::open(Cursor::new(fs::read(b)?))?;
    if left.tw_config() != right.tw_config() {
        return Ok(Some(ReplicaDivergence::Config));
    }
    let (ls, rs) = (left.segments(), right.segments());
    if ls.len() != rs.len() {
        return Ok(Some(ReplicaDivergence::SegmentCount {
            left: ls.len(),
            right: rs.len(),
        }));
    }
    let key = |s: &SegmentMeta| (s.port, s.kind, s.count, s.body_crc, s.min_t, s.max_t);
    for (index, (l, r)) in ls.iter().zip(rs.iter()).enumerate() {
        if key(l) != key(r) {
            return Ok(Some(ReplicaDivergence::Segment { index }));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::{SegmentPolicy, StoreWriter};
    use pq_core::control::Checkpoint;
    use pq_core::params::TimeWindowConfig;
    use pq_core::snapshot::TimeWindowSnapshot;
    use pq_core::time_windows::Cell;
    use pq_packet::FlowId;

    fn cp(tw: &TimeWindowConfig, frozen_at: u64) -> Checkpoint {
        let mut windows = vec![vec![Cell::EMPTY; tw.cells()]; usize::from(tw.t)];
        windows[0][0] = Cell {
            flow: FlowId(frozen_at as u32),
            cycle: frozen_at,
        };
        Checkpoint {
            frozen_at,
            on_demand: false,
            trigger: None,
            windows: TimeWindowSnapshot::from_parts(*tw, windows, false),
            queue_monitors: Vec::new(),
        }
    }

    fn tiny_archive() -> Vec<u8> {
        let tw = TimeWindowConfig::new(0, 1, 6, 2);
        let mut w = StoreWriter::new(Vec::new(), tw, SegmentPolicy::default()).unwrap();
        for t in 1..=8u64 {
            w.push(3, &cp(&tw, t * 100)).unwrap();
        }
        w.finish().unwrap()
    }

    fn temp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("pq-repl-{}-{name}", std::process::id()))
    }

    #[test]
    fn ship_then_verify_round_trips() {
        let bytes = tiny_archive();
        let src = temp("src.pqa");
        let dst = temp("dst.pqa");
        fs::write(&src, &bytes).unwrap();
        let report = ship_archive(&src, &dst).unwrap();
        assert_eq!(report.bytes, bytes.len() as u64);
        assert_eq!(report.checkpoints, 8);
        assert_eq!(report.ports, 1);
        assert_eq!(verify_replica(&src, &dst).unwrap(), None);
        fs::remove_file(&src).ok();
        fs::remove_file(&dst).ok();
    }

    #[test]
    fn corrupt_source_refuses_to_ship() {
        let mut bytes = tiny_archive();
        // Flip a byte inside the first segment body (past header magic
        // and segment framing) so the body CRC no longer matches.
        let at = bytes.len() / 2;
        bytes[at] ^= 0xFF;
        let src = temp("bad.pqa");
        let dst = temp("bad-out.pqa");
        fs::write(&src, &bytes).unwrap();
        let shipped = ship_archive(&src, &dst);
        assert!(shipped.is_err(), "corrupt archive must not ship");
        assert!(!dst.exists(), "no replica may be published on failure");
        fs::remove_file(&src).ok();
    }

    #[test]
    fn divergent_replicas_are_detected() {
        let a = temp("va.pqa");
        let b = temp("vb.pqa");
        fs::write(&a, tiny_archive()).unwrap();
        let tw = TimeWindowConfig::new(0, 1, 6, 2);
        let mut w = StoreWriter::new(Vec::new(), tw, SegmentPolicy::default()).unwrap();
        w.push(3, &cp(&tw, 100)).unwrap();
        fs::write(&b, w.finish().unwrap()).unwrap();
        assert!(verify_replica(&a, &b).unwrap().is_some());
        fs::remove_file(&a).ok();
        fs::remove_file(&b).ok();
    }
}
