//! CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the per-segment
//! and index integrity check of the `.pqa` format.
//!
//! Implemented locally because the build environment vendors no checksum
//! crate; a byte-at-a-time table walk is plenty for control-plane I/O
//! rates (the store moves megabytes per run, not gigabytes per second).

/// Streaming CRC-32 state.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

impl Crc32 {
    /// Fresh state.
    pub fn new() -> Crc32 {
        Crc32 { state: 0xffff_ffff }
    }

    /// Absorb bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            let idx = ((self.state ^ u32::from(b)) & 0xff) as usize;
            self.state = (self.state >> 8) ^ TABLE[idx];
        }
    }

    /// Final checksum.
    pub fn finish(self) -> u32 {
        self.state ^ 0xffff_ffff
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// One-shot checksum of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(bytes);
    crc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut crc = Crc32::new();
        crc.update(&data[..10]);
        crc.update(&data[10..]);
        assert_eq!(crc.finish(), crc32(data));
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let mut data = b"PrintQueue checkpoint segment".to_vec();
        let clean = crc32(&data);
        data[7] ^= 0x10;
        assert_ne!(crc32(&data), clean);
    }
}
