//! Quickstart: attach PrintQueue to a simulated switch, congest one port,
//! and diagnose the direct culprits of the most-delayed packet.
//!
//! Run with: `cargo run --release --example quickstart`

use printqueue::prelude::*;

fn main() {
    // 1. A workload: the paper's web-search traffic at 120% of a 10 Gbps
    //    port's capacity for 10 ms — queues will build.
    let workload = Workload {
        kind: WorkloadKind::Ws,
        duration: 10u64.millis(),
        load: 1.2,
        port: 0,
        port_rate_gbps: 10.0,
        sender_rate_gbps: 40.0,
        min_flow_rate_gbps: 0.5,
        warmup: 10u64.millis(),
        seed: 42,
    };
    let trace = workload.generate();
    println!(
        "workload: {} packets across {} flows, offered {:.2} Gbps",
        trace.packets(),
        trace.flows.len(),
        trace.offered_gbps(workload.duration)
    );

    // 2. PrintQueue with the paper's WS/DM parameters (m0=10, α=1, k=12,
    //    T=4), polling once per set period.
    let tw = TimeWindowConfig::WS_DM;
    let mut printqueue = PrintQueue::new(PrintQueueConfig::single_port(tw, 1200));

    // 3. A telemetry sink stands in for the paper's DPDK ground-truth
    //    receiver.
    let mut sink = TelemetrySink::new();

    // 4. Run the switch.
    let mut sw = Switch::new(SwitchConfig::single_port(10.0, 32_768));
    {
        let mut hooks: Vec<&mut dyn QueueHooks> = vec![&mut printqueue, &mut sink];
        sw.run(trace.arrivals.iter().copied(), &mut hooks, tw.set_period());
    }
    let stats = sw.port_stats(0);
    println!(
        "switch: {} transmitted, {} dropped, max depth {} cells, mean delay {:.1} µs",
        stats.dequeued,
        stats.dropped,
        stats.max_depth_cells,
        stats.mean_queue_delay() / 1e3,
    );

    // 5. Pick the victim: the packet that waited longest.
    let victim = sink
        .records
        .iter()
        .max_by_key(|r| r.meta.deq_timedelta)
        .copied()
        .expect("packets were transmitted");
    println!(
        "victim: {} queued {:.1} µs at depth {} cells",
        victim.flow,
        f64::from(victim.meta.deq_timedelta) / 1e3,
        victim.meta.enq_qdepth
    );

    // 6. Ask PrintQueue for the victim's direct culprits and compare with
    //    ground truth.
    let interval = QueryInterval::new(victim.meta.enq_timestamp, victim.deq_timestamp());
    let estimate = printqueue.analysis().query_time_windows(0, interval);
    let oracle = GroundTruth::new(&sink.records, 80);
    let truth: std::collections::HashMap<FlowId, f64> = oracle
        .direct_culprits(interval.from, interval.to, victim.seqno)
        .into_iter()
        .map(|(f, n)| (f, n as f64))
        .collect();
    let pr = precision_recall(&estimate.counts, &truth);
    println!(
        "diagnosis: {} culprit flows, precision {:.3}, recall {:.3}",
        estimate.counts.len(),
        pr.precision,
        pr.recall
    );

    println!("\ntop culprit flows (estimated packets during the victim's wait):");
    for (flow, count) in estimate.ranked().into_iter().take(5) {
        let tuple = trace
            .flows
            .resolve(flow)
            .map(|k| k.to_string())
            .unwrap_or_else(|| flow.to_string());
        println!("  {count:8.1}  {tuple}");
    }
}
