//! Non-FIFO diagnosis: the Figure 1 scenario under strict-priority
//! scheduling.
//!
//! A low-priority packet is starved by a stream of high-priority traffic.
//! The paper's culprit definitions are "independent of the packet
//! scheduling algorithm", and the time windows index on dequeue time only —
//! so the same query machinery names the high-priority flows that were
//! served instead of the victim, with no FIFO assumption anywhere.
//!
//! Run with: `cargo run --release --example priority_victim`

use printqueue::core::metrics;
use printqueue::packet::ipv4::Address;
use printqueue::prelude::*;
use printqueue::switch::SchedulerKind;

fn main() {
    // Build the scenario by hand: two high-priority flows oversubscribe a
    // 10 Gbps port (2 × 6 Gbps) while a low-priority flow trickles.
    let mut flows = printqueue::packet::FlowTable::new();
    let hp_a = flows.intern(FlowKey::udp(
        Address::new(10, 0, 0, 1),
        1111,
        Address::new(10, 200, 0, 1),
        443,
    ));
    let hp_b = flows.intern(FlowKey::udp(
        Address::new(10, 0, 0, 2),
        2222,
        Address::new(10, 200, 0, 1),
        443,
    ));
    let lp = flows.intern(FlowKey::tcp(
        Address::new(10, 0, 0, 3),
        3333,
        Address::new(10, 200, 0, 1),
        80,
    ));

    let mut arrivals = Vec::new();
    let horizon = 3u64.millis();
    // High priority: 1500 B every 2000 ns per flow ≈ 6 Gbps each.
    for (flow, offset) in [(hp_a, 0u64), (hp_b, 1000)] {
        let mut t = offset;
        while t < horizon {
            arrivals.push(Arrival::new(
                SimPacket::new(flow, 1500, t).with_priority(0),
                0,
            ));
            t += 2000;
        }
    }
    // Low priority: one packet every 50 µs.
    let mut t = 10_000u64;
    while t < horizon {
        arrivals.push(Arrival::new(
            SimPacket::new(lp, 1500, t).with_priority(1),
            0,
        ));
        t += 50_000;
    }
    arrivals.sort_by_key(|a| a.pkt.arrival);
    println!("scenario: {} packets, strict-priority port", arrivals.len());

    // A strict-priority port (2 queues) instead of FIFO.
    let mut sw_config = SwitchConfig::single_port(10.0, 64_000);
    sw_config.ports[0].scheduler = SchedulerKind::StrictPriority { queues: 2 };
    let mut sw = Switch::new(sw_config);

    let tw = TimeWindowConfig::WS_DM;
    let mut printqueue = PrintQueue::new(PrintQueueConfig::single_port(tw, 1200));
    let mut sink = TelemetrySink::new();
    {
        let mut hooks: Vec<&mut dyn QueueHooks> = vec![&mut printqueue, &mut sink];
        sw.run(arrivals, &mut hooks, tw.set_period());
    }

    // The victim: the low-priority packet that starved longest.
    let victim = sink
        .records
        .iter()
        .filter(|r| r.flow == lp)
        .max_by_key(|r| r.meta.deq_timedelta)
        .copied()
        .expect("low-priority packets transmitted");
    println!(
        "victim (low priority) waited {:.1} µs while high-priority traffic was served",
        f64::from(victim.meta.deq_timedelta) / 1e3
    );

    // Direct culprits: scheduling-policy agnostic by definition — exactly
    // the packets dequeued during the victim's wait.
    let interval = QueryInterval::new(victim.meta.enq_timestamp, victim.deq_timestamp());
    let est = printqueue.analysis().query_time_windows(0, interval);
    let oracle = GroundTruth::new(&sink.records, 80);
    let truth =
        metrics::to_float_counts(&oracle.direct_culprits(interval.from, interval.to, victim.seqno));
    let pr = metrics::precision_recall(&est.counts, &truth);
    println!(
        "diagnosis under strict priority: precision {:.3}, recall {:.3}",
        pr.precision, pr.recall
    );

    let ranked = est.ranked();
    println!("culprit flows:");
    for (flow, n) in &ranked {
        println!("  {n:7.1}  {}", flows.resolve(*flow).unwrap());
    }
    // Both high-priority flows must dominate the diagnosis.
    assert!(ranked.len() >= 2);
    assert!(ranked[0].0 == hp_a || ranked[0].0 == hp_b);
    assert!(pr.recall > 0.5, "culprits under-identified");
    println!("non-FIFO culprit attribution works ✓");
}
