//! Automatic diagnosis via the high-level `diagnose` API (§3: PrintQueue as
//! "a general framework for higher-level queue diagnosis tasks").
//!
//! Two different congestion patterns hit the same port in sequence — first
//! a single heavy hitter, then a synchronized 24-flow incast — and the
//! classifier labels each correctly from the culprit distribution alone.
//!
//! Run with: `cargo run --release --example autodiagnosis`

use printqueue::core::diagnosis::{diagnose, CongestionPattern};
use printqueue::packet::ipv4::Address;
use printqueue::prelude::*;
use printqueue::trace::scenario;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let mut flows = printqueue::packet::FlowTable::new();
    let mut rng = SmallRng::seed_from_u64(17);
    let mut arrivals = Vec::new();

    // Phase 1 (0–10 ms): one 12 Gbps elephant overwhelms the 10 Gbps port.
    let elephant = flows.intern(FlowKey::tcp(
        Address::new(10, 5, 0, 1),
        7777,
        Address::new(10, 200, 0, 9),
        80,
    ));
    scenario::cbr_stream(
        elephant,
        1500,
        12.0,
        0,
        10u64.millis(),
        100,
        0,
        &mut rng,
        &mut arrivals,
    );

    // Phase 2 (20–22 ms): a 24-server incast.
    let incast = scenario::incast(20u64.millis(), 24, 128 * 1024, 10.0, 0, 9);
    let mut trace = printqueue::trace::workload::GeneratedTrace { arrivals, flows };
    trace = trace.merge(incast);

    let tw = TimeWindowConfig::WS_DM;
    let mut config = PrintQueueConfig::single_port(tw, 1200);
    config.control.poll_period = 1u64.millis();
    let mut pq = PrintQueue::new(config);
    let mut sink = TelemetrySink::new();
    let mut sw = Switch::new(SwitchConfig::single_port(10.0, 64_000));
    {
        let mut hooks: Vec<&mut dyn QueueHooks> = vec![&mut pq, &mut sink];
        sw.run(trace.arrivals.iter().copied(), &mut hooks, 1u64.millis());
    }

    // Diagnose one victim from each phase.
    let oracle = printqueue::core::culprits::GroundTruth::new(&sink.records, 80);
    let phase1_victim = sink
        .records
        .iter()
        .filter(|r| r.deq_timestamp() < 10u64.millis())
        .max_by_key(|r| r.meta.deq_timedelta)
        .copied()
        .expect("phase 1 victim");
    let phase2_victim = sink
        .records
        .iter()
        .filter(|r| r.deq_timestamp() > 20u64.millis())
        .max_by_key(|r| r.meta.deq_timedelta)
        .copied()
        .expect("phase 2 victim");

    for (label, victim, expected) in [
        (
            "phase 1 (elephant)",
            phase1_victim,
            CongestionPattern::HeavyHitter,
        ),
        (
            "phase 2 (incast)",
            phase2_victim,
            CongestionPattern::Synchronized,
        ),
    ] {
        let regime = oracle.regime_start(victim.meta.enq_timestamp);
        let diag = diagnose(
            pq.analysis(),
            0,
            victim.meta.enq_timestamp,
            victim.deq_timestamp(),
            Some(regime),
        );
        println!(
            "{label}: victim waited {:.1} µs — classified {:?} \
             ({} direct culprit flows, top share {:.0}%)",
            f64::from(victim.meta.deq_timedelta) / 1e3,
            diag.pattern,
            diag.direct.counts.len(),
            diag.top_direct(1)
                .first()
                .map(|(_, n)| n / diag.direct.total() * 100.0)
                .unwrap_or(0.0),
        );
        assert_eq!(diag.pattern, expected, "{label} misclassified");
    }
    println!("\nboth congestion patterns classified correctly ✓");
}
