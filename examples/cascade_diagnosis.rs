//! Two-hop cascade diagnosis: PrintQueue deployed per switch, as the paper
//! intends, with congestion created upstream and *felt* downstream.
//!
//! An aggregation switch (hop 1, 40 Gbps) forwards onto a 10 Gbps
//! edge link (hop 2). Two senders burst through hop 1 — which barely
//! queues — and collide at hop 2's slower port. Each hop runs its own
//! PrintQueue; diagnosing the same victim at both hops shows where the
//! delay actually accrued and who caused it there.
//!
//! Run with: `cargo run --release --example cascade_diagnosis`

use printqueue::prelude::*;
use printqueue::switch::topology::DepartureTap;

fn main() {
    // Two senders, 40 flows each, bursting 20 Mb in 2 ms (≈ 20 Gbps
    // aggregate) into hop 1.
    let mut arrivals = Vec::new();
    for sender in 0..2u32 {
        for i in 0..1_000u64 {
            arrivals.push(Arrival::new(
                SimPacket::new(
                    FlowId(sender * 40 + (i % 40) as u32),
                    1_500,
                    i * 1_200 + u64::from(sender) * 600,
                ),
                0,
            ));
        }
    }
    arrivals.sort_by_key(|a| a.pkt.arrival);

    let tw = TimeWindowConfig::WS_DM;
    let mk_pq = || {
        let mut c = PrintQueueConfig::single_port(tw, 1200);
        c.control.poll_period = 1_000_000;
        PrintQueue::new(c)
    };

    // Hop 1: 40 Gbps — no bottleneck.
    let mut hop1_pq = mk_pq();
    let mut hop1_sink = TelemetrySink::new();
    let mut hop1 = Switch::new(SwitchConfig::single_port(40.0, 32_768));
    let mut tap = DepartureTap::new(0, 0, 5_000); // 5 µs link
    {
        let mut hooks: Vec<&mut dyn QueueHooks> = vec![&mut tap, &mut hop1_pq, &mut hop1_sink];
        hop1.run(arrivals, &mut hooks, 1_000_000);
    }

    // Hop 2: the 10 Gbps bottleneck.
    let mut hop2_pq = mk_pq();
    let mut hop2_sink = TelemetrySink::new();
    let mut hop2 = Switch::new(SwitchConfig::single_port(10.0, 32_768));
    {
        let mut hooks: Vec<&mut dyn QueueHooks> = vec![&mut hop2_pq, &mut hop2_sink];
        hop2.run(tap.into_arrivals(), &mut hooks, 1_000_000);
    }

    println!(
        "hop 1 (40G): max depth {:>6} cells, mean delay {:>8.1} µs",
        hop1.port_stats(0).max_depth_cells,
        hop1.port_stats(0).mean_queue_delay() / 1e3
    );
    println!(
        "hop 2 (10G): max depth {:>6} cells, mean delay {:>8.1} µs",
        hop2.port_stats(0).max_depth_cells,
        hop2.port_stats(0).mean_queue_delay() / 1e3
    );

    // The victim: flow 0's most-delayed packet *at hop 2*.
    let victim = hop2_sink
        .records
        .iter()
        .filter(|r| r.flow == FlowId(0))
        .max_by_key(|r| r.meta.deq_timedelta)
        .copied()
        .expect("flow 0 transmitted");
    // The same packet upstream (same flow, closest departure before the
    // downstream arrival).
    let upstream_twin = hop1_sink
        .records
        .iter()
        .filter(|r| r.flow == FlowId(0))
        .max_by_key(|r| r.meta.deq_timedelta)
        .copied()
        .expect("upstream record");

    println!(
        "\nvictim (flow#0): hop 1 queueing {:.1} µs, hop 2 queueing {:.1} µs \
         — the delay accrued downstream",
        f64::from(upstream_twin.meta.deq_timedelta) / 1e3,
        f64::from(victim.meta.deq_timedelta) / 1e3,
    );
    assert!(victim.meta.deq_timedelta > 10 * upstream_twin.meta.deq_timedelta.max(1));

    // Per-hop diagnosis: hop 2's PrintQueue names the culprits.
    let est = hop2_pq.analysis().query_time_windows(
        0,
        QueryInterval::new(victim.meta.enq_timestamp, victim.deq_timestamp()),
    );
    println!(
        "hop 2 diagnosis: {} culprit flows over the victim's wait (~{:.0} packets)",
        est.counts.len(),
        est.total()
    );
    assert!(est.counts.len() >= 30, "both senders' flows should appear");
    println!("\nper-switch PrintQueue instances localized the cascade ✓");
}
