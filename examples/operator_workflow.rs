//! The full operator workflow, end to end:
//!
//! 1. **validate** a configuration against the deployment (§7.1 guidance),
//! 2. **deploy** PrintQueue with a data-plane trigger (§3),
//! 3. **monitor** live traffic (depth + rate telemetry),
//! 4. react to the **trigger** firing on high queueing,
//! 5. **diagnose** the triggering victim (direct/original culprits),
//! 6. **archive** the evidence for offline analysis (artifact parallel).
//!
//! Run with: `cargo run --release --example operator_workflow`

use printqueue::core::diagnosis::diagnose;
use printqueue::core::export::CheckpointArchive;
use printqueue::core::validation::{is_deployable, validate, DeploymentProfile};
use printqueue::prelude::*;
use printqueue::switch::{DepthSampler, RateMeter};

fn main() {
    // ── 1. validate ────────────────────────────────────────────────────
    let tw = TimeWindowConfig::UW;
    let mut config = PrintQueueConfig::single_port(tw, 110).with_trigger(DataPlaneTrigger {
        min_deq_timedelta: 200_000, // alert at 200 µs of queueing
        min_enq_qdepth: u32::MAX,
        cooldown: 5_000_000,
    });
    config.control.poll_period = 5_000_000;
    let profile = DeploymentProfile {
        port_rate_gbps: 10.0,
        min_pkt_bytes: 64,
        max_depth_cells: 32_768,
        max_query_interval: 1_500_000,
    };
    // First attempt: a 32 Ki-entry queue monitor polled every 5 ms blows
    // the control plane's read budget — the validator catches it.
    let findings = validate(&config, &profile);
    for f in &findings {
        println!("   [{:?}] {}", f.severity, f.code);
    }
    assert!(
        !is_deployable(&findings),
        "the naive config should be rejected"
    );
    // Fix: coarser queue-monitor granularity (4 cells/entry keeps the same
    // depth coverage at a quarter of the read volume) and a gentler 10 ms
    // poll (still well inside the 22.3 ms set period).
    config.qm_entries = 8 * 1024;
    config.qm_cells_per_entry = 4;
    config.control.poll_period = 10_000_000;
    let findings = validate(&config, &profile);
    assert!(is_deployable(&findings), "fixed config: {findings:?}");
    println!("1. configuration validated (after the validator caught a read-budget error) ✓");

    // ── 2. deploy ──────────────────────────────────────────────────────
    let mut pq = PrintQueue::new(config);
    let mut depth = DepthSampler::new(0, 80, 4_096);
    let mut rate = RateMeter::new(0);
    let mut sink = TelemetrySink::new(); // ground truth for the demo only
    println!("2. PrintQueue deployed on port 0 with a 200 µs delay trigger ✓");

    // ── 3. monitor live traffic ────────────────────────────────────────
    let trace = Workload::paper_testbed(WorkloadKind::Uw, 40u64.millis(), 7).generate();
    let mut sw = Switch::new(SwitchConfig::single_port(10.0, 32_768));
    {
        let mut hooks: Vec<&mut dyn QueueHooks> = vec![&mut pq, &mut depth, &mut rate, &mut sink];
        sw.run(trace.arrivals.iter().copied(), &mut hooks, 5_000_000);
    }
    println!(
        "3. monitored {} packets: peak rate {:.1} Gbps, peak depth {} cells ✓",
        sink.records.len(),
        rate.peak_gbps(),
        depth.peak_cells
    );

    // ── 4. the trigger fired ───────────────────────────────────────────
    assert!(
        !pq.triggers_fired.is_empty(),
        "the overloaded port should have tripped the trigger"
    );
    let (_port, interval, at, depth_at_trigger) = pq.triggers_fired[0];
    println!(
        "4. data-plane trigger fired at {:.2} ms (victim waited {:.0} µs, depth {} cells) ✓",
        at as f64 / 1e6,
        interval.len() as f64 / 1e3,
        depth_at_trigger
    );

    // ── 5. diagnose ────────────────────────────────────────────────────
    let special = pq
        .analysis()
        .query_special(0, Some(0))
        .expect("special checkpoint readable");
    let report = diagnose(pq.analysis(), 0, interval.from, interval.to, None);
    println!(
        "5. diagnosis: pattern {:?}; {} culprit flows from the fresh (special) registers;",
        report.pattern,
        special.counts.len()
    );
    for (flow, n) in special.ranked().into_iter().take(3) {
        let tuple = trace
            .flows
            .resolve(flow)
            .map(|k| k.to_string())
            .unwrap_or_default();
        println!("     ~{n:>6.0} pkts  {tuple}");
    }
    let historical = report.historical_only();
    println!(
        "     {} flows implicated only as original causes (already gone)",
        historical.len()
    );

    // ── 6. archive ─────────────────────────────────────────────────────
    let archive = CheckpointArchive::capture(pq.analysis(), 0);
    let mut buf = Vec::new();
    archive.write_json(&mut buf).expect("archive serializes");
    let reread = CheckpointArchive::read_json(buf.as_slice()).expect("archive parses");
    println!(
        "6. archived {} checkpoints ({:.1} KB JSON) and re-read them offline ✓",
        reread.checkpoints.len(),
        buf.len() as f64 / 1e3
    );
    println!("\noperator workflow complete");
}
