//! Microburst forensics: the §1/§2 motivating scenario.
//!
//! Microbursts last tens to hundreds of microseconds — shorter than any
//! fixed-window measurement system's collection interval — yet window 0 of
//! PrintQueue's time windows covers >100 µs at full per-packet fidelity, so
//! a data-plane query fired during the burst names every culprit exactly.
//!
//! Run with: `cargo run --release --example microburst_forensics`

use printqueue::core::metrics;
use printqueue::prelude::*;
use printqueue::trace::scenario;

fn main() {
    // A 100 µs microburst: 60 flows × 20 small packets converge on one
    // port, on top of a light background.
    let start = 1u64.millis();
    let burst = scenario::microburst(start, 100_000, 60, 20, 200, 0, 11);
    println!(
        "microburst: {} packets from {} flows within 100 µs",
        burst.packets(),
        burst.flows.len()
    );

    // PrintQueue with a data-plane trigger: any packet that waited more
    // than 20 µs fires an on-demand query (§3: the egress pipeline can
    // "automatically trigger a local query when it detects high queuing").
    let tw = TimeWindowConfig::new(6, 1, 12, 4);
    let config = PrintQueueConfig::single_port(tw, 160).with_trigger(DataPlaneTrigger {
        min_deq_timedelta: 20_000,
        min_enq_qdepth: u32::MAX,
        cooldown: 200_000,
    });
    let mut printqueue = PrintQueue::new(config);
    let mut sink = TelemetrySink::new();
    let mut sw = Switch::new(SwitchConfig::single_port(10.0, 32_768));
    {
        let mut hooks: Vec<&mut dyn QueueHooks> = vec![&mut printqueue, &mut sink];
        sw.run(burst.arrivals.iter().copied(), &mut hooks, tw.set_period());
    }

    assert!(
        !printqueue.triggers_fired.is_empty(),
        "the burst should have tripped the data-plane trigger"
    );
    let (_port, interval, at, depth) = printqueue.triggers_fired[0];
    println!(
        "data-plane query fired at {:.1} µs (queue depth {} cells, victim waited {:.1} µs)",
        at as f64 / 1e3,
        depth,
        interval.len() as f64 / 1e3
    );

    // The on-demand (special) checkpoint answers at window-0 fidelity.
    let estimate = printqueue
        .analysis()
        .query_special(0, Some(0))
        .expect("special checkpoint");

    // Ground truth for the same interval.
    let oracle = GroundTruth::new(&sink.records, 80);
    let victim = sink
        .records
        .iter()
        .find(|r| r.meta.enq_timestamp == interval.from && r.deq_timestamp() == interval.to)
        .expect("trigger packet in telemetry");
    let truth =
        metrics::to_float_counts(&oracle.direct_culprits(interval.from, interval.to, victim.seqno));
    let pr = metrics::precision_recall(&estimate.counts, &truth);
    println!(
        "burst diagnosis: {} culprit flows, precision {:.3}, recall {:.3}",
        estimate.counts.len(),
        pr.precision,
        pr.recall
    );
    assert!(
        pr.precision > 0.9 && pr.recall > 0.9,
        "microburst queries should be near-exact (window 0 is uncompressed)"
    );
    println!("microburst culprits identified at packet-level fidelity ✓");
}
