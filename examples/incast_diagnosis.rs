//! Incast diagnosis: the §2 motivation for *indirect* culprits.
//!
//! In a TCP incast, many servers answer one aggregator simultaneously. By
//! the time a late victim packet sits in the queue, most of the burst has
//! already drained — the direct culprits look diverse, but the indirect
//! culprits reveal the synchronized application ("these congestion regimes
//! are characterized by the entire burst containing a single application's
//! traffic").
//!
//! Run with: `cargo run --release --example incast_diagnosis`

use printqueue::prelude::*;
use printqueue::trace::scenario;

fn main() {
    // 32 responders × 256 KB responses at 10 Gbps each, all triggered at
    // t = 1 ms, converging on a 10 Gbps port — classic incast. A thin
    // background flow shares the port.
    let incast = scenario::incast(1u64.millis(), 32, 256 * 1024, 10.0, 0, 3);
    let background = {
        use printqueue::packet::ipv4::Address;
        use printqueue::trace::workload::GeneratedTrace;
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut flows = printqueue::packet::FlowTable::new();
        let bg = flows.intern(FlowKey::tcp(
            Address::new(10, 9, 9, 9),
            5555,
            Address::new(10, 200, 0, 2),
            9000,
        ));
        let mut arrivals = Vec::new();
        let mut rng = SmallRng::seed_from_u64(5);
        printqueue::trace::scenario::cbr_stream(
            bg,
            1500,
            1.0,
            0,
            40u64.millis(),
            200,
            0,
            &mut rng,
            &mut arrivals,
        );
        GeneratedTrace { arrivals, flows }
    };
    let trace = background.merge(incast);
    println!(
        "incast: {} packets, {} flows (32 responders + 1 background)",
        trace.packets(),
        trace.flows.len()
    );

    let tw = TimeWindowConfig::WS_DM;
    let mut pq_config = PrintQueueConfig::single_port(tw, 1200);
    // Poll every 2 ms (the default once-per-set-period would exceed this
    // short run and never checkpoint).
    pq_config.control.poll_period = 2u64.millis();
    let mut printqueue = PrintQueue::new(pq_config);
    let mut sink = TelemetrySink::new();
    let mut sw = Switch::new(SwitchConfig::single_port(10.0, 120_000));
    {
        let mut hooks: Vec<&mut dyn QueueHooks> = vec![&mut printqueue, &mut sink];
        sw.run(trace.arrivals.iter().copied(), &mut hooks, 2u64.millis());
    }

    // The victim: a background packet caught *late* in the incast drain —
    // by then most of the burst has left the queue, so its blame is only
    // visible through the indirect culprits.
    let oracle = GroundTruth::new(&sink.records, 80);
    let victim = sink
        .records
        .iter()
        .filter(|r| r.flow.0 == 0 && r.meta.deq_timedelta > 500_000)
        .max_by_key(|r| r.meta.enq_timestamp)
        .copied()
        .expect("a delayed background packet exists");
    println!(
        "victim: {} waited {:.1} µs",
        victim.flow,
        f64::from(victim.meta.deq_timedelta) / 1e3
    );

    let report = oracle.report(&victim);
    println!(
        "congestion regime began at {:.2} ms; direct {} pkts, indirect {} pkts",
        report.regime_start as f64 / 1e6,
        report.direct_total(),
        report.indirect_total()
    );

    // How many *distinct responders* does each culprit class implicate?
    let responders = |counts: &std::collections::HashMap<FlowId, u64>| {
        counts.keys().filter(|f| f.0 != 0).count() // flow 0 is background here
    };
    println!(
        "distinct responders implicated: direct {}, indirect {}",
        responders(&report.direct),
        responders(&report.indirect),
    );

    // PrintQueue's view of the indirect culprits: query the whole regime.
    let est = printqueue.analysis().query_time_windows(
        0,
        QueryInterval::new(report.regime_start, victim.meta.enq_timestamp),
    );
    let implicated: Vec<FlowId> = est
        .ranked()
        .into_iter()
        .take_while(|(_, n)| *n >= 0.5)
        .map(|(f, _)| f)
        .collect();
    println!(
        "PrintQueue implicates {} flows over the regime — a synchronized burst\n\
         from one application is visible as many same-sized same-destination flows",
        implicated.len()
    );
    assert!(
        implicated.len() >= 16,
        "most responders should be implicated, got {}",
        implicated.len()
    );
}
