//! Fabric-wide path tracing: per-switch PrintQueue instances coordinated by
//! a [`printqueue::core::fleet::Fleet`], diagnosing one packet's delay
//! across three hops.
//!
//! This is the §8 integration story: PrintQueue stays strictly per-switch,
//! and a higher-level (provenance-style) layer combines per-hop answers —
//! here, finding which hop added the delay and who was responsible there.
//!
//! Run with: `cargo run --release --example fleet_path_trace`

use printqueue::core::fleet::{Fleet, HopRecord};
use printqueue::prelude::*;
use printqueue::switch::topology::DepartureTap;

fn main() {
    // Fabric: switch 1 (40G) → switch 2 (10G, the bottleneck) → switch 3
    // (40G). Victim flow 0 shares the path with heavy flow 1; flow 2 joins
    // only at switch 2.
    let tw = TimeWindowConfig::WS_DM;
    let mk_config = || {
        let mut c = PrintQueueConfig::single_port(tw, 1200);
        c.control.poll_period = 1_000_000;
        c
    };
    let mut fleet = Fleet::new();
    for sw_id in [1u32, 2, 3] {
        fleet.deploy(sw_id, mk_config());
    }

    // Traffic into switch 1.
    let mut arrivals = Vec::new();
    for i in 0..3_000u64 {
        arrivals.push(Arrival::new(SimPacket::new(FlowId(1), 1500, i * 800), 0));
        if i % 25 == 0 {
            arrivals.push(Arrival::new(
                SimPacket::new(FlowId(0), 1500, i * 800 + 3),
                0,
            ));
        }
    }
    arrivals.sort_by_key(|a| a.pkt.arrival);

    // Hop 1.
    let mut sw1 = Switch::new(SwitchConfig::single_port(40.0, 32_768));
    let mut tap1 = DepartureTap::new(0, 0, 3_000);
    let mut sink1 = TelemetrySink::new();
    {
        let mut hook = fleet.hook(1);
        let mut hooks: Vec<&mut dyn QueueHooks> = vec![&mut tap1, &mut hook, &mut sink1];
        sw1.run(arrivals, &mut hooks, 1_000_000);
    }

    // Hop 2 receives hop 1's departures plus local cross-traffic (flow 2).
    let mut hop2_arrivals = tap1.into_arrivals();
    for i in 0..1_500u64 {
        hop2_arrivals.push(Arrival::new(SimPacket::new(FlowId(2), 1500, i * 1_600), 0));
    }
    hop2_arrivals.sort_by_key(|a| a.pkt.arrival);
    let mut sw2 = Switch::new(SwitchConfig::single_port(10.0, 32_768));
    let mut tap2 = DepartureTap::new(0, 0, 3_000);
    let mut sink2 = TelemetrySink::new();
    {
        let mut hook = fleet.hook(2);
        let mut hooks: Vec<&mut dyn QueueHooks> = vec![&mut tap2, &mut hook, &mut sink2];
        sw2.run(hop2_arrivals, &mut hooks, 1_000_000);
    }

    // Hop 3.
    let mut sw3 = Switch::new(SwitchConfig::single_port(40.0, 32_768));
    let mut sink3 = TelemetrySink::new();
    {
        let mut hook = fleet.hook(3);
        let mut hooks: Vec<&mut dyn QueueHooks> = vec![&mut hook, &mut sink3];
        sw3.run(tap2.into_arrivals(), &mut hooks, 1_000_000);
    }

    // Assemble the victim's per-hop path record from each hop's telemetry
    // (in deployment: INT postcards or per-hop probes).
    let pick = |sink: &TelemetrySink| {
        sink.records
            .iter()
            .filter(|r| r.flow == FlowId(0))
            .max_by_key(|r| r.meta.deq_timedelta)
            .copied()
            .expect("victim traversed the hop")
    };
    let (v1, v2, v3) = (pick(&sink1), pick(&sink2), pick(&sink3));
    let path = vec![
        HopRecord {
            switch: 1,
            port: 0,
            enq_timestamp: v1.meta.enq_timestamp,
            deq_timestamp: v1.deq_timestamp(),
        },
        HopRecord {
            switch: 2,
            port: 0,
            enq_timestamp: v2.meta.enq_timestamp,
            deq_timestamp: v2.deq_timestamp(),
        },
        HopRecord {
            switch: 3,
            port: 0,
            enq_timestamp: v3.meta.enq_timestamp,
            deq_timestamp: v3.deq_timestamp(),
        },
    ];

    let result = fleet.diagnose_path(&path);
    println!(
        "path diagnosis for flow#0 (total queueing {:.1} µs):",
        result.total_delay as f64 / 1e3
    );
    for (i, hop) in result.hops.iter().enumerate() {
        let top = hop.diagnosis.top_direct(1);
        println!(
            "  hop {} (switch {}): {:>6.1} µs ({:>4.1}%){} — top culprit: {}",
            i + 1,
            hop.hop.switch,
            hop.hop.delay() as f64 / 1e3,
            hop.delay_share * 100.0,
            if i == result.dominant_hop {
                "  ← dominant"
            } else {
                ""
            },
            top.first()
                .map(|(f, n)| format!("{f} (~{n:.0} pkts)"))
                .unwrap_or_else(|| "-".into()),
        );
    }
    assert_eq!(result.dominant_hop, 1, "switch 2 must dominate");
    let culprits = result.hops[1].diagnosis.top_direct(2);
    println!(
        "\nswitch 2's culprits include the cross-traffic that joined there: {:?}",
        culprits.iter().map(|(f, _)| f.0).collect::<Vec<_>>()
    );
    println!("fabric-wide attribution from per-switch instances ✓");
}
