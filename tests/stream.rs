//! End-to-end tests for standing continuous queries: windowed results
//! pushed by the daemon must be bit-identical to an offline one-shot
//! `query_time_windows` over the same closed interval (single-node and
//! routed across three shards), per-subscription state must stay under
//! its cap with evictions accounted under shuffled/late arrival, and
//! the subscribe ack must echo the clamped publisher interval.

use printqueue::core::control::{AnalysisProgram, Checkpoint, ControlConfig};
use printqueue::core::params::TimeWindowConfig;
use printqueue::core::snapshot::QueryInterval;
use printqueue::packet::FlowId;
use printqueue::router::{BackendSpec, Router, RouterConfig, RouterHandle};
use printqueue::serve::{Client, ServeConfig, Server, ServerHandle, Sources};
use printqueue::stream::{parse, DepthAgg, Record, Standing, TopKSummary};
use printqueue::telemetry::{names, Telemetry};

use std::sync::Arc;

const PORTS: [u16; 2] = [0, 3];

fn tw_small() -> TimeWindowConfig {
    TimeWindowConfig::new(0, 1, 6, 2)
}

/// Same two-port drive as the serve e2e tests: a poll every 64 ns, a
/// silence window opening a coverage gap, and queue-monitor activity so
/// checkpoints carry nonzero stack depths. `flow_base` lets each shard
/// of a routed fleet own a disjoint flow population.
fn drive_program(until: u64, flow_base: u32) -> AnalysisProgram {
    let tw = tw_small();
    let mut ap = AnalysisProgram::new(
        tw,
        ControlConfig {
            poll_period: 64,
            max_snapshots: 10_000,
        },
        &PORTS,
        32,
        1,
        1,
    );
    let silence = 1_000..1_600;
    for t in 0..until {
        for (i, &port) in PORTS.iter().enumerate() {
            if t % (i as u64 + 2) == 0 {
                ap.record_dequeue(port, FlowId(flow_base + (t % 7) as u32), t);
            }
            if t % 5 == 0 {
                ap.qm_enqueue(
                    port,
                    0,
                    FlowId(flow_base + (t % 3) as u32),
                    ((t + u64::from(flow_base)) % 20) as u32,
                    t,
                );
            }
        }
        if t % 64 == 0 && !silence.contains(&t) {
            ap.on_tick(t);
        }
    }
    ap
}

fn serve_live(ap: Arc<AnalysisProgram>, config: ServeConfig) -> (ServerHandle, Telemetry) {
    let plane = Telemetry::new();
    let server = Server::bind(
        ("127.0.0.1", 0),
        Sources {
            live: Some(ap),
            archive: None,
            rtt: Vec::new(),
        },
        config,
        &plane,
    )
    .unwrap();
    (server.spawn().unwrap(), plane)
}

/// The depth a checkpoint contributes to the stream — the same
/// projection the evaluator applies.
fn depth_of(cp: &Checkpoint) -> u64 {
    cp.queue_monitor().map(|q| u64::from(q.top)).unwrap_or(0)
}

/// Fold one program's checkpoints inside `[from, to)` the way the
/// evaluator does (cursor order), for an order-faithful expected agg.
fn window_agg(ap: &AnalysisProgram, port: u16, from: u64, to: u64) -> DepthAgg {
    let mut agg = DepthAgg::default();
    for cp in ap.checkpoints(port) {
        if cp.frozen_at >= from && cp.frozen_at < to {
            agg.offer(cp.frozen_at, depth_of(cp));
        }
    }
    agg
}

fn metric_total(plane: &Telemetry, name: &str) -> u64 {
    plane
        .snapshot()
        .iter()
        .filter(|(k, _)| k.name == name)
        .map(|(_, v)| match v {
            printqueue::telemetry::MetricValue::Counter(n)
            | printqueue::telemetry::MetricValue::Gauge(n) => *n,
            printqueue::telemetry::MetricValue::Histogram(h) => h.count,
        })
        .sum()
}

#[test]
fn standing_results_match_offline_one_shot_bit_for_bit() {
    let ap = Arc::new(drive_program(2_000, 0));
    let (handle, plane) = serve_live(Arc::clone(&ap), ServeConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();

    let ack = client
        .standing("window tumbling 500ns", 512, 0, true)
        .unwrap();
    assert_eq!(ack.cap, 512);
    assert_eq!(
        ack.query,
        parse("window tumbling 500ns").unwrap().to_string()
    );

    let mut windows = Vec::new();
    let mut prev_watermark = 0;
    loop {
        let r = client.next_stream_result(ack.sub).unwrap();
        assert!(
            r.watermark_ns >= prev_watermark,
            "watermark must be monotone ({} then {})",
            prev_watermark,
            r.watermark_ns
        );
        prev_watermark = r.watermark_ns;
        let last = r.last;
        if r.to != 0 {
            windows.push(r);
        }
        if last {
            break;
        }
    }

    // Every (port, window) pair with at least one checkpoint must close.
    let mut expected_keys = std::collections::BTreeSet::new();
    for &port in &PORTS {
        for cp in ap.checkpoints(port) {
            let from = cp.frozen_at - cp.frozen_at % 500;
            expected_keys.insert((port, from, from + 500));
        }
    }
    let got_keys: std::collections::BTreeSet<(u16, u64, u64)> =
        windows.iter().map(|r| (r.port, r.from, r.to)).collect();
    assert_eq!(got_keys, expected_keys);

    for r in &windows {
        assert!(r.fired, "no predicate: every close fires");

        // Depth statistics equal an order-faithful offline fold.
        let want = window_agg(&ap, r.port, r.from, r.to);
        assert_eq!(
            (r.max, r.min, r.sum, r.count),
            (want.max, want.min, want.sum, want.count)
        );
        assert_eq!((r.last_t, r.last_depth), (want.last_t, want.last_depth));

        // Flow estimates are the offline one-shot over the same closed
        // interval, run through the same capped summary — bit for bit.
        let answer = ap.query_time_windows(r.port, QueryInterval::new(r.from, r.to - 1));
        let mut topk = TopKSummary::new(512);
        for (flow, est) in answer.estimates.ranked() {
            topk.offer(flow.0, est);
        }
        assert_eq!(topk.evictions, 0, "cap 512 must hold the full answer");
        let want_flows: Vec<(FlowId, f64)> = topk
            .ranked(None)
            .into_iter()
            .map(|(f, c)| (FlowId(f), c))
            .collect();
        assert_eq!(r.flows.len(), want_flows.len());
        for ((gf, gc), (wf, wc)) in r.flows.iter().zip(&want_flows) {
            assert_eq!(gf, wf);
            assert_eq!(gc.to_bits(), wc.to_bits(), "flow {} estimate drifted", wf.0);
        }
        assert_eq!(r.gaps, answer.gaps);
        // No forced closes and no evictions here, so the degraded flag
        // is exactly the one-shot's coverage verdict.
        assert_eq!(r.degraded, answer.degraded);
    }

    assert!(metric_total(&plane, names::STREAM_WINDOWS_CLOSED) >= windows.len() as u64);
    assert!(metric_total(&plane, names::STREAM_RESULTS) >= windows.len() as u64);
    handle.shutdown().unwrap();
}

#[test]
fn never_true_predicate_closes_windows_but_fires_nothing() {
    let ap = Arc::new(drive_program(2_000, 0));
    let (handle, _plane) = serve_live(ap, ServeConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();

    let ack = client
        .standing(
            "window tumbling 500ns where max(depth) > 1000000",
            512,
            0,
            true,
        )
        .unwrap();
    let mut closed = 0;
    loop {
        let r = client.next_stream_result(ack.sub).unwrap();
        if r.to != 0 {
            closed += 1;
            assert!(!r.fired, "predicate can never hold");
            assert!(r.flows.is_empty(), "non-fired closes carry no flows");
        }
        if r.last {
            break;
        }
    }
    assert!(closed > 0, "windows still close under a false predicate");
    handle.shutdown().unwrap();
}

#[test]
fn tight_cap_surfaces_evictions_as_degraded() {
    let ap = Arc::new(drive_program(2_000, 0));
    let (handle, _plane) = serve_live(Arc::clone(&ap), ServeConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();

    // Port 0 sees seven distinct flows per window; a cap of 2 cannot
    // hold them, so the answer must carry the eviction caveat.
    let ack = client
        .standing("port 0 window tumbling 2000ns topk 2", 2, 0, true)
        .unwrap();
    assert_eq!(ack.cap, 2);
    let mut saw_evictions = false;
    loop {
        let r = client.next_stream_result(ack.sub).unwrap();
        if r.to != 0 && r.fired {
            assert!(r.flows.len() <= 2);
            if r.evictions > 0 {
                assert!(r.degraded, "evictions must degrade the answer");
                assert!(r.evicted_weight > 0.0);
                saw_evictions = true;
            }
        }
        if r.last {
            break;
        }
    }
    assert!(saw_evictions, "seven flows through a cap of 2 must evict");
    handle.shutdown().unwrap();
}

#[test]
fn cancel_ends_the_stream_with_a_final_frame() {
    let ap = Arc::new(drive_program(2_000, 0));
    let (handle, _plane) = serve_live(ap, ServeConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();

    let ack = client
        .standing("window tumbling 500ns", 512, 0, false)
        .unwrap();
    // Collect at least one result, then cancel; the client drains the
    // stream up to the final `last` frame.
    let first = client.next_stream_result(ack.sub).unwrap();
    assert!(!first.last);
    client.cancel_standing(ack.sub).unwrap();
    handle.shutdown().unwrap();
}

#[test]
fn subscribe_ack_echoes_clamped_interval() {
    let ap = Arc::new(drive_program(500, 0));
    let (handle, _plane) = serve_live(ap, ServeConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();
    let _update = client.subscribe(1, 2).unwrap();
    assert_eq!(
        client.subscribed_interval_ms(),
        Some(10),
        "1ms must clamp to the 10ms floor and be echoed"
    );
    // Drain the bounded subscription so shutdown is clean.
    loop {
        let u = client.next_update().unwrap();
        if u.last {
            break;
        }
    }
    handle.shutdown().unwrap();
}

#[test]
fn bounded_state_under_shuffled_and_late_arrival() {
    let query = parse("port 0 window tumbling 100ns lateness 50ns").unwrap();
    let max_open = 4;
    let mut standing = Standing::new(query, max_open);

    // A deterministic shuffle of 0..1999 (3 is coprime with 2000), so
    // records arrive far out of order without any RNG.
    let mut late = 0u64;
    for i in 0..2_000u64 {
        let t = (i * 3) % 2_000;
        let accepted = standing.push(Record {
            t_ns: t,
            port: 0,
            depth: t % 20,
        });
        if !accepted {
            late += 1;
        }
        assert!(
            standing.open_windows() <= max_open,
            "open windows {} exceeded cap {max_open}",
            standing.open_windows()
        );
    }
    standing.seal();
    let closes = standing.drain();
    assert_eq!(standing.late_records, late);
    let forced = closes.iter().filter(|c| c.forced).count() as u64;
    assert_eq!(standing.forced_closes, forced);
    assert!(
        forced > 0 || late > 0,
        "a shuffled feed through 4 open windows must force closes or drop late records"
    );
    // Conservation: every accepted record is aggregated in some close.
    let aggregated: u64 = closes.iter().map(|c| c.agg.count).sum();
    assert_eq!(aggregated, standing.records);

    // Space-saving summary: the cap holds and every displaced slot is
    // accounted.
    let mut topk = TopKSummary::new(8);
    for flow in 0..100u32 {
        topk.offer(flow, f64::from(flow) + 1.0);
    }
    assert!(topk.len() <= 8);
    assert_eq!(topk.evictions, 100 - 8);
    assert!(topk.evicted_weight > 0.0);
}

/// Spawn three live backends, each owning a disjoint flow population,
/// fronted by one router.
fn spawn_live_fleet() -> (Vec<Arc<AnalysisProgram>>, Vec<ServerHandle>, RouterHandle) {
    let mut aps = Vec::new();
    let mut handles = Vec::new();
    let mut specs = Vec::new();
    for i in 0..3u32 {
        let ap = Arc::new(drive_program(2_000, i * 1_000));
        let cfg = ServeConfig {
            shard: format!("shard-{i}"),
            ..ServeConfig::default()
        };
        let (handle, _plane) = serve_live(Arc::clone(&ap), cfg);
        specs.push(BackendSpec {
            name: format!("shard-{i}"),
            addr: handle.addr().to_string(),
        });
        aps.push(ap);
        handles.push(handle);
    }
    let router = Router::bind(
        ("127.0.0.1", 0),
        specs,
        RouterConfig::default(),
        &Telemetry::new(),
    )
    .unwrap();
    (aps, handles, router.spawn().unwrap())
}

#[test]
fn routed_standing_matches_per_shard_merge_bit_for_bit() {
    let (aps, backends, router) = spawn_live_fleet();
    let mut client = Client::connect(router.addr()).unwrap();

    let ack = client
        .standing(
            "port 0 window tumbling 500ns where count(depth) > 0 topk 4",
            512,
            0,
            true,
        )
        .unwrap();
    let mut windows = Vec::new();
    loop {
        let r = client.next_stream_result(ack.sub).unwrap();
        let last = r.last;
        if r.to != 0 {
            windows.push(r);
        }
        if last {
            break;
        }
    }
    assert!(!windows.is_empty());

    for r in &windows {
        assert_eq!(r.port, 0);
        // Merged depth statistics: per-shard folds merged in backend
        // order, exactly as the router does.
        let mut want_agg = DepthAgg::default();
        for ap in &aps {
            want_agg.merge(&window_agg(ap, 0, r.from, r.to));
        }
        assert_eq!(
            (r.max, r.min, r.sum, r.count),
            (want_agg.max, want_agg.min, want_agg.sum, want_agg.count)
        );
        assert!(r.fired, "count > 0 holds for every closed window");

        // Merged flows: each shard's offline one-shot, capped at the
        // query's top-k, merged in backend order — bit for bit.
        let mut summary = TopKSummary::new(4);
        for ap in &aps {
            let answer = ap.query_time_windows(0, QueryInterval::new(r.from, r.to - 1));
            let mut part = TopKSummary::new(4);
            for (flow, est) in answer.estimates.ranked() {
                part.offer(flow.0, est);
            }
            summary.merge(&part);
        }
        let want_flows: Vec<(FlowId, f64)> = summary
            .ranked(Some(4))
            .into_iter()
            .map(|(f, c)| (FlowId(f), c))
            .collect();
        assert_eq!(r.flows.len(), want_flows.len());
        for ((gf, gc), (wf, wc)) in r.flows.iter().zip(&want_flows) {
            assert_eq!(gf, wf);
            assert_eq!(gc.to_bits(), wc.to_bits(), "flow {} estimate drifted", wf.0);
        }
    }

    router.shutdown().unwrap();
    for b in backends {
        b.shutdown().unwrap();
    }
}
