//! End-to-end tests for the pq-serve daemon: remote answers must be
//! bit-identical to in-process queries, degraded-query semantics must
//! survive the network hop, overload must shed with explicit Busy frames,
//! and shutdown must drain admitted work.

use printqueue::core::coefficient::Coefficients;
use printqueue::core::control::{AnalysisProgram, ControlConfig};
use printqueue::core::params::TimeWindowConfig;
use printqueue::core::snapshot::QueryInterval;
use printqueue::packet::FlowId;
use printqueue::serve::wire::{self, Frame};
use printqueue::serve::{Client, ClientError, Request, ServeConfig, Server, Sources};
use printqueue::store::{SegmentPolicy, SharedStoreWriter, StoreReader, StoreWriter};
use printqueue::telemetry::{parse_prometheus, Telemetry};
use std::io::Cursor;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::{Arc, Barrier};
use std::time::Duration;

const PORTS: [u16; 2] = [0, 3];

fn tw_small() -> TimeWindowConfig {
    TimeWindowConfig::new(0, 1, 6, 2)
}

fn tiny_segments() -> SegmentPolicy {
    SegmentPolicy {
        checkpoints_per_segment: 4,
        max_segment_bytes: 1 << 20,
        retain_segments_per_port: None,
    }
}

/// Drive a two-port program for `until` ns with a poll every 64 ns and a
/// silence window that opens a coverage gap (same shape as the store
/// round-trip tests, so remote answers exercise gaps too).
fn drive_program(spill: Option<SharedStoreWriter<Vec<u8>>>, until: u64) -> AnalysisProgram {
    let tw = tw_small();
    let mut ap = AnalysisProgram::new(
        tw,
        ControlConfig {
            poll_period: 64,
            max_snapshots: 10_000,
        },
        &PORTS,
        32,
        1,
        1,
    );
    if let Some(handle) = spill {
        ap.set_spill(Box::new(handle));
    }
    let silence = 1_000..1_600;
    for t in 0..until {
        for (i, &port) in PORTS.iter().enumerate() {
            if t % (i as u64 + 2) == 0 {
                ap.record_dequeue(port, FlowId((t % 7) as u32 + i as u32 * 100), t);
            }
            if t % 5 == 0 {
                ap.qm_enqueue(port, 0, FlowId((t % 3) as u32), (t % 20) as u32, t);
            }
        }
        if t % 64 == 0 && !silence.contains(&t) {
            ap.on_tick(t);
        }
    }
    ap
}

fn spill_to_store(until: u64) -> (AnalysisProgram, Vec<u8>) {
    let writer = StoreWriter::new(Vec::new(), tw_small(), tiny_segments()).unwrap();
    let handle = SharedStoreWriter::new(writer);
    let ap = drive_program(Some(handle.clone()), until);
    for &port in &PORTS {
        handle.with(|w| w.set_health(port, ap.health())).unwrap();
    }
    let bytes = handle.finish().unwrap();
    (ap, bytes)
}

fn sweep_intervals() -> Vec<QueryInterval> {
    vec![
        QueryInterval::new(0, 50),
        QueryInterval::new(100, 300),
        QueryInterval::new(900, 1_700),
        QueryInterval::new(500, 1_999),
        QueryInterval::new(0, 1_999),
        QueryInterval::new(1_900, 5_000),
    ]
}

/// Write archive bytes to a unique temp file the server can open.
fn temp_archive(name: &str, bytes: &[u8]) -> PathBuf {
    let path = std::env::temp_dir().join(format!("pq_serve_e2e_{}_{name}.pqa", std::process::id()));
    std::fs::write(&path, bytes).unwrap();
    path
}

fn serve(sources: Sources, config: ServeConfig) -> (printqueue::serve::ServerHandle, Telemetry) {
    let plane = Telemetry::new();
    let server = Server::bind(("127.0.0.1", 0), sources, config, &plane).unwrap();
    (server.spawn().unwrap(), plane)
}

#[test]
fn remote_replay_matches_local_bit_for_bit() {
    let (_ap, bytes) = spill_to_store(2_000);
    let path = temp_archive("replay", &bytes);
    let (handle, _plane) = serve(
        Sources {
            live: None,
            archive: Some(path.clone()),
            rtt: Vec::new(),
        },
        ServeConfig::default(),
    );
    let mut client = Client::connect(handle.addr()).unwrap();
    let mut local = StoreReader::open(Cursor::new(bytes)).unwrap();
    let coeffs = Coefficients::compute(&tw_small(), 1);
    for &port in &PORTS {
        for interval in sweep_intervals() {
            let want = local.query(port, interval, &coeffs).unwrap();
            let got = client
                .query(Request::Replay {
                    port,
                    from: interval.from,
                    to: interval.to,
                    d: 1,
                })
                .unwrap();
            // Flow values travel as raw f64 bits: exact equality, not
            // approximate, is the contract.
            assert_eq!(
                want.estimates.counts, got.estimates.counts,
                "port {port} interval {interval:?}"
            );
            assert_eq!(want.gaps, got.gaps, "port {port} interval {interval:?}");
            assert_eq!(want.degraded, got.degraded);
            assert_eq!(got.checkpoints, local.checkpoint_count(port));
        }
    }
    // The sweep re-queried the same segments: the shared decode cache
    // must have observed both misses (first pass) and hits (later ones).
    let metrics = client.metrics().unwrap();
    let parsed = parse_prometheus(&metrics).unwrap();
    let sample = |name: &str| {
        parsed
            .iter()
            .find(|m| m.name == name)
            .map(|m| m.value)
            .unwrap_or(0.0)
    };
    assert!(sample("pq_serve_cache_miss_total") >= 1.0);
    assert!(
        sample("pq_serve_cache_hit_total") >= 1.0,
        "repeated intervals should hit the decode cache"
    );
    handle.shutdown().unwrap();
    std::fs::remove_file(path).unwrap();
}

#[test]
fn remote_live_queries_match_in_process() {
    let ap = Arc::new(drive_program(None, 2_000));
    let (handle, _plane) = serve(
        Sources {
            live: Some(Arc::clone(&ap)),
            archive: None,
            rtt: Vec::new(),
        },
        ServeConfig::default(),
    );
    let mut client = Client::connect(handle.addr()).unwrap();
    for &port in &PORTS {
        for interval in sweep_intervals() {
            let want = ap.query_time_windows(port, interval);
            let got = client
                .query(Request::TimeWindows {
                    port,
                    from: interval.from,
                    to: interval.to,
                })
                .unwrap();
            assert_eq!(want.estimates.counts, got.estimates.counts);
            assert_eq!(want.gaps, got.gaps);
            assert_eq!(want.degraded, got.degraded);
            assert_eq!(got.checkpoints, ap.checkpoints(port).len() as u64);
        }
        // Queue monitor: counts arrive ranked (count desc, then flow id).
        let at = 500;
        let want = ap.query_queue_monitor(port, at).unwrap();
        let mut want_counts: Vec<(FlowId, u64)> = want.culprit_counts().into_iter().collect();
        want_counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let got = client.queue_monitor(port, at).unwrap();
        assert_eq!(got.frozen_at, want.frozen_at);
        assert_eq!(got.staleness, want.staleness);
        assert_eq!(got.degraded, want.degraded);
        assert_eq!(got.gaps, want.gaps);
        assert_eq!(got.counts, want_counts);
    }
    handle.shutdown().unwrap();
}

#[test]
fn corrupt_segment_stays_degraded_over_the_wire() {
    let (_ap, bytes) = spill_to_store(2_000);
    let clean = StoreReader::open(Cursor::new(bytes.clone())).unwrap();
    let victims: Vec<_> = clean
        .segments()
        .iter()
        .filter(|s| s.port == 0)
        .copied()
        .collect();
    let victim = victims[victims.len() / 2];
    let mut corrupted = bytes.clone();
    corrupted[(victim.offset + victim.len - 8) as usize] ^= 0x01;

    let path = temp_archive("corrupt", &corrupted);
    let (handle, _plane) = serve(
        Sources {
            live: None,
            archive: Some(path.clone()),
            rtt: Vec::new(),
        },
        ServeConfig::default(),
    );
    let mut client = Client::connect(handle.addr()).unwrap();
    let mut local = StoreReader::open(Cursor::new(corrupted)).unwrap();
    let coeffs = Coefficients::compute(&tw_small(), 1);
    let over = QueryInterval::new(victim.min_t, victim.max_t);
    let want = local.query(0, over, &coeffs).unwrap();
    assert!(want.degraded);
    let got = client
        .query(Request::Replay {
            port: 0,
            from: over.from,
            to: over.to,
            d: 1,
        })
        .unwrap();
    assert!(got.degraded, "corruption must stay visible remotely");
    assert_eq!(want.gaps, got.gaps);
    assert_eq!(want.estimates.counts, got.estimates.counts);
    handle.shutdown().unwrap();
    std::fs::remove_file(path).unwrap();
}

#[test]
fn remote_errors_carry_typed_codes_and_gaps() {
    let ap = Arc::new(drive_program(None, 500));
    let (handle, _plane) = serve(
        Sources {
            live: Some(ap),
            archive: None,
            rtt: Vec::new(),
        },
        ServeConfig::default(),
    );
    let mut client = Client::connect(handle.addr()).unwrap();
    // Unknown port.
    match client.query(Request::TimeWindows {
        port: 99,
        from: 0,
        to: 100,
    }) {
        Err(ClientError::Remote { code, .. }) => {
            assert_eq!(code, printqueue::serve::ErrorCode::UnknownPort)
        }
        other => panic!("expected UnknownPort, got {other:?}"),
    }
    // No archive attached.
    match client.query(Request::Replay {
        port: 0,
        from: 0,
        to: 100,
        d: 1,
    }) {
        Err(ClientError::Remote { code, .. }) => {
            assert_eq!(code, printqueue::serve::ErrorCode::NoArchive)
        }
        other => panic!("expected NoArchive, got {other:?}"),
    }
    handle.shutdown().unwrap();
}

#[test]
fn overload_sheds_with_busy_never_silently() {
    let ap = Arc::new(drive_program(None, 500));
    let config = ServeConfig {
        workers: 1,
        queue_cap: 1,
        retry_after_ms: 7,
        work_delay: Duration::from_millis(100),
        ..ServeConfig::default()
    };
    let (handle, _plane) = serve(
        Sources {
            live: Some(ap),
            archive: None,
            rtt: Vec::new(),
        },
        config,
    );
    let addr = handle.addr();
    let n = 6;
    let barrier = Arc::new(Barrier::new(n));
    let threads: Vec<_> = (0..n)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                barrier.wait();
                client.query(Request::TimeWindows {
                    port: 0,
                    from: 0,
                    to: 400,
                })
            })
        })
        .collect();
    let mut ok = 0u32;
    let mut busy = 0u32;
    for t in threads {
        match t.join().unwrap() {
            Ok(_) => ok += 1,
            Err(ClientError::Busy { retry_after_ms }) => {
                assert_eq!(retry_after_ms, 7, "Busy must carry the configured backoff");
                busy += 1;
            }
            Err(other) => panic!("unexpected failure under load: {other}"),
        }
    }
    assert_eq!(ok + busy, n as u32, "every request answered — none dropped");
    assert!(
        ok >= 1,
        "the server must still make progress under overload"
    );
    assert!(busy >= 1, "with queue_cap=1 and slow work, some must shed");
    // The shed counter must account for every Busy sent.
    let mut client = Client::connect(addr).unwrap();
    let parsed = parse_prometheus(&client.metrics().unwrap()).unwrap();
    let shed = parsed
        .iter()
        .find(|m| m.name == "pq_serve_shed_total")
        .map(|m| m.value)
        .unwrap_or(0.0);
    assert!(shed >= f64::from(busy));
    handle.shutdown().unwrap();
}

#[test]
fn per_connection_inflight_cap_sheds_pipelined_requests() {
    let ap = Arc::new(drive_program(None, 500));
    let config = ServeConfig {
        workers: 1,
        inflight_per_conn: 2,
        queue_cap: 64,
        work_delay: Duration::from_millis(50),
        ..ServeConfig::default()
    };
    let (handle, _plane) = serve(
        Sources {
            live: Some(ap),
            archive: None,
            rtt: Vec::new(),
        },
        config,
    );
    // Raw pipelining (the Client API is strictly request-response).
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    wire::write_frame(
        &mut stream,
        &Frame::Hello {
            version: wire::PROTOCOL_VERSION,
            max_frame: wire::MAX_FRAME_LEN,
        },
    )
    .unwrap();
    let ack = wire::read_frame(&mut stream, wire::MAX_FRAME_LEN).unwrap();
    assert!(matches!(ack, Frame::HelloAck { .. }));
    let total = 8u64;
    for id in 1..=total {
        wire::write_frame(
            &mut stream,
            &Frame::Request {
                id,
                req: Request::TimeWindows {
                    port: 0,
                    from: 0,
                    to: 400,
                },
                trace: None,
            },
        )
        .unwrap();
    }
    // Read until every request is accounted for: each id ends in either
    // ResultEnd (admitted and answered) or Busy (shed at the cap).
    let mut answered = 0u64;
    let mut shed = 0u64;
    while answered + shed < total {
        match wire::read_frame(&mut stream, wire::MAX_FRAME_LEN).unwrap() {
            Frame::ResultEnd { .. } => answered += 1,
            Frame::Busy { .. } => shed += 1,
            Frame::ResultHeader { .. } | Frame::ResultFlows { .. } | Frame::ResultGaps { .. } => {}
            other => panic!("unexpected frame: {other:?}"),
        }
    }
    assert!(shed >= 1, "pipelining past inflight_per_conn=2 must shed");
    assert!(answered >= 2, "admitted requests must still complete");
    handle.shutdown().unwrap();
}

#[test]
fn shutdown_drains_admitted_requests() {
    let ap = Arc::new(drive_program(None, 500));
    let config = ServeConfig {
        workers: 1,
        work_delay: Duration::from_millis(60),
        drain_deadline: Duration::from_secs(10),
        ..ServeConfig::default()
    };
    let (handle, _plane) = serve(
        Sources {
            live: Some(ap),
            archive: None,
            rtt: Vec::new(),
        },
        config,
    );
    // Pipeline three queries, then ask a second connection for shutdown
    // while they are still queued. Nagle would hold the small pipelined
    // writes in the kernel past the shutdown, so disable it.
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    wire::write_frame(
        &mut stream,
        &Frame::Hello {
            version: wire::PROTOCOL_VERSION,
            max_frame: wire::MAX_FRAME_LEN,
        },
    )
    .unwrap();
    let _ack = wire::read_frame(&mut stream, wire::MAX_FRAME_LEN).unwrap();
    for id in 1..=3u64 {
        wire::write_frame(
            &mut stream,
            &Frame::Request {
                id,
                req: Request::TimeWindows {
                    port: 0,
                    from: 0,
                    to: 400,
                },
                trace: None,
            },
        )
        .unwrap();
    }
    // Give the connection's reader thread time to admit all three (the
    // single worker is still sleeping through job 1's work_delay), then
    // initiate shutdown while jobs 2 and 3 sit in the queue.
    std::thread::sleep(Duration::from_millis(40));
    let mut stopper = Client::connect(handle.addr()).unwrap();
    stopper.shutdown_server().unwrap();
    // All three admitted queries must still be answered in full.
    let mut seen: Vec<String> = Vec::new();
    let mut ends = 0;
    while ends < 3 {
        match wire::read_frame(&mut stream, wire::MAX_FRAME_LEN) {
            Ok(Frame::ResultEnd { id }) => {
                seen.push(format!("End({id})"));
                ends += 1;
            }
            Ok(Frame::ResultHeader { id, .. }) => seen.push(format!("Hdr({id})")),
            Ok(Frame::ResultFlows { id, .. }) => seen.push(format!("Flows({id})")),
            Ok(Frame::ResultGaps { id, .. }) => seen.push(format!("Gaps({id})")),
            Ok(other) => panic!("unexpected frame during drain: {other:?} after {seen:?}"),
            Err(e) => panic!("read failed: {e:?} after {seen:?}"),
        }
    }
    handle.shutdown().unwrap();
}

#[test]
fn health_answers_inline_and_reflects_config() {
    let ap = Arc::new(drive_program(None, 500));
    let config = ServeConfig {
        workers: 3,
        queue_cap: 17,
        max_conns: 9,
        ..ServeConfig::default()
    };
    let (handle, plane) = serve(
        Sources {
            live: Some(ap),
            archive: None,
            rtt: Vec::new(),
        },
        config,
    );
    printqueue::telemetry::provenance::set_build_info(plane.registry(), "9.9.9", "cafe1234");
    let mut client = Client::connect(handle.addr()).unwrap();
    let health = client.health().unwrap();
    assert_eq!(health.workers, 3);
    assert_eq!(health.queue_cap, 17);
    assert_eq!(health.max_conns, 9);
    assert_eq!(health.active_conns, 1);
    assert_eq!(health.subscribers, 0);
    assert!(!health.draining);
    assert_eq!(health.version, "9.9.9");
    assert_eq!(health.commit, "cafe1234");
    // Health requests are themselves observable, and uptime is stamped.
    let snap = plane.snapshot();
    assert_eq!(
        snap.counter(
            printqueue::telemetry::names::SERVE_REQUESTS,
            &[("kind", "health")]
        ),
        Some(1)
    );
    assert!(snap
        .gauge(printqueue::telemetry::names::SERVE_UPTIME, &[])
        .is_some());
    handle.shutdown().unwrap();
}

#[test]
fn metrics_get_matches_prometheus_exposition() {
    let ap = Arc::new(drive_program(None, 2_000));
    let (handle, _plane) = serve(
        Sources {
            live: Some(ap),
            archive: None,
            rtt: Vec::new(),
        },
        ServeConfig::default(),
    );
    let mut client = Client::connect(handle.addr()).unwrap();
    for _ in 0..5 {
        client
            .query(Request::TimeWindows {
                port: 0,
                from: 0,
                to: 1_999,
            })
            .unwrap();
    }
    // The text exposition and the structured snapshot must agree on every
    // stable counter (nothing else is running, so only the metrics
    // requests themselves move between the two reads).
    let text = client.metrics().unwrap();
    let parsed = parse_prometheus(&text).unwrap();
    let update = client.metrics_snapshot().unwrap();
    assert_eq!(update.seq, 0);
    assert!(update.last);
    let tw = update
        .changed
        .counter(
            printqueue::telemetry::names::SERVE_REQUESTS,
            &[("kind", "time_windows")],
        )
        .unwrap();
    assert_eq!(tw, 5);
    let prom_tw = parsed
        .iter()
        .find(|m| {
            m.name == printqueue::telemetry::names::SERVE_REQUESTS
                && m.labels
                    .iter()
                    .any(|(k, v)| k == "kind" && v == "time_windows")
        })
        .map(|m| m.value)
        .unwrap();
    assert_eq!(prom_tw, tw as f64);
    handle.shutdown().unwrap();
}

#[test]
fn subscription_deltas_fold_to_server_state() {
    let ap = Arc::new(drive_program(None, 2_000));
    let (handle, _plane) = serve(
        Sources {
            live: Some(ap),
            archive: None,
            rtt: Vec::new(),
        },
        ServeConfig::default(),
    );
    let mut client = Client::connect(handle.addr()).unwrap();
    let first = client.subscribe(100, 4).unwrap();
    assert_eq!(first.seq, 0);
    assert!(!first.last);
    // The baseline must be a full snapshot: core serve series present.
    assert!(first
        .changed
        .counter(printqueue::telemetry::names::SERVE_SHED, &[])
        .is_some());
    let mut folded = first.changed.clone();

    // Work a second connection while updates stream so deltas are
    // non-trivial.
    let mut worker = Client::connect(handle.addr()).unwrap();
    for _ in 0..3 {
        worker
            .query(Request::TimeWindows {
                port: 0,
                from: 0,
                to: 1_999,
            })
            .unwrap();
    }
    let mut seq = first.seq;
    loop {
        let update = client.next_update().unwrap();
        assert_eq!(update.seq, seq + 1, "updates must arrive in order");
        seq = update.seq;
        folded.apply(&update.changed);
        if update.last {
            break;
        }
    }
    // All three queries finished before the last delta was cut, so the
    // folded client-side view matches the server's own count exactly.
    assert_eq!(
        folded.counter(
            printqueue::telemetry::names::SERVE_REQUESTS,
            &[("kind", "time_windows")]
        ),
        Some(3)
    );
    handle.shutdown().unwrap();
}

#[test]
fn subscriptions_beyond_cap_shed_busy() {
    let ap = Arc::new(drive_program(None, 500));
    let config = ServeConfig {
        max_subs: 1,
        retry_after_ms: 23,
        ..ServeConfig::default()
    };
    let (handle, _plane) = serve(
        Sources {
            live: Some(ap),
            archive: None,
            rtt: Vec::new(),
        },
        config,
    );
    let mut first = Client::connect(handle.addr()).unwrap();
    first.subscribe(1_000, 0).unwrap();
    // The worker registers the subscription just after sending the
    // initial update the subscribe() call returns on; give it a beat.
    std::thread::sleep(Duration::from_millis(100));
    let mut second = Client::connect(handle.addr()).unwrap();
    match second.subscribe(1_000, 0) {
        Err(ClientError::Busy { retry_after_ms }) => assert_eq!(retry_after_ms, 23),
        other => panic!("expected Busy beyond the subscription cap, got {other:?}"),
    }
    handle.shutdown().unwrap();
}

#[test]
fn shutdown_sends_subscribers_a_final_update() {
    let ap = Arc::new(drive_program(None, 500));
    let (handle, _plane) = serve(
        Sources {
            live: Some(ap),
            archive: None,
            rtt: Vec::new(),
        },
        ServeConfig::default(),
    );
    let mut client = Client::connect(handle.addr()).unwrap();
    let first = client.subscribe(60_000, 0).unwrap();
    assert!(!first.last);
    // Initiate shutdown from another connection; the blocking shutdown()
    // returns only after the drain, which must have closed the stream
    // with one final `last` update (not a dropped socket).
    let mut stopper = Client::connect(handle.addr()).unwrap();
    stopper.shutdown_server().unwrap();
    handle.shutdown().unwrap();
    let mut saw_last = false;
    for _ in 0..8 {
        let update = client.next_update().unwrap();
        if update.last {
            saw_last = true;
            break;
        }
    }
    assert!(
        saw_last,
        "drain must close subscriptions with a last update"
    );
}

#[test]
fn connection_cap_refuses_with_busy_at_accept() {
    let ap = Arc::new(drive_program(None, 500));
    let config = ServeConfig {
        max_conns: 0,
        retry_after_ms: 11,
        ..ServeConfig::default()
    };
    let (handle, _plane) = serve(
        Sources {
            live: Some(ap),
            archive: None,
            rtt: Vec::new(),
        },
        config,
    );
    match Client::connect(handle.addr()) {
        Err(ClientError::Busy { retry_after_ms }) => assert_eq!(retry_after_ms, 11),
        Err(other) => panic!("expected Busy at accept, got {other}"),
        Ok(_) => panic!("expected Busy at accept, got a connection"),
    }
    handle.shutdown().unwrap();
}
