//! End-to-end tests for the continuous profiler: a routed `pqsim prof`
//! dump must be byte-identical to the client-side merge of the
//! per-backend dumps, the hot serving scopes must show up with real
//! self-time, and the named-lock histograms must be queryable off the
//! daemon's Prometheus exposition.
//!
//! The profiler is process-global, so every test serializes on
//! `pq_prof`'s test lock and keeps the stack sampler off — with idle
//! worker threads and no sampler, nothing mutates the profile between
//! the three dump fetches a byte-identity comparison needs.

use printqueue::core::control::{AnalysisProgram, ControlConfig};
use printqueue::core::params::TimeWindowConfig;
use printqueue::packet::FlowId;
use printqueue::prof;
use printqueue::router::{BackendSpec, Router, RouterConfig, RouterHandle};
use printqueue::serve::{Client, Request, ServeConfig, Server, ServerHandle, Sources};
use printqueue::store::{ship_archive, SegmentPolicy, SharedStoreWriter, StoreWriter};
use printqueue::telemetry::{parse_prometheus, Telemetry};
use std::path::PathBuf;

const PORTS: [u16; 2] = [0, 3];

fn tw_small() -> TimeWindowConfig {
    TimeWindowConfig::new(0, 1, 6, 2)
}

fn tiny_segments() -> SegmentPolicy {
    SegmentPolicy {
        checkpoints_per_segment: 4,
        max_segment_bytes: 1 << 20,
        retain_segments_per_port: None,
    }
}

/// Build a small archive; running the control loop here also exercises
/// the instrumented freeze gate and store-writer locks, so the dumps
/// and expositions below have real lock data to show.
fn build_archive(until: u64) -> Vec<u8> {
    let tw = tw_small();
    let writer = StoreWriter::new(Vec::new(), tw, tiny_segments()).unwrap();
    let handle = SharedStoreWriter::new(writer);
    let mut ap = AnalysisProgram::new(
        tw,
        ControlConfig {
            poll_period: 64,
            max_snapshots: 10_000,
        },
        &PORTS,
        32,
        1,
        1,
    );
    ap.set_spill(Box::new(handle.clone()));
    for t in 0..until {
        for (i, &port) in PORTS.iter().enumerate() {
            if t % (i as u64 + 2) == 0 {
                ap.record_dequeue(port, FlowId((t % 7) as u32 + i as u32 * 100), t);
            }
        }
        if t % 64 == 0 {
            ap.on_tick(t);
        }
    }
    handle.finish().unwrap()
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pq_prof_e2e_{}_{name}.pqa", std::process::id()))
}

fn spawn_fleet(
    bytes: &[u8],
    n: usize,
    tag: &str,
) -> (Vec<ServerHandle>, Vec<BackendSpec>, Vec<PathBuf>) {
    let src = temp_path(&format!("{tag}_src"));
    std::fs::write(&src, bytes).unwrap();
    let mut handles = Vec::new();
    let mut specs = Vec::new();
    let mut paths = vec![src.clone()];
    for i in 0..n {
        let replica = temp_path(&format!("{tag}_replica{i}"));
        ship_archive(&src, &replica).unwrap();
        let config = ServeConfig {
            shard: format!("shard-{i}"),
            prof: true,
            prof_sample_ms: 0, // sampler off: dump stability is the point
            cache_bytes: 0,    // every replay decodes, so segment_decode records
            ..ServeConfig::default()
        };
        let server = Server::bind(
            ("127.0.0.1", 0),
            Sources {
                live: None,
                archive: Some(replica.clone()),
                rtt: Vec::new(),
            },
            config,
            &Telemetry::new(),
        )
        .unwrap();
        let handle = server.spawn().unwrap();
        specs.push(BackendSpec {
            name: format!("shard-{i}"),
            addr: handle.addr().to_string(),
        });
        handles.push(handle);
        paths.push(replica);
    }
    (handles, specs, paths)
}

fn cleanup(paths: &[PathBuf]) {
    for p in paths {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn routed_dump_is_byte_identical_to_merged_backend_dumps() {
    let _guard = prof::test_lock();
    prof::reset();
    let bytes = build_archive(2_000);
    let (backends, specs, paths) = spawn_fleet(&bytes, 2, "ident");
    let plane = Telemetry::new();
    let router = Router::bind(("127.0.0.1", 0), specs, RouterConfig::default(), &plane).unwrap();
    let router: RouterHandle = router.spawn().unwrap();

    // Drive load through the router so the serving scopes record.
    let mut client = Client::connect(router.addr()).unwrap();
    for round in 0..5u64 {
        for &port in &PORTS {
            client
                .query(Request::Replay {
                    port,
                    from: round * 300,
                    to: round * 300 + 600,
                    d: 1,
                })
                .unwrap();
        }
    }

    // Workers are idle now and the sampler never ran, so the process
    // profile is frozen across these three fetches.
    let mut dumps = Vec::new();
    for b in &backends {
        let mut c = Client::connect(b.addr()).unwrap();
        dumps.push(c.profile_dump_bytes().unwrap());
    }
    let routed = client.profile_dump_bytes().unwrap();

    let mut merged = prof::ProfileReport::default();
    for d in &dumps {
        merged.merge(&prof::ProfileReport::decode(d).unwrap());
    }
    assert_eq!(
        routed,
        merged.encode(),
        "routed dump must be the canonical encoding of the per-backend merge"
    );

    // The hot serving scopes are present with real time behind them.
    let report = prof::ProfileReport::decode(&routed).unwrap();
    for want in ["serve/worker_exec", "store/segment_decode"] {
        let scope = report
            .scopes
            .iter()
            .find(|s| s.name == want)
            .unwrap_or_else(|| panic!("scope {want} missing from routed dump"));
        assert!(scope.calls > 0, "{want} recorded no calls");
        assert!(scope.self_ns() > 0, "{want} recorded no self time");
    }
    // The named locks the archive build exercised travel in the dump.
    for want in ["freeze", "store_writer"] {
        let lock = report
            .locks
            .iter()
            .find(|l| l.name == want)
            .unwrap_or_else(|| panic!("lock {want} missing from routed dump"));
        assert!(lock.acquisitions > 0, "{want} recorded no acquisitions");
        assert!(lock.wait.is_consistent(), "{want} wait histogram corrupt");
        assert!(lock.hold.is_consistent(), "{want} hold histogram corrupt");
    }

    drop(client);
    router.shutdown().unwrap();
    for b in backends {
        b.shutdown().unwrap();
    }
    cleanup(&paths);
    prof::set_enabled(false);
    prof::reset();
}

#[test]
fn prof_series_ride_the_prometheus_exposition() {
    let _guard = prof::test_lock();
    prof::reset();
    let bytes = build_archive(1_000);
    let (backends, _specs, paths) = spawn_fleet(&bytes, 1, "prom");

    let mut client = Client::connect(backends[0].addr()).unwrap();
    client
        .query(Request::Replay {
            port: 0,
            from: 0,
            to: 900,
            d: 1,
        })
        .unwrap();
    let text = client.metrics().unwrap();
    let metrics = parse_prometheus(&text).unwrap();
    let has = |name: &str, label: Option<(&str, &str)>| {
        metrics.iter().any(|m| {
            m.name == name
                && label.is_none_or(|(k, v)| m.labels.iter().any(|(lk, lv)| lk == k && lv == v))
        })
    };
    // The lock-wait histograms the freeze-and-read path and the store
    // writer publish, queryable per named lock (histogram samples keep
    // their `_bucket`/`_sum`/`_count` suffixes in the exposition).
    assert!(
        has("pq_lock_wait_ns_count", Some(("lock", "freeze"))),
        "freeze lock wait histogram missing:\n{text}"
    );
    assert!(
        has("pq_lock_wait_ns_count", Some(("lock", "store_writer"))),
        "store_writer lock wait histogram missing:\n{text}"
    );
    assert!(
        has("pq_lock_hold_ns_count", Some(("lock", "freeze"))),
        "freeze lock hold histogram missing"
    );
    assert!(
        has("pq_lock_acquisitions_total", Some(("lock", "freeze"))),
        "freeze lock acquisition counter missing"
    );
    // Scope self-time counters, labeled by scope.
    assert!(
        has(
            "pq_prof_scope_self_ns_total",
            Some(("scope", "serve/worker_exec"))
        ),
        "worker_exec self-time series missing:\n{text}"
    );

    drop(client);
    for b in backends {
        b.shutdown().unwrap();
    }
    cleanup(&paths);
    prof::set_enabled(false);
    prof::reset();
}
