//! End-to-end tests for the pq-router tier: routed answers must be
//! bit-identical to a single-node oracle, killing any single backend
//! mid-storm must lose zero answers (replication 2), quarantined
//! backends must be readmitted by the health probe, and the shard
//! identity must travel the wire.

use printqueue::core::coefficient::Coefficients;
use printqueue::core::control::{AnalysisProgram, ControlConfig, CoverageGap};
use printqueue::core::params::TimeWindowConfig;
use printqueue::core::snapshot::QueryInterval;
use printqueue::packet::FlowId;
use printqueue::router::{rendezvous_rank, BackendSpec, Router, RouterConfig, RouterHandle};
use printqueue::serve::{
    Client, ClientError, Request, RetryPolicy, ServeConfig, Server, ServerHandle, Sources,
};
use printqueue::store::{ship_archive, SegmentPolicy, SharedStoreWriter, StoreReader, StoreWriter};
use printqueue::telemetry::{parse_prometheus, Telemetry};
use std::collections::HashMap;
use std::io::Cursor;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

const PORTS: [u16; 2] = [0, 3];

fn tw_small() -> TimeWindowConfig {
    TimeWindowConfig::new(0, 1, 6, 2)
}

fn tiny_segments() -> SegmentPolicy {
    SegmentPolicy {
        checkpoints_per_segment: 4,
        max_segment_bytes: 1 << 20,
        retain_segments_per_port: None,
    }
}

/// Same two-port drive as the serve e2e tests: a poll every 64 ns and a
/// silence window opening a coverage gap, so routed answers exercise
/// gaps and the degraded flag too.
fn build_archive(until: u64) -> Vec<u8> {
    let tw = tw_small();
    let writer = StoreWriter::new(Vec::new(), tw, tiny_segments()).unwrap();
    let handle = SharedStoreWriter::new(writer);
    let mut ap = AnalysisProgram::new(
        tw,
        ControlConfig {
            poll_period: 64,
            max_snapshots: 10_000,
        },
        &PORTS,
        32,
        1,
        1,
    );
    ap.set_spill(Box::new(handle.clone()));
    let silence = 1_000..1_600;
    for t in 0..until {
        for (i, &port) in PORTS.iter().enumerate() {
            if t % (i as u64 + 2) == 0 {
                ap.record_dequeue(port, FlowId((t % 7) as u32 + i as u32 * 100), t);
            }
        }
        if t % 64 == 0 && !silence.contains(&t) {
            ap.on_tick(t);
        }
    }
    for &port in &PORTS {
        handle.with(|w| w.set_health(port, ap.health())).unwrap();
    }
    handle.finish().unwrap()
}

fn sweep_intervals() -> Vec<QueryInterval> {
    vec![
        QueryInterval::new(0, 50),
        QueryInterval::new(100, 300),
        QueryInterval::new(900, 1_700),
        QueryInterval::new(500, 1_999),
        QueryInterval::new(0, 1_999),
        QueryInterval::new(1_900, 5_000),
    ]
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pq_router_e2e_{}_{name}.pqa", std::process::id()))
}

/// Ship the source archive to one replica file per backend (the
/// any-owner-can-answer contract the router assumes), then start a
/// backend on each replica.
fn spawn_fleet(
    bytes: &[u8],
    n: usize,
    tag: &str,
    config: &ServeConfig,
) -> (Vec<ServerHandle>, Vec<BackendSpec>, Vec<PathBuf>) {
    let src = temp_path(&format!("{tag}_src"));
    std::fs::write(&src, bytes).unwrap();
    let mut handles = Vec::new();
    let mut specs = Vec::new();
    let mut paths = vec![src.clone()];
    for i in 0..n {
        let replica = temp_path(&format!("{tag}_replica{i}"));
        ship_archive(&src, &replica).unwrap();
        let mut cfg = config.clone();
        cfg.shard = format!("shard-{i}");
        let server = Server::bind(
            ("127.0.0.1", 0),
            Sources {
                live: None,
                archive: Some(replica.clone()),
                rtt: Vec::new(),
            },
            cfg,
            &Telemetry::new(),
        )
        .unwrap();
        let handle = server.spawn().unwrap();
        specs.push(BackendSpec {
            name: format!("shard-{i}"),
            addr: handle.addr().to_string(),
        });
        handles.push(handle);
        paths.push(replica);
    }
    (handles, specs, paths)
}

fn spawn_router(specs: Vec<BackendSpec>, config: RouterConfig) -> (RouterHandle, Telemetry) {
    let plane = Telemetry::new();
    let router = Router::bind(("127.0.0.1", 0), specs, config, &plane).unwrap();
    (router.spawn().unwrap(), plane)
}

fn metric(text: &str, name: &str) -> f64 {
    parse_prometheus(text)
        .unwrap()
        .iter()
        .filter(|m| m.name == name)
        .map(|m| m.value)
        .sum()
}

type Oracle = HashMap<(u16, u64, u64), (HashMap<FlowId, f64>, Vec<CoverageGap>, bool, u64)>;

/// Precompute the single-node answers every routed answer must equal.
fn oracle_answers(bytes: &[u8]) -> Oracle {
    let mut local = StoreReader::open(Cursor::new(bytes.to_vec())).unwrap();
    let coeffs = Coefficients::compute(&tw_small(), 1);
    let mut out = HashMap::new();
    for &port in &PORTS {
        for interval in sweep_intervals() {
            let want = local.query(port, interval, &coeffs).unwrap();
            out.insert(
                (port, interval.from, interval.to),
                (
                    want.estimates.counts,
                    want.gaps,
                    want.degraded,
                    local.checkpoint_count(port),
                ),
            );
        }
    }
    out
}

fn cleanup(paths: &[PathBuf]) {
    for p in paths {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn routed_replay_is_bit_identical_to_single_node_oracle() {
    let bytes = build_archive(2_000);
    let (backends, specs, paths) = spawn_fleet(&bytes, 2, "ident", &ServeConfig::default());
    let (router, _plane) = spawn_router(specs, RouterConfig::default());
    let oracle = oracle_answers(&bytes);

    let mut client = Client::connect(router.addr()).unwrap();
    for &port in &PORTS {
        for interval in sweep_intervals() {
            let got = client
                .query(Request::Replay {
                    port,
                    from: interval.from,
                    to: interval.to,
                    d: 1,
                })
                .unwrap();
            let (counts, gaps, degraded, checkpoints) =
                &oracle[&(port, interval.from, interval.to)];
            // Raw f64 bits over the wire and single-partial passthrough
            // in the router: exact equality is the contract.
            assert_eq!(&got.estimates.counts, counts, "port {port} {interval:?}");
            assert_eq!(&got.gaps, gaps, "port {port} {interval:?}");
            assert_eq!(got.degraded, *degraded);
            assert_eq!(got.checkpoints, *checkpoints);
        }
    }

    // Authoritative errors are forwarded untouched — a port no backend
    // holds must come back exactly as a lone daemon would answer it.
    let direct_err = {
        let mut direct = Client::connect(backends[0].addr()).unwrap();
        direct
            .query(Request::Replay {
                port: 9,
                from: 0,
                to: 10,
                d: 1,
            })
            .unwrap_err()
    };
    let routed_err = client
        .query(Request::Replay {
            port: 9,
            from: 0,
            to: 10,
            d: 1,
        })
        .unwrap_err();
    match (direct_err, routed_err) {
        (
            ClientError::Remote {
                code: c1,
                message: m1,
                gaps: g1,
            },
            ClientError::Remote {
                code: c2,
                message: m2,
                gaps: g2,
            },
        ) => {
            assert_eq!(c1, c2);
            assert_eq!(m1, m2);
            assert_eq!(g1, g2);
        }
        other => panic!("expected matching Remote errors, got {other:?}"),
    }

    router.shutdown().unwrap();
    for b in backends {
        b.shutdown().unwrap();
    }
    cleanup(&paths);
}

#[test]
fn kill_a_node_mid_storm_loses_zero_answers() {
    let bytes = build_archive(2_000);
    let mut config = ServeConfig {
        work_delay: Duration::from_millis(2),
        queue_cap: 256,
        inflight_per_conn: 64,
        ..ServeConfig::default()
    };
    config.drain_deadline = Duration::from_millis(200);
    let (mut backends, specs, paths) = spawn_fleet(&bytes, 3, "chaos", &config);
    let (router, _plane) = spawn_router(specs.clone(), RouterConfig::default());
    let oracle = Arc::new(oracle_answers(&bytes));

    // Kill the primary owner of port 0's shard, so queries after the
    // kill are guaranteed to contact it first and fail over.
    let victim = rendezvous_rank(&specs, PORTS[0], 0)[0];

    const THREADS: usize = 8;
    const QUERIES: usize = 60;
    let addr = router.addr();
    let workers: Vec<_> = (0..THREADS)
        .map(|w| {
            let oracle = Arc::clone(&oracle);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let intervals = sweep_intervals();
                for q in 0..QUERIES {
                    let port = PORTS[(w + q) % PORTS.len()];
                    let interval = intervals[(w * 7 + q) % intervals.len()];
                    let got = client
                        .query(Request::Replay {
                            port,
                            from: interval.from,
                            to: interval.to,
                            d: 1,
                        })
                        .unwrap_or_else(|e| panic!("worker {w} query {q} lost an answer: {e}"));
                    let (counts, gaps, degraded, checkpoints) =
                        &oracle[&(port, interval.from, interval.to)];
                    assert_eq!(&got.estimates.counts, counts, "worker {w} query {q}");
                    assert_eq!(&got.gaps, gaps, "worker {w} query {q}");
                    assert_eq!(got.degraded, *degraded);
                    assert_eq!(got.checkpoints, *checkpoints);
                }
            })
        })
        .collect();

    // SIGKILL analog mid-storm: no drain, sockets torn down, queued
    // work abandoned.
    std::thread::sleep(Duration::from_millis(50));
    backends.remove(victim).kill().unwrap();

    for worker in workers {
        worker.join().unwrap();
    }

    let mut client = Client::connect(router.addr()).unwrap();
    let text = client.metrics().unwrap();
    assert!(
        metric(&text, "pq_router_failovers_total") >= 1.0,
        "the storm must have failed over at least once:\n{text}"
    );
    let map = client.shard_map().unwrap();
    assert_eq!(map.backends.len(), 3);
    assert!(
        map.backends.iter().any(|b| !b.healthy),
        "the killed backend should be quarantined by now"
    );

    router.shutdown().unwrap();
    for b in backends {
        b.shutdown().unwrap();
    }
    cleanup(&paths);
}

#[test]
fn quarantined_backend_is_readmitted_by_the_probe() {
    let bytes = build_archive(2_000);
    let (backends, mut specs, paths) = spawn_fleet(&bytes, 1, "probe", &ServeConfig::default());

    // A second "backend" that does not exist yet: reserve an ephemeral
    // port (never connected to, so no TIME_WAIT) and hand its address
    // to the router before anything listens there.
    let reserved = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
    let phantom_addr = reserved.local_addr().unwrap();
    drop(reserved);
    let replica = paths[1].clone(); // shard-0's replica doubles as the late joiner's archive
    specs.push(BackendSpec {
        name: "shard-late".to_string(),
        addr: phantom_addr.to_string(),
    });

    let (router, _plane) = spawn_router(
        specs,
        RouterConfig {
            probe_interval: Duration::from_millis(20),
            ..RouterConfig::default()
        },
    );
    let mut client = Client::connect(router.addr()).unwrap();

    // Enough queries that the phantom backend accumulates failures and
    // is quarantined (every shard has both backends as owners).
    for _ in 0..4 {
        for &port in &PORTS {
            client
                .query(Request::Replay {
                    port,
                    from: 0,
                    to: 1_999,
                    d: 1,
                })
                .unwrap();
        }
    }
    let map = client.shard_map().unwrap();
    let late = map
        .backends
        .iter()
        .find(|b| b.shard == "shard-late")
        .unwrap();
    assert!(!late.healthy, "phantom backend should be quarantined");
    let gen_quarantined = map.generation;
    let text = client.metrics().unwrap();
    assert!(metric(&text, "pq_router_quarantines_total") >= 1.0);

    // Now the backend actually comes up on the promised address; the
    // probe loop must readmit it.
    let late_server = Server::bind(
        phantom_addr,
        Sources {
            live: None,
            archive: Some(replica),
            rtt: Vec::new(),
        },
        ServeConfig {
            shard: "shard-late".to_string(),
            ..ServeConfig::default()
        },
        &Telemetry::new(),
    )
    .unwrap()
    .spawn()
    .unwrap();

    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let map = client.shard_map().unwrap();
        let late = map
            .backends
            .iter()
            .find(|b| b.shard == "shard-late")
            .unwrap();
        if late.healthy {
            assert!(
                map.generation > gen_quarantined,
                "readmission must bump the map generation"
            );
            break;
        }
        assert!(
            Instant::now() < deadline,
            "probe loop never readmitted the recovered backend"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    let text = client.metrics().unwrap();
    assert!(metric(&text, "pq_router_readmissions_total") >= 1.0);

    // And it serves again: answers still match the oracle.
    let oracle = oracle_answers(&bytes);
    for &port in &PORTS {
        let got = client
            .query(Request::Replay {
                port,
                from: 0,
                to: 1_999,
                d: 1,
            })
            .unwrap();
        let (counts, ..) = &oracle[&(port, 0, 1_999)];
        assert_eq!(&got.estimates.counts, counts);
    }

    router.shutdown().unwrap();
    late_server.shutdown().unwrap();
    for b in backends {
        b.shutdown().unwrap();
    }
    cleanup(&paths);
}

#[test]
fn client_retry_honors_busy_and_recovers() {
    // A server that refuses connections beyond the first: connect_retry
    // must keep retrying the accept-time Busy until the slot frees.
    let bytes = build_archive(500);
    let path = temp_path("busy");
    std::fs::write(&path, &bytes).unwrap();
    let server = Server::bind(
        ("127.0.0.1", 0),
        Sources {
            live: None,
            archive: Some(path.clone()),
            rtt: Vec::new(),
        },
        ServeConfig {
            max_conns: 1,
            retry_after_ms: 10,
            ..ServeConfig::default()
        },
        &Telemetry::new(),
    )
    .unwrap()
    .spawn()
    .unwrap();
    let addr = server.addr();

    let hog = Client::connect(addr).unwrap();
    // Plain connect is shed with Busy while the slot is held.
    match Client::connect(addr) {
        Err(ClientError::Busy { retry_after_ms }) => assert_eq!(retry_after_ms, 10),
        Err(other) => panic!("expected Busy at the connection cap, got {other}"),
        Ok(_) => panic!("expected Busy at the connection cap, got a connection"),
    }
    let release = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(100));
        drop(hog);
    });
    let policy = RetryPolicy {
        max_retries: 50,
        base_ms: 20,
        cap_ms: 50,
        seed: 7,
    };
    let mut client = Client::connect_retry(addr, &policy)
        .expect("bounded retry should win once the hog disconnects");
    release.join().unwrap();
    client
        .query(Request::Replay {
            port: 0,
            from: 0,
            to: 499,
            d: 1,
        })
        .unwrap();
    server.shutdown().unwrap();
    let _ = std::fs::remove_file(path);
}

#[test]
fn shard_identity_travels_health_and_shard_map() {
    let bytes = build_archive(500);
    let (backends, specs, paths) = spawn_fleet(
        &bytes,
        2,
        "identity",
        &ServeConfig {
            shard: String::new(), // spawn_fleet overwrites per backend
            ..ServeConfig::default()
        },
    );

    // Each lone daemon advertises its shard in HealthAck and answers a
    // one-entry self-describing ShardMap.
    for (i, spec) in specs.iter().enumerate() {
        let mut direct = Client::connect(spec.addr.as_str()).unwrap();
        let health = direct.health().unwrap();
        assert_eq!(health.shard, format!("shard-{i}"));
        let map = direct.shard_map().unwrap();
        assert_eq!(map.replication, 1);
        assert_eq!(map.backends.len(), 1);
        assert_eq!(map.backends[0].shard, format!("shard-{i}"));
        assert!(map.backends[0].healthy);
    }

    // The router's map covers the fleet and its health names itself.
    let (router, _plane) = spawn_router(specs, RouterConfig::default());
    let mut client = Client::connect(router.addr()).unwrap();
    let health = client.health().unwrap();
    assert_eq!(health.shard, "router");
    assert_eq!(health.workers, 2, "workers field carries the backend count");
    let map = client.shard_map().unwrap();
    assert_eq!(map.replication, 2);
    assert_eq!(map.backends.len(), 2);
    assert!(map.backends.iter().all(|b| b.healthy));

    router.shutdown().unwrap();
    for b in backends {
        b.shutdown().unwrap();
    }
    cleanup(&paths);
}
