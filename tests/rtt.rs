//! End-to-end tests for the pq-rtt query path: a routed `RttQuery`
//! answer must be bit-identical to a single daemon serving the same
//! archives — with and without time-axis sharding — the `max_flows`
//! cap must be applied exactly once (at the answering hop), and the
//! planted slow flow must rank first in every answer.

use printqueue::core::params::TimeWindowConfig;
use printqueue::router::{BackendSpec, Router, RouterConfig, RouterHandle};
use printqueue::rtt::{RttHook, RttReport, RttWorkload, TableConfig, RTT_SEGMENT_KIND};
use printqueue::serve::{Client, ServeConfig, Server, ServerHandle, Sources};
use printqueue::store::{SegmentPolicy, StoreWriter};
use printqueue::switch::{PortConfig, QueueHooks, Switch, SwitchConfig};
use printqueue::telemetry::Telemetry;
use std::path::PathBuf;

/// Run one QUIC-like workload through the switch pipeline and measure it.
fn measure(cfg: &RttWorkload) -> Vec<RttReport> {
    let trace = cfg.generate();
    let mut sw = Switch::new(SwitchConfig {
        ports: vec![
            PortConfig {
                rate_gbps: 100.0,
                ..PortConfig::default()
            };
            cfg.ports as usize
        ],
        ..SwitchConfig::default()
    });
    let mut hook = RttHook::new(&trace.obs, TableConfig::default());
    {
        let mut hooks: Vec<&mut dyn QueueHooks> = vec![&mut hook];
        sw.run(trace.arrivals.iter().cloned(), &mut hooks, 1_000_000);
    }
    hook.reports()
}

/// Spill reports into a `.pqa` archive as raw RTT segments (kind 1).
fn spill(reports: &[RttReport]) -> Vec<u8> {
    let mut w = StoreWriter::new(
        Vec::new(),
        TimeWindowConfig::new(6, 2, 12, 4),
        SegmentPolicy::default(),
    )
    .unwrap();
    for r in reports {
        w.push_raw(
            r.port,
            RTT_SEGMENT_KIND,
            r.sample_count(),
            r.min_t,
            r.max_t,
            &r.encode(),
        )
        .unwrap();
    }
    w.finish().unwrap()
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pq_rtt_e2e_{}_{tag}.pqa", std::process::id()))
}

/// A daemon serving a private replica of the archive bytes.
fn spawn_daemon(bytes: &[u8], tag: &str, shard: &str) -> (ServerHandle, PathBuf) {
    let path = temp_path(tag);
    std::fs::write(&path, bytes).unwrap();
    let cfg = ServeConfig {
        shard: shard.to_string(),
        ..ServeConfig::default()
    };
    let server = Server::bind(
        ("127.0.0.1", 0),
        Sources {
            live: None,
            archive: Some(path.clone()),
            rtt: Vec::new(),
        },
        cfg,
        &Telemetry::new(),
    )
    .unwrap();
    (server.spawn().unwrap(), path)
}

fn spawn_router(backends: &[ServerHandle], config: RouterConfig) -> RouterHandle {
    let specs = backends
        .iter()
        .enumerate()
        .map(|(i, b)| BackendSpec {
            name: format!("shard-{i}"),
            addr: b.addr().to_string(),
        })
        .collect();
    Router::bind(("127.0.0.1", 0), specs, config, &Telemetry::new())
        .unwrap()
        .spawn()
        .unwrap()
}

fn cleanup(paths: &[PathBuf]) {
    for p in paths {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn routed_rtt_is_bit_identical_to_single_daemon() {
    let reports = measure(&RttWorkload {
        flows: 48,
        ports: 2,
        pkts_per_flow: 96,
        slow_rtt_ns: Some(8_000_000),
        seed: 11,
        ..RttWorkload::default()
    });
    assert_eq!(reports.len(), 2, "one report per observed port");
    let bytes = spill(&reports);

    let (single, p0) = spawn_daemon(&bytes, "ident_single", "solo");
    let (b0, p1) = spawn_daemon(&bytes, "ident_b0", "shard-0");
    let (b1, p2) = spawn_daemon(&bytes, "ident_b1", "shard-1");
    let backends = [b0, b1];
    let router = spawn_router(
        &backends,
        RouterConfig {
            replication: 2,
            ..RouterConfig::default()
        },
    );

    let mut direct = Client::connect(single.addr()).unwrap();
    let mut routed = Client::connect(router.addr()).unwrap();
    let mid = (reports[0].min_t + reports[0].max_t) / 2;
    for port in [0u16, 1] {
        // max_flows 0 = untruncated; 4 forces the cap to drop flows.
        // The router scatters untruncated sub-queries and applies the
        // cap once after its merge, so the answers must stay equal.
        for (from, to, max_flows) in [
            (0, u64::MAX, 0u32),
            (0, u64::MAX, 4),
            (0, mid, 0),
            (mid, u64::MAX, 0),
        ] {
            let want = direct.rtt(port, from, to, max_flows).unwrap();
            let got = routed.rtt(port, from, to, max_flows).unwrap();
            assert_eq!(
                got.report.encode(),
                want.report.encode(),
                "port {port} [{from}, {to}] max_flows {max_flows}"
            );
            assert_eq!(got.degraded, want.degraded);
            if max_flows > 0 {
                assert!(got.report.flows.len() <= max_flows as usize);
            }
        }
    }

    // The planted 8 ms flow observes on port 0 (flow % ports) and must
    // rank slowest by mean in both answers.
    let ans = routed.rtt(0, 0, u64::MAX, 0).unwrap();
    let slowest = ans
        .report
        .flows
        .iter()
        .max_by_key(|f| (f.hist.mean(), f.flow))
        .expect("port 0 measured flows");
    assert_eq!(slowest.flow, 0, "planted slow flow ranks first");
    assert!(slowest.hist.count >= 8, "slow flow has real samples");

    drop(direct);
    drop(routed);
    router.shutdown().unwrap();
    for b in backends {
        b.shutdown().unwrap();
    }
    cleanup(&[p0, p1, p2]);
}

#[test]
fn epoch_sliced_routed_rtt_merges_each_report_exactly_once() {
    const EPOCH_NS: u64 = 1_000_000;
    let mut early = measure(&RttWorkload {
        flows: 32,
        ports: 1,
        pkts_per_flow: 96,
        seed: 1,
        ..RttWorkload::default()
    })
    .remove(0);
    let mut late = measure(&RttWorkload {
        flows: 32,
        ports: 1,
        pkts_per_flow: 96,
        seed: 2,
        ..RttWorkload::default()
    })
    .remove(0);
    // Re-key the two reports into distinct epochs: one in epoch 0, one
    // in epoch 2, with the late report spanning an epoch boundary —
    // exactly the shape that would double-count under span-intersection
    // selection when the router slices the time axis.
    let early_span = early.max_t - early.min_t;
    early.min_t = 100_000;
    early.max_t = early.min_t + early_span;
    let late_span = late.max_t - late.min_t;
    late.min_t = 2_700_000;
    late.max_t = late.min_t + late_span.max(EPOCH_NS);
    let bytes = spill(&[early.clone(), late.clone()]);

    let (single, p0) = spawn_daemon(&bytes, "epoch_single", "solo");
    let (b0, p1) = spawn_daemon(&bytes, "epoch_b0", "shard-0");
    let (b1, p2) = spawn_daemon(&bytes, "epoch_b1", "shard-1");
    let backends = [b0, b1];
    let router = spawn_router(
        &backends,
        RouterConfig {
            replication: 2,
            epoch_ns: EPOCH_NS,
            ..RouterConfig::default()
        },
    );

    let mut direct = Client::connect(single.addr()).unwrap();
    let mut routed = Client::connect(router.addr()).unwrap();
    // [0, 4 ms) covers four epoch slices and both reports; the narrower
    // ranges select exactly one report each by its start time.
    for (from, to) in [
        (0, 4 * EPOCH_NS - 1),
        (0, EPOCH_NS - 1),
        (2 * EPOCH_NS, 4 * EPOCH_NS - 1),
    ] {
        let want = direct.rtt(0, from, to, 0).unwrap();
        let got = routed.rtt(0, from, to, 0).unwrap();
        assert_eq!(
            got.report.encode(),
            want.report.encode(),
            "[{from}, {to}] sliced into epochs of {EPOCH_NS} ns"
        );
        assert_eq!(got.degraded, want.degraded);
    }

    // Exactly-once proof: the full-range routed answer carries both
    // reports' samples once, and each narrow range carries one report.
    let full = routed.rtt(0, 0, 4 * EPOCH_NS - 1, 0).unwrap();
    assert_eq!(
        full.report.sample_count(),
        early.sample_count() + late.sample_count()
    );
    let first = routed.rtt(0, 0, EPOCH_NS - 1, 0).unwrap();
    assert_eq!(first.report.sample_count(), early.sample_count());

    drop(direct);
    drop(routed);
    router.shutdown().unwrap();
    for b in backends {
        b.shutdown().unwrap();
    }
    cleanup(&[p0, p1, p2]);
}
