//! Byte-level integration: build real frames, parse them through the
//! ingress parser, queue the descriptors through the switch, and verify the
//! telemetry path round-trips — the full `packet` ↔ `switch` seam.

use printqueue::packet::packet::{build_frame, parse_frame};
use printqueue::packet::telemetry::{TelemetryHeader, HEADER_LEN};
use printqueue::packet::{ipv4, FlowKey, FlowTable, SimPacket};
use printqueue::prelude::*;

#[test]
fn frames_parse_and_queue_end_to_end() {
    let mut flows = FlowTable::new();
    let mut arrivals = Vec::new();
    // Build 100 real Ethernet/IPv4/TCP frames from 4 distinct tuples.
    for i in 0..100u64 {
        let key = FlowKey::tcp(
            ipv4::Address::new(10, 0, 0, (i % 4) as u8 + 1),
            40_000 + (i % 4) as u16,
            ipv4::Address::new(10, 0, 1, 1),
            80,
        );
        let bytes = build_frame(&key, 1000);
        let parsed = parse_frame(&bytes).expect("frame parses");
        assert_eq!(parsed.flow, key, "ingress parser extracts the 5-tuple");
        let id = flows.intern(parsed.flow);
        arrivals.push(Arrival::new(
            SimPacket::new(id, parsed.frame_len as u32, i * 500),
            0,
        ));
    }

    let mut sw = Switch::new(SwitchConfig::single_port(10.0, 10_000));
    let mut sink = TelemetrySink::new();
    sw.run(arrivals, &mut [&mut sink], 0);
    assert_eq!(sink.records.len(), 100);

    // Emit each record as the on-wire telemetry header and re-parse it —
    // the ground-truth receiver path.
    for r in &sink.records {
        let hdr = TelemetryHeader {
            enq_timestamp: r.meta.enq_timestamp,
            deq_timedelta: r.meta.deq_timedelta,
            enq_qdepth: r.meta.enq_qdepth as u16,
            egress_port: r.port,
        };
        let mut buf = [0u8; HEADER_LEN];
        hdr.emit(&mut buf).unwrap();
        let parsed = TelemetryHeader::parse(&buf).unwrap();
        assert_eq!(parsed.deq_timestamp(), r.deq_timestamp());
    }
}

#[test]
fn drr_scheduler_diagnoses_like_fifo() {
    // The culprit taxonomy is scheduler-agnostic: under DRR, direct
    // culprits are still exactly the packets dequeued during the victim's
    // wait, and PrintQueue's dequeue-indexed windows capture them.
    use printqueue::core::culprits::GroundTruth;
    use printqueue::core::metrics::{self, precision_recall};
    use printqueue::switch::SchedulerKind;

    let mut config = SwitchConfig::single_port(10.0, 32_768);
    config.ports[0].scheduler = SchedulerKind::Drr {
        queues: 2,
        quantum: 1500,
    };
    let mut sw = Switch::new(config);

    let mut arrivals = Vec::new();
    // Two competing classes, both oversubscribing the port.
    for i in 0..2_000u64 {
        arrivals.push(Arrival::new(
            SimPacket::new(FlowId(1), 1500, i * 800).with_priority(0),
            0,
        ));
        arrivals.push(Arrival::new(
            SimPacket::new(FlowId(2), 1500, i * 800 + 333).with_priority(1),
            0,
        ));
    }
    arrivals.sort_by_key(|a| a.pkt.arrival);

    let tw = TimeWindowConfig::WS_DM;
    let mut pq_config = PrintQueueConfig::single_port(tw, 1200);
    // The run is shorter than the default once-per-set-period poll; poll
    // every millisecond instead.
    pq_config.control.poll_period = 1_000_000;
    let mut pq = PrintQueue::new(pq_config);
    let mut sink = TelemetrySink::new();
    {
        let mut hooks: Vec<&mut dyn QueueHooks> = vec![&mut pq, &mut sink];
        sw.run(arrivals, &mut hooks, 1_000_000);
    }
    let truth = GroundTruth::new(&sink.records, 80);
    let victim = sink
        .records
        .iter()
        .max_by_key(|r| r.meta.deq_timedelta)
        .copied()
        .unwrap();
    let interval = QueryInterval::new(victim.meta.enq_timestamp, victim.deq_timestamp());
    let est = pq.analysis().query_time_windows(0, interval);
    let gt =
        metrics::to_float_counts(&truth.direct_culprits(interval.from, interval.to, victim.seqno));
    let pr = precision_recall(&est.counts, &gt);
    assert!(
        pr.precision > 0.8 && pr.recall > 0.6,
        "DRR diagnosis degraded: P {} R {}",
        pr.precision,
        pr.recall
    );
    // Fairness sanity: neither class is starved (exact byte fairness is
    // asserted in the scheduler's unit tests; tail drops at the shared
    // buffer skew absolute counts here).
    let sent1 = sink.records.iter().filter(|r| r.flow == FlowId(1)).count();
    let sent2 = sink.records.iter().filter(|r| r.flow == FlowId(2)).count();
    assert!(sent1 > 500 && sent2 > 500, "starved: {sent1} vs {sent2}");
}

#[test]
fn baselines_and_printqueue_agree_on_totals_under_light_load() {
    // Under light, uncongested traffic every system should recover flow
    // counts nearly exactly over a full period.
    use pq_baselines::{FlowRadar, HashPipe};
    use printqueue::packet::FlowTable;

    let mut flows = FlowTable::new();
    let mut table_keys = Vec::new();
    let mut arrivals = Vec::new();
    for i in 0..1_000u64 {
        let key = FlowKey::udp(
            ipv4::Address::new(10, 1, 0, (i % 20) as u8 + 1),
            9_000 + (i % 20) as u16,
            ipv4::Address::new(10, 200, 0, 1),
            53,
        );
        let id = flows.intern(key);
        if id.0 as usize == table_keys.len() {
            table_keys.push(key);
        }
        arrivals.push(Arrival::new(SimPacket::new(id, 200, i * 2_000), 0));
    }

    let mut hp = HashPipe::new(5, 4096);
    let mut fr = FlowRadar::paper_parity();
    let mut sink = TelemetrySink::new();
    let mut sw = Switch::new(SwitchConfig::single_port(10.0, 10_000));
    sw.run(arrivals, &mut [&mut sink], 0);
    for r in &sink.records {
        let key = table_keys[r.flow.0 as usize];
        hp.record(r.flow, &key);
        fr.record(r.flow, &key);
    }
    let hp_counts = hp.counts();
    let fr_counts = fr.decode();
    for id in 0..20u32 {
        assert_eq!(hp_counts[&FlowId(id)], 50, "HashPipe exact at light load");
        assert_eq!(fr_counts[&FlowId(id)], 50, "FlowRadar exact at light load");
    }
}
