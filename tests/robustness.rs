//! Robustness and failure injection: drop storms, degenerate inputs,
//! trigger floods, and clock-scale extremes must never corrupt PrintQueue's
//! state or panic.

use printqueue::core::culprits::GroundTruth;
use printqueue::prelude::*;

fn pq_with_poll(tw: TimeWindowConfig, d: Nanos, poll: Nanos) -> PrintQueue {
    let mut config = PrintQueueConfig::single_port(tw, d);
    config.control.poll_period = poll.min(tw.set_period());
    PrintQueue::new(config)
}

#[test]
fn drop_storm_leaves_state_consistent() {
    // A tiny buffer under a huge burst: most packets tail-drop. Dropped
    // packets must not enter any PrintQueue structure, and queries must
    // still answer from the survivors.
    let tw = TimeWindowConfig::new(6, 1, 8, 3);
    let mut pq = pq_with_poll(tw, 1200, 100_000);
    let mut sink = TelemetrySink::new();
    let mut sw = Switch::new(SwitchConfig::single_port(10.0, 100)); // ~5 MTU packets
    let arrivals: Vec<Arrival> = (0..5_000u64)
        .map(|i| Arrival::new(SimPacket::new(FlowId((i % 7) as u32), 1500, i * 100), 0))
        .collect();
    {
        let mut hooks: Vec<&mut dyn QueueHooks> = vec![&mut pq, &mut sink];
        sw.run(arrivals, &mut hooks, 100_000);
    }
    assert!(sink.drops > 3_000, "storm should drop most packets");
    let transmitted = sink.records.len() as f64;
    let est = pq
        .analysis()
        .query_time_windows(0, QueryInterval::new(0, sw.now()));
    // Estimates reflect only transmitted packets (coefficient recovery can
    // overshoot, but not by the dropped volume).
    assert!(
        est.total() < transmitted * 2.0,
        "estimate {} vs transmitted {transmitted}",
        est.total()
    );
}

#[test]
fn empty_and_single_packet_traces() {
    let tw = TimeWindowConfig::new(6, 1, 8, 3);
    // Empty run.
    let mut pq = pq_with_poll(tw, 1200, 100_000);
    let mut sw = Switch::new(SwitchConfig::single_port(10.0, 1_000));
    {
        let mut hooks: Vec<&mut dyn QueueHooks> = vec![&mut pq];
        sw.run(Vec::new(), &mut hooks, 100_000);
    }
    let est = pq
        .analysis()
        .query_time_windows(0, QueryInterval::new(0, 1_000_000));
    assert!(est.counts.is_empty());

    // Single packet.
    let mut pq = pq_with_poll(tw, 1200, 100_000);
    let mut sw = Switch::new(SwitchConfig::single_port(10.0, 1_000));
    {
        let mut hooks: Vec<&mut dyn QueueHooks> = vec![&mut pq];
        sw.run(
            vec![Arrival::new(SimPacket::new(FlowId(1), 64, 500), 0)],
            &mut hooks,
            100_000,
        );
    }
    let est = pq
        .analysis()
        .query_time_windows(0, QueryInterval::new(0, 1_000));
    assert_eq!(est.counts.len(), 1);
}

#[test]
fn trigger_flood_with_zero_cooldown_is_bounded() {
    // Every congested packet fires the trigger. The analysis program must
    // remain correct; checkpoints are bounded by max_snapshots.
    let tw = TimeWindowConfig::new(6, 1, 8, 3);
    let mut config = PrintQueueConfig::single_port(tw, 1200).with_trigger(DataPlaneTrigger {
        min_deq_timedelta: 1,
        min_enq_qdepth: 1,
        cooldown: 0,
    });
    config.control.max_snapshots = 64;
    config.control.poll_period = 100_000;
    let mut pq = PrintQueue::new(config);
    let mut sw = Switch::new(SwitchConfig::single_port(10.0, 32_768));
    let arrivals: Vec<Arrival> = (0..2_000u64)
        .map(|i| Arrival::new(SimPacket::new(FlowId((i % 5) as u32), 1500, i * 600), 0))
        .collect();
    {
        let mut hooks: Vec<&mut dyn QueueHooks> = vec![&mut pq];
        sw.run(arrivals, &mut hooks, 100_000);
    }
    assert!(
        pq.triggers_fired.len() > 100,
        "flood should fire many triggers"
    );
    assert!(
        pq.analysis().checkpoints(0).len() <= 64,
        "snapshot ring bounded"
    );
    // Specials are still individually queryable.
    assert!(pq.analysis().query_special(0, None).is_some());
}

#[test]
fn queue_monitor_saturation_clamps_gracefully() {
    // Queue deeper than the monitor's entry range: everything above clamps
    // to the last entry; the chain stays valid.
    let tw = TimeWindowConfig::new(6, 1, 8, 3);
    let mut config = PrintQueueConfig::single_port(tw, 1200);
    config.qm_entries = 64; // covers only 64 cells
    config.control.poll_period = 50_000;
    let mut pq = PrintQueue::new(config);
    let mut sw = Switch::new(SwitchConfig::single_port(10.0, 32_768));
    let arrivals: Vec<Arrival> = (0..1_000u64)
        .map(|i| Arrival::new(SimPacket::new(FlowId((i % 3) as u32), 1500, i * 300), 0))
        .collect();
    {
        let mut hooks: Vec<&mut dyn QueueHooks> = vec![&mut pq];
        sw.run(arrivals, &mut hooks, 50_000);
    }
    let snap = pq
        .analysis()
        .query_queue_monitor(0, 150_000)
        .expect("checkpoint");
    let culprits = snap.original_culprits();
    assert!(!culprits.is_empty());
    assert!(culprits.iter().all(|c| c.level < 64));
}

#[test]
fn far_future_timestamps_do_not_overflow() {
    // Deq timestamps near the top of the 63-bit-safe range must survive TTS
    // arithmetic. (u64 ns ≈ 584 years; we run at year ~292.)
    let tw = TimeWindowConfig::UW;
    let base: Nanos = 1 << 62;
    let mut set = printqueue::core::time_windows::TimeWindowSet::new(tw);
    for i in 0..10_000u64 {
        set.record(FlowId((i % 100) as u32), base + i * 110);
    }
    let snap = printqueue::core::snapshot::TimeWindowSnapshot::capture(&set);
    let coeffs = printqueue::core::coefficient::Coefficients::compute(&tw, 110);
    let est = snap.query(QueryInterval::new(base, base + 10_000 * 110), &coeffs);
    assert!(est.total() > 0.0);
    assert!(est.total().is_finite());
}

#[test]
fn ground_truth_handles_simultaneous_bursts() {
    // Hundreds of packets with identical arrival nanoseconds: ordering by
    // seqno must keep the oracle's depth accounting non-negative.
    let mut sw = Switch::new(SwitchConfig::single_port(10.0, 100_000));
    let mut sink = TelemetrySink::new();
    let arrivals: Vec<Arrival> = (0..500u64)
        .map(|i| Arrival::new(SimPacket::new(FlowId((i % 9) as u32), 200, 1_000), 0))
        .collect();
    sw.run(arrivals, &mut [&mut sink], 0);
    let oracle = GroundTruth::new(&sink.records, 80);
    // Must not panic; regime reaches back to the burst instant.
    let last = sink.records.last().unwrap();
    let report = oracle.report(last);
    assert!(report.direct_total() > 400);
}

#[test]
fn queries_far_outside_history_return_empty() {
    let tw = TimeWindowConfig::new(6, 1, 8, 3);
    let mut pq = pq_with_poll(tw, 1200, 100_000);
    let mut sw = Switch::new(SwitchConfig::single_port(10.0, 10_000));
    let arrivals: Vec<Arrival> = (0..100u64)
        .map(|i| Arrival::new(SimPacket::new(FlowId(0), 1500, i * 2_000), 0))
        .collect();
    {
        let mut hooks: Vec<&mut dyn QueueHooks> = vec![&mut pq];
        sw.run(arrivals, &mut hooks, 100_000);
    }
    // Far future beyond every checkpoint.
    let est = pq
        .analysis()
        .query_time_windows(0, QueryInterval::new(1 << 40, (1 << 40) + 1_000_000));
    assert!(est.counts.is_empty());
}
