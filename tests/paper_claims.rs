//! Reproduction regression suite: the paper's headline claims, asserted at
//! reduced scale so `cargo test` guards them. The full-scale versions live
//! in the `pq-bench` binaries; these tests fail if a change breaks the
//! *shape* of any headline result.

use pq_bench::eval::{eval_async, eval_baseline, eval_dataplane, overall};
use pq_bench::harness::{run, RunConfig};
use pq_bench::victims::sample_victims;
use printqueue::core::culprits::GroundTruth;
use printqueue::core::printqueue::DataPlaneTrigger;
use printqueue::prelude::*;
use printqueue::trace::scenario;

fn ws_run(
    with_baselines: bool,
    seed: u64,
) -> (pq_bench::harness::RunOutput, Vec<pq_bench::victims::Victim>) {
    let trace = Workload::paper_testbed(WorkloadKind::Ws, 20u64.millis(), seed).generate();
    let tw = TimeWindowConfig::WS_DM;
    let config = if with_baselines {
        RunConfig::new(tw, 1200).with_baselines()
    } else {
        RunConfig::new(tw, 1200)
    };
    let out = run(&config, &trace);
    let victims = sample_victims(&out.truth, 15, seed);
    (out, victims)
}

/// Headline 1 (§7.1 / Table 2): PrintQueue beats the fixed-interval
/// baselines on both precision and recall.
#[test]
fn printqueue_beats_baselines() {
    let (mut out, victims) = ws_run(true, 21);
    assert!(victims.len() >= 20, "too few victims: {}", victims.len());
    let pq = overall(&eval_async(&mut out, &victims));
    let b = out.baselines.as_ref().unwrap();
    let hp = overall(&eval_baseline(&out, &b.hp_periods, &victims));
    let fr = overall(&eval_baseline(&out, &b.fr_periods, &victims));
    assert!(
        pq.precision > hp.precision + 0.1 && pq.recall > hp.recall + 0.1,
        "PQ {pq:?} vs HashPipe {hp:?}"
    );
    assert!(
        pq.precision > fr.precision + 0.1 && pq.recall > fr.recall + 0.1,
        "PQ {pq:?} vs FlowRadar {fr:?}"
    );
}

/// Headline 2 (Figure 9): data-plane queries are more accurate than
/// asynchronous queries.
#[test]
fn dq_beats_aq() {
    let trace = Workload::paper_testbed(WorkloadKind::Ws, 20u64.millis(), 5).generate();
    let tw = TimeWindowConfig::WS_DM;
    let mut aq_out = run(&RunConfig::new(tw, 1200), &trace);
    let victims = sample_victims(&aq_out.truth, 15, 5);
    let aq = overall(&eval_async(&mut aq_out, &victims));

    let trigger = DataPlaneTrigger {
        min_deq_timedelta: u32::MAX,
        min_enq_qdepth: 1_000,
        cooldown: 2_000_000,
    };
    let mut dq_out = run(&RunConfig::new(tw, 1200).with_trigger(trigger), &trace);
    let dq_samples = eval_dataplane(&mut dq_out);
    assert!(!dq_samples.is_empty(), "no DQ samples");
    let dq = overall(&dq_samples);
    assert!(
        dq.recall > aq.recall && dq.recall > 0.9,
        "DQ {dq:?} should beat AQ {aq:?}"
    );
}

/// Headline 3 (§7.2 / Figure 16): only the queue monitor implicates a burst
/// whose packets left long before the victim arrived.
#[test]
fn queue_monitor_implicates_departed_burst() {
    let cs = scenario::case_study_fig16(50u64.millis(), 3);
    let tw = TimeWindowConfig::WS_DM;
    let mut config = PrintQueueConfig::single_port(tw, 200);
    config.control.poll_period = 2u64.millis();
    let mut pq = PrintQueue::new(config);
    let mut sink = TelemetrySink::new();
    let mut sw_config = SwitchConfig::single_port(10.0, 40_000);
    sw_config.ports[0].max_depth_cells = 40_000;
    let mut sw = Switch::new(sw_config);
    {
        let mut hooks: Vec<&mut dyn QueueHooks> = vec![&mut pq, &mut sink];
        sw.run(cs.trace.arrivals.iter().copied(), &mut hooks, 2u64.millis());
    }
    let truth = GroundTruth::new(&sink.records, 80);
    let victim = truth
        .records()
        .iter()
        .filter(|r| r.flow == cs.roles.new_tcp)
        .max_by_key(|r| r.meta.deq_timedelta)
        .copied()
        .expect("victim");
    // Direct culprits: no burst.
    let direct = pq.analysis().query_time_windows(
        0,
        QueryInterval::new(victim.meta.enq_timestamp, victim.deq_timestamp()),
    );
    let burst_direct = direct.counts.get(&cs.roles.burst).copied().unwrap_or(0.0);
    assert!(
        burst_direct < 1.0,
        "burst in direct culprits: {burst_direct}"
    );
    // Original culprits: burst share comparable to the background's.
    let qm = pq
        .analysis()
        .query_queue_monitor(0, victim.deq_timestamp())
        .expect("checkpoint");
    let counts = qm.culprit_counts();
    let burst = counts.get(&cs.roles.burst).copied().unwrap_or(0) as f64;
    let background = counts.get(&cs.roles.background).copied().unwrap_or(0) as f64;
    assert!(
        burst > 0.5 * background && background > 0.0,
        "queue monitor shares burst {burst} vs background {background}"
    );
}

/// Headline 4 (Figure 11/§7.1): raising α trades accuracy for compression.
#[test]
fn larger_alpha_costs_accuracy() {
    let trace = Workload::paper_testbed(WorkloadKind::Uw, 12u64.millis(), 9).generate();
    let mut recalls = Vec::new();
    for alpha in [1u8, 3] {
        let tw = TimeWindowConfig::new(6, alpha, 12, 4);
        let mut out = run(&RunConfig::new(tw, 110), &trace);
        let victims = sample_victims(&out.truth, 10, 9);
        recalls.push(overall(&eval_async(&mut out, &victims)).recall);
    }
    assert!(
        recalls[0] > recalls[1],
        "α=1 recall {} should beat α=3 {}",
        recalls[0],
        recalls[1]
    );
}

/// Headline 5 (§7): SRAM overhead is moderate and the paper's configs are
/// control-plane feasible.
#[test]
fn paper_configs_fit_resources() {
    use printqueue::core::resources::ResourceModel;
    for tw in [TimeWindowConfig::UW, TimeWindowConfig::WS_DM] {
        let m = ResourceModel::new(&tw, 1, 32 * 1024);
        assert!(m.control_feasible(), "{} infeasible", tw.label());
        assert!(m.sram_utilization_pct() < 25.0);
    }
}
