//! Multi-port switching: ingress routing, independent per-port queues, and
//! PrintQueue activated on a subset of ports (the §6.1 port gate).

use printqueue::core::register_layout::PortGateTable;
use printqueue::packet::ipv4::Address;
use printqueue::packet::FlowTable;
use printqueue::prelude::*;
use printqueue::switch::router::{route_arrivals, Router};
use printqueue::switch::PortConfig;

/// Build a 4-port switch where two /24 destinations map to ports 0 and 1,
/// everything else ECMP-spreads over ports 2 and 3.
#[test]
fn router_spreads_traffic_across_ports() {
    let mut table = FlowTable::new();
    let mut router = Router::new();
    router.add_dst_net_route([10, 200, 0], 0);
    router.add_dst_net_route([10, 200, 1], 1);
    router.set_default_group(vec![2, 3]);

    let mut arrivals = Vec::new();
    for i in 0..4_000u64 {
        // Mix of destinations: half to the routed /24s, half elsewhere.
        let dst = match i % 4 {
            0 => Address::new(10, 200, 0, 5),
            1 => Address::new(10, 200, 1, 5),
            _ => Address::new(172, 16, (i % 250) as u8, 9),
        };
        let key = FlowKey::udp(
            Address::new(10, 0, (i % 100) as u8, 1),
            (9_000 + i % 500) as u16,
            dst,
            53,
        );
        let id = table.intern(key);
        arrivals.push(Arrival::new(SimPacket::new(id, 400, i * 500), 0));
    }
    let (routed, dropped) = route_arrivals(arrivals, &router, |id| table.resolve(id).copied());
    assert_eq!(dropped, 0);

    let config = SwitchConfig {
        ports: vec![PortConfig::default(); 4],
        cell_bytes: 80,
    };
    let mut sw = Switch::new(config);
    let mut sink = TelemetrySink::new();
    sw.run(routed, &mut [&mut sink], 0);

    // Every port transmitted; the routed /24s carried their quarter each
    // and ECMP split the rest.
    let per_port: Vec<u64> = (0..4).map(|p| sw.port_stats(p).dequeued).collect();
    assert_eq!(per_port.iter().sum::<u64>(), 4_000);
    assert_eq!(per_port[0], 1_000);
    assert_eq!(per_port[1], 1_000);
    assert!(
        per_port[2] > 200 && per_port[3] > 200,
        "ECMP skew: {per_port:?}"
    );
    // Flows stay on one path: per-flow port consistency.
    let mut flow_port = std::collections::HashMap::new();
    for r in &sink.records {
        let prev = flow_port.insert(r.flow, r.port);
        if let Some(prev) = prev {
            assert_eq!(prev, r.port, "flow {:?} moved ports", r.flow);
        }
    }
}

/// PrintQueue activated on two of three ports: queries work there, the
/// third port is ignored (the §6.1 gate), and the per-port structures are
/// independent.
#[test]
fn printqueue_activates_per_port() {
    let config = SwitchConfig {
        ports: vec![PortConfig::default(); 3],
        cell_bytes: 80,
    };
    let mut sw = Switch::new(config);
    let tw = TimeWindowConfig::new(6, 1, 10, 3);
    let mut pq_config = PrintQueueConfig::single_port(tw, 1200);
    pq_config.ports = vec![0, 2]; // port 1 not activated
    pq_config.control.poll_period = 400_000; // < the 458 µs set period
    let mut pq = PrintQueue::new(pq_config);
    let mut sink = TelemetrySink::new();

    // Identical congested streams to all three ports.
    let mut arrivals = Vec::new();
    for i in 0..3_000u64 {
        for port in 0..3u16 {
            arrivals.push(Arrival::new(
                SimPacket::new(FlowId(u32::from(port) * 10 + (i % 3) as u32), 1500, i * 700),
                port,
            ));
        }
    }
    arrivals.sort_by_key(|a| a.pkt.arrival);
    {
        let mut hooks: Vec<&mut dyn QueueHooks> = vec![&mut pq, &mut sink];
        sw.run(arrivals, &mut hooks, 500_000);
    }

    assert!(pq.analysis().is_active(0));
    assert!(!pq.analysis().is_active(1));
    assert!(pq.analysis().is_active(2));

    // Queries on the activated ports see their own flows only.
    let horizon = QueryInterval::new(0, 3_000 * 700);
    let p0 = pq.analysis().query_time_windows(0, horizon);
    let p2 = pq.analysis().query_time_windows(2, horizon);
    assert!(p0.total() > 100.0);
    assert!(p2.total() > 100.0);
    assert!(
        p0.counts.keys().all(|f| f.0 < 10),
        "port 0 saw foreign flows"
    );
    assert!(
        p2.counts.keys().all(|f| f.0 >= 20),
        "port 2 saw foreign flows"
    );
    // The §6.1 gate table maps activated ports to prefixes and rejects the
    // rest.
    let gate = PortGateTable::new(&[0, 2]);
    assert_eq!(gate.prefix_of(0), Some(0));
    assert_eq!(gate.prefix_of(2), Some(1));
    assert_eq!(gate.prefix_of(1), None);
}
