//! Edge cases of the switch event loop: manual inject/drain driving, tick
//! boundary conditions, and multi-port event interleaving.

use printqueue::prelude::*;
use printqueue::switch::PortConfig;

#[test]
fn inject_and_drain_drive_the_switch_manually() {
    let mut sw = Switch::new(SwitchConfig::single_port(10.0, 10_000));
    let mut sink = TelemetrySink::new();
    {
        let mut hooks: Vec<&mut dyn QueueHooks> = vec![&mut sink];
        sw.inject(
            Arrival::new(SimPacket::new(FlowId(1), 1500, 100), 0),
            &mut hooks,
        );
        sw.inject(
            Arrival::new(SimPacket::new(FlowId(2), 1500, 200), 0),
            &mut hooks,
        );
        // Nothing beyond the first dequeue has happened yet; drain to 10 µs.
        sw.drain_until(10_000, &mut hooks);
    }
    assert_eq!(sink.records.len(), 2);
    // First packet dequeued immediately at 100; second waited for the
    // serializer (1200 ns).
    assert_eq!(sink.records[0].meta.deq_timedelta, 0);
    assert_eq!(sink.records[1].deq_timestamp(), 100 + 1200);
    assert_eq!(sw.port_depth_cells(0), 0);
    assert!(sw.now() >= 10_000);
}

#[test]
fn drain_until_stops_at_the_requested_time() {
    let mut sw = Switch::new(SwitchConfig::single_port(10.0, 10_000));
    let mut sink = TelemetrySink::new();
    {
        let mut hooks: Vec<&mut dyn QueueHooks> = vec![&mut sink];
        for i in 0..10u64 {
            sw.inject(
                Arrival::new(SimPacket::new(FlowId(0), 1500, i), 0),
                &mut hooks,
            );
        }
        // Each packet takes 1200 ns; drain only 3 transmissions' worth.
        sw.drain_until(3 * 1200, &mut hooks);
    }
    // Packet 0 dequeues at t≈9 (arrival), 1 at +1200, 2 at +2400, 3 at +3600.
    assert!(sink.records.len() >= 3 && sink.records.len() <= 4);
    assert!(sw.port_depth_cells(0) > 0, "queue must still hold packets");
}

#[test]
fn two_ports_transmit_independently() {
    let config = SwitchConfig {
        ports: vec![
            PortConfig {
                rate_gbps: 10.0,
                ..PortConfig::default()
            },
            PortConfig {
                rate_gbps: 1.0,
                ..PortConfig::default()
            },
        ],
        cell_bytes: 80,
    };
    let mut sw = Switch::new(config);
    let mut sink = TelemetrySink::new();
    let arrivals: Vec<Arrival> = (0..20u64)
        .flat_map(|i| {
            [
                Arrival::new(SimPacket::new(FlowId(0), 1500, i * 100), 0),
                Arrival::new(SimPacket::new(FlowId(1), 1500, i * 100), 1),
            ]
        })
        .collect();
    sw.run(arrivals, &mut [&mut sink], 0);
    // The slow port's packets queued 10x longer on average.
    let mean = |port: u16| {
        let delays: Vec<f64> = sink
            .records
            .iter()
            .filter(|r| r.port == port)
            .map(|r| f64::from(r.meta.deq_timedelta))
            .collect();
        delays.iter().sum::<f64>() / delays.len() as f64
    };
    assert!(
        mean(1) > 5.0 * mean(0),
        "slow port not slower: {} vs {}",
        mean(1),
        mean(0)
    );
    assert_eq!(sw.port_stats(0).dequeued, 20);
    assert_eq!(sw.port_stats(1).dequeued, 20);
}

#[test]
fn zero_tick_period_means_no_ticks() {
    struct Panics;
    impl QueueHooks for Panics {
        fn on_tick(&mut self, _now: Nanos) {
            panic!("tick fired with period 0");
        }
    }
    let mut sw = Switch::new(SwitchConfig::single_port(10.0, 1_000));
    let mut hook = Panics;
    let mut hooks: Vec<&mut dyn QueueHooks> = vec![&mut hook];
    sw.run(
        vec![Arrival::new(SimPacket::new(FlowId(0), 64, 0), 0)],
        &mut hooks,
        0,
    );
}

#[test]
fn seqnos_are_globally_monotone_across_ports() {
    let config = SwitchConfig {
        ports: vec![PortConfig::default(); 3],
        cell_bytes: 80,
    };
    let mut sw = Switch::new(config);
    let mut sink = TelemetrySink::new();
    let arrivals: Vec<Arrival> = (0..30u64)
        .map(|i| Arrival::new(SimPacket::new(FlowId(0), 100, i * 10), (i % 3) as u16))
        .collect();
    sw.run(arrivals, &mut [&mut sink], 0);
    let mut seqnos: Vec<u64> = sink.records.iter().map(|r| r.seqno).collect();
    seqnos.sort_unstable();
    assert_eq!(seqnos, (0..30).collect::<Vec<u64>>());
}
