//! Property tests for the observability plane: histogram quantile error
//! bounds, merge associativity (the fleet-rollup invariant), and Chrome
//! trace-event export validity.

use printqueue::telemetry::registry::Registry;
use printqueue::telemetry::spans::SpanTracer;
use printqueue::telemetry::{bucket_index, to_chrome_trace, SpanEvent};
use proptest::prelude::*;
use serde::Value;

/// The true `q`-quantile under the same rank convention the histogram
/// uses: the smallest value with cumulative rank >= ceil(q * n).
fn true_quantile(sorted: &[u64], q: f64) -> u64 {
    let target = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[target.min(sorted.len()) - 1]
}

proptest! {
    /// Histogram quantile estimates land in the same log2 bucket as the
    /// true quantile (or an adjacent one): the bucket counts are exact,
    /// so the only error is intra-bucket interpolation.
    #[test]
    fn quantiles_within_one_bucket(
        samples in prop::collection::vec(any::<u64>(), 1..200),
        q in 0.0f64..=1.0,
    ) {
        let reg = Registry::new();
        let h = reg.histogram("h", &[]);
        for &s in &samples {
            h.record(s);
        }
        let snap = h.snapshot();
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let truth = true_quantile(&sorted, q);
        let est = snap.quantile(q);
        let (eb, tb) = (bucket_index(est), bucket_index(truth));
        prop_assert!(
            eb.abs_diff(tb) <= 1,
            "q={q}: estimate {est} (bucket {eb}) vs true {truth} (bucket {tb})"
        );
        // The estimate never leaves the observed range.
        prop_assert!(est >= sorted[0] && est <= *sorted.last().unwrap());
    }

    /// Snapshot merge is associative — so a fleet rollup folded in any
    /// grouping (per-switch, per-rack, all-at-once) yields one answer.
    #[test]
    fn merge_is_associative(
        a in prop::collection::vec((0usize..4, 0u64..1000), 0..12),
        b in prop::collection::vec((0usize..4, 0u64..1000), 0..12),
        c in prop::collection::vec((0usize..4, 0u64..1000), 0..12),
    ) {
        let names = ["n0", "n1", "n2", "n3"];
        let build = |entries: &[(usize, u64)]| {
            let reg = Registry::new();
            for &(i, v) in entries {
                // Exercise all three kinds under distinct namespaces.
                reg.counter(names[i], &[]).add(v);
                reg.gauge(&format!("g_{}", names[i]), &[]).set_max(v);
                reg.histogram(&format!("h_{}", names[i]), &[]).record(v);
            }
            reg.snapshot()
        };
        let (sa, sb, sc) = (build(&a), build(&b), build(&c));

        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);

        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);

        prop_assert_eq!(left, right);
    }

    /// Counter totals across a merge equal the sum of the parts (the
    /// invariant `Fleet::metrics` relies on).
    #[test]
    fn merged_counters_add(
        a in prop::collection::vec(0u64..1000, 1..8),
        b in prop::collection::vec(0u64..1000, 1..8),
    ) {
        let build = |vals: &[u64]| {
            let reg = Registry::new();
            for (i, &v) in vals.iter().enumerate() {
                reg.counter("pkts", &[("port", &i.to_string())]).add(v);
            }
            reg.snapshot()
        };
        let sa = build(&a);
        let sb = build(&b);
        let mut merged = sa.clone();
        merged.merge(&sb);
        let total: u64 = a.iter().sum::<u64>() + b.iter().sum::<u64>();
        prop_assert_eq!(merged.counter_sum("pkts"), total);
    }

    /// Reset-safe rates: no pair of counter readings — monotone or
    /// reset-riddled — over any elapsed interval may yield a negative or
    /// non-finite rate. This is the invariant the watch dashboard and the
    /// alert engine's `rate` predicate lean on.
    #[test]
    fn rates_are_never_negative(
        values in prop::collection::vec(any::<u64>(), 2..50),
        elapsed in prop::collection::vec(0u64..10_000_000_000, 1..8),
    ) {
        use printqueue::telemetry::{counter_delta, rate_per_sec};
        for (w, &e) in values.windows(2).zip(elapsed.iter().cycle()) {
            let r = rate_per_sec(w[0], w[1], e);
            prop_assert!(r >= 0.0 && r.is_finite(), "rate {r} from {w:?} over {e} ns");
        }
        // On monotone sequences the delta is the plain difference, and
        // the rate still never dips below zero.
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for w in sorted.windows(2) {
            prop_assert_eq!(counter_delta(w[0], w[1]), w[1] - w[0]);
            prop_assert!(rate_per_sec(w[0], w[1], 1_000_000_000) >= 0.0);
        }
    }

    /// Delta-then-merge equals merge-then-delta on monotone (no-reset)
    /// inputs: summing per-shard activity gives the same answer as
    /// diffing the fleet rollups. Registries only ever add/record, so
    /// phased snapshots of live registries are monotone by construction.
    #[test]
    fn delta_commutes_with_merge_on_monotone_inputs(
        a1 in prop::collection::vec((0usize..4, 0u64..1000), 0..12),
        a2 in prop::collection::vec((0usize..4, 0u64..1000), 0..12),
        b1 in prop::collection::vec((0usize..4, 0u64..1000), 0..12),
        b2 in prop::collection::vec((0usize..4, 0u64..1000), 0..12),
    ) {
        use printqueue::telemetry::delta;
        let phased = |p1: &[(usize, u64)], p2: &[(usize, u64)]| {
            let names = ["m0", "m1", "m2", "m3"];
            let reg = Registry::new();
            let record = |entries: &[(usize, u64)]| {
                for &(i, v) in entries {
                    reg.counter(names[i], &[]).add(v);
                    reg.gauge(&format!("g_{}", names[i]), &[]).set_max(v);
                    reg.histogram(&format!("h_{}", names[i]), &[]).record(v);
                }
            };
            record(p1);
            let prev = reg.snapshot();
            record(p2);
            (prev, reg.snapshot())
        };
        let (ap, an) = phased(&a1, &a2);
        let (bp, bn) = phased(&b1, &b2);

        // delta then merge...
        let mut left = delta(&ap, &an);
        left.merge(&delta(&bp, &bn));
        // ...vs merge then delta.
        let mut mp = ap.clone();
        mp.merge(&bp);
        let mut mn = an.clone();
        mn.merge(&bn);
        let right = delta(&mp, &mn);

        prop_assert_eq!(left, right);
    }

    /// Chrome trace export is valid JSON, every event carries the
    /// required keys, and start timestamps are monotone (sorted output),
    /// regardless of the order spans were recorded in.
    #[test]
    fn chrome_trace_is_valid_and_monotone(
        raw in prop::collection::vec((0u64..1_000_000, 0u64..1_000, 0u32..8), 0..64),
    ) {
        let tracer = SpanTracer::default();
        tracer.set_enabled(true);
        for &(start, len, track) in &raw {
            tracer.record("span", start, start + len, track);
        }
        let spans: Vec<SpanEvent> = tracer.snapshot();
        let json = to_chrome_trace(&spans);
        let value: Value = serde_json::from_str(&json).expect("export must be valid JSON");
        let Value::Array(events) = value else {
            return Err(TestCaseError::fail("top level must be an array"));
        };
        prop_assert_eq!(events.len(), raw.len());
        let mut last_ts = f64::NEG_INFINITY;
        for ev in &events {
            let fields = ev.as_object().expect("event must be an object");
            for key in ["name", "cat", "ph", "ts", "dur", "pid", "tid"] {
                prop_assert!(
                    fields.iter().any(|(k, _)| k == key),
                    "missing key {key}"
                );
            }
            let ts = match fields.iter().find(|(k, _)| k == "ts").map(|(_, v)| v) {
                Some(Value::F64(x)) => *x,
                Some(Value::U64(x)) => *x as f64,
                other => return Err(TestCaseError::fail(format!("bad ts: {other:?}"))),
            };
            prop_assert!(ts >= last_ts, "timestamps must be monotone");
            last_ts = ts;
        }
    }
}

#[test]
fn empty_trace_exports_as_empty_array() {
    let json = to_chrome_trace(&[]);
    let value: Value = serde_json::from_str(&json).unwrap();
    assert_eq!(value, Value::Array(Vec::new()));
}
