//! The load-ramp scenario must sweep every depth bucket the §7.1
//! methodology samples from, making bucket coverage deterministic.

use printqueue::core::culprits::GroundTruth;
use printqueue::prelude::*;
use printqueue::trace::ramp::LoadRamp;

#[test]
fn ramp_covers_all_depth_buckets() {
    let trace = LoadRamp {
        kind: WorkloadKind::Uw,
        duration: 60u64.millis(),
        start_load: 0.8,
        end_load: 1.6,
        port_rate_gbps: 10.0,
        flows: 128,
        port: 0,
        seed: 11,
    }
    .generate();
    let mut sw = Switch::new(SwitchConfig::single_port(10.0, 32_768));
    let mut sink = TelemetrySink::new();
    sw.run(trace.arrivals.iter().copied(), &mut [&mut sink], 0);
    let truth = GroundTruth::new(&sink.records, 80);

    // Every §7.1 bucket gets victims.
    let buckets: [(u32, u32); 6] = [
        (1_000, 2_000),
        (2_000, 5_000),
        (5_000, 10_000),
        (10_000, 15_000),
        (15_000, 20_000),
        (20_000, u32::MAX),
    ];
    for (lo, hi) in buckets {
        let n = truth
            .records()
            .iter()
            .filter(|r| r.meta.enq_qdepth >= lo && r.meta.enq_qdepth < hi)
            .count();
        assert!(n >= 50, "bucket [{lo}, {hi}) has only {n} victims");
    }
}
