//! Integration tests spanning every crate: trace generation → switch →
//! PrintQueue → queries → accuracy against ground truth.

use printqueue::core::culprits::GroundTruth;
use printqueue::core::metrics::{self, precision_recall};
use printqueue::prelude::*;
use printqueue::trace::scenario;

/// Run a workload end-to-end and return (PrintQueue, ground truth oracle).
fn run_workload(
    kind: WorkloadKind,
    duration: Nanos,
    tw: TimeWindowConfig,
    d: Nanos,
    seed: u64,
) -> (PrintQueue, GroundTruth) {
    let trace = Workload::paper_testbed(kind, duration, seed).generate();
    let mut printqueue = PrintQueue::new(PrintQueueConfig::single_port(tw, d));
    let mut sink = TelemetrySink::new();
    let mut sw = Switch::new(SwitchConfig::single_port(10.0, 32_768));
    {
        let mut hooks: Vec<&mut dyn QueueHooks> = vec![&mut printqueue, &mut sink];
        sw.run(
            trace.arrivals.iter().copied(),
            &mut hooks,
            tw.set_period().min(5_000_000),
        );
    }
    (printqueue, GroundTruth::new(&sink.records, 80))
}

#[test]
fn uw_direct_culprit_queries_beat_random_guessing() {
    let tw = TimeWindowConfig::UW;
    let (pq, truth) = run_workload(WorkloadKind::Uw, 20_000_000, tw, 110, 5);

    // Sample delayed packets and check aggregate accuracy.
    let victims: Vec<_> = truth
        .records()
        .iter()
        .filter(|r| r.meta.enq_qdepth > 1_000)
        .step_by(997)
        .take(40)
        .copied()
        .collect();
    assert!(
        victims.len() >= 10,
        "workload produced too little congestion"
    );

    let mut precisions = Vec::new();
    let mut recalls = Vec::new();
    for v in &victims {
        let interval = QueryInterval::new(v.meta.enq_timestamp, v.deq_timestamp());
        let est = pq.analysis().query_time_windows(0, interval);
        let gt =
            metrics::to_float_counts(&truth.direct_culprits(interval.from, interval.to, v.seqno));
        let pr = precision_recall(&est.counts, &gt);
        precisions.push(pr.precision);
        recalls.push(pr.recall);
    }
    let mp = metrics::mean(&precisions);
    let mr = metrics::mean(&recalls);
    assert!(mp > 0.8, "mean precision {mp}");
    assert!(mr > 0.4, "mean recall {mr}");
}

#[test]
fn ws_queries_are_more_accurate_than_uw() {
    // §7.1: UW accuracy is lower because it tracks ~10x more packets with
    // a bigger compression factor.
    let run_mean_recall = |kind: WorkloadKind, tw: TimeWindowConfig, d: Nanos| -> f64 {
        let (pq, truth) = run_workload(kind, 20_000_000, tw, d, 9);
        let mut recalls = Vec::new();
        for v in truth
            .records()
            .iter()
            .filter(|r| r.meta.enq_qdepth > 1_000)
            .step_by(499)
            .take(30)
        {
            let interval = QueryInterval::new(v.meta.enq_timestamp, v.deq_timestamp());
            let est = pq.analysis().query_time_windows(0, interval);
            let gt = metrics::to_float_counts(&truth.direct_culprits(
                interval.from,
                interval.to,
                v.seqno,
            ));
            recalls.push(precision_recall(&est.counts, &gt).recall);
        }
        metrics::mean(&recalls)
    };
    let uw = run_mean_recall(WorkloadKind::Uw, TimeWindowConfig::UW, 110);
    let ws = run_mean_recall(WorkloadKind::Ws, TimeWindowConfig::WS_DM, 1200);
    assert!(
        ws > uw - 0.05,
        "WS recall ({ws:.3}) should not trail UW ({uw:.3}) materially"
    );
}

#[test]
fn case_study_original_culprits_implicate_the_burst() {
    // The §7.2 case study end-to-end: the queue monitor must give the
    // burst a share of the original culprits comparable to the background,
    // even long after the burst left the network.
    let cs = scenario::case_study_fig16(60_000_000, 2);
    let tw = TimeWindowConfig::WS_DM;
    let mut config = PrintQueueConfig::single_port(tw, 200);
    config.control.poll_period = 2_000_000;
    let mut printqueue = PrintQueue::new(config);
    let mut sink = TelemetrySink::new();
    let mut sw = Switch::new(SwitchConfig::single_port(10.0, 40_000));
    {
        let mut hooks: Vec<&mut dyn QueueHooks> = vec![&mut printqueue, &mut sink];
        sw.run(cs.trace.arrivals.iter().copied(), &mut hooks, 2_000_000);
    }
    let truth = GroundTruth::new(&sink.records, 80);
    let victim = truth
        .records()
        .iter()
        .filter(|r| r.flow == cs.roles.new_tcp)
        .max_by_key(|r| r.meta.deq_timedelta)
        .copied()
        .expect("new TCP transmitted");
    assert!(
        victim.meta.deq_timedelta > 500_000,
        "victim should experience heavy leftover queueing"
    );

    // Direct culprits (ground truth): zero burst packets.
    let report = truth.report(&victim);
    assert_eq!(
        report.direct.get(&cs.roles.burst).copied().unwrap_or(0),
        0,
        "burst packets left long ago — they cannot be direct culprits"
    );

    // Original culprits from the queue monitor: burst share comparable to
    // (here: at least half of) the background share.
    let qm = printqueue
        .analysis()
        .query_queue_monitor(0, victim.deq_timestamp())
        .expect("queue monitor checkpoint");
    let counts = qm.culprit_counts();
    let burst = counts.get(&cs.roles.burst).copied().unwrap_or(0) as f64;
    let background = counts.get(&cs.roles.background).copied().unwrap_or(0) as f64;
    assert!(
        burst > 0.5 * background && background > 0.0,
        "burst {burst} vs background {background}: the monitor failed to \
         implicate the original cause"
    );
}

#[test]
fn dataplane_triggers_capture_fresh_state() {
    let tw = TimeWindowConfig::UW;
    let trace = Workload::paper_testbed(WorkloadKind::Uw, 20_000_000, 7).generate();
    let config = PrintQueueConfig::single_port(tw, 110).with_trigger(DataPlaneTrigger {
        min_deq_timedelta: u32::MAX,
        min_enq_qdepth: 2_000,
        cooldown: 2_000_000,
    });
    let mut printqueue = PrintQueue::new(config);
    let mut sink = TelemetrySink::new();
    let mut sw = Switch::new(SwitchConfig::single_port(10.0, 32_768));
    {
        let mut hooks: Vec<&mut dyn QueueHooks> = vec![&mut printqueue, &mut sink];
        sw.run(trace.arrivals.iter().copied(), &mut hooks, tw.set_period());
    }
    assert!(
        !printqueue.triggers_fired.is_empty(),
        "congestion must fire the trigger"
    );
    let truth = GroundTruth::new(&sink.records, 80);
    // Every trigger's special checkpoint answers its own interval well.
    let mut recalls = Vec::new();
    for (i, (_p, interval, _at, _d)) in printqueue.triggers_fired.iter().enumerate().take(5) {
        let est = printqueue
            .analysis()
            .query_special(0, Some(i))
            .expect("special checkpoint");
        let victim = truth
            .records()
            .iter()
            .find(|r| r.meta.enq_timestamp == interval.from && r.deq_timestamp() == interval.to)
            .expect("trigger packet recorded");
        let gt = metrics::to_float_counts(&truth.direct_culprits(
            interval.from,
            interval.to,
            victim.seqno,
        ));
        recalls.push(precision_recall(&est.counts, &gt).recall);
    }
    let mr = metrics::mean(&recalls);
    assert!(
        mr > 0.9,
        "data-plane queries should be near-exact, got {mr}"
    );
}
