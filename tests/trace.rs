//! End-to-end tests for distributed query tracing: a routed query's
//! stitched trace must account for (nearly) all of the client-observed
//! wall time, answers must be bit-identical with tracing on and off, a
//! v1 client must interoperate with a tracing server, slow queries must
//! enter the slow log even when untraced, and latency histograms must
//! carry exemplars linking buckets back to trace ids.

use printqueue::core::control::{AnalysisProgram, ControlConfig};
use printqueue::core::params::TimeWindowConfig;
use printqueue::packet::FlowId;
use printqueue::router::{BackendSpec, Router, RouterConfig, RouterHandle};
use printqueue::serve::{
    Client, Request, ServeConfig, Server, ServerHandle, Sources, PROTOCOL_VERSION,
};
use printqueue::store::{ship_archive, SegmentPolicy, SharedStoreWriter, StoreWriter};
use printqueue::telemetry::{
    self, names, new_trace_id, to_prometheus, traces_to_chrome, MetricValue, Telemetry, Trace,
    TraceContext,
};
use std::path::PathBuf;
use std::time::{Duration, Instant};

const PORTS: [u16; 2] = [0, 3];

fn tw_small() -> TimeWindowConfig {
    TimeWindowConfig::new(0, 1, 6, 2)
}

fn build_archive(until: u64) -> Vec<u8> {
    let tw = tw_small();
    let writer = StoreWriter::new(
        Vec::new(),
        tw,
        SegmentPolicy {
            checkpoints_per_segment: 4,
            max_segment_bytes: 1 << 20,
            retain_segments_per_port: None,
        },
    )
    .unwrap();
    let handle = SharedStoreWriter::new(writer);
    let mut ap = AnalysisProgram::new(
        tw,
        ControlConfig {
            poll_period: 64,
            max_snapshots: 10_000,
        },
        &PORTS,
        32,
        1,
        1,
    );
    ap.set_spill(Box::new(handle.clone()));
    for t in 0..until {
        for (i, &port) in PORTS.iter().enumerate() {
            if t % (i as u64 + 2) == 0 {
                ap.record_dequeue(port, FlowId((t % 7) as u32 + i as u32 * 100), t);
            }
        }
        if t % 64 == 0 {
            ap.on_tick(t);
        }
    }
    for &port in &PORTS {
        handle.with(|w| w.set_health(port, ap.health())).unwrap();
    }
    handle.finish().unwrap()
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pq_trace_e2e_{}_{name}.pqa", std::process::id()))
}

/// Spawn `n` backends over replicas of `bytes` with tracing enabled on
/// each plane, returning the planes so tests can inspect them directly.
fn spawn_traced_fleet(
    bytes: &[u8],
    n: usize,
    tag: &str,
    config: &ServeConfig,
) -> (
    Vec<ServerHandle>,
    Vec<BackendSpec>,
    Vec<Telemetry>,
    Vec<PathBuf>,
) {
    let src = temp_path(&format!("{tag}_src"));
    std::fs::write(&src, bytes).unwrap();
    let mut handles = Vec::new();
    let mut specs = Vec::new();
    let mut planes = Vec::new();
    let mut paths = vec![src.clone()];
    for i in 0..n {
        let replica = temp_path(&format!("{tag}_replica{i}"));
        ship_archive(&src, &replica).unwrap();
        let mut cfg = config.clone();
        cfg.shard = format!("shard-{i}");
        let plane = Telemetry::new();
        plane.traces().set_enabled(true);
        let server = Server::bind(
            ("127.0.0.1", 0),
            Sources {
                live: None,
                archive: Some(replica.clone()),
                rtt: Vec::new(),
            },
            cfg,
            &plane,
        )
        .unwrap();
        let handle = server.spawn().unwrap();
        specs.push(BackendSpec {
            name: format!("shard-{i}"),
            addr: handle.addr().to_string(),
        });
        handles.push(handle);
        planes.push(plane);
        paths.push(replica);
    }
    (handles, specs, planes, paths)
}

fn spawn_traced_router(specs: Vec<BackendSpec>) -> (RouterHandle, Telemetry) {
    let plane = Telemetry::new();
    plane.traces().set_enabled(true);
    let router = Router::bind(("127.0.0.1", 0), specs, RouterConfig::default(), &plane).unwrap();
    (router.spawn().unwrap(), plane)
}

fn cleanup(paths: &[PathBuf]) {
    for p in paths {
        let _ = std::fs::remove_file(p);
    }
}

/// Total nanoseconds covered by the union of `[start, end]` intervals.
fn union_ns(mut intervals: Vec<(u64, u64)>) -> u64 {
    intervals.sort_unstable();
    let mut covered = 0u64;
    let mut cursor = 0u64;
    for (start, end) in intervals {
        let start = start.max(cursor);
        if end > start {
            covered += end - start;
        }
        cursor = cursor.max(end);
    }
    covered
}

fn dump_for(addr: std::net::SocketAddr, tid: u128) -> Vec<Trace> {
    let mut client = Client::connect(addr).unwrap();
    client
        .trace_dump(32, false)
        .unwrap()
        .into_iter()
        .filter(|t| t.trace_id == tid)
        .collect()
}

fn replay_req(port: u16) -> Request {
    Request::Replay {
        port,
        from: 0,
        to: 1_999,
        d: 1,
    }
}

#[test]
fn routed_trace_accounts_for_client_wall_time() {
    let bytes = build_archive(2_000);
    let config = ServeConfig {
        // The dominant cost is deliberate and attributable: a stitched
        // trace that misses it cannot hit the coverage bar.
        work_delay: Duration::from_millis(25),
        ..ServeConfig::default()
    };
    let (backends, specs, _planes, paths) = spawn_traced_fleet(&bytes, 2, "wall", &config);
    let (router, _rplane) = spawn_traced_router(specs);

    let tid = new_trace_id();
    let mut client = Client::connect(router.addr()).unwrap();
    client.set_trace_context(Some(TraceContext::root(tid, true)));
    let started = Instant::now();
    let result = client.query(replay_req(PORTS[0])).unwrap();
    let wall_ns = u64::try_from(started.elapsed().as_nanos()).unwrap();
    // The answer header echoes the caller's context untouched.
    assert_eq!(result.trace, Some(TraceContext::root(tid, true)));

    // Stitch the router's record with every backend's.
    let mut records = dump_for(router.addr(), tid);
    for b in &backends {
        records.extend(dump_for(b.addr(), tid));
    }
    assert!(
        records.len() >= 2,
        "expected router + backend records, got {}",
        records.len()
    );
    let names_seen: Vec<&str> = records
        .iter()
        .flat_map(|t| t.spans.iter().map(|s| s.name.as_str()))
        .collect();
    for required in [
        "route",
        "merge",
        "serve_request",
        "worker_exec",
        "segment_decode",
    ] {
        assert!(
            names_seen.contains(&required),
            "span {required} missing from stitched trace: {names_seen:?}"
        );
    }

    // The union of every recorded span interval must account for >= 95%
    // of what the client measured around the call.
    let intervals: Vec<(u64, u64)> = records
        .iter()
        .flat_map(|t| t.spans.iter().map(|s| (s.start_ns, s.end_ns)))
        .collect();
    let covered = union_ns(intervals);
    assert!(
        covered as f64 >= 0.95 * wall_ns as f64,
        "stitched trace covers {covered} ns of {wall_ns} ns ({:.1}%)",
        100.0 * covered as f64 / wall_ns as f64
    );

    // And the stitched records export as one Chrome timeline: span
    // labels (tags ride inside the name), per-process rows, and the
    // trace id in the args for alert → trace linkage.
    let chrome = traces_to_chrome(&records);
    assert!(chrome.contains("route") && chrome.contains("worker_exec"));
    assert!(chrome.contains(&format!("{tid:032x}")));
    assert!(chrome.contains("\"name\": \"router\""));

    router.shutdown().unwrap();
    for b in backends {
        b.shutdown().unwrap();
    }
    cleanup(&paths);
}

#[test]
fn answers_are_bit_identical_with_tracing_on_and_off() {
    let bytes = build_archive(2_000);
    let (backends, specs, _planes, paths) =
        spawn_traced_fleet(&bytes, 2, "ident", &ServeConfig::default());
    let (router, _rplane) = spawn_traced_router(specs);

    let mut client = Client::connect(router.addr()).unwrap();
    for &port in &PORTS {
        let bare = client.query(replay_req(port)).unwrap();
        assert_eq!(bare.trace, None, "untraced answers must not grow an echo");
        client.set_trace_context(Some(TraceContext::root(new_trace_id(), true)));
        let traced = client.query(replay_req(port)).unwrap();
        client.set_trace_context(None);
        // Raw f64 bits all the way through: exact equality, not within-eps.
        assert_eq!(bare.estimates.counts, traced.estimates.counts);
        assert_eq!(bare.gaps, traced.gaps);
        assert_eq!(bare.degraded, traced.degraded);
        assert_eq!(bare.checkpoints, traced.checkpoints);
        assert!(traced.trace.is_some());
    }

    router.shutdown().unwrap();
    for b in backends {
        b.shutdown().unwrap();
    }
    cleanup(&paths);
}

#[test]
fn v1_client_interoperates_with_a_tracing_server() {
    let bytes = build_archive(2_000);
    let (backends, _specs, _planes, paths) =
        spawn_traced_fleet(&bytes, 1, "v1", &ServeConfig::default());
    let addr = backends[0].addr();

    let mut v2 = Client::connect(addr).unwrap();
    assert_eq!(v2.negotiated_version(), PROTOCOL_VERSION);
    let want = v2.query(replay_req(PORTS[0])).unwrap();

    let mut v1 = Client::connect_with_version(addr, 1).unwrap();
    assert_eq!(v1.negotiated_version(), 1);
    // Even with a context configured, a v1 session never attaches it —
    // the v1 byte stream is exactly the pre-tracing layout.
    v1.set_trace_context(Some(TraceContext::root(new_trace_id(), true)));
    let got = v1.query(replay_req(PORTS[0])).unwrap();
    assert_eq!(got.trace, None, "a v1 answer cannot carry an echo");
    assert_eq!(got.estimates.counts, want.estimates.counts);
    assert_eq!(got.gaps, want.gaps);
    assert_eq!(got.degraded, want.degraded);
    assert_eq!(got.checkpoints, want.checkpoints);

    for b in backends {
        b.shutdown().unwrap();
    }
    cleanup(&paths);
}

#[test]
fn slow_queries_enter_the_slow_log_untraced() {
    let bytes = build_archive(2_000);
    let config = ServeConfig {
        work_delay: Duration::from_millis(5),
        ..ServeConfig::default()
    };
    let (backends, _specs, planes, paths) = spawn_traced_fleet(&bytes, 1, "slow", &config);
    // Head sampling off; only the slow threshold can commit a trace.
    planes[0].traces().set_slow_ns(1_000_000);

    let mut client = Client::connect(backends[0].addr()).unwrap();
    client.query(replay_req(PORTS[0])).unwrap();

    let slow = client.trace_dump(32, true).unwrap();
    assert!(!slow.is_empty(), "slow log is empty after a 5ms query");
    for t in &slow {
        assert!(t.slow);
        assert!(t.duration_ns >= 1_000_000);
        assert!(t.spans.iter().any(|s| s.name == "worker_exec"));
    }

    for b in backends {
        b.shutdown().unwrap();
    }
    cleanup(&paths);
}

#[test]
fn latency_histograms_carry_trace_exemplars() {
    let bytes = build_archive(2_000);
    let (backends, _specs, planes, paths) =
        spawn_traced_fleet(&bytes, 1, "exemplar", &ServeConfig::default());

    let tid = new_trace_id();
    let mut client = Client::connect(backends[0].addr()).unwrap();
    client.set_trace_context(Some(TraceContext::root(tid, true)));
    client.query(replay_req(PORTS[0])).unwrap();

    let snap = planes[0].snapshot();
    let worst = snap
        .iter()
        .find_map(|(k, v)| match v {
            MetricValue::Histogram(h) if k.name == names::SERVE_REQUEST_NS => h.worst_exemplar(),
            _ => None,
        })
        .expect("request latency histogram has no exemplar after a sampled query");
    assert_eq!(worst.trace_id, tid);

    // The exemplar survives into the Prometheus exposition, OpenMetrics
    // style, so an alert consumer can link a bucket to the trace.
    let prom = to_prometheus(&snap);
    assert!(
        prom.contains(&format!("{tid:032x}")),
        "exposition lost the exemplar trace id"
    );

    // And the spans-dropped counters ride every exposition.
    assert!(prom.contains(telemetry::names::TRACE_SPANS_DROPPED));

    for b in backends {
        b.shutdown().unwrap();
    }
    cleanup(&paths);
}
