//! Integration: PrintQueue diagnosing live (closed-loop) traffic — the
//! deployment mode of the paper's case study, where the monitored traffic
//! reacts to the very queue being measured.

use printqueue::core::culprits::GroundTruth;
use printqueue::core::metrics::{self, precision_recall};
use printqueue::prelude::*;
use printqueue::trace::closed_loop::{run_closed_loop, AimdConfig};

#[test]
fn printqueue_diagnoses_closed_loop_traffic() {
    // Three AIMD flows share a 1 Gbps port; the buffer is big enough for a
    // standing queue.
    let tw = TimeWindowConfig::new(10, 1, 10, 3);
    let mut pq_config = PrintQueueConfig::single_port(tw, 12_000); // 1500 B at 1 Gbps
    pq_config.control.poll_period = 5_000_000;
    let mut pq = PrintQueue::new(pq_config);
    let mut sink = TelemetrySink::new();
    let mut sw = Switch::new(SwitchConfig::single_port(1.0, 8_000));

    let configs: Vec<AimdConfig> = (0..3u32)
        .map(|i| {
            let mut c = AimdConfig::bulk(FlowId(i), 0);
            c.start = u64::from(i) * 2_000_000;
            c
        })
        .collect();
    let outcomes = {
        let mut hooks: Vec<&mut dyn QueueHooks> = vec![&mut pq];
        run_closed_loop(
            &mut sw,
            configs,
            Vec::new(),
            100_000_000,
            &mut sink,
            &mut hooks,
            5_000_000,
        )
    };
    // All three flows made progress.
    for o in &outcomes {
        assert!(o.acked > 100, "flow {:?} starved: {o:?}", o.flow);
    }

    // Diagnose the most-delayed packet against ground truth.
    let truth = GroundTruth::new(&sink.records, 80);
    let victim = sink
        .records
        .iter()
        .max_by_key(|r| r.meta.deq_timedelta)
        .copied()
        .expect("records exist");
    assert!(
        victim.meta.deq_timedelta > 50_000,
        "standing queue expected, max delay {} ns",
        victim.meta.deq_timedelta
    );
    let interval = QueryInterval::new(victim.meta.enq_timestamp, victim.deq_timestamp());
    let est = pq.analysis().query_time_windows(0, interval);
    let gt =
        metrics::to_float_counts(&truth.direct_culprits(interval.from, interval.to, victim.seqno));
    let pr = precision_recall(&est.counts, &gt);
    assert!(
        pr.precision > 0.8 && pr.recall > 0.6,
        "closed-loop diagnosis degraded: P {} R {}",
        pr.precision,
        pr.recall
    );
}

#[test]
fn aimd_flows_are_self_limiting_under_printqueue() {
    // Sanity: attaching PrintQueue (a passive observer) must not change
    // flow outcomes relative to a bare run with the same seed/timing.
    let run_once = |attach: bool| -> Vec<u64> {
        let mut sw = Switch::new(SwitchConfig::single_port(1.0, 2_000));
        let mut sink = TelemetrySink::new();
        let tw = TimeWindowConfig::new(10, 1, 10, 3);
        let mut pq = PrintQueue::new({
            let mut c = PrintQueueConfig::single_port(tw, 12_000);
            c.control.poll_period = 5_000_000;
            c
        });
        let mut hooks: Vec<&mut dyn QueueHooks> = Vec::new();
        if attach {
            hooks.push(&mut pq);
        }
        let outcomes = run_closed_loop(
            &mut sw,
            vec![
                AimdConfig::bulk(FlowId(0), 0),
                AimdConfig::bulk(FlowId(1), 0),
            ],
            Vec::new(),
            50_000_000,
            &mut sink,
            &mut hooks,
            5_000_000,
        );
        outcomes.iter().map(|o| o.acked).collect()
    };
    assert_eq!(run_once(false), run_once(true), "observer changed outcomes");
}
