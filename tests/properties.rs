//! Property-based tests (proptest) over the core data structures and
//! invariants.

use printqueue::core::coefficient::Coefficients;
use printqueue::core::metrics::{precision_recall, FlowCounts};
use printqueue::core::params::TimeWindowConfig;
use printqueue::core::queue_monitor::QueueMonitor;
use printqueue::core::snapshot::{QueryInterval, TimeWindowSnapshot};
use printqueue::core::time_windows::TimeWindowSet;
use printqueue::packet::packet::{build_frame, parse_frame};
use printqueue::packet::{FlowId, FlowKey, Protocol, SimPacket};
use proptest::prelude::*;

fn arb_flow_key() -> impl Strategy<Value = FlowKey> {
    (
        any::<[u8; 4]>(),
        any::<[u8; 4]>(),
        any::<u16>(),
        any::<u16>(),
        prop_oneof![Just(Protocol::Tcp), Just(Protocol::Udp)],
    )
        .prop_map(|(src, dst, sp, dp, protocol)| FlowKey {
            src,
            dst,
            src_port: sp,
            dst_port: dp,
            protocol,
        })
}

proptest! {
    /// Any tuple survives a build → parse round trip through real bytes.
    #[test]
    fn frame_roundtrip(key in arb_flow_key(), payload in 0usize..1400) {
        let bytes = build_frame(&key, payload);
        let parsed = parse_frame(&bytes).expect("frame must parse");
        prop_assert_eq!(parsed.flow, key);
        prop_assert_eq!(parsed.payload_len, payload);
    }

    /// The telemetry header round-trips any field values.
    #[test]
    fn telemetry_roundtrip(enq in any::<u64>(), delta in any::<u32>(),
                           depth in any::<u16>(), port in any::<u16>()) {
        use printqueue::packet::telemetry::{TelemetryHeader, HEADER_LEN};
        let hdr = TelemetryHeader {
            enq_timestamp: enq,
            deq_timedelta: delta,
            enq_qdepth: depth,
            egress_port: port,
        };
        let mut buf = [0u8; HEADER_LEN];
        hdr.emit(&mut buf).unwrap();
        prop_assert_eq!(TelemetryHeader::parse(&buf).unwrap(), hdr);
    }

    /// The internet checksum verifies after any emit, and any single-bit
    /// flip in the header breaks it.
    #[test]
    fn ipv4_checksum_detects_bit_flips(key in arb_flow_key(), bit in 0usize..(20 * 8)) {
        let bytes = build_frame(&key, 64);
        let ip_start = 14;
        let mut header: Vec<u8> = bytes[ip_start..ip_start + 20].to_vec();
        prop_assert!(printqueue::packet::checksum::verify(&header));
        header[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(!printqueue::packet::checksum::verify(&header));
    }

    /// Time windows never lose the newest packet: immediately after
    /// recording, the packet's window-0 cell holds it.
    #[test]
    fn newest_packet_always_stored(
        deq_times in prop::collection::vec(0u64..1_000_000, 1..200),
    ) {
        let config = TimeWindowConfig::new(4, 1, 6, 3);
        let mut set = TimeWindowSet::new(config);
        for (i, ts) in deq_times.iter().enumerate() {
            let flow = FlowId(i as u32);
            set.record(flow, *ts);
            let tts = ts >> 4;
            let idx = (tts & 63) as usize;
            let cell = set.window(0)[idx];
            prop_assert_eq!(cell.flow, flow);
            prop_assert_eq!(cell.cycle, tts >> 6);
        }
    }

    /// Update-path accounting balances: every recorded packet is either
    /// still stored, was dropped, or was passed-and-then-dropped; the
    /// stored count equals recorded − dropped.
    #[test]
    fn pass_drop_accounting_balances(
        deq_times in prop::collection::vec(0u64..500_000, 1..300),
    ) {
        let config = TimeWindowConfig::new(4, 1, 5, 3);
        let mut set = TimeWindowSet::new(config);
        let mut sorted = deq_times.clone();
        sorted.sort_unstable();
        for (i, ts) in sorted.iter().enumerate() {
            set.record(FlowId(i as u32), *ts);
        }
        let stored: usize = (0..3u8)
            .map(|w| set.window(w).iter().filter(|c| !c.is_empty()).count())
            .sum();
        let stats = set.stats();
        prop_assert_eq!(stored as u64, stats.recorded - stats.dropped);
    }

    /// A query never reports a flow that was never recorded, and with unit
    /// coefficients never reports more total packets than were recorded.
    #[test]
    fn query_is_conservative_with_unit_coefficients(
        deq_times in prop::collection::vec(0u64..100_000, 1..300),
        from in 0u64..100_000,
        len in 0u64..100_000,
    ) {
        let config = TimeWindowConfig::new(4, 1, 6, 3);
        let mut set = TimeWindowSet::new(config);
        let mut sorted = deq_times.clone();
        sorted.sort_unstable();
        for (i, ts) in sorted.iter().enumerate() {
            set.record(FlowId((i % 10) as u32), *ts);
        }
        let snap = TimeWindowSnapshot::capture(&set);
        let unit = Coefficients {
            coefficient: vec![1.0; 3],
            z: vec![1.0; 3],
        };
        let est = snap.query(QueryInterval::new(from, from.saturating_add(len)), &unit);
        prop_assert!(est.total() <= sorted.len() as f64 + 1e-9);
        for flow in est.counts.keys() {
            prop_assert!(flow.0 < 10);
        }
    }

    /// Precision and recall always land in [0, 1].
    #[test]
    fn precision_recall_bounded(
        est_pairs in prop::collection::vec((0u32..50, 0.0f64..1e6), 0..30),
        truth_pairs in prop::collection::vec((0u32..50, 0.0f64..1e6), 0..30),
    ) {
        let est: FlowCounts = est_pairs.into_iter().map(|(f, n)| (FlowId(f), n)).collect();
        let truth: FlowCounts = truth_pairs.into_iter().map(|(f, n)| (FlowId(f), n)).collect();
        let pr = precision_recall(&est, &truth);
        prop_assert!((0.0..=1.0).contains(&pr.precision), "precision {}", pr.precision);
        prop_assert!((0.0..=1.0).contains(&pr.recall), "recall {}", pr.recall);
    }

    /// Coefficients are in (0, 1] and non-increasing for any valid config.
    #[test]
    fn coefficients_valid(m0 in 0u8..12, alpha in 1u8..4, t in 1u8..7, d in 1u64..100_000) {
        let k = 10u8;
        if u32::from(m0) + u32::from(alpha) * (u32::from(t) - 1) + u32::from(k) >= 63 {
            return Ok(());
        }
        let config = TimeWindowConfig::new(m0, alpha, k, t);
        let coeffs = Coefficients::compute(&config, d);
        let mut prev = 1.0f64;
        for c in &coeffs.coefficient {
            prop_assert!(*c > 0.0 && *c <= prev + 1e-12, "coefficient {c} after {prev}");
            prev = *c;
        }
    }

    /// The queue monitor's surviving chain is strictly increasing in both
    /// level and sequence number, whatever the enqueue/dequeue pattern.
    #[test]
    fn queue_monitor_chain_is_monotone(
        ops in prop::collection::vec((any::<bool>(), 0u32..64, 0u32..200), 1..300),
    ) {
        let mut qm = QueueMonitor::new(64, 1);
        for (is_enq, flow, depth) in &ops {
            if *is_enq {
                qm.on_enqueue(FlowId(*flow), *depth, 0);
            } else {
                qm.on_dequeue(FlowId(*flow), *depth, 0);
            }
        }
        let culprits = qm.snapshot().original_culprits();
        for pair in culprits.windows(2) {
            prop_assert!(pair[0].level < pair[1].level);
            prop_assert!(pair[0].seq < pair[1].seq);
        }
        // And nothing above the stack top is reported.
        for c in &culprits {
            prop_assert!(c.level <= qm.top());
        }
    }

    /// FlowKey signatures are deterministic and the signature pair is
    /// consistent between calls.
    #[test]
    fn signatures_deterministic(key in arb_flow_key()) {
        prop_assert_eq!(key.signature(), key.signature());
        prop_assert_eq!(key.signature2(), key.signature2());
    }
}

/// Non-proptest invariant: interval coverage never double counts — a query
/// split across two sub-intervals sums to the whole-interval query.
#[test]
fn query_splits_sum_to_whole() {
    let config = TimeWindowConfig::new(4, 1, 6, 3);
    let mut set = TimeWindowSet::new(config);
    for i in 0..500u64 {
        set.record(FlowId((i % 7) as u32), i * 16);
    }
    let snap = TimeWindowSnapshot::capture(&set);
    let unit = Coefficients {
        coefficient: vec![1.0; 3],
        z: vec![1.0; 3],
    };
    let whole = snap.query(QueryInterval::new(0, 7999), &unit).total();
    let left = snap.query(QueryInterval::new(0, 3999), &unit).total();
    let right = snap.query(QueryInterval::new(4000, 7999), &unit).total();
    assert!(
        (whole - (left + right)).abs() < 1e-6,
        "split {left} + {right} != whole {whole}"
    );
}

proptest! {
    /// Differential test of the coverage-deduplicated query: summing a
    /// query split at arbitrary points equals the whole-interval query (no
    /// double counting, no gaps), for arbitrary traffic.
    #[test]
    fn query_split_invariance(
        deq_times in prop::collection::vec(0u64..200_000, 1..400),
        cut in 1u64..199_999,
    ) {
        let config = TimeWindowConfig::new(4, 2, 5, 3);
        let mut set = TimeWindowSet::new(config);
        let mut sorted = deq_times.clone();
        sorted.sort_unstable();
        for (i, ts) in sorted.iter().enumerate() {
            set.record(FlowId((i % 6) as u32), *ts);
        }
        let snap = TimeWindowSnapshot::capture(&set);
        let unit = Coefficients { coefficient: vec![1.0; 3], z: vec![1.0; 3] };
        let whole = snap.query(QueryInterval::new(0, 200_000), &unit).total();
        let left = snap.query(QueryInterval::new(0, cut - 1), &unit).total();
        let right = snap.query(QueryInterval::new(cut, 200_000), &unit).total();
        prop_assert!(
            (whole - (left + right)).abs() < 1e-6,
            "split at {cut}: {left} + {right} != {whole}"
        );
    }

    /// The pcap writer/reader round-trips arbitrary microburst traces.
    #[test]
    fn pcap_roundtrip(flows in 1usize..20, pkts in 1usize..20,
                      len in 64u32..1500, seed in 0u64..1000) {
        use printqueue::trace::pcap::{read_pcap, write_pcap};
        use printqueue::trace::scenario::microburst;
        let trace = microburst(1_000, 100_000, flows, pkts, len, 0, seed);
        let mut buf = Vec::new();
        write_pcap(&trace, &mut buf).unwrap();
        let (back, skipped) = read_pcap(buf.as_slice(), 0).unwrap();
        prop_assert_eq!(skipped, 0);
        prop_assert_eq!(back.packets(), trace.packets());
        for (a, b) in trace.arrivals.iter().zip(&back.arrivals) {
            prop_assert_eq!(a.pkt.arrival, b.pkt.arrival);
            prop_assert_eq!(a.pkt.len, b.pkt.len);
        }
    }

    /// Trace-format (.pqtr) round trip for arbitrary incast traces.
    #[test]
    fn pqtr_roundtrip(servers in 1usize..16, bytes in 64u64..100_000, seed in 0u64..100) {
        use printqueue::trace::io::{read_trace, write_trace};
        use printqueue::trace::scenario::incast;
        let trace = incast(0, servers, bytes, 40.0, 2, seed);
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        prop_assert_eq!(back.arrivals, trace.arrivals);
        prop_assert_eq!(back.flows.len(), trace.flows.len());
    }

    /// Token-bucket shaping never reorders, never moves a packet earlier,
    /// and never exceeds the sustained rate over the full stream.
    #[test]
    fn shaping_invariants(
        gaps in prop::collection::vec(0u64..5_000, 2..200),
        rate_dgbps in 5u64..200,
    ) {
        use printqueue::switch::Arrival;
        use printqueue::trace::shaping::{shape, TokenBucket};
        let rate = rate_dgbps as f64 / 10.0;
        let mut t = 0u64;
        let arrivals: Vec<Arrival> = gaps
            .iter()
            .map(|g| {
                t += g;
                Arrival::new(SimPacket::new(FlowId(0), 1500, t), 0)
            })
            .collect();
        let shaped = shape(&arrivals, TokenBucket::smooth(rate));
        for (a, s) in arrivals.iter().zip(&shaped) {
            prop_assert!(s.pkt.arrival >= a.pkt.arrival, "packet moved earlier");
        }
        for w in shaped.windows(2) {
            prop_assert!(w[0].pkt.arrival <= w[1].pkt.arrival, "reordered");
        }
        // Rate check beyond the burst allowance.
        let span = shaped.last().unwrap().pkt.arrival - shaped[0].pkt.arrival;
        if span > 0 {
            let bits = ((shaped.len() - 1) as f64) * 1500.0 * 8.0;
            let gbps = bits / span as f64;
            // Burst allowance (8 MTU) can inflate short streams; allow it.
            let burst_bonus = 8.0 * 1500.0 * 8.0 / span as f64;
            prop_assert!(
                gbps <= rate + burst_bonus + 0.15,
                "shaped rate {gbps} > {rate}"
            );
        }
    }
}
