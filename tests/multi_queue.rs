//! Per-queue tracking under multi-queue scheduling — the §5 generalization:
//! "multiple queues are tracked individually" and "the queue monitor can
//! track each priority or rank separately".

use printqueue::prelude::*;
use printqueue::switch::SchedulerKind;

/// Two priority classes build queues independently; each class's queue
/// monitor must implicate only that class's flows.
#[test]
fn per_priority_queue_monitors_are_independent() {
    let mut sw_config = SwitchConfig::single_port(10.0, 64_000);
    sw_config.ports[0].scheduler = SchedulerKind::StrictPriority { queues: 2 };
    let mut sw = Switch::new(sw_config);

    // High-priority flows 1/2 oversubscribe; low-priority flows 11/12 also
    // back up (they only get leftover capacity).
    let mut arrivals = Vec::new();
    for i in 0..2_000u64 {
        arrivals.push(Arrival::new(
            SimPacket::new(FlowId(1 + (i % 2) as u32), 1500, i * 1_600).with_priority(0),
            0,
        ));
        arrivals.push(Arrival::new(
            SimPacket::new(FlowId(11 + (i % 2) as u32), 1500, i * 1_600 + 700).with_priority(1),
            0,
        ));
    }
    arrivals.sort_by_key(|a| a.pkt.arrival);

    let tw = TimeWindowConfig::WS_DM;
    let mut pq_config = PrintQueueConfig::single_port(tw, 1200);
    pq_config.queues_per_port = 2;
    pq_config.control.poll_period = 500_000;
    let mut pq = PrintQueue::new(pq_config);
    let mut sink = TelemetrySink::new();
    {
        let mut hooks: Vec<&mut dyn QueueHooks> = vec![&mut pq, &mut sink];
        sw.run(arrivals, &mut hooks, 500_000);
    }

    // Pick a mid-run instant where both queues are backlogged.
    let mid = 1_500_000;
    let high = pq
        .analysis()
        .query_queue_monitor_for(0, 0, mid)
        .expect("high-priority monitor checkpoint");
    let low = pq
        .analysis()
        .query_queue_monitor_for(0, 1, mid)
        .expect("low-priority monitor checkpoint");

    let high_counts = high.culprit_counts();
    let low_counts = low.culprit_counts();
    assert!(
        !high_counts.is_empty() && !low_counts.is_empty(),
        "both queues should have original-cause chains (high {}, low {})",
        high_counts.len(),
        low_counts.len()
    );
    // Strict separation: the high-priority monitor only names flows 1/2,
    // the low-priority monitor only 11/12.
    for flow in high_counts.keys() {
        assert!(flow.0 <= 2, "low-priority flow {flow} leaked into queue 0");
    }
    for flow in low_counts.keys() {
        assert!(
            flow.0 >= 11,
            "high-priority flow {flow} leaked into queue 1"
        );
    }
}

/// `enq_qdepth` reports the packet's own queue's depth, not the shared
/// port depth.
#[test]
fn enq_qdepth_is_per_queue() {
    let mut sw_config = SwitchConfig::single_port(10.0, 64_000);
    sw_config.ports[0].scheduler = SchedulerKind::StrictPriority { queues: 2 };
    let mut sw = Switch::new(sw_config);
    let mut sink = TelemetrySink::new();

    // Fill the high-priority queue with a burst, then send one low-priority
    // packet: its *own* queue is empty (depth = just its own cells), even
    // though the port holds the whole burst.
    let mut arrivals: Vec<Arrival> = (0..50u64)
        .map(|i| {
            Arrival::new(
                SimPacket::new(FlowId(1), 1500, 1_000 + i).with_priority(0),
                0,
            )
        })
        .collect();
    arrivals.push(Arrival::new(
        SimPacket::new(FlowId(9), 1500, 2_000).with_priority(1),
        0,
    ));
    arrivals.sort_by_key(|a| a.pkt.arrival);
    sw.run(arrivals, &mut [&mut sink], 0);

    let low = sink
        .records
        .iter()
        .find(|r| r.flow == FlowId(9))
        .expect("low-priority packet transmitted");
    assert_eq!(low.meta.queue, 1);
    // 1500 B = 19 cells: the low-priority queue contained only this packet.
    assert_eq!(low.meta.enq_qdepth, 19);
    // And it waited for the entire high-priority burst.
    assert!(low.meta.deq_timedelta > 40 * 1200);
}
